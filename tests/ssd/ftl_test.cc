#include "src/ssd/ftl.h"

#include <gtest/gtest.h>

#include "src/ssd/profile.h"

namespace libra::ssd {
namespace {

DeviceProfile SmallProfile() {
  DeviceProfile p = Intel320Profile();
  p.capacity_bytes = 64ULL * kMiB;  // small device for fast GC exercise
  p.overprovision = 0.10;
  return p;
}

TEST(FtlTest, PlacementCoversAllPages) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  const FtlWriteResult r = ftl.Write(0, 40);
  uint32_t total = 0;
  for (const auto& pl : r.placements) {
    EXPECT_GE(pl.die, 0);
    EXPECT_LT(pl.die, p.num_dies);
    total += pl.pages;
  }
  EXPECT_EQ(total, 40u);
  EXPECT_EQ(ftl.host_pages_written(), 40u);
}

TEST(FtlTest, SmallWriteUsesOneDie) {
  Ftl ftl(SmallProfile());
  const FtlWriteResult r = ftl.Write(0, 1);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].pages, 1u);
}

TEST(FtlTest, LargeWriteSpreadsAcrossDies) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  // 64 pages = 16 stripes of 4 pages -> capped at num_dies dies.
  const FtlWriteResult r = ftl.Write(0, 64);
  EXPECT_EQ(r.placements.size(), static_cast<size_t>(p.num_dies));
}

TEST(FtlTest, MediumWriteUsesStripeGranularity) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  // 8 pages = 2 stripes -> 2 dies, not 8.
  const FtlWriteResult r = ftl.Write(0, 8);
  EXPECT_EQ(r.placements.size(), 2u);
}

TEST(FtlTest, RoundRobinRotatesDies) {
  Ftl ftl(SmallProfile());
  const int die0 = ftl.Write(0, 1).placements[0].die;
  const int die1 = ftl.Write(1, 1).placements[0].die;
  EXPECT_NE(die0, die1);
}

TEST(FtlTest, NoGcWhileSpaceAmple) {
  Ftl ftl(SmallProfile());
  const FtlWriteResult r = ftl.Write(0, 256);
  EXPECT_TRUE(r.gc.empty());
  EXPECT_EQ(ftl.gc_pages_moved(), 0u);
  EXPECT_DOUBLE_EQ(ftl.write_amp(), 1.0);
}

TEST(FtlTest, OverwriteTriggersGcEventually) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  // Overwrite the same half of the logical space repeatedly: stale pages
  // accumulate and GC must kick in once free blocks run low.
  const uint64_t half = p.logical_pages() / 2;
  for (int round = 0; round < 8; ++round) {
    for (uint64_t lpn = 0; lpn < half; lpn += 32) {
      ftl.Write(lpn, 32);
    }
  }
  EXPECT_GT(ftl.blocks_erased(), 0u);
  EXPECT_GE(ftl.write_amp(), 1.0);
}

TEST(FtlTest, SequentialOverwriteWriteAmpBounded) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  // Whole-block sequential overwrites create mostly-stale victims. The
  // device here runs at ~91% utilization (logical/physical) and striping
  // scatters each logical block across dies, so write amp is not 1.0 — but
  // it must stay bounded and GC must make forward progress.
  const uint64_t pages = p.logical_pages();
  for (int round = 0; round < 6; ++round) {
    for (uint64_t lpn = 0; lpn + p.pages_per_block <= pages;
         lpn += p.pages_per_block) {
      ftl.Write(lpn, p.pages_per_block);
    }
  }
  EXPECT_GT(ftl.blocks_erased(), 0u);
  EXPECT_LT(ftl.write_amp(), 5.0);
}

TEST(FtlTest, RandomSmallOverwriteHasHigherWriteAmpThanSequential) {
  DeviceProfile p = SmallProfile();
  Ftl seq_ftl(p);
  Ftl rand_ftl(p);
  const uint64_t pages = p.logical_pages();
  // Fill both once.
  for (uint64_t lpn = 0; lpn < pages; lpn += p.pages_per_block) {
    seq_ftl.Write(lpn, p.pages_per_block);
    rand_ftl.Write(lpn, p.pages_per_block);
  }
  // Sequential whole-block vs random single-page overwrite churn.
  uint64_t x = 12345;
  for (uint64_t i = 0; i < pages * 3; ++i) {
    if (i % p.pages_per_block == 0) {
      seq_ftl.Write((i / p.pages_per_block * p.pages_per_block) % pages,
                    p.pages_per_block);
    }
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    rand_ftl.Write((x >> 33) % pages, 1);
  }
  EXPECT_GT(rand_ftl.write_amp(), seq_ftl.write_amp());
  EXPECT_GT(rand_ftl.write_amp(), 1.15);
}

TEST(FtlTest, TrimReclaimsSpaceWithoutRelocation) {
  DeviceProfile p = SmallProfile();
  Ftl full(p);
  Ftl trimmed(p);
  const uint64_t pages = p.logical_pages();
  for (uint64_t lpn = 0; lpn < pages; lpn += p.pages_per_block) {
    full.Write(lpn, p.pages_per_block);
    trimmed.Write(lpn, p.pages_per_block);
  }
  // Trim the whole space on one FTL, then rewrite everything.
  trimmed.Trim(0, static_cast<uint32_t>(pages));
  for (uint64_t lpn = 0; lpn < pages; lpn += p.pages_per_block) {
    full.Write(lpn, p.pages_per_block);
    trimmed.Write(lpn, p.pages_per_block);
  }
  EXPECT_LE(trimmed.gc_pages_moved(), full.gc_pages_moved());
}

TEST(FtlTest, FreeBlocksStayAboveReserve) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  const uint64_t pages = p.logical_pages();
  uint64_t x = 99;
  for (uint64_t i = 0; i < pages * 4; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    ftl.Write((x >> 33) % pages, 1);
  }
  for (int d = 0; d < p.num_dies; ++d) {
    EXPECT_GE(ftl.free_blocks(d), 1) << "die " << d;
  }
}

TEST(FtlTest, LpnWrapsAroundLogicalSpace) {
  DeviceProfile p = SmallProfile();
  Ftl ftl(p);
  // Writing past the end wraps rather than corrupting state.
  ftl.Write(p.logical_pages() - 2, 8);
  EXPECT_EQ(ftl.host_pages_written(), 8u);
}

}  // namespace
}  // namespace libra::ssd
