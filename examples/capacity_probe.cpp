// Capacity probe: the operator workflow for commissioning a new SSD model
// under Libra (paper §4.3): calibrate the performance curves, derive the
// VOP cost model, probe the interference floor, and print the numbers a
// deployment would configure (max VOP/s, provisionable floor).

#include <cstdio>

#include "src/iosched/capacity.h"
#include "src/iosched/cost_model.h"
#include "src/ssd/calibration.h"
#include "src/ssd/profile.h"

using namespace libra;

int main() {
  const ssd::DeviceProfile profile = ssd::Intel320Profile();
  std::printf("== commissioning %s ==\n\n", profile.name.c_str());

  std::printf("step 1: calibrate pure-workload performance curves\n");
  ssd::CalibrationOptions copt;
  copt.measure = 1 * kSecond;
  const ssd::CalibrationTable table = ssd::Calibrate(profile, copt);
  std::printf("  %-8s %-12s %-12s\n", "size_kb", "rand_read", "rand_write");
  for (size_t i = 0; i < table.sizes_kb.size(); ++i) {
    std::printf("  %-8u %-12.0f %-12.0f\n", table.sizes_kb[i],
                table.rand_read_iops[i], table.rand_write_iops[i]);
  }

  std::printf("\nstep 2: derive the VOP cost model (max %.0f VOP/s)\n",
              table.max_iops());
  iosched::ExactCostModel model(table);
  for (uint32_t kb : {1u, 16u, 256u}) {
    std::printf("  %3uKB: read %.2f VOPs, write %.2f VOPs\n", kb,
                model.Cost(ssd::IoType::kRead, kb * 1024),
                model.Cost(ssd::IoType::kWrite, kb * 1024));
  }

  std::printf("\nstep 3: probe the interference floor (coarse mixed grid)\n");
  iosched::FloorProbeOptions fopt;
  fopt.measure = 700 * kMillisecond;
  const double floor = iosched::ProbeInterferenceFloor(profile, table, fopt);
  std::printf("  measured floor: %.0f VOP/s (%.0f%% of max)\n", floor,
              100.0 * floor / table.max_iops());

  std::printf("\nconfigure the node with:\n");
  std::printf("  NodeOptions.calibration         = <table above>\n");
  std::printf("  NodeOptions.capacity_floor_vops = %.0f  (round down)\n",
              floor * 0.95);
  std::printf(
      "\nThe resource policy will admit reservations up to the floor and "
      "share everything above it work-conservingly.\n");
  return 0;
}
