#include "src/lsm/sstable.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <tuple>
#include <utility>

namespace libra::lsm {

SstableBuilder::SstableBuilder(fs::SimFs& fs, fs::FileId file,
                               SstableOptions options)
    : fs_(fs), file_(file), options_(options) {}

void SstableBuilder::Add(std::string_view key, SequenceNumber seq,
                         ValueType type, std::string_view value) {
  assert(!finished_);
  if (num_entries_ == 0) {
    smallest_ = std::string(key);
  }
  largest_ = std::string(key);
  if (options_.bloom_bits_per_key > 0 &&
      (filter_keys_.empty() || filter_keys_.back() != key)) {
    filter_keys_.emplace_back(key);
  }
  EncodeRecord(&block_, key, seq, type, value);
  last_key_in_block_ = std::string(key);
  ++num_entries_;
  if (block_.size() >= options_.block_bytes) {
    FlushBlock();
  }
}

void SstableBuilder::FlushBlock() {
  if (block_.empty()) {
    return;
  }
  index_.push_back(IndexEntry{last_key_in_block_, buffer_.size(),
                              static_cast<uint32_t>(block_.size())});
  buffer_ += block_;
  block_.clear();
}

sim::Task<Status> SstableBuilder::Finish(const iosched::IoTag& tag) {
  assert(!finished_);
  finished_ = true;
  FlushBlock();
  // Append the index block, the filter block (when filters are on; the
  // footer does not describe it — its region is whatever lies between the
  // index end and the footer, so bits_per_key 0 leaves the file
  // byte-identical to the pre-filter format), and the footer.
  const uint64_t index_offset = buffer_.size();
  std::string index_block;
  for (const IndexEntry& e : index_) {
    PutLengthPrefixed(&index_block, e.last_key);
    PutFixed64(&index_block, e.offset);
    PutFixed32(&index_block, e.size);
  }
  buffer_ += index_block;
  if (options_.bloom_bits_per_key > 0) {
    BloomFilterBuild(filter_keys_, options_.bloom_bits_per_key, &buffer_);
  }
  PutFixed64(&buffer_, index_offset);
  PutFixed64(&buffer_, index_block.size());

  // Stream to disk in sequential chunks.
  uint64_t written = 0;
  while (written < buffer_.size()) {
    const uint64_t len = std::min<uint64_t>(options_.write_chunk_bytes,
                                            buffer_.size() - written);
    Status s = co_await fs_.Append(
        file_, tag, std::string_view(buffer_.data() + written, len));
    if (!s.ok()) {
      co_return s;
    }
    written += len;
  }
  co_return Status::Ok();
}

SstableReader::SstableReader(fs::SimFs& fs, fs::FileId file,
                             SstableOptions options, BlockCache* cache,
                             uint64_t table, iosched::TenantId tenant,
                             TableReadCounters* counters)
    : fs_(fs),
      file_(file),
      options_(options),
      cache_(cache),
      table_(table),
      tenant_(tenant),
      counters_(counters) {}

sim::Task<Status> SstableReader::LoadFooter(const iosched::IoTag& tag) {
  if (footer_cached_) {
    co_return Status::Ok();
  }
  const uint64_t size = fs_.SizeOf(file_);
  if (size < 16) {
    co_return Status::DataLoss("table too small");
  }
  std::string footer;
  Status s = co_await fs_.ReadAt(file_, tag, size - 16, 16, &footer);
  if (!s.ok()) {
    co_return s;
  }
  index_offset_ = GetFixed64(footer, 0);
  index_size_ = GetFixed64(footer, 8);
  if (index_offset_ + index_size_ + 16 > size) {
    co_return Status::DataLoss("bad footer");
  }
  filter_size_ = size - 16 - (index_offset_ + index_size_);
  footer_cached_ = true;
  co_return Status::Ok();
}

sim::Task<StatusOr<TableIndexRef>> SstableReader::LoadIndex(
    const iosched::IoTag& tag) {
  if (cache_ != nullptr) {
    if (CachedBlockRef hit =
            cache_->Get(tenant_, table_, BlockCache::Kind::kIndex, 0);
        hit != nullptr) {
      co_return hit->index;
    }
  } else if (resident_index_ != nullptr) {
    co_return resident_index_;
  }
  if (Status s = co_await LoadFooter(tag); !s.ok()) {
    co_return s;
  }
  const uint64_t index_offset = index_offset_;
  const uint64_t index_size = index_size_;
  Status s;
  // Index read padded to at least a 4KB block — the "at least one (4KB)
  // index block read per file" of §3.1.
  std::string index_block;
  const uint64_t data_end = index_offset + index_size;
  const uint64_t read_size =
      std::max<uint64_t>(index_size, std::min<uint64_t>(4096, data_end));
  const uint64_t read_off = data_end - read_size;
  s = co_await fs_.ReadAt(file_, tag, read_off, read_size, &index_block);
  if (!s.ok()) {
    co_return s;
  }
  if (counters_ != nullptr) {
    ++counters_->index_block_reads;
  }
  // The index proper is the tail of the padded read minus nothing: locate it.
  const uint64_t skip = index_offset - read_off;
  std::string_view data(index_block.data() + skip, index_size);
  auto index = std::make_shared<TableIndex>();
  size_t off = 0;
  while (off < data.size()) {
    std::string_view key;
    if (!GetLengthPrefixed(data, &off, &key) || off + 12 > data.size()) {
      co_return Status::DataLoss("bad index entry");
    }
    const uint64_t block_off = GetFixed64(data, off);
    const uint32_t block_size = GetFixed32(data, off + 8);
    off += 12;
    index->emplace_back(std::string(key), block_off, block_size);
  }
  TableIndexRef ref = std::move(index);
  if (cache_ != nullptr) {
    auto block = std::make_shared<CachedBlock>();
    block->index = ref;
    cache_->Insert(tenant_, table_, BlockCache::Kind::kIndex, 0,
                   std::move(block), index_size);
  } else {
    resident_index_ = ref;
  }
  co_return ref;
}

sim::Task<StatusOr<CachedBlockRef>> SstableReader::LoadFilter(
    const iosched::IoTag& tag) {
  if (footer_cached_ && filter_size_ == 0) {
    co_return CachedBlockRef{};  // known filterless: zero IO, zero probes
  }
  if (cache_ != nullptr) {
    // Only probe once the footer proved a filter exists — otherwise every
    // GET against a filterless table would count a phantom cache miss.
    if (footer_cached_) {
      if (CachedBlockRef hit =
              cache_->Get(tenant_, table_, BlockCache::Kind::kFilter, 0);
          hit != nullptr) {
        co_return hit;
      }
    }
  } else if (resident_filter_ != nullptr) {
    co_return resident_filter_;
  }
  if (Status s = co_await LoadFooter(tag); !s.ok()) {
    co_return s;
  }
  if (filter_size_ == 0) {
    co_return CachedBlockRef{};
  }
  // Filter read padded to at least a 4KB block, mirroring the index read.
  const uint64_t filter_offset = index_offset_ + index_size_;
  const uint64_t filter_end = filter_offset + filter_size_;
  const uint64_t read_size =
      std::max<uint64_t>(filter_size_, std::min<uint64_t>(4096, filter_end));
  const uint64_t read_off = filter_end - read_size;
  std::string filter_block;
  Status s = co_await fs_.ReadAt(file_, tag, read_off, read_size,
                                 &filter_block);
  if (!s.ok()) {
    co_return s;
  }
  if (counters_ != nullptr) {
    ++counters_->filter_block_reads;
  }
  auto block = std::make_shared<CachedBlock>();
  block->bytes = filter_block.substr(filter_offset - read_off, filter_size_);
  CachedBlockRef ref = std::move(block);
  if (cache_ != nullptr) {
    cache_->Insert(tenant_, table_, BlockCache::Kind::kFilter, 0, ref,
                   filter_size_);
  } else {
    resident_filter_ = ref;
  }
  co_return ref;
}

sim::Task<SstableReader::GetResult> SstableReader::Get(
    const iosched::IoTag& tag, std::string_view key,
    SequenceNumber snapshot) {
  GetResult result;
  // Filter first: a negative probe proves the key absent and skips both
  // the index and the data-block device reads.
  bool filter_maybe = false;
  {
    StatusOr<CachedBlockRef> filter = co_await LoadFilter(tag);
    if (!filter.ok()) {
      result.status = filter.status();
      co_return result;
    }
    if (*filter != nullptr) {
      if (counters_ != nullptr) {
        ++counters_->bloom_probes;
      }
      if (!BloomFilterMayContain((*filter)->bytes, key)) {
        if (counters_ != nullptr) {
          ++counters_->bloom_negatives;
        }
        co_return result;  // definitely not in this table
      }
      filter_maybe = true;
    }
  }
  StatusOr<TableIndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    result.status = loaded.status();
    co_return result;
  }
  const TableIndex& index = **loaded;  // ref pins past eviction
  // First block whose last key >= lookup key.
  const auto it = std::lower_bound(
      index.begin(), index.end(), key,
      [](const auto& entry, std::string_view k) {
        return std::string_view(std::get<0>(entry)) < k;
      });
  if (it == index.end()) {
    // Key larger than everything in the table — a filter that said maybe
    // was wrong.
    if (filter_maybe && counters_ != nullptr) {
      ++counters_->bloom_false_positives;
    }
    co_return result;
  }
  const uint64_t block_off = std::get<1>(*it);
  CachedBlockRef data_ref;
  std::string local_block;
  const bool data_cached = cache_ != nullptr && cache_->caches_data();
  if (data_cached) {
    data_ref = cache_->Get(tenant_, table_, BlockCache::Kind::kData,
                           block_off);
  }
  if (data_ref != nullptr) {
    if (counters_ != nullptr) {
      ++counters_->data_cache_hits;  // zero device IO
    }
  } else {
    result.status = co_await fs_.ReadAt(file_, tag, block_off,
                                        std::get<2>(*it), &local_block);
    if (!result.status.ok()) {
      co_return result;
    }
    if (counters_ != nullptr) {
      ++counters_->data_block_reads;
    }
    if (data_cached) {
      auto filled = std::make_shared<CachedBlock>();
      filled->bytes = std::move(local_block);
      cache_->Insert(tenant_, table_, BlockCache::Kind::kData, block_off,
                     filled, filled->bytes.size());
      data_ref = std::move(filled);
    }
  }
  const std::string_view block =
      data_ref != nullptr ? std::string_view(data_ref->bytes)
                          : std::string_view(local_block);
  // Scan the block for the newest visible entry (records are in internal
  // order: the first match with seq <= snapshot wins).
  size_t off = 0;
  Record rec;
  while (off < block.size() && DecodeRecord(block, &off, &rec)) {
    if (rec.key == key && rec.seq <= snapshot) {
      result.found = true;
      if (rec.type == ValueType::kDelete) {
        result.deleted = true;
      } else {
        result.value = std::string(rec.value);
      }
      co_return result;
    }
    if (rec.key > key) {
      break;
    }
  }
  if (filter_maybe && counters_ != nullptr) {
    ++counters_->bloom_false_positives;
  }
  co_return result;
}

sim::Task<Status> SstableReader::RangeCursor::SkipTo(std::string_view start,
                                                     bool bounded) {
  valid_ = false;
  while (true) {
    while (offset_ < block_.size()) {
      if (!DecodeRecord(block_, &offset_, &record_)) {
        co_return Status::DataLoss("bad data block");
      }
      if (!bounded || record_.key >= start) {
        valid_ = true;
        co_return Status::Ok();
      }
    }
    if (next_block_ >= index_->size()) {
      co_return Status::Ok();  // clean end of table, cursor invalid
    }
    const auto& entry = (*index_)[next_block_];
    Status s = co_await fs_.ReadAt(file_, tag_, std::get<1>(entry),
                                   std::get<2>(entry), &block_);
    if (!s.ok()) {
      co_return s;
    }
    offset_ = 0;
    ++next_block_;
  }
}

sim::Task<Status> SstableReader::RangeCursor::Next() {
  return SkipTo({}, /*bounded=*/false);
}

sim::Task<StatusOr<std::unique_ptr<SstableReader::RangeCursor>>>
SstableReader::Seek(const iosched::IoTag& tag, std::string_view start) {
  StatusOr<TableIndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    co_return loaded.status();
  }
  std::unique_ptr<RangeCursor> cursor(
      new RangeCursor(fs_, file_, tag, *loaded));
  // Records before the first block whose last key >= start all compare
  // below the seek key; start loading there.
  const TableIndex& index = **loaded;
  const auto it = std::lower_bound(
      index.begin(), index.end(), start,
      [](const auto& entry, std::string_view k) {
        return std::string_view(std::get<0>(entry)) < k;
      });
  cursor->next_block_ = static_cast<size_t>(it - index.begin());
  if (Status s = co_await cursor->SkipTo(start, /*bounded=*/true); !s.ok()) {
    co_return s;
  }
  co_return cursor;
}

sim::Task<Status> SstableReader::ScanAll(
    const iosched::IoTag& tag,
    const std::function<void(const Record&)>& fn) {
  StatusOr<TableIndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    co_return loaded.status();
  }
  const TableIndex& index = **loaded;
  if (index.empty()) {
    co_return Status::Ok();
  }
  Status s;
  const uint64_t data_end =
      std::get<1>(index.back()) + std::get<2>(index.back());
  std::string data;
  uint64_t pos = 0;
  while (pos < data_end) {
    const uint64_t len =
        std::min<uint64_t>(options_.write_chunk_bytes, data_end - pos);
    std::string chunk;
    s = co_await fs_.ReadAt(file_, tag, pos, len, &chunk);
    if (!s.ok()) {
      co_return s;
    }
    data += chunk;
    pos += len;
  }
  // Records never span blocks and blocks are contiguous, so a single
  // linear decode covers the whole data section.
  size_t off = 0;
  Record rec;
  while (off < data.size() && DecodeRecord(data, &off, &rec)) {
    fn(rec);
  }
  co_return Status::Ok();
}

}  // namespace libra::lsm
