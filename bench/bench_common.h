// Shared infrastructure for the figure-reproduction benches: flag parsing
// (--full for the paper's full grids, --csv for machine-readable output),
// memoized device calibration, and the raw-IO experiment cell runner used
// by the Fig. 4/5/7/9 harnesses.

#ifndef LIBRA_BENCH_BENCH_COMMON_H_
#define LIBRA_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/iosched/cost_model.h"
#include "src/metrics/table.h"
#include "src/ssd/calibration.h"
#include "src/ssd/profile.h"

namespace libra::bench {

struct BenchArgs {
  bool full = false;        // paper-size grids (slower)
  bool csv = false;         // CSV instead of aligned text
  std::string stats_json;   // --stats-json=PATH: machine-readable snapshot
};

BenchArgs ParseArgs(int argc, char** argv);

// Calibration for a device profile, computed once per process.
const ssd::CalibrationTable& TableFor(const ssd::DeviceProfile& profile);

// Emits a table in the format the args request. With --stats-json, the
// table is also captured (as JSON, under the current Section title) into
// the stats file written at process exit.
void Emit(const BenchArgs& args, const metrics::Table& table);

// Prints a section header (skipped in CSV mode) and names the sections
// captured into --stats-json until the next call.
void Section(const BenchArgs& args, const std::string& title);

// Captures a pre-rendered JSON document (e.g. kv::NodeStatsToJson output)
// as a named section of the --stats-json file. No-op without the flag.
void AddStatsSection(const BenchArgs& args, const std::string& name,
                     std::string json);

// --- raw-IO experiment cell (paper §4.2/§6.2 setup) ---
//
// 8 tenants with equal VOP allocations at queue depth 32, split into two
// halves (A = first half, B = second half):
//   kMixed:     every tenant issues reads (size_a) and writes (size_b) at
//               read_fraction — the mixed-ratio maps of Fig. 4.
//   kReadWrite: half pure readers (size_a), half pure writers (size_b) —
//               Fig. 4's "1:1" map and the Fig. 7 insulation grid.
//   kReadRead / kWriteWrite: both halves same op type at sizes a and b —
//               the rr/ww panels of Fig. 9.
// Sizes may be fixed or log-normal (sigma > 0).
enum class CellMode { kMixed, kReadWrite, kReadRead, kWriteWrite };

struct RawCellSpec {
  CellMode mode = CellMode::kMixed;
  double read_fraction = 0.5;   // kMixed only
  double size_a_bytes = 4096;
  double size_b_bytes = 4096;
  double sigma_bytes = 0.0;     // applied to both
  std::string cost_model = "exact";
  int num_tenants = 8;
  int workers_per_tenant = 4;   // 8 x 4 = QD 32
  SimDuration warmup = 300 * kMillisecond;
  SimDuration measure = 2 * kSecond;
  uint64_t seed = 11;
};

struct RawCellResult {
  double total_vops_per_sec = 0.0;      // under the exact model
  // Per-tenant rates over the measurement window:
  std::vector<double> tenant_vops;        // VOP/s charged by the model under test
  std::vector<double> tenant_exact_vops;  // VOP/s re-priced with the exact model
  std::vector<double> tenant_iops;        // physical ops/s completed
  std::vector<double> tenant_bytes;       // bytes/s moved
  std::vector<bool> tenant_is_reader;     // exclusive mode labeling
};

RawCellResult RunRawCell(const ssd::DeviceProfile& profile,
                         const RawCellSpec& spec);

// Per-size IOP-size grid used by the sweeps: {1,2,...,256} KB (full) or a
// coarse subset (quick).
std::vector<uint32_t> SweepSizesKb(bool full);

}  // namespace libra::bench

#endif  // LIBRA_BENCH_BENCH_COMMON_H_
