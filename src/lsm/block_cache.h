// Shared byte-budget LRU cache for SSTable blocks.
//
// One cache serves three block kinds — parsed index blocks, bloom filter
// blocks, and raw data blocks — under a single capacity, so hot filters can
// displace cold data blocks and vice versa. A cache hit costs zero device
// IO; a miss makes the caller re-read (and re-charge, via its IoTag) the
// block from the device, which is how eviction pressure shows up in a
// tenant's attributed VOPs.
//
// Keys carry the owning tenant: with one node-shared cache, tenants of
// different DB partitions reuse table file numbers (each LsmDb numbers its
// own files from 1), and per-tenant hit/miss/eviction counters feed the
// node-stats `block_cache` section. The key map is ordered so EraseTable —
// dropping every block of a deleted table — is a deterministic range erase.
//
// Entries are shared_ptr<const CachedBlock>: a lookup in flight keeps a
// just-evicted block alive until it finishes; the next lookup re-reads it.
// Capacity 0 = unbounded. `cache_data` false restricts the cache to index
// and filter blocks — the deprecated `table_cache_bytes` alias mode, byte-
// identical to the old TableIndexCache this class replaces.

#ifndef LIBRA_SRC_LSM_BLOCK_CACHE_H_
#define LIBRA_SRC_LSM_BLOCK_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/iosched/io_tag.h"

namespace libra::lsm {

// Parsed sstable index: {last_key, block offset, block size} per data block.
using TableIndex = std::vector<std::tuple<std::string, uint64_t, uint32_t>>;
using TableIndexRef = std::shared_ptr<const TableIndex>;

// One cached block. Index blocks live parsed (`index` set); filter and data
// blocks keep their raw bytes.
struct CachedBlock {
  TableIndexRef index;
  std::string bytes;
};
using CachedBlockRef = std::shared_ptr<const CachedBlock>;

class BlockCache {
 public:
  enum class Kind : uint8_t { kIndex = 0, kFilter = 1, kData = 2 };
  static constexpr int kNumKinds = 3;

  // Per-tenant view of the cache's behavior, indexed by Kind.
  struct TenantCounters {
    uint64_t hits[kNumKinds] = {0, 0, 0};
    uint64_t misses[kNumKinds] = {0, 0, 0};
    uint64_t evictions = 0;  // this tenant's blocks pushed out by pressure
  };

  explicit BlockCache(uint64_t capacity_bytes = 0, bool cache_data = true)
      : capacity_bytes_(capacity_bytes), cache_data_(cache_data) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // nullptr on miss; a hit refreshes the entry's LRU position. `offset` is
  // the block's file offset (0 for the per-table index and filter blocks).
  CachedBlockRef Get(iosched::TenantId tenant, uint64_t table, Kind kind,
                     uint64_t offset);

  // Inserts (replacing any previous entry under the same key), charging
  // `bytes` (the block's on-disk size) against capacity, then evicts from
  // the LRU tail until resident bytes fit. The inserted entry itself is
  // never evicted by its own insertion.
  void Insert(iosched::TenantId tenant, uint64_t table, Kind kind,
              uint64_t offset, CachedBlockRef block, uint64_t bytes);

  // Drops every block of `table` when it is deleted (not an eviction).
  void EraseTable(iosched::TenantId tenant, uint64_t table);

  bool caches_data() const { return cache_data_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  size_t entries() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  // Zeroed counters for a tenant the cache has never seen.
  TenantCounters CountersOf(iosched::TenantId tenant) const;

 private:
  struct Key {
    iosched::TenantId tenant = 0;
    uint64_t table = 0;
    Kind kind = Kind::kIndex;
    uint64_t offset = 0;

    bool operator<(const Key& o) const {
      return std::tie(tenant, table, kind, offset) <
             std::tie(o.tenant, o.table, o.kind, o.offset);
    }
  };
  struct Entry {
    Key key;
    CachedBlockRef block;
    uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void EraseKey(const Key& key);

  uint64_t capacity_bytes_;
  bool cache_data_;
  LruList lru_;                            // front = most recent
  std::map<Key, LruList::iterator> map_;   // ordered: EraseTable range-scans
  std::map<iosched::TenantId, TenantCounters> tenants_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_BLOCK_CACHE_H_
