#include "src/lsm/skiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace libra::lsm {
namespace {

struct IntCmp {
  int operator()(int a, int b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};

TEST(SkipListTest, EmptyList) {
  SkipList<int, IntCmp> list(IntCmp{});
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.Contains(1));
  SkipList<int, IntCmp>::Iterator it(&list);
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, InsertAndContains) {
  SkipList<int, IntCmp> list(IntCmp{});
  EXPECT_TRUE(list.Insert(5));
  EXPECT_TRUE(list.Insert(1));
  EXPECT_TRUE(list.Insert(9));
  EXPECT_TRUE(list.Contains(5));
  EXPECT_TRUE(list.Contains(1));
  EXPECT_TRUE(list.Contains(9));
  EXPECT_FALSE(list.Contains(7));
  EXPECT_EQ(list.size(), 3u);
}

TEST(SkipListTest, DuplicateInsertRejected) {
  SkipList<int, IntCmp> list(IntCmp{});
  EXPECT_TRUE(list.Insert(5));
  EXPECT_FALSE(list.Insert(5));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, IterationIsSorted) {
  SkipList<int, IntCmp> list(IntCmp{});
  std::vector<int> values;
  uint64_t x = 7;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int v = static_cast<int>((x >> 33) % 100000);
    if (list.Insert(v)) {
      values.push_back(v);
    }
  }
  std::sort(values.begin(), values.end());
  SkipList<int, IntCmp>::Iterator it(&list);
  it.SeekToFirst();
  for (int expected : values) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), expected);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, SeekFindsFirstGreaterOrEqual) {
  SkipList<int, IntCmp> list(IntCmp{});
  for (int v : {10, 20, 30, 40}) {
    list.Insert(v);
  }
  SkipList<int, IntCmp>::Iterator it(&list);
  it.Seek(20);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20);
  it.Seek(25);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it.Seek(45);
  EXPECT_FALSE(it.Valid());
  it.Seek(-1);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 10);
}

TEST(SkipListTest, LargeScaleStress) {
  SkipList<int, IntCmp> list(IntCmp{});
  std::set<int> reference;
  uint64_t x = 99;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int v = static_cast<int>((x >> 33) % 1000000);
    EXPECT_EQ(list.Insert(v), reference.insert(v).second);
  }
  EXPECT_EQ(list.size(), reference.size());
  for (int probe = 0; probe < 1000; ++probe) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int v = static_cast<int>((x >> 33) % 1000000);
    EXPECT_EQ(list.Contains(v), reference.count(v) > 0);
  }
}

}  // namespace
}  // namespace libra::lsm
