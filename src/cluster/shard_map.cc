#include "src/cluster/shard_map.h"

#include <algorithm>
#include <cassert>

namespace libra::cluster {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over the key bytes, then mixed; byte-wise, so no platform
// endianness leaks into placement.
uint64_t HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return Mix64(h);
}

uint64_t OverrideKey(uint32_t tenant, int slot) {
  return (static_cast<uint64_t>(tenant) << 32) |
         static_cast<uint32_t>(slot);
}

}  // namespace

ShardMap::ShardMap(ShardMapOptions options) : options_(options) {
  assert(options_.num_nodes > 0);
  assert(options_.shards_per_tenant > 0);
  assert(options_.vnodes_per_node > 0);
  ring_.reserve(static_cast<size_t>(options_.num_nodes) *
                static_cast<size_t>(options_.vnodes_per_node));
  for (int n = 0; n < options_.num_nodes; ++n) {
    for (int v = 0; v < options_.vnodes_per_node; ++v) {
      const uint64_t point =
          Mix64(options_.seed ^ (static_cast<uint64_t>(n) * 0x9e3779b1ULL) ^
                (static_cast<uint64_t>(v) << 32));
      ring_.push_back(RingPoint{point, n});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::SlotOfKey(std::string_view key) const {
  return static_cast<int>(HashKey(key) %
                          static_cast<uint64_t>(options_.shards_per_tenant));
}

int ShardMap::RingLookup(uint64_t point) const {
  // First ring point at or after `point`, wrapping to the smallest.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const RingPoint& rp, uint64_t p) { return rp.point < p; });
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->node;
}

int ShardMap::HomeOf(uint32_t tenant, int slot) const {
  assert(slot >= 0 && slot < options_.shards_per_tenant);
  if (const auto it = overrides_.find(OverrideKey(tenant, slot));
      it != overrides_.end()) {
    return it->second;
  }
  const uint64_t point =
      Mix64(options_.seed ^ (static_cast<uint64_t>(tenant) * 0x85ebca6bULL) ^
            (static_cast<uint64_t>(slot) * 0xc2b2ae35ULL));
  return RingLookup(point);
}

int ShardMap::NodeOfKey(uint32_t tenant, std::string_view key) const {
  return HomeOf(tenant, SlotOfKey(key));
}

std::vector<int> ShardMap::Assignment(uint32_t tenant) const {
  std::vector<int> out(options_.shards_per_tenant);
  for (int s = 0; s < options_.shards_per_tenant; ++s) {
    out[s] = HomeOf(tenant, s);
  }
  return out;
}

std::vector<int> ShardMap::SlotsPerNode(uint32_t tenant) const {
  std::vector<int> out(options_.num_nodes, 0);
  for (int s = 0; s < options_.shards_per_tenant; ++s) {
    ++out[HomeOf(tenant, s)];
  }
  return out;
}

void ShardMap::Rehome(uint32_t tenant, int slot, int node) {
  assert(slot >= 0 && slot < options_.shards_per_tenant);
  assert(node >= 0 && node < options_.num_nodes);
  overrides_[OverrideKey(tenant, slot)] = node;
}

}  // namespace libra::cluster
