#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/cluster/global_provisioner.h"
#include "src/sim/sync.h"

namespace libra::cluster {

using iosched::AppRequest;
using iosched::Reservation;
using iosched::TenantId;

namespace {

// Poll cadence for shard gates (migration drain / routing suspension).
// Simulated time, so the only cost is a handful of extra events.
constexpr SimDuration kGatePoll = 200 * kMicrosecond;

Status ValidateGlobal(const GlobalReservation& r) {
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    const auto app = static_cast<AppRequest>(a);
    if (!(r.RateOf(app) >= 0.0)) {
      return Status::InvalidArgument(
          "global reservation rates must be finite and non-negative (" +
          std::string(iosched::AppRequestName(app)) +
          "=" + std::to_string(r.RateOf(app)) + ")");
    }
  }
  return Status::Ok();
}

}  // namespace

// --- TenantHandle ---

// The retry loop shared by Put/Delete/Get: bounded attempts with
// exponential backoff on kUnavailable, under an optional per-request
// deadline. Returning `true` means "retry"; `false` means give up — the
// caller surfaces either the last underlying error (budget exhausted) or
// kDeadlineExceeded via `deadline_hit` (so a request against a dead
// cluster fails deterministically instead of hanging). The sleep is
// clamped so the deadline is never overshot.
namespace {

struct RetryState {
  const RetryPolicy* policy;
  sim::EventLoop* loop;
  SimTime deadline = 0;  // absolute; 0 = unbounded
  SimDuration backoff = 0;
  int attempt = 0;
  bool deadline_hit = false;

  RetryState(const RetryPolicy& p, sim::EventLoop& l)
      : policy(&p),
        loop(&l),
        deadline(p.deadline > 0 ? l.Now() + p.deadline : 0),
        backoff(p.initial_backoff) {}

  bool Exhausted(const Status& s) {
    if (s.code() != StatusCode::kUnavailable) {
      return true;  // success or a non-retryable error
    }
    if (attempt >= policy->max_retries) {
      return true;  // budget exhausted: caller surfaces `s` itself
    }
    if (deadline != 0 && loop->Now() >= deadline) {
      deadline_hit = true;
      return true;
    }
    return false;
  }

  sim::Task<void> Backoff() {
    ++attempt;
    SimDuration sleep = backoff;
    if (deadline != 0) {
      const SimDuration remaining = deadline - loop->Now();
      sleep = std::min(sleep, remaining);
    }
    if (sleep > 0) {
      co_await sim::SleepFor(*loop, sleep);
    }
    backoff = static_cast<SimDuration>(static_cast<double>(backoff) *
                                       policy->backoff_multiplier);
  }

  Status DeadlineError(const Status& last) const {
    return Status::DeadlineExceeded(
        "deadline exceeded after " + std::to_string(attempt + 1) +
        " attempt(s); last error: " + last.message());
  }
};

}  // namespace

sim::Task<Status> TenantHandle::Put(const std::string& key,
                                    const std::string& value) {
  if (!valid()) {
    co_return Status::FailedPrecondition("invalid tenant handle");
  }
  RetryState retry(cluster_->options_.retry, cluster_->loop_);
  for (;;) {
    Status s = co_await cluster_->Put(tenant_, key, value);
    if (retry.Exhausted(s)) {
      co_return retry.deadline_hit ? retry.DeadlineError(s) : s;
    }
    co_await retry.Backoff();
  }
}

sim::Task<Status> TenantHandle::Delete(const std::string& key) {
  if (!valid()) {
    co_return Status::FailedPrecondition("invalid tenant handle");
  }
  RetryState retry(cluster_->options_.retry, cluster_->loop_);
  for (;;) {
    Status s = co_await cluster_->Delete(tenant_, key);
    if (retry.Exhausted(s)) {
      co_return retry.deadline_hit ? retry.DeadlineError(s) : s;
    }
    co_await retry.Backoff();
  }
}

sim::Task<Result<std::string>> TenantHandle::Get(const std::string& key) {
  if (!valid()) {
    co_return Result<std::string>(
        Status::FailedPrecondition("invalid tenant handle"));
  }
  RetryState retry(cluster_->options_.retry, cluster_->loop_);
  for (;;) {
    Result<std::string> r = co_await cluster_->Get(tenant_, key);
    if (retry.Exhausted(r.status())) {
      co_return retry.deadline_hit
          ? Result<std::string>(retry.DeadlineError(r.status()))
          : r;
    }
    co_await retry.Backoff();
  }
}

namespace {

// Arguments by value: the coroutine frame must own the key for its whole
// lifetime (the caller's loop variable dies before completion).
sim::Task<void> GetInto(TenantHandle handle, std::string key,
                        Result<std::string>* out) {
  *out = co_await handle.Get(key);
}

sim::Task<void> NodeGetInto(kv::StorageNode* node, TenantId tenant,
                            std::string key, TraceContext ctx,
                            Result<std::string>* out) {
  *out = co_await node->Get(tenant, key, ctx);
}

// Records the cluster-layer root span of one routed request (no-op when the
// home node's collector is off or the request sampled out).
void RecordClientSpan(obs::SpanCollector* spans, const TraceContext& ctx,
                      AppRequest app, TenantId tenant, SimTime start,
                      SimTime end, uint64_t bytes) {
  if (spans == nullptr || !ctx.valid()) {
    return;
  }
  obs::SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.kind = obs::SpanKind::kClientRequest;
  rec.app = static_cast<uint8_t>(app);
  rec.tenant = tenant;
  rec.start_ns = start;
  rec.end_ns = end;
  rec.bytes = bytes;
  spans->Record(rec);
}

}  // namespace

sim::Task<std::vector<Result<std::string>>> TenantHandle::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<Result<std::string>> out(keys.size());
  if (!valid()) {
    for (auto& r : out) {
      r = Result<std::string>(
          Status::FailedPrecondition("invalid tenant handle"));
    }
    co_return out;
  }
  if (cluster_->options_.batch_multiget) {
    // Group same-slot keys so each slot is routed (and migration-gated)
    // once; groups on different slots still proceed concurrently, as do
    // the lookups within a group once routed.
    std::map<int, std::vector<std::pair<size_t, std::string>>> by_slot;
    for (size_t i = 0; i < keys.size(); ++i) {
      by_slot[cluster_->shard_map_.SlotOfKey(keys[i])].emplace_back(i,
                                                                    keys[i]);
    }
    sim::TaskGroup batched(cluster_->loop_);
    for (auto& [slot, group_keys] : by_slot) {
      batched.Spawn(cluster_->MultiGetSlotGroup(tenant_, slot,
                                                std::move(group_keys), &out));
    }
    co_await batched.Join();
    co_return out;
  }
  // Fan out: every lookup is its own coroutine, so keys on different nodes
  // (and different shards of the same node) proceed concurrently; results
  // land in `keys` order regardless of completion order.
  sim::TaskGroup group(cluster_->loop_);
  for (size_t i = 0; i < keys.size(); ++i) {
    group.Spawn(GetInto(*this, keys[i], &out[i]));
  }
  co_await group.Join();
  co_return out;
}

sim::Task<Result<ScanEntries>> TenantHandle::Scan(const std::string& start,
                                                  const std::string& end,
                                                  size_t limit) {
  if (!valid()) {
    co_return Result<ScanEntries>(
        Status::FailedPrecondition("invalid tenant handle"));
  }
  RetryState retry(cluster_->options_.retry, cluster_->loop_);
  for (;;) {
    Result<ScanEntries> r =
        co_await cluster_->Scan(tenant_, start, end, limit);
    if (retry.Exhausted(r.status())) {
      co_return retry.deadline_hit
          ? Result<ScanEntries>(retry.DeadlineError(r.status()))
          : r;
    }
    co_await retry.Backoff();
  }
}

// --- Cluster ---

Cluster::Cluster(sim::EventLoop& loop, ClusterOptions options)
    : loop_(loop),
      options_(std::move(options)),
      shard_map_(ShardMapOptions{options_.num_nodes,
                                 options_.shards_per_tenant,
                                 options_.vnodes_per_node,
                                 options_.placement_seed,
                                 options_.replication_factor}) {
  assert(options_.rpc_latency == 0 &&
         "rpc_latency requires the MultiLoop constructor");
  Init(nullptr);
}

Cluster::Cluster(sim::MultiLoop& engine, ClusterOptions options)
    : loop_(engine.loop(0)),
      multi_(&engine),
      options_(std::move(options)),
      shard_map_(ShardMapOptions{options_.num_nodes,
                                 options_.shards_per_tenant,
                                 options_.vnodes_per_node,
                                 options_.placement_seed,
                                 options_.replication_factor}) {
  assert(engine.num_loops() == options_.num_nodes + 1 &&
         "parallel cluster needs one loop per node plus the coordinator");
  assert(options_.rpc_latency > 0 &&
         "parallel cluster needs a positive rpc_latency");
  assert(options_.rpc_latency >= engine.lookahead() &&
         "rpc_latency below the engine lookahead would break conservative "
         "synchronization");
  Init(&engine);
}

void Cluster::Init(sim::MultiLoop* engine) {
  assert(options_.num_nodes > 0);
  assert(options_.replication_factor >= 1);
  node_state_.assign(static_cast<size_t>(options_.num_nodes), NodeState{});
  repl_.assign(static_cast<size_t>(options_.num_nodes), ReplTelemetry{});
  nodes_.reserve(options_.num_nodes);
  for (int i = 0; i < options_.num_nodes; ++i) {
    sim::EventLoop& node_loop =
        engine != nullptr ? engine->loop(NodeLoopIndex(i)) : loop_;
    nodes_.push_back(
        std::make_unique<kv::StorageNode>(node_loop, options_.node_options));
    // Namespace each node's minted trace/span ids so a merged cluster
    // export never collides across nodes (and stays deterministic).
    if (obs::SpanCollector* spans = nodes_.back()->scheduler().spans();
        spans != nullptr) {
      spans->SeedIds(static_cast<uint64_t>(i) + 1);
    }
  }
  if (engine != nullptr &&
      options_.node_options.scheduler_options.span_capacity > 0) {
    client_spans_ = std::make_unique<obs::SpanCollector>(
        options_.node_options.scheduler_options.span_capacity,
        options_.node_options.scheduler_options.span_sample_every);
    client_spans_->SeedIds(static_cast<uint64_t>(options_.num_nodes) + 1);
  }
  provisioner_ = std::make_unique<GlobalProvisioner>(loop_, *this,
                                                     options_.provisioner);
}

Cluster::~Cluster() = default;

void Cluster::Start() {
  for (auto& n : nodes_) {
    n->Start();
  }
  provisioner_->Start();
}

void Cluster::Stop() {
  provisioner_->Stop();
  for (auto& n : nodes_) {
    n->Stop();
  }
}

// --- cross-node seam ---
//
// Serial mode: direct calls, byte-identical to the historical inlined
// paths. Parallel mode: request/response MultiLoop messages. The server
// coroutine runs detached on the node's loop; the response message runs on
// the coordinator loop and completes the caller's OneShot there, so the
// OneShot (like all routing state) is touched only by the coordinator.
// Per-channel FIFO at equal delays means control messages (tenant install,
// crash) are never overtaken by requests sent after them.

sim::Task<Status> Cluster::NodePut(int node, TenantId tenant, std::string key,
                                   std::string value, TraceContext ctx,
                                   SimDuration request_delay) {
  if (multi_ == nullptr) {
    co_return co_await nodes_[node]->Put(tenant, key, value, ctx);
  }
  sim::OneShot<Status> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), request_delay,
               [this, node, tenant, key = std::move(key),
                value = std::move(value), ctx, &done]() mutable {
                 sim::Detach(PutServer(node, tenant, std::move(key),
                                       std::move(value), ctx, &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::PutServer(int node, TenantId tenant, std::string key,
                                   std::string value, TraceContext ctx,
                                   sim::OneShot<Status>* done) {
  Status s = co_await nodes_[node]->Put(tenant, key, value, ctx);
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, s = std::move(s)]() mutable { done->Set(std::move(s)); });
}

sim::Task<Status> Cluster::NodeDelete(int node, TenantId tenant,
                                      std::string key, TraceContext ctx,
                                      SimDuration request_delay) {
  if (multi_ == nullptr) {
    co_return co_await nodes_[node]->Delete(tenant, key, ctx);
  }
  sim::OneShot<Status> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), request_delay,
               [this, node, tenant, key = std::move(key), ctx,
                &done]() mutable {
                 sim::Detach(DeleteServer(node, tenant, std::move(key), ctx,
                                          &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::DeleteServer(int node, TenantId tenant,
                                      std::string key, TraceContext ctx,
                                      sim::OneShot<Status>* done) {
  Status s = co_await nodes_[node]->Delete(tenant, key, ctx);
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, s = std::move(s)]() mutable { done->Set(std::move(s)); });
}

sim::Task<Result<std::string>> Cluster::NodeGet(int node, TenantId tenant,
                                                std::string key,
                                                TraceContext ctx,
                                                SimDuration request_delay) {
  if (multi_ == nullptr) {
    co_return co_await nodes_[node]->Get(tenant, key, ctx);
  }
  sim::OneShot<Result<std::string>> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), request_delay,
               [this, node, tenant, key = std::move(key), ctx,
                &done]() mutable {
                 sim::Detach(GetServer(node, tenant, std::move(key), ctx,
                                       &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::GetServer(int node, TenantId tenant, std::string key,
                                   TraceContext ctx,
                                   sim::OneShot<Result<std::string>>* done) {
  Result<std::string> r = co_await nodes_[node]->Get(tenant, key, ctx);
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, r = std::move(r)]() mutable { done->Set(std::move(r)); });
}

sim::Task<std::vector<Result<std::string>>> Cluster::NodeMultiGet(
    int node, TenantId tenant, std::vector<std::string> keys,
    TraceContext ctx) {
  sim::OneShot<std::vector<Result<std::string>>> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [this, node, tenant, keys = std::move(keys), ctx,
                &done]() mutable {
                 sim::Detach(MultiGetServer(node, tenant, std::move(keys), ctx,
                                            &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::MultiGetServer(
    int node, TenantId tenant, std::vector<std::string> keys, TraceContext ctx,
    sim::OneShot<std::vector<Result<std::string>>>* done) {
  std::vector<Result<std::string>> results(keys.size());
  sim::TaskGroup group(multi_->loop(NodeLoopIndex(node)));
  for (size_t i = 0; i < keys.size(); ++i) {
    group.Spawn(
        NodeGetInto(nodes_[node].get(), tenant, keys[i], ctx, &results[i]));
  }
  co_await group.Join();
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, results = std::move(results)]() mutable {
                 done->Set(std::move(results));
               });
}

sim::Task<lsm::LsmDb::ScanResult> Cluster::NodeScan(
    int node, TenantId tenant, std::string start, std::string end,
    size_t limit, TraceContext ctx, SimDuration request_delay) {
  if (multi_ == nullptr) {
    co_return co_await nodes_[node]->Scan(tenant, start, end, limit, ctx);
  }
  sim::OneShot<lsm::LsmDb::ScanResult> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), request_delay,
               [this, node, tenant, start = std::move(start),
                end = std::move(end), limit, ctx, &done]() mutable {
                 sim::Detach(ScanServer(node, tenant, std::move(start),
                                        std::move(end), limit, ctx, &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::ScanServer(
    int node, TenantId tenant, std::string start, std::string end,
    size_t limit, TraceContext ctx,
    sim::OneShot<lsm::LsmDb::ScanResult>* done) {
  lsm::LsmDb::ScanResult r =
      co_await nodes_[node]->Scan(tenant, start, end, limit, ctx);
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, r = std::move(r)]() mutable { done->Set(std::move(r)); });
}

sim::Task<Result<std::vector<std::pair<std::string, std::string>>>>
Cluster::NodeScanSlots(int node, TenantId tenant, std::vector<int> slots,
                       iosched::IoTag tag, const char* missing_msg) {
  using Entries = std::vector<std::pair<std::string, std::string>>;
  if (multi_ == nullptr) {
    lsm::LsmDb* db = nodes_[node]->partition(tenant);
    if (db == nullptr) {
      co_return Result<Entries>(Status::Internal(missing_msg));
    }
    Entries entries;
    Status scan = co_await db->ScanLive(
        tag, [&](std::string_view k, std::string_view v) {
          const int slot = shard_map_.SlotOfKey(k);
          if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
            entries.emplace_back(std::string(k), std::string(v));
          }
        });
    if (!scan.ok()) {
      co_return Result<Entries>(std::move(scan));
    }
    co_return Result<Entries>(std::move(entries));
  }
  sim::OneShot<Result<Entries>> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [this, node, tenant, slots = std::move(slots), tag, missing_msg,
                &done]() mutable {
                 sim::Detach(ScanSlotsServer(node, tenant, std::move(slots),
                                             tag, missing_msg, &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::ScanSlotsServer(
    int node, TenantId tenant, std::vector<int> slots, iosched::IoTag tag,
    const char* missing_msg,
    sim::OneShot<Result<std::vector<std::pair<std::string, std::string>>>>*
        done) {
  using Entries = std::vector<std::pair<std::string, std::string>>;
  Result<Entries> result;
  lsm::LsmDb* db = nodes_[node]->partition(tenant);
  if (db == nullptr) {
    result = Result<Entries>(Status::Internal(missing_msg));
  } else {
    Entries entries;
    // ShardMap::SlotOfKey is a pure hash of the key (no placement state),
    // so calling it from the node's thread is safe.
    Status scan = co_await db->ScanLive(
        tag, [&](std::string_view k, std::string_view v) {
          const int slot = shard_map_.SlotOfKey(k);
          if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
            entries.emplace_back(std::string(k), std::string(v));
          }
        });
    result = scan.ok() ? Result<Entries>(std::move(entries))
                       : Result<Entries>(std::move(scan));
  }
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, result = std::move(result)]() mutable {
                 done->Set(std::move(result));
               });
}

sim::Task<Cluster::ApplyResult> Cluster::NodeApplyOps(
    int node, TenantId tenant,
    std::vector<std::pair<std::string, std::string>> puts,
    std::vector<std::string> deletes, TraceContext ctx, iosched::InternalOp op,
    const char* missing_msg) {
  if (multi_ == nullptr) {
    ApplyResult result;
    lsm::LsmDb* db = nodes_[node]->partition(tenant);
    if (db == nullptr) {
      result.status = Status::Internal(missing_msg);
      co_return result;
    }
    for (const auto& [k, v] : puts) {
      if (Status s = co_await db->Put(k, v, ctx, op); !s.ok()) {
        result.status = std::move(s);
        co_return result;
      }
      ++result.puts_applied;
      result.put_key_bytes += k.size();
      result.put_value_bytes += v.size();
    }
    for (const std::string& k : deletes) {
      if (Status s = co_await db->Delete(k, ctx, op); !s.ok()) {
        result.status = std::move(s);
        co_return result;
      }
      ++result.deletes_applied;
    }
    co_return result;
  }
  sim::OneShot<ApplyResult> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [this, node, tenant, puts = std::move(puts),
                deletes = std::move(deletes), ctx, op, missing_msg,
                &done]() mutable {
                 sim::Detach(ApplyOpsServer(node, tenant, std::move(puts),
                                            std::move(deletes), ctx, op,
                                            missing_msg, &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::ApplyOpsServer(
    int node, TenantId tenant,
    std::vector<std::pair<std::string, std::string>> puts,
    std::vector<std::string> deletes, TraceContext ctx, iosched::InternalOp op,
    const char* missing_msg, sim::OneShot<ApplyResult>* done) {
  ApplyResult result;
  lsm::LsmDb* db = nodes_[node]->partition(tenant);
  if (db == nullptr) {
    result.status = Status::Internal(missing_msg);
  } else {
    for (const auto& [k, v] : puts) {
      if (Status s = co_await db->Put(k, v, ctx, op); !s.ok()) {
        result.status = std::move(s);
        break;
      }
      ++result.puts_applied;
      result.put_key_bytes += k.size();
      result.put_value_bytes += v.size();
    }
    if (result.status.ok()) {
      for (const std::string& k : deletes) {
        if (Status s = co_await db->Delete(k, ctx, op); !s.ok()) {
          result.status = std::move(s);
          break;
        }
        ++result.deletes_applied;
      }
    }
  }
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, result = std::move(result)]() mutable {
                 done->Set(std::move(result));
               });
}

lsm::CompactionPolicy Cluster::CompactionOf(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? lsm::CompactionPolicy::kLeveled
                              : it->second.compaction;
}

obs::DeclaredAttribution Cluster::DeclaredOf(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? obs::DeclaredAttribution{}
                              : it->second.declared;
}

Status Cluster::NodeEnsureTenant(int node, TenantId tenant) {
  const lsm::CompactionPolicy compaction = CompactionOf(tenant);
  const obs::DeclaredAttribution declared = DeclaredOf(tenant);
  if (multi_ == nullptr) {
    if (!nodes_[node]->HasTenant(tenant)) {
      return nodes_[node]->AddTenant(tenant, Reservation{}, declared,
                                     compaction);
    }
    return Status::Ok();
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [n, tenant, compaction, declared] {
                 if (!n->HasTenant(tenant)) {
                   (void)n->AddTenant(tenant, Reservation{}, declared,
                                      compaction);
                 }
               });
  return Status::Ok();
}

Status Cluster::NodeInstallReservation(int node, TenantId tenant,
                                       Reservation share) {
  const lsm::CompactionPolicy compaction = CompactionOf(tenant);
  const obs::DeclaredAttribution declared = DeclaredOf(tenant);
  if (multi_ == nullptr) {
    return nodes_[node]->HasTenant(tenant)
               ? nodes_[node]->UpdateReservation(tenant, share)
               : nodes_[node]->AddTenant(tenant, share, declared, compaction);
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [n, tenant, share, compaction, declared] {
    if (n->HasTenant(tenant)) {
      (void)n->UpdateReservation(tenant, share);
    } else {
      (void)n->AddTenant(tenant, share, declared, compaction);
    }
  });
  return Status::Ok();
}

Status Cluster::NodeZeroReservation(int node, TenantId tenant) {
  if (multi_ == nullptr) {
    if (nodes_[node]->HasTenant(tenant)) {
      return nodes_[node]->UpdateReservation(tenant, Reservation{});
    }
    return Status::Ok();
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency, [n, tenant] {
    if (n->HasTenant(tenant)) {
      (void)n->UpdateReservation(tenant, Reservation{});
    }
  });
  return Status::Ok();
}

void Cluster::NodeRecordReplTrigger(int node, TenantId tenant) {
  if (multi_ == nullptr) {
    nodes_[node]->tracker().RecordTrigger(tenant, AppRequest::kPut,
                                          iosched::InternalOp::kReplicate);
    return;
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency, [n, tenant] {
    n->tracker().RecordTrigger(tenant, AppRequest::kPut,
                               iosched::InternalOp::kReplicate);
  });
}

void Cluster::NodeRecordReplDone(int node, TenantId tenant) {
  if (multi_ == nullptr) {
    nodes_[node]->tracker().RecordInternalOpDone(
        tenant, iosched::InternalOp::kReplicate);
    return;
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency, [n, tenant] {
    n->tracker().RecordInternalOpDone(tenant,
                                      iosched::InternalOp::kReplicate);
  });
}

void Cluster::NodeCrash(int node) {
  if (multi_ == nullptr) {
    nodes_[node]->Crash();
    return;
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [n] { n->Crash(); });
}

sim::Task<Status> Cluster::NodeRestart(int node) {
  if (multi_ == nullptr) {
    co_return co_await nodes_[node]->Restart();
  }
  sim::OneShot<Status> done(loop_);
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [this, node, &done] {
                 sim::Detach(RestartServer(node, &done));
               });
  co_return co_await done.Wait();
}

sim::Task<void> Cluster::RestartServer(int node, sim::OneShot<Status>* done) {
  Status s = co_await nodes_[node]->Restart();
  multi_->Send(NodeLoopIndex(node), 0, options_.rpc_latency,
               [done, s = std::move(s)]() mutable { done->Set(std::move(s)); });
}

void Cluster::InjectGcStall(int node, SimDuration stall) {
  if (multi_ == nullptr) {
    nodes_[node]->device().InjectGcStall(stall);
    return;
  }
  kv::StorageNode* n = nodes_[node].get();
  multi_->Send(0, NodeLoopIndex(node), options_.rpc_latency,
               [n, stall] { n->device().InjectGcStall(stall); });
}

double Cluster::AdmissionPrice(AppRequest app) const {
  // Direct cost of one normalized (1KB) request under the shared cost
  // model; headroom stands in for amplification unobservable at admission.
  const auto& model = nodes_[0]->scheduler().cost_model();
  ssd::IoType type = ssd::IoType::kRead;
  switch (app) {
    case AppRequest::kNone:  // unpriced class; priced as a read if asked
    case AppRequest::kGet:
    case AppRequest::kScan:  // scans are read IO per normalized request
      type = ssd::IoType::kRead;
      break;
    case AppRequest::kPut:
      type = ssd::IoType::kWrite;
      break;
  }
  return model.Cost(type, 1024) * options_.admission_headroom;
}

double Cluster::PricedVops(const Reservation& r) const {
  double total = 0.0;
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    const auto app = static_cast<AppRequest>(a);
    total += r.RateOf(app) * AdmissionPrice(app);
  }
  return total;
}

std::map<int, Reservation> Cluster::EvenSplit(
    TenantId tenant, const GlobalReservation& global) const {
  // Split over *alive* hosting nodes, weighted by hosted slot replicas.
  // A crashed node earns no share — its mass moves to the survivors — and
  // the denominator is the alive slot-replica count so the shares still
  // sum to 1 (at RF=1 with every node up this is shards_per_tenant, the
  // pre-replication behavior).
  const std::vector<int> slots = shard_map_.SlotsPerNode(tenant);
  std::map<int, Reservation> split;
  double total = 0.0;
  int last_node = -1;
  for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
    if (slots[n] > 0 && node_state_[n].alive) {
      last_node = n;
      total += static_cast<double>(slots[n]);
    }
  }
  if (last_node < 0) {
    return split;  // every hosting node is down
  }
  double used[iosched::kNumAppRequests] = {};
  for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
    if (slots[n] == 0 || !node_state_[n].alive) {
      continue;
    }
    Reservation r;
    if (n == last_node) {
      // Exact-sum invariant: the last hosting node takes the remainder.
      for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
           ++a) {
        r.rps[a] = global.rps[a] - used[a];
      }
    } else {
      const double share = static_cast<double>(slots[n]) / total;
      for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
           ++a) {
        r.rps[a] = global.rps[a] * share;
        used[a] += r.rps[a];
      }
    }
    split[n] = r;
  }
  return split;
}

Status Cluster::CheckAdmission(
    TenantId tenant, const std::map<int, Reservation>& split) const {
  if (!options_.admission_enabled) {
    return Status::Ok();
  }
  for (const auto& [n, share] : split) {
    double provisioned = 0.0;
    for (const auto& [other, state] : tenants_) {
      if (other == tenant) {
        continue;
      }
      if (const auto it = state.split.find(n); it != state.split.end()) {
        provisioned += PricedVops(it->second);
      }
    }
    const double incoming = PricedVops(share);
    const double budget =
        options_.admission_utilization * nodes_[n]->capacity().provisionable();
    if (provisioned + incoming > budget) {
      return Status::ResourceExhausted(
          "admission rejected: node " + std::to_string(n) + " would carry " +
          std::to_string(provisioned + incoming) + " VOP/s (" +
          std::to_string(provisioned) + " provisioned + " +
          std::to_string(incoming) + " for tenant " + std::to_string(tenant) +
          "), over " + std::to_string(budget) + " = " +
          std::to_string(options_.admission_utilization) +
          " * capacity floor " +
          std::to_string(nodes_[n]->capacity().provisionable()));
    }
  }
  return Status::Ok();
}

Status Cluster::ApplySplit(TenantId tenant,
                           const std::map<int, Reservation>& split) {
  TenantState& state = tenants_[tenant];
  // Nodes that dropped out of the split (all slots migrated away) fall back
  // to a zero local reservation: the partition still exists and may hold
  // tombstones, but earns no provisioned VOPs.
  for (const auto& [n, old_share] : state.split) {
    if (!node_state_[n].alive) {
      continue;  // dead node: its policy is stopped; resplit covers it later
    }
    if (split.count(n) == 0) {
      if (Status s = NodeZeroReservation(n, tenant); !s.ok()) {
        return s;
      }
    }
  }
  for (const auto& [n, share] : split) {
    if (Status s = NodeInstallReservation(n, tenant, share); !s.ok()) {
      return s;
    }
  }
  state.split = split;
  return Status::Ok();
}

Result<TenantHandle> Cluster::AddTenant(TenantId tenant,
                                        GlobalReservation reservation,
                                        lsm::CompactionPolicy compaction,
                                        obs::DeclaredAttribution declared) {
  if (tenants_.count(tenant) > 0) {
    return Result<TenantHandle>(Status::AlreadyExists(
        "tenant " + std::to_string(tenant) + " already admitted"));
  }
  if (Status s = ValidateGlobal(reservation); !s.ok()) {
    return Result<TenantHandle>(std::move(s));
  }
  const std::map<int, Reservation> split = EvenSplit(tenant, reservation);
  if (Status s = CheckAdmission(tenant, split); !s.ok()) {
    return Result<TenantHandle>(std::move(s));
  }
  TenantState& state = tenants_[tenant];
  state.global = reservation;
  state.compaction = compaction;
  state.declared = declared;
  if (Status s = ApplySplit(tenant, split); !s.ok()) {
    tenants_.erase(tenant);
    return Result<TenantHandle>(std::move(s));
  }
  return Result<TenantHandle>(TenantHandle(this, tenant));
}

Status Cluster::UpdateGlobalReservation(TenantId tenant,
                                        GlobalReservation reservation) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  if (Status s = ValidateGlobal(reservation); !s.ok()) {
    return s;
  }
  // Re-split evenly now; the provisioner re-weights by demand next interval.
  const std::map<int, Reservation> split = EvenSplit(tenant, reservation);
  if (Status s = CheckAdmission(tenant, split); !s.ok()) {
    return s;
  }
  it->second.global = reservation;
  return ApplySplit(tenant, split);
}

Result<TenantHandle> Cluster::Handle(TenantId tenant) {
  if (tenants_.count(tenant) == 0) {
    return Result<TenantHandle>(
        Status::NotFound("unknown tenant " + std::to_string(tenant)));
  }
  return Result<TenantHandle>(TenantHandle(this, tenant));
}

GlobalReservation Cluster::global_reservation(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? GlobalReservation{} : it->second.global;
}

std::vector<TenantId> Cluster::tenants() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [t, state] : tenants_) {
    out.push_back(t);
  }
  return out;
}

double Cluster::GlobalNormalizedTotal(TenantId tenant, AppRequest app) const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    total += n->tracker().NormalizedRequestsTotal(tenant, app);
  }
  return total;
}

// --- request routing ---

sim::Task<int> Cluster::AwaitRoutable(TenantId tenant, int slot) {
  ShardState& ss = Shard(tenant, slot);
  while (ss.migrating) {
    co_await sim::SleepFor(loop_, kGatePoll);
  }
  // Resolve the home only after the gate: a migration that completed while
  // we slept re-homed the slot.
  co_return shard_map_.HomeOf(tenant, slot);
}

// Fault semantics at the replica seam: in serial mode an injected delay is
// slept before the (instantaneous) call, exactly as before; in parallel
// mode it replaces the request-leg latency — which is why FaultInjector
// enforces delay >= lookahead. A drop never reaches the node in either
// mode.
sim::Task<void> Cluster::PutReplica(int node, TenantId tenant, std::string key,
                                    std::string value, TraceContext ctx,
                                    Status* out) {
  SimDuration request_delay = options_.rpc_latency;
  if (rpc_faults_ != nullptr) {
    const RpcFault f = rpc_faults_->OnRpc(tenant, node);
    if (f.delay > 0) {
      if (multi_ == nullptr) {
        co_await sim::SleepFor(loop_, f.delay);
      } else {
        request_delay = f.delay;
      }
    }
    if (f.drop) {
      *out = Status::Unavailable("rpc to node " + std::to_string(node) +
                                 " dropped (injected)");
      co_return;
    }
  }
  if (!node_state_[node].alive) {
    *out = Status::Unavailable("node " + std::to_string(node) + " down");
    co_return;
  }
  *out = co_await NodePut(node, tenant, std::move(key), std::move(value), ctx,
                          request_delay);
}

sim::Task<void> Cluster::DeleteReplica(int node, TenantId tenant,
                                       std::string key, TraceContext ctx,
                                       Status* out) {
  SimDuration request_delay = options_.rpc_latency;
  if (rpc_faults_ != nullptr) {
    const RpcFault f = rpc_faults_->OnRpc(tenant, node);
    if (f.delay > 0) {
      if (multi_ == nullptr) {
        co_await sim::SleepFor(loop_, f.delay);
      } else {
        request_delay = f.delay;
      }
    }
    if (f.drop) {
      *out = Status::Unavailable("rpc to node " + std::to_string(node) +
                                 " dropped (injected)");
      co_return;
    }
  }
  if (!node_state_[node].alive) {
    *out = Status::Unavailable("node " + std::to_string(node) + " down");
    co_return;
  }
  *out = co_await NodeDelete(node, tenant, std::move(key), ctx, request_delay);
}

namespace {

// Write fan-out verdict: the write is acked iff at least one replica
// persisted it and every failure was mere unavailability (a replica dying
// mid-write must not fail a write the survivors durably hold). Any hard
// error — or zero acks — surfaces, preferring the most specific status.
Status AggregateWrite(const std::vector<Status>& statuses) {
  int acks = 0;
  Status failure = Status::Ok();
  for (const Status& s : statuses) {
    if (s.ok()) {
      ++acks;
      continue;
    }
    if (failure.ok() || (failure.code() == StatusCode::kUnavailable &&
                         s.code() != StatusCode::kUnavailable)) {
      failure = s;
    }
  }
  if (failure.ok() || (acks > 0 &&
                       failure.code() == StatusCode::kUnavailable)) {
    return acks > 0 ? Status::Ok() : Status::Unavailable("no live replica");
  }
  return failure;
}

}  // namespace

sim::Task<Status> Cluster::Put(TenantId tenant, std::string key,
                               std::string value) {
  if (tenants_.count(tenant) == 0) {
    co_return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  const int slot = shard_map_.SlotOfKey(key);
  (void)co_await AwaitRoutable(tenant, slot);
  const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
  ShardState& ss = Shard(tenant, slot);
  ++ss.inflight;
  // Targets: every live replica. Syncing nodes are included — they must
  // see new writes during catch-up or they would fall behind forever.
  std::vector<int> targets;
  for (const int r : replicas) {
    if (node_state_[r].alive) {
      targets.push_back(r);
    }
  }
  Status result = Status::Unavailable("no live replica for slot " +
                                      std::to_string(slot));
  if (!targets.empty()) {
    // Parallel mode mints and records the client-request span in the
    // coordinator's own collector; node collectors are never touched from
    // this thread.
    obs::SpanCollector* spans = multi_ != nullptr
                                    ? client_spans_.get()
                                    : nodes_[targets[0]]->scheduler().spans();
    const TraceContext ctx =
        spans != nullptr ? spans->MintTrace() : TraceContext{};
    const SimTime start = loop_.Now();
    if (targets.size() == 1) {
      co_await PutReplica(targets[0], tenant, key, value, ctx, &result);
    } else {
      std::vector<Status> statuses(targets.size());
      sim::TaskGroup group(loop_);
      for (size_t i = 0; i < targets.size(); ++i) {
        group.Spawn(PutReplica(targets[i], tenant, key, value, ctx,
                               &statuses[i]));
      }
      co_await group.Join();
      result = AggregateWrite(statuses);
      for (size_t i = 1; i < targets.size(); ++i) {
        if (statuses[i].ok()) {
          ++repl_[targets[i]].fanout_puts;
          repl_[targets[i]].fanout_bytes += value.size();
        }
      }
    }
    RecordClientSpan(spans, ctx, AppRequest::kPut, tenant, start, loop_.Now(),
                     value.size());
  }
  --ss.inflight;
  co_return result;
}

sim::Task<Status> Cluster::Delete(TenantId tenant, std::string key) {
  if (tenants_.count(tenant) == 0) {
    co_return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  const int slot = shard_map_.SlotOfKey(key);
  (void)co_await AwaitRoutable(tenant, slot);
  const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
  ShardState& ss = Shard(tenant, slot);
  ++ss.inflight;
  std::vector<int> targets;
  for (const int r : replicas) {
    if (node_state_[r].alive) {
      targets.push_back(r);
    }
  }
  Status result = Status::Unavailable("no live replica for slot " +
                                      std::to_string(slot));
  if (!targets.empty()) {
    obs::SpanCollector* spans = multi_ != nullptr
                                    ? client_spans_.get()
                                    : nodes_[targets[0]]->scheduler().spans();
    const TraceContext ctx =
        spans != nullptr ? spans->MintTrace() : TraceContext{};
    const SimTime start = loop_.Now();
    if (targets.size() == 1) {
      co_await DeleteReplica(targets[0], tenant, key, ctx, &result);
    } else {
      std::vector<Status> statuses(targets.size());
      sim::TaskGroup group(loop_);
      for (size_t i = 0; i < targets.size(); ++i) {
        group.Spawn(DeleteReplica(targets[i], tenant, key, ctx, &statuses[i]));
      }
      co_await group.Join();
      result = AggregateWrite(statuses);
      for (size_t i = 1; i < targets.size(); ++i) {
        if (statuses[i].ok()) {
          ++repl_[targets[i]].fanout_puts;
          repl_[targets[i]].fanout_bytes += key.size();
        }
      }
    }
    RecordClientSpan(spans, ctx, AppRequest::kPut, tenant, start, loop_.Now(),
                     key.size());
  }
  --ss.inflight;
  co_return result;
}

sim::Task<Result<std::string>> Cluster::Get(TenantId tenant, std::string key) {
  if (tenants_.count(tenant) == 0) {
    co_return Result<std::string>(
        Status::NotFound("unknown tenant " + std::to_string(tenant)));
  }
  const int slot = shard_map_.SlotOfKey(key);
  (void)co_await AwaitRoutable(tenant, slot);
  const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
  ShardState& ss = Shard(tenant, slot);
  ++ss.inflight;
  // Candidate order: live synced replicas in replica-set order (leader
  // first), then live syncing ones — a catching-up replica may be missing
  // flushed data, so it serves only when nothing better is up.
  std::vector<int> order;
  for (const int r : replicas) {
    if (node_state_[r].alive && !node_state_[r].syncing) {
      order.push_back(r);
    }
  }
  for (const int r : replicas) {
    if (node_state_[r].alive && node_state_[r].syncing) {
      order.push_back(r);
    }
  }
  Result<std::string> result(Status::Unavailable(
      "no live replica for slot " + std::to_string(slot)));
  for (const int node : order) {
    SimDuration request_delay = options_.rpc_latency;
    if (rpc_faults_ != nullptr) {
      const RpcFault f = rpc_faults_->OnRpc(tenant, node);
      if (f.delay > 0) {
        if (multi_ == nullptr) {
          co_await sim::SleepFor(loop_, f.delay);
        } else {
          request_delay = f.delay;
        }
      }
      if (f.drop) {
        result = Result<std::string>(Status::Unavailable(
            "rpc to node " + std::to_string(node) + " dropped (injected)"));
        continue;  // fail over to the next replica
      }
    }
    obs::SpanCollector* spans = multi_ != nullptr
                                    ? client_spans_.get()
                                    : nodes_[node]->scheduler().spans();
    const TraceContext ctx =
        spans != nullptr ? spans->MintTrace() : TraceContext{};
    const SimTime start = loop_.Now();
    result = co_await NodeGet(node, tenant, key, ctx, request_delay);
    RecordClientSpan(spans, ctx, AppRequest::kGet, tenant, start, loop_.Now(),
                     result.ok() ? result.value().size() : 0);
    if (result.status().code() != StatusCode::kUnavailable) {
      if (node != replicas[0]) {
        ++repl_[node].failover_gets;
      }
      break;
    }
  }
  --ss.inflight;
  co_return result;
}

sim::Task<void> Cluster::MultiGetSlotGroup(
    TenantId tenant, int slot, std::vector<std::pair<size_t, std::string>> keys,
    std::vector<Result<std::string>>* out) {
  if (tenants_.count(tenant) == 0) {
    for (const auto& [i, key] : keys) {
      (*out)[i] = Result<std::string>(
          Status::NotFound("unknown tenant " + std::to_string(tenant)));
    }
    co_return;
  }
  ++multiget_groups_;
  multiget_grouped_keys_ += keys.size();
  // One migration gate for the whole group; the same inflight accounting
  // as per-key Get so a draining migration still waits for every member.
  (void)co_await AwaitRoutable(tenant, slot);
  // Serve from the first live synced replica (the leader when it is up);
  // a whole group fails together when every replica is down — the per-key
  // retry path (TenantHandle) is the recourse.
  const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
  int node = -1;
  for (const int r : replicas) {
    if (node_state_[r].alive && !node_state_[r].syncing) {
      node = r;
      break;
    }
  }
  if (node < 0) {
    for (const int r : replicas) {
      if (node_state_[r].alive) {
        node = r;
        break;
      }
    }
  }
  if (node < 0) {
    for (const auto& [i, key] : keys) {
      (*out)[i] = Result<std::string>(Status::Unavailable(
          "no live replica for slot " + std::to_string(slot)));
    }
    co_return;
  }
  if (node != replicas[0]) {
    repl_[node].failover_gets += keys.size();
  }
  ShardState& ss = Shard(tenant, slot);
  ss.inflight += static_cast<int>(keys.size());
  // One client-request span covers the whole slot group; each member
  // lookup becomes a child span at the node.
  obs::SpanCollector* spans = multi_ != nullptr
                                  ? client_spans_.get()
                                  : nodes_[node]->scheduler().spans();
  const TraceContext ctx =
      spans != nullptr ? spans->MintTrace() : TraceContext{};
  const SimTime start = loop_.Now();
  if (multi_ == nullptr) {
    sim::TaskGroup group(loop_);
    for (const auto& [i, key] : keys) {
      group.Spawn(
          NodeGetInto(nodes_[node].get(), tenant, key, ctx, &(*out)[i]));
    }
    co_await group.Join();
  } else {
    // One message carries the whole group; the node fans out on its own
    // loop and replies with results in key order.
    std::vector<std::string> group_keys;
    group_keys.reserve(keys.size());
    for (const auto& [i, key] : keys) {
      group_keys.push_back(key);
    }
    std::vector<Result<std::string>> results =
        co_await NodeMultiGet(node, tenant, std::move(group_keys), ctx);
    for (size_t i = 0; i < keys.size(); ++i) {
      (*out)[keys[i].first] = std::move(results[i]);
    }
  }
  RecordClientSpan(spans, ctx, AppRequest::kGet, tenant, start, loop_.Now(),
                   keys.size());
  ss.inflight -= static_cast<int>(keys.size());
}

// --- range scans ---

sim::Task<void> Cluster::ScanNodeGroup(TenantId tenant, int node,
                                       std::vector<int> slots,
                                       std::string start, std::string end,
                                       size_t limit,
                                       lsm::LsmDb::ScanResult* out) {
  SimDuration request_delay = options_.rpc_latency;
  if (rpc_faults_ != nullptr) {
    const RpcFault f = rpc_faults_->OnRpc(tenant, node);
    if (f.delay > 0) {
      if (multi_ == nullptr) {
        co_await sim::SleepFor(loop_, f.delay);
      } else {
        request_delay = f.delay;
      }
    }
    if (f.drop) {
      out->status = Status::Unavailable("rpc to node " +
                                        std::to_string(node) +
                                        " dropped (injected)");
      co_return;
    }
  }
  if (!node_state_[node].alive) {
    out->status =
        Status::Unavailable("node " + std::to_string(node) + " down");
    co_return;
  }
  obs::SpanCollector* spans = multi_ != nullptr
                                  ? client_spans_.get()
                                  : nodes_[node]->scheduler().spans();
  const TraceContext ctx =
      spans != nullptr ? spans->MintTrace() : TraceContext{};
  const SimTime start_time = loop_.Now();
  // RF>1: the node's partition interleaves follower copies of slots served
  // elsewhere, so a pushed-down limit could truncate before this group's
  // own keys surface; scan unbounded and let the coordinator truncate.
  const size_t node_limit = shard_map_.replication_factor() > 1 ? 0 : limit;
  *out = co_await NodeScan(node, tenant, std::move(start), std::move(end),
                           node_limit, ctx, request_delay);
  uint64_t bytes = 0;
  if (out->status.ok()) {
    // Keep only the slots this node serves for the scan (SlotOfKey is a
    // pure key hash); copies of other slots' keys are surfaced by their
    // own serving nodes.
    ScanEntries kept;
    kept.reserve(out->entries.size());
    for (auto& [k, v] : out->entries) {
      const int slot = shard_map_.SlotOfKey(k);
      if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
        bytes += v.size();
        kept.emplace_back(std::move(k), std::move(v));
      }
    }
    out->entries = std::move(kept);
  }
  RecordClientSpan(spans, ctx, AppRequest::kScan, tenant, start_time,
                   loop_.Now(), bytes);
}

sim::Task<Result<ScanEntries>> Cluster::Scan(TenantId tenant,
                                             std::string start,
                                             std::string end, size_t limit) {
  if (tenants_.count(tenant) == 0) {
    co_return Result<ScanEntries>(
        Status::NotFound("unknown tenant " + std::to_string(tenant)));
  }
  if (!end.empty() && end <= start) {
    co_return Result<ScanEntries>(ScanEntries{});  // empty range
  }
  // Resolve every slot's serving node in ring order: gate on migrations,
  // then prefer the first live synced replica (the leader when it is up),
  // falling back to any live one. A slot with no live replica fails the
  // whole scan — a range scan must not silently skip part of the keyspace.
  std::map<int, std::vector<int>> by_node;
  for (int slot = 0; slot < shard_map_.shards_per_tenant(); ++slot) {
    (void)co_await AwaitRoutable(tenant, slot);
    const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
    int node = -1;
    for (const int r : replicas) {
      if (node_state_[r].alive && !node_state_[r].syncing) {
        node = r;
        break;
      }
    }
    if (node < 0) {
      for (const int r : replicas) {
        if (node_state_[r].alive) {
          node = r;
          break;
        }
      }
    }
    if (node < 0) {
      co_return Result<ScanEntries>(Status::Unavailable(
          "no live replica for slot " + std::to_string(slot)));
    }
    by_node[node].push_back(slot);
  }
  // The scan holds every slot inflight for its whole duration, so a
  // migration drain waits for it like any other request.
  for (const auto& [node, slots] : by_node) {
    for (const int slot : slots) {
      ++Shard(tenant, slot).inflight;
    }
  }
  std::vector<lsm::LsmDb::ScanResult> per_node(by_node.size());
  {
    sim::TaskGroup group(loop_);
    size_t i = 0;
    for (const auto& [node, slots] : by_node) {
      group.Spawn(
          ScanNodeGroup(tenant, node, slots, start, end, limit,
                        &per_node[i]));
      ++i;
    }
    co_await group.Join();
  }
  for (const auto& [node, slots] : by_node) {
    for (const int slot : slots) {
      --Shard(tenant, slot).inflight;
    }
  }
  // Merge: slots partition the keyspace, so the per-node runs are disjoint
  // — concatenate, restore key order, apply the global limit.
  ScanEntries merged;
  for (auto& r : per_node) {
    if (!r.status.ok()) {
      co_return Result<ScanEntries>(std::move(r.status));
    }
    merged.insert(merged.end(), std::make_move_iterator(r.entries.begin()),
                  std::make_move_iterator(r.entries.end()));
  }
  std::sort(merged.begin(), merged.end());
  if (limit != 0 && merged.size() > limit) {
    merged.resize(limit);
  }
  co_return Result<ScanEntries>(std::move(merged));
}

// --- shard migration ---

sim::Task<Status> Cluster::MigrateShard(TenantId tenant, int slot,
                                        int to_node) {
  if (tenants_.count(tenant) == 0) {
    co_return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  if (slot < 0 || slot >= shard_map_.shards_per_tenant()) {
    co_return Status::InvalidArgument("slot out of range");
  }
  if (to_node < 0 || to_node >= num_nodes()) {
    co_return Status::InvalidArgument("node out of range");
  }
  const int from = shard_map_.HomeOf(tenant, slot);
  if (from == to_node) {
    co_return Status::Ok();
  }
  if (!node_state_[to_node].alive) {
    co_return Status::FailedPrecondition("target node down");
  }
  if (!node_state_[from].alive) {
    co_return Status::FailedPrecondition("source node down");
  }
  ShardState& ss = Shard(tenant, slot);
  if (ss.migrating) {
    co_return Status::FailedPrecondition("shard already migrating");
  }
  ss.migrating = true;  // gate: new requests to this shard now suspend
  ++active_migrations_;
  // Coroutine-frame destructor order releases the gate on every co_return
  // path, success or error.
  struct GateRelease {
    ShardState* ss;
    int* active;
    ~GateRelease() {
      ss->migrating = false;
      --*active;
    }
  } release{&ss, &active_migrations_};

  // Drain: let in-flight requests on the shard finish.
  while (ss.inflight > 0) {
    co_await sim::SleepFor(loop_, kGatePoll);
  }

  // Best-effort registration; the provisioner assigns it a real share of
  // the global reservation at its next split. (Node-side membership checks
  // happen on the node's own loop in parallel mode.)
  if (Status s = NodeEnsureTenant(to_node, tenant); !s.ok()) {
    co_return s;
  }

  // Copy every live key of the migrating slot. The drain read and the
  // re-home writes are charged to the tenant as unattributed IO (no app
  // request class), so its GET/PUT profiles are not distorted. Each side
  // gets a kMigration span — in its own node's collector (serial), or in
  // the coordinator's client collector (parallel): the source span covers
  // the scan + tombstoning, the destination span (linked to the source)
  // covers the copy-in, and all device IO parents under them.
  obs::SpanCollector* src_spans = multi_ != nullptr
                                      ? client_spans_.get()
                                      : nodes_[from]->scheduler().spans();
  obs::SpanCollector* dst_spans = multi_ != nullptr
                                      ? client_spans_.get()
                                      : nodes_[to_node]->scheduler().spans();
  const TraceContext src_ctx =
      src_spans != nullptr ? src_spans->MintAlways() : TraceContext{};
  const TraceContext dst_ctx =
      dst_spans != nullptr ? dst_spans->MintAlways() : TraceContext{};
  const SimTime copy_start = loop_.Now();
  const iosched::IoTag drain_tag{tenant, AppRequest::kNone,
                                 iosched::InternalOp::kNone, src_ctx};
  const char* const kMissing = "missing partition during migration";
  std::vector<int> slot_vec(1, slot);
  Result<std::vector<std::pair<std::string, std::string>>> scanned = co_await
      NodeScanSlots(from, tenant, std::move(slot_vec), drain_tag, kMissing);
  if (!scanned.ok()) {
    co_return scanned.status();
  }
  std::vector<std::pair<std::string, std::string>> moving =
      std::move(scanned.value());
  const ApplyResult copy_in =
      co_await NodeApplyOps(to_node, tenant, moving, {}, dst_ctx,
                            iosched::InternalOp::kNone, kMissing);
  if (!copy_in.status.ok()) {
    co_return copy_in.status;
  }
  const uint64_t moved_bytes =
      copy_in.put_key_bytes + copy_in.put_value_bytes;
  // Flip the map only after the copy fully succeeded (re-running a failed
  // migration must still see the source's keys), then tombstone the moved
  // keys at the source — unless the source remains in the slot's replica
  // set (RF>1: re-homing the leader can demote the old leader to a ring
  // follower, whose copy must survive).
  shard_map_.Rehome(tenant, slot, to_node);
  const std::vector<int> post_replicas = shard_map_.ReplicasOf(tenant, slot);
  const bool from_still_replica =
      std::find(post_replicas.begin(), post_replicas.end(), from) !=
      post_replicas.end();
  if (!from_still_replica) {
    std::vector<std::string> dead_keys;
    dead_keys.reserve(moving.size());
    for (const auto& [k, v] : moving) {
      dead_keys.push_back(k);
    }
    const ApplyResult tombstoned =
        co_await NodeApplyOps(from, tenant, {}, std::move(dead_keys), src_ctx,
                              iosched::InternalOp::kNone, kMissing);
    if (!tombstoned.status.ok()) {
      co_return tombstoned.status;
    }
  }
  if (src_spans != nullptr) {
    obs::SpanRecord rec;
    rec.trace_id = src_ctx.trace_id;
    rec.span_id = src_ctx.span_id;
    rec.kind = obs::SpanKind::kMigration;
    rec.tenant = tenant;
    rec.start_ns = copy_start;
    rec.end_ns = loop_.Now();
    rec.bytes = moved_bytes;
    src_spans->Record(rec);
  }
  if (dst_spans != nullptr) {
    obs::SpanRecord rec;
    rec.trace_id = dst_ctx.trace_id;
    rec.span_id = dst_ctx.span_id;
    rec.kind = obs::SpanKind::kMigration;
    rec.is_write = 1;
    rec.tenant = tenant;
    rec.start_ns = copy_start;
    rec.end_ns = loop_.Now();
    rec.bytes = moved_bytes;
    rec.links.Add(src_ctx);  // the drain this copy rode
    dst_spans->Record(rec);
  }

  // GateRelease clears `migrating`; gated requests re-resolve to the new
  // home once the coroutine returns.

  obs::RebalanceRecord rec;
  rec.kind = obs::RebalanceRecord::Kind::kMigration;
  rec.time_ns = loop_.Now();
  rec.tenant = tenant;
  rec.slot = slot;
  rec.from_node = from;
  rec.to_node = to_node;
  rec.keys_moved = moving.size();
  rebalance_log_.Append(rec);
  co_return Status::Ok();
}

// --- crash fault injection & recovery ---

Status Cluster::ResplitForMembership() {
  for (auto& [tenant, state] : tenants_) {
    const std::map<int, Reservation> split = EvenSplit(tenant, state.global);
    if (split.empty()) {
      // Every hosting node is down; nothing to install until a restart.
      continue;
    }
    if (Status s = ApplySplit(tenant, split); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status Cluster::CrashNode(int node) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument("node out of range");
  }
  if (!node_state_[node].alive) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " already down");
  }
  NodeCrash(node);
  node_state_[node].alive = false;
  node_state_[node].syncing = false;
  // Immediately move the dead node's reservation mass to the survivors so
  // no tenant's global reservation is partially stranded on a stopped
  // policy (the exact-sum invariant the provisioner relies on).
  return ResplitForMembership();
}

sim::Task<Status> Cluster::RestartNode(int node) {
  if (node < 0 || node >= num_nodes()) {
    co_return Status::InvalidArgument("node out of range");
  }
  if (node_state_[node].alive) {
    co_return Status::FailedPrecondition("node " + std::to_string(node) +
                                         " is not crashed");
  }
  if (Status s = co_await NodeRestart(node); !s.ok()) {
    co_return s;
  }
  node_state_[node].alive = true;
  node_state_[node].syncing = shard_map_.replication_factor() > 1;
  // Back in the write path (and the reservation split) right away; reads
  // prefer synced replicas until catch-up finishes.
  if (Status s = ResplitForMembership(); !s.ok()) {
    node_state_[node].syncing = false;
    co_return s;
  }
  if (node_state_[node].syncing) {
    const Status caught_up = co_await CatchUpNode(node);
    node_state_[node].syncing = false;
    co_return caught_up;
  }
  co_return Status::Ok();
}

sim::Task<Status> Cluster::CatchUpNode(int node) {
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [t, state] : tenants_) {
    ids.push_back(t);
  }
  Status worst = Status::Ok();
  for (const TenantId t : ids) {
    if (Status s = co_await CatchUpTenant(t, node); !s.ok()) {
      worst = s;  // keep catching up the other tenants regardless
    }
  }
  repl_[node].catchup_lag_slots = 0;
  co_return worst;
}

sim::Task<Status> Cluster::CatchUpTenant(TenantId tenant, int node) {
  // Slots this node replicates, grouped by the surviving replica that will
  // source the copy (first live synced member of each slot's replica set).
  std::map<int, std::vector<int>> by_source;
  int total_slots = 0;
  for (int slot = 0; slot < shard_map_.shards_per_tenant(); ++slot) {
    const std::vector<int> replicas = shard_map_.ReplicasOf(tenant, slot);
    if (std::find(replicas.begin(), replicas.end(), node) == replicas.end()) {
      continue;
    }
    for (const int r : replicas) {
      if (r != node && node_state_[r].alive && !node_state_[r].syncing) {
        by_source[r].push_back(slot);
        ++total_slots;
        break;
      }
    }
  }
  if (by_source.empty()) {
    co_return Status::Ok();
  }
  repl_[node].catchup_lag_slots += total_slots;
  for (const auto& [src_node, slots] : by_source) {
    // Gate the group's slots like a migration: new requests suspend and
    // in-flight ones drain, so a write cannot race the copy and be
    // shadowed by an older copied-in value.
    for (const int slot : slots) {
      ShardState& ss = Shard(tenant, slot);
      while (ss.migrating) {
        co_await sim::SleepFor(loop_, kGatePoll);
      }
      ss.migrating = true;
    }
    struct GateRelease {
      Cluster* c;
      TenantId tenant;
      const std::vector<int>* slots;
      ~GateRelease() {
        for (const int slot : *slots) {
          c->Shard(tenant, slot).migrating = false;
        }
      }
    } release{this, tenant, &slots};
    for (;;) {
      int inflight = 0;
      for (const int slot : slots) {
        inflight += Shard(tenant, slot).inflight;
      }
      if (inflight == 0) {
        break;
      }
      co_await sim::SleepFor(loop_, kGatePoll);
    }

    // Both sides bill the copy stream as PUT-triggered REPL work: the scan
    // on the source and the copy-in on the restarted node all carry
    // InternalOp::kReplicate, so recovery lands in each node's attribution
    // matrix and interval pricing like any other background amplification.
    NodeRecordReplTrigger(src_node, tenant);
    NodeRecordReplTrigger(node, tenant);
    const iosched::IoTag repl_tag{tenant, AppRequest::kPut,
                                  iosched::InternalOp::kReplicate,
                                  TraceContext{}};
    Result<std::vector<std::pair<std::string, std::string>>> src_scan =
        co_await NodeScanSlots(src_node, tenant, slots, repl_tag,
                               "missing source partition during catch-up");
    if (!src_scan.ok()) {
      NodeRecordReplDone(src_node, tenant);
      NodeRecordReplDone(node, tenant);
      co_return src_scan.status();
    }
    std::map<std::string, std::string> authoritative;
    for (auto& [k, v] : src_scan.value()) {
      authoritative.emplace(std::move(k), std::move(v));
    }
    // WAL replay may have resurrected keys deleted cluster-wide while the
    // node was down; sweep anything the source no longer has. The slot
    // filter runs node-side (pure key hash); the authoritative diff runs
    // here against the map we just assembled.
    Result<std::vector<std::pair<std::string, std::string>>> dst_scan =
        co_await NodeScanSlots(node, tenant, slots, repl_tag,
                               "missing partition during catch-up");
    std::vector<std::string> stale;
    Status copy = dst_scan.status();
    if (copy.ok()) {
      for (auto& [k, v] : dst_scan.value()) {
        if (authoritative.count(k) == 0) {
          stale.push_back(std::move(k));
        }
      }
      std::vector<std::pair<std::string, std::string>> puts;
      puts.reserve(authoritative.size());
      for (const auto& [k, v] : authoritative) {
        puts.emplace_back(k, v);
      }
      const ApplyResult applied = co_await NodeApplyOps(
          node, tenant, std::move(puts), std::move(stale), TraceContext{},
          iosched::InternalOp::kReplicate, "missing partition during catch-up");
      repl_[node].catchup_keys += applied.puts_applied;
      repl_[node].catchup_bytes += applied.put_value_bytes;
      copy = applied.status;
    }
    NodeRecordReplDone(src_node, tenant);
    NodeRecordReplDone(node, tenant);
    if (!copy.ok()) {
      co_return copy;
    }
    repl_[node].catchup_lag_slots -=
        static_cast<int>(slots.size());
  }
  co_return Status::Ok();
}

ClusterStats Cluster::Snapshot() const {
  ClusterStats s;
  s.time_ns = loop_.Now();
  s.nodes.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    s.nodes.push_back(n->Snapshot());
  }
  const int rf = shard_map_.replication_factor();
  for (int n = 0; n < num_nodes(); ++n) {
    kv::ReplicationSnapshot& r = s.nodes[n].replication;
    r.enabled = rf > 1;
    r.alive = node_state_[n].alive;
    r.syncing = node_state_[n].syncing;
    r.fanout_puts = repl_[n].fanout_puts;
    r.fanout_bytes = repl_[n].fanout_bytes;
    r.failover_gets = repl_[n].failover_gets;
    r.catchup_keys = repl_[n].catchup_keys;
    r.catchup_bytes = repl_[n].catchup_bytes;
    r.catchup_lag_slots = repl_[n].catchup_lag_slots;
  }
  for (const auto& [t, state] : tenants_) {
    for (int slot = 0; slot < shard_map_.shards_per_tenant(); ++slot) {
      const std::vector<int> replicas = shard_map_.ReplicasOf(t, slot);
      ++s.nodes[replicas[0]].replication.leader_slots;
      for (size_t i = 1; i < replicas.size(); ++i) {
        ++s.nodes[replicas[i]].replication.follower_slots;
      }
    }
  }
  s.tenants.reserve(tenants_.size());
  for (const auto& [t, state] : tenants_) {
    ClusterStats::TenantEntry e;
    e.tenant = t;
    e.global = state.global;
    e.compaction = state.compaction;
    e.slot_homes = shard_map_.Assignment(t);
    s.tenants.push_back(std::move(e));
  }
  s.rebalances.assign(rebalance_log_.records().begin(),
                      rebalance_log_.records().end());
  return s;
}

}  // namespace libra::cluster
