file(REMOVE_RECURSE
  "CMakeFiles/libra_lsm.dir/db.cc.o"
  "CMakeFiles/libra_lsm.dir/db.cc.o.d"
  "CMakeFiles/libra_lsm.dir/format.cc.o"
  "CMakeFiles/libra_lsm.dir/format.cc.o.d"
  "CMakeFiles/libra_lsm.dir/memtable.cc.o"
  "CMakeFiles/libra_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/libra_lsm.dir/sstable.cc.o"
  "CMakeFiles/libra_lsm.dir/sstable.cc.o.d"
  "CMakeFiles/libra_lsm.dir/wal.cc.o"
  "CMakeFiles/libra_lsm.dir/wal.cc.o.d"
  "liblibra_lsm.a"
  "liblibra_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
