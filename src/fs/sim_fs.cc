#include "src/fs/sim_fs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace libra::fs {

SimFs::SimFs(iosched::IoScheduler& scheduler, ssd::SsdDevice& device,
             uint32_t extent_bytes)
    : scheduler_(scheduler), device_(device), extent_bytes_(extent_bytes) {
  assert(extent_bytes_ >= 64 * 1024);
  num_extents_ = device_.profile().capacity_bytes / extent_bytes_;
  free_extents_.reserve(num_extents_);
  for (uint64_t e = num_extents_; e > 0; --e) {
    free_extents_.push_back(static_cast<uint32_t>(e - 1));
  }
}

SimFs::File* SimFs::Lookup(FileId id) {
  const auto it = files_.find(id);
  return it == files_.end() ? nullptr : it->second.get();
}

const SimFs::File* SimFs::Lookup(FileId id) const {
  const auto it = files_.find(id);
  return it == files_.end() ? nullptr : it->second.get();
}

StatusOr<FileId> SimFs::Create(const std::string& name) {
  if (names_.count(name) > 0) {
    return Status::AlreadyExists(name);
  }
  const FileId id = next_id_++;
  auto file = std::make_unique<File>();
  file->name = name;
  files_.emplace(id, std::move(file));
  names_.emplace(name, id);
  return id;
}

StatusOr<FileId> SimFs::Open(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound(name);
  }
  return it->second;
}

bool SimFs::Exists(const std::string& name) const {
  return names_.count(name) > 0;
}

Status SimFs::Delete(const std::string& name) {
  const auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound(name);
  }
  File* f = Lookup(it->second);
  assert(f != nullptr);
  for (uint32_t e : f->extents) {
    device_.Trim(static_cast<uint64_t>(e) * extent_bytes_, extent_bytes_);
    free_extents_.push_back(e);
  }
  files_.erase(it->second);
  names_.erase(it);
  return Status::Ok();
}

Status SimFs::Rename(const std::string& from, const std::string& to) {
  const auto it = names_.find(from);
  if (it == names_.end()) {
    return Status::NotFound(from);
  }
  if (names_.count(to) > 0) {
    return Status::AlreadyExists(to);
  }
  const FileId id = it->second;
  names_.erase(it);
  names_.emplace(to, id);
  Lookup(id)->name = to;
  return Status::Ok();
}

std::vector<std::string> SimFs::List() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, id] : names_) {
    out.push_back(name);
  }
  return out;
}

uint64_t SimFs::DiskAddress(const File& f, uint64_t offset) const {
  const uint64_t idx = offset / extent_bytes_;
  assert(idx < f.extents.size());
  return static_cast<uint64_t>(f.extents[idx]) * extent_bytes_ +
         offset % extent_bytes_;
}

bool SimFs::EnsureCapacity(File& f, uint64_t size) {
  const uint64_t needed = (size + extent_bytes_ - 1) / extent_bytes_;
  while (f.extents.size() < needed) {
    if (free_extents_.empty()) {
      return false;
    }
    f.extents.push_back(free_extents_.back());
    free_extents_.pop_back();
  }
  return true;
}

sim::Task<Status> SimFs::Append(FileId file, const iosched::IoTag& tag,
                                std::string_view data) {
  File* f = Lookup(file);
  if (f == nullptr) {
    co_return Status::NotFound("bad file id");
  }
  if (data.empty()) {
    co_return Status::Ok();
  }
  // Reserve the range synchronously so concurrent appenders do not
  // interleave byte ranges (the parallel-writes modification of §5); the
  // device IO below then overlaps freely.
  const uint64_t offset = f->data.size();
  if (!EnsureCapacity(*f, offset + data.size())) {
    co_return Status::ResourceExhausted("filesystem full");
  }
  f->data.append(data.data(), data.size());

  // One device write per contiguous disk segment (extent-crossing appends
  // split; the scheduler further chunks large segments).
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t in_extent = extent_bytes_ - pos % extent_bytes_;
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(in_extent, data.size() - done));
    co_await scheduler_.Write(tag, DiskAddress(*f, pos), len);
    done += len;
  }
  co_return Status::Ok();
}

sim::Task<Status> SimFs::AppendShared(FileId file,
                                      std::vector<iosched::IoShare> manifest,
                                      std::string_view data) {
  File* f = Lookup(file);
  if (f == nullptr) {
    co_return Status::NotFound("bad file id");
  }
  if (data.empty()) {
    co_return Status::Ok();
  }
  assert(!manifest.empty());
  // Same synchronous range reservation as Append (see above).
  const uint64_t offset = f->data.size();
  if (!EnsureCapacity(*f, offset + data.size())) {
    co_return Status::ResourceExhausted("filesystem full");
  }
  f->data.append(data.data(), data.size());

  if (manifest.size() == 1) {
    // Degenerate batch: identical IO pattern to a plain Append.
    const iosched::IoTag tag = manifest[0].tag;
    uint64_t done = 0;
    while (done < data.size()) {
      const uint64_t pos = offset + done;
      const uint64_t in_extent = extent_bytes_ - pos % extent_bytes_;
      const uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(in_extent, data.size() - done));
      co_await scheduler_.Write(tag, DiskAddress(*f, pos), len);
      done += len;
    }
    co_return Status::Ok();
  }

  // One shared device write per contiguous disk segment, each carrying the
  // slice of the manifest that overlaps its byte range (the scheduler
  // further slices per chunk and splits costs with the exact-sum rule).
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t in_extent = extent_bytes_ - pos % extent_bytes_;
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(in_extent, data.size() - done));
    const uint64_t seg_lo = done;
    const uint64_t seg_hi = done + len;
    std::vector<iosched::IoShare> slice;
    uint64_t share_pos = 0;
    for (const iosched::IoShare& s : manifest) {
      const uint64_t s_lo = share_pos;
      share_pos += s.bytes;
      if (share_pos <= seg_lo) {
        continue;
      }
      if (s_lo >= seg_hi) {
        break;
      }
      const uint32_t overlap = static_cast<uint32_t>(
          std::min(share_pos, seg_hi) - std::max(s_lo, seg_lo));
      slice.push_back({s.tag, overlap});
    }
    co_await scheduler_.WriteShared(DiskAddress(*f, pos), len,
                                    std::move(slice));
    done += len;
  }
  co_return Status::Ok();
}

sim::Task<Status> SimFs::ReadAt(FileId file, const iosched::IoTag& tag,
                                uint64_t offset, uint64_t length,
                                std::string* out) {
  File* f = Lookup(file);
  if (f == nullptr) {
    co_return Status::NotFound("bad file id");
  }
  if (offset + length > f->data.size()) {
    co_return Status::OutOfRange("read past EOF");
  }
  uint64_t done = 0;
  while (done < length) {
    const uint64_t pos = offset + done;
    const uint64_t in_extent = extent_bytes_ - pos % extent_bytes_;
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(in_extent, length - done));
    co_await scheduler_.Read(tag, DiskAddress(*f, pos), len);
    done += len;
  }
  out->assign(f->data.data() + offset, length);
  co_return Status::Ok();
}

uint64_t SimFs::SizeOf(FileId file) const {
  const File* f = Lookup(file);
  return f == nullptr ? 0 : f->data.size();
}

Status SimFs::PeekContents(FileId file, std::string* out) const {
  const File* f = Lookup(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id");
  }
  *out = f->data;
  return Status::Ok();
}

Status SimFs::Truncate(const std::string& name, uint64_t size) {
  const auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound(name);
  }
  File* f = Lookup(it->second);
  assert(f != nullptr);
  if (size < f->data.size()) {
    f->data.resize(size);
  }
  return Status::Ok();
}

Status SimFs::CorruptByte(const std::string& name, uint64_t offset,
                          uint8_t mask) {
  const auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound(name);
  }
  File* f = Lookup(it->second);
  assert(f != nullptr);
  if (offset >= f->data.size()) {
    return Status::OutOfRange("corrupt past EOF");
  }
  f->data[offset] = static_cast<char>(
      static_cast<uint8_t>(f->data[offset]) ^ mask);
  return Status::Ok();
}

FsStats SimFs::stats() const {
  FsStats s;
  s.files = files_.size();
  for (const auto& [id, f] : files_) {
    s.bytes_used += f->data.size();
  }
  s.extents_free = free_extents_.size();
  return s;
}

}  // namespace libra::fs
