#include "src/common/rng.h"

#include <algorithm>
#include <cassert>

namespace libra {
namespace {

// SplitMix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling; bias is < 2^-64 * bound
  // which is negligible for workload generation.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(NextU64()) * bound) >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

LogNormalSize::LogNormalSize(double mean_bytes, double sigma_bytes,
                             uint64_t min_bytes, uint64_t max_bytes)
    : mean_bytes_(mean_bytes),
      sigma_bytes_(sigma_bytes),
      min_bytes_(min_bytes),
      max_bytes_(max_bytes) {
  assert(mean_bytes > 0.0);
  assert(sigma_bytes >= 0.0);
  assert(min_bytes >= 1 && min_bytes <= max_bytes);
  if (sigma_bytes_ == 0.0) {
    mu_ = std::log(mean_bytes_);
    sigma_ = 0.0;
    return;
  }
  // Solve for the underlying normal's (mu, sigma) given the arithmetic mean m
  // and standard deviation s of the log-normal:
  //   m = exp(mu + sigma^2/2),  s^2 = (exp(sigma^2) - 1) * m^2.
  const double m = mean_bytes_;
  const double s = sigma_bytes_;
  const double sigma_sq = std::log(1.0 + (s * s) / (m * m));
  sigma_ = std::sqrt(sigma_sq);
  mu_ = std::log(m) - sigma_sq / 2.0;
}

uint64_t LogNormalSize::Sample(Rng& rng) const {
  double value = 0.0;
  if (sigma_ == 0.0) {
    value = mean_bytes_;
  } else {
    value = std::exp(mu_ + sigma_ * rng.NextGaussian());
  }
  const double clamped =
      std::clamp(value, static_cast<double>(min_bytes_),
                 static_cast<double>(max_bytes_));
  return static_cast<uint64_t>(clamped + 0.5);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double value =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(value);
  return std::min(rank, n_ - 1);
}

}  // namespace libra
