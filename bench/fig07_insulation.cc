// Figure 7: physical IO insulation under the Libra VOP resource model on
// three SSDs. Four pure-reader and four pure-writer tenants with equal VOP
// allocations; for each (read size, write size) pair we report the IOP
// throughput ratio x_t = achieved / expected, where expected is 1/8 of the
// tenant's isolated throughput at its op size (from calibration).
// Perfect insulation = ratio 1 for everyone; the paper reports mean tenant
// MMR ~0.98 with a dip only for chunked large reads.

#include <cstdio>

#include "bench/bench_common.h"

namespace libra::bench {
namespace {

void RunDevice(const BenchArgs& args, const ssd::DeviceProfile& profile,
               double* mmr_sum, int* mmr_count) {
  const auto& table = TableFor(profile);
  const auto sizes = SweepSizesKb(args.full);

  // Independent cells: simulate across --jobs workers, then emit serially
  // in the (read size, write size) sweep order.
  SweepRunner runner(args.jobs);
  const std::vector<RawCellResult> cells = runner.Map<RawCellResult>(
      sizes.size() * sizes.size(), [&](size_t i) {
        RawCellSpec cell;
        cell.mode = CellMode::kReadWrite;
        cell.size_a_bytes =
            static_cast<double>(sizes[i / sizes.size()]) * 1024.0;
        cell.size_b_bytes =
            static_cast<double>(sizes[i % sizes.size()]) * 1024.0;
        return RunRawCell(profile, cell);
      });

  Section(args, "Figure 7: IOP throughput ratios — " + profile.name);
  metrics::Table out({"read_kb", "write_kb", "reader_ratio", "writer_ratio",
                      "tenant_mmr"});
  size_t cell_idx = 0;
  for (uint32_t r : sizes) {
    for (uint32_t w : sizes) {
      const RawCellResult& res = cells[cell_idx++];

      const double n = static_cast<double>(res.tenant_iops.size());
      const double expected_read = table.RandReadIops(r * 1024) / n;
      const double expected_write = table.RandWriteIops(w * 1024) / n;
      double reader_ratio = 0.0;
      double writer_ratio = 0.0;
      int readers = 0;
      int writers = 0;
      std::vector<double> ratios;
      for (size_t t = 0; t < res.tenant_iops.size(); ++t) {
        // Chunking splits >128KB ops, so measure in ops of the nominal size.
        const double nominal =
            res.tenant_is_reader[t] ? r * 1024.0 : w * 1024.0;
        const double achieved_ops = res.tenant_bytes[t] / nominal;
        const double ratio = achieved_ops / (res.tenant_is_reader[t]
                                                 ? expected_read
                                                 : expected_write);
        ratios.push_back(ratio);
        if (res.tenant_is_reader[t]) {
          reader_ratio += ratio;
          ++readers;
        } else {
          writer_ratio += ratio;
          ++writers;
        }
      }
      const double mmr = MinMaxRatio(ratios);
      *mmr_sum += mmr;
      ++*mmr_count;
      out.AddNumericRow(std::to_string(r),
                        {static_cast<double>(w), reader_ratio / readers,
                         writer_ratio / writers, mmr},
                        3);
    }
  }
  Emit(args, out);
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  double mmr_sum = 0.0;
  int mmr_count = 0;
  RunDevice(args, libra::ssd::Intel320Profile(), &mmr_sum, &mmr_count);
  RunDevice(args, libra::ssd::Samsung840Profile(), &mmr_sum, &mmr_count);
  RunDevice(args, libra::ssd::OczVectorProfile(), &mmr_sum, &mmr_count);
  std::printf("mean tenant-throughput MMR over all cells/devices: %.3f "
              "(paper: 0.98)\n",
              mmr_sum / mmr_count);
  return 0;
}
