file(REMOVE_RECURSE
  "CMakeFiles/fig07_insulation.dir/fig07_insulation.cc.o"
  "CMakeFiles/fig07_insulation.dir/fig07_insulation.cc.o.d"
  "fig07_insulation"
  "fig07_insulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_insulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
