file(REMOVE_RECURSE
  "CMakeFiles/fig12_dynamic_demand.dir/fig12_dynamic_demand.cc.o"
  "CMakeFiles/fig12_dynamic_demand.dir/fig12_dynamic_demand.cc.o.d"
  "fig12_dynamic_demand"
  "fig12_dynamic_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dynamic_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
