#include "src/kv/node_stats.h"

#include "src/obs/json.h"

namespace libra::kv {
namespace {

using obs::HistogramToJson;
using obs::JsonWriter;

// The attributable application request classes, in enum order — every
// per-class JSON section below loops over these (never kNone).
constexpr iosched::AppRequest kAppClasses[] = {
    iosched::AppRequest::kGet,
    iosched::AppRequest::kPut,
    iosched::AppRequest::kScan,
};

// Lower-case per-class JSON key suffix ("reserved_get_rps", "profile_scan",
// ...). Exhaustive: a new AppRequest breaks this switch at compile time.
const char* AppKeySuffix(iosched::AppRequest a) {
  switch (a) {
    case iosched::AppRequest::kNone:
      return "none";
    case iosched::AppRequest::kGet:
      return "get";
    case iosched::AppRequest::kPut:
      return "put";
    case iosched::AppRequest::kScan:
      return "scan";
  }
  return "?";  // unreachable for in-range values
}

const char* CompactionPolicyName(uint8_t policy) {
  return policy == 0 ? "leveled" : "tiered";
}

void WriteIoClassStats(JsonWriter& w, const obs::IoClassStats& s,
                       bool include_buckets) {
  w.BeginObject();
  w.Key("ops");
  w.Uint(s.ops);
  w.Key("chunks");
  w.Uint(s.chunks);
  w.Key("bytes");
  w.Uint(s.bytes);
  w.Key("queue_wait");
  w.Raw(HistogramToJson(s.queue_wait, include_buckets));
  w.Key("device_service");
  w.Raw(HistogramToJson(s.service, include_buckets));
  w.EndObject();
}

void WriteAuditRecord(JsonWriter& w, const obs::AuditRecord& rec) {
  w.BeginObject();
  w.Key("time_ns");
  w.Int(rec.time_ns);
  w.Key("total_required_vops");
  w.Double(rec.total_required_vops);
  w.Key("capacity_floor_vops");
  w.Double(rec.capacity_floor_vops);
  w.Key("scale");
  w.Double(rec.scale);
  w.Key("overbooked");
  w.Bool(rec.overbooked);
  w.Key("tenants");
  w.BeginArray();
  for (const obs::AuditTenantEntry& e : rec.tenants) {
    w.BeginObject();
    w.Key("tenant");
    w.Uint(e.tenant);
    for (const iosched::AppRequest app : kAppClasses) {
      const int a = static_cast<int>(app);
      w.Key(std::string("reserved_") + AppKeySuffix(app) + "_rps");
      w.Double(e.reserved_rps[a]);
    }
    for (const iosched::AppRequest app : kAppClasses) {
      const int a = static_cast<int>(app);
      w.Key(std::string("profile_") + AppKeySuffix(app));
      w.BeginObject();
      w.Key("direct");
      w.Double(e.profile_direct[a]);
      w.Key("flush");
      w.Double(e.profile_flush[a]);
      w.Key("compact");
      w.Double(e.profile_compact[a]);
      w.EndObject();
    }
    for (const iosched::AppRequest app : kAppClasses) {
      w.Key(std::string("price_") + AppKeySuffix(app));
      w.Double(e.price[static_cast<int>(app)]);
    }
    w.Key("compaction_policy");
    w.String(CompactionPolicyName(e.compaction_policy));
    w.Key("required_vops");
    w.Double(e.required_vops);
    w.Key("granted_vops");
    w.Double(e.granted_vops);
    w.Key("achieved_vops");
    w.Double(e.achieved_vops);
    w.Key("sla_violated");
    w.Bool(e.sla_violated);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void WriteAttribution(JsonWriter& w, const AttributionSnapshot& a) {
  w.BeginObject();
  w.Key("observed");
  w.Bool(a.observed);
  w.Key("declared");
  w.Bool(a.declared.declared);
  w.Key("total_vops");
  w.Double(a.matrix.total_vops);
  w.Key("norm_requests");
  w.BeginObject();
  for (const iosched::AppRequest app : kAppClasses) {
    w.Key(iosched::AppRequestName(app));
    w.Double(a.matrix.norm_requests[static_cast<int>(app)]);
  }
  w.EndObject();
  // Full observed/declared q matrix over the app x internal vocabulary
  // (only the attributable rows — nothing is ever declared for `none`).
  w.Key("q");
  w.BeginArray();
  for (const iosched::AppRequest app : kAppClasses) {
    for (int i = 0; i < obs::kAttrInternal; ++i) {
      w.BeginObject();
      w.Key("app");
      w.String(iosched::AppRequestName(app));
      w.Key("internal");
      w.String(iosched::InternalOpName(static_cast<iosched::InternalOp>(i)));
      w.Key("observed");
      w.Double(a.matrix.Q(static_cast<int>(app), i));
      w.Key("declared");
      w.Double(a.declared.q[static_cast<int>(app)][i]);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("divergence");
  w.Double(a.report.divergence);
  w.Key("tolerance");
  w.Double(a.tolerance);
  w.Key("conformant");
  w.Bool(a.conformant);
  w.Key("worst");
  w.BeginObject();
  w.Key("app");
  w.String(iosched::AppRequestName(
      static_cast<iosched::AppRequest>(a.report.worst_app)));
  w.Key("internal");
  w.String(iosched::InternalOpName(
      static_cast<iosched::InternalOp>(a.report.worst_internal)));
  w.Key("observed");
  w.Double(a.report.worst_observed);
  w.Key("declared");
  w.Double(a.report.worst_declared);
  w.EndObject();
  w.EndObject();
}

void WriteSla(JsonWriter& w, const SlaSnapshot& s) {
  w.BeginObject();
  w.Key("tracked");
  w.Bool(s.tracked);
  w.Key("intervals");
  w.Uint(s.sla.intervals);
  w.Key("violations");
  w.Uint(s.sla.violations);
  w.Key("violation_rate");
  w.Double(s.sla.violation_rate());
  w.Key("last_reserved_vops");
  w.Double(s.sla.last_reserved_vops);
  w.Key("last_achieved_vops");
  w.Double(s.sla.last_achieved_vops);
  w.Key("last_violated");
  w.Bool(s.sla.last_violated);
  w.EndObject();
}

}  // namespace

std::string NodeStatsToJson(const NodeStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("time_ns");
  w.Int(stats.time_ns);

  w.Key("device");
  w.BeginObject();
  w.Key("reads_completed");
  w.Uint(stats.device.reads_completed);
  w.Key("writes_completed");
  w.Uint(stats.device.writes_completed);
  w.Key("read_bytes");
  w.Uint(stats.device.read_bytes);
  w.Key("write_bytes");
  w.Uint(stats.device.write_bytes);
  w.Key("gc_pages_moved");
  w.Uint(stats.device.gc_pages_moved);
  w.Key("blocks_erased");
  w.Uint(stats.device.blocks_erased);
  w.Key("write_amp");
  w.Double(stats.device.write_amp);
  w.Key("avg_queue_depth");
  w.Double(stats.device.avg_queue_depth);
  w.EndObject();

  w.Key("capacity");
  w.BeginObject();
  w.Key("floor_vops");
  w.Double(stats.capacity_floor_vops);
  w.Key("estimate_vops");
  w.Double(stats.capacity_estimate_vops);
  w.EndObject();

  w.Key("scheduler");
  w.BeginObject();
  w.Key("rounds");
  w.Uint(stats.scheduler_rounds);
  w.EndObject();

  w.Key("trace_ring");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(stats.trace_ring.enabled);
  w.Key("capacity");
  w.Uint(stats.trace_ring.capacity);
  w.Key("recorded");
  w.Uint(stats.trace_ring.recorded);
  w.Key("dropped");
  w.Uint(stats.trace_ring.dropped);
  w.EndObject();

  w.Key("spans");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(stats.spans.enabled);
  w.Key("capacity");
  w.Uint(stats.spans.capacity);
  w.Key("recorded");
  w.Uint(stats.spans.recorded);
  w.Key("dropped");
  w.Uint(stats.spans.dropped);
  w.Key("minted_traces");
  w.Uint(stats.spans.minted_traces);
  w.Key("sampled_out");
  w.Uint(stats.spans.sampled_out);
  w.Key("sample_every");
  w.Uint(stats.spans.sample_every);
  w.EndObject();

  w.Key("object_cache");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(stats.object_cache.enabled);
  w.Key("hits");
  w.Uint(stats.object_cache.hits);
  w.Key("misses");
  w.Uint(stats.object_cache.misses);
  w.Key("evictions");
  w.Uint(stats.object_cache.evictions);
  w.Key("resident_bytes");
  w.Uint(stats.object_cache.resident_bytes);
  w.Key("entries");
  w.Uint(stats.object_cache.entries);
  w.EndObject();

  w.Key("block_cache");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(stats.block_cache.enabled);
  w.Key("capacity_bytes");
  w.Uint(stats.block_cache.capacity_bytes);
  w.Key("resident_bytes");
  w.Uint(stats.block_cache.resident_bytes);
  w.Key("entries");
  w.Uint(stats.block_cache.entries);
  w.Key("hits");
  w.Uint(stats.block_cache.hits);
  w.Key("misses");
  w.Uint(stats.block_cache.misses);
  w.Key("evictions");
  w.Uint(stats.block_cache.evictions);
  w.EndObject();

  w.Key("coalesced_gets");
  w.Uint(stats.coalesced_gets);

  w.Key("replication");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(stats.replication.enabled);
  w.Key("alive");
  w.Bool(stats.replication.alive);
  w.Key("syncing");
  w.Bool(stats.replication.syncing);
  w.Key("leader_slots");
  w.Int(stats.replication.leader_slots);
  w.Key("follower_slots");
  w.Int(stats.replication.follower_slots);
  w.Key("fanout_puts");
  w.Uint(stats.replication.fanout_puts);
  w.Key("fanout_bytes");
  w.Uint(stats.replication.fanout_bytes);
  w.Key("failover_gets");
  w.Uint(stats.replication.failover_gets);
  w.Key("catchup_keys");
  w.Uint(stats.replication.catchup_keys);
  w.Key("catchup_bytes");
  w.Uint(stats.replication.catchup_bytes);
  w.Key("catchup_lag_slots");
  w.Int(stats.replication.catchup_lag_slots);
  w.EndObject();

  w.Key("recovery");
  w.BeginObject();
  w.Key("crashes");
  w.Uint(stats.recovery.crashes);
  w.Key("restarts");
  w.Uint(stats.recovery.restarts);
  w.Key("wal_files_replayed");
  w.Uint(stats.recovery.wal_files_replayed);
  w.Key("replay_records");
  w.Uint(stats.recovery.replay_records);
  w.Key("replay_bytes");
  w.Uint(stats.recovery.replay_bytes);
  w.Key("rereplication_vops");
  w.Double(stats.recovery.rereplication_vops);
  w.EndObject();

  w.Key("tenants");
  w.BeginArray();
  for (const TenantSnapshot& t : stats.tenants) {
    w.BeginObject();
    w.Key("tenant");
    w.Uint(t.tenant);
    w.Key("reservation");
    w.BeginObject();
    for (const iosched::AppRequest app : kAppClasses) {
      w.Key(std::string(AppKeySuffix(app)) + "_rps");
      w.Double(t.reservation.RateOf(app));
    }
    w.EndObject();
    w.Key("allocation_vops");
    w.Double(t.allocation_vops);
    w.Key("requests");
    w.BeginObject();
    w.Key("GET");
    w.Raw(HistogramToJson(t.get_latency, /*include_buckets=*/true));
    w.Key("PUT");
    w.Raw(HistogramToJson(t.put_latency, /*include_buckets=*/true));
    w.Key("SCAN");
    w.Raw(HistogramToJson(t.scan_latency, /*include_buckets=*/true));
    w.EndObject();
    w.Key("io");
    w.BeginObject();
    w.Key("total");
    WriteIoClassStats(w, t.io_total, /*include_buckets=*/true);
    w.Key("classes");
    w.BeginArray();
    for (const IoClassSnapshot& c : t.io_classes) {
      w.BeginObject();
      w.Key("app");
      w.String(iosched::AppRequestName(c.app));
      w.Key("internal");
      w.String(iosched::InternalOpName(c.internal));
      w.Key("stats");
      WriteIoClassStats(w, c.stats, /*include_buckets=*/false);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.Key("lsm");
    w.BeginObject();
    w.Key("puts");
    w.Uint(t.lsm.puts);
    w.Key("gets");
    w.Uint(t.lsm.gets);
    w.Key("flushes");
    w.Uint(t.lsm.flushes);
    w.Key("flush_bytes");
    w.Uint(t.lsm.flush_bytes);
    w.Key("flush_ns");
    w.Uint(t.lsm.flush_ns);
    w.Key("compactions");
    w.Uint(t.lsm.compactions);
    w.Key("compact_bytes_read");
    w.Uint(t.lsm.compact_bytes_read);
    w.Key("compact_bytes_written");
    w.Uint(t.lsm.compact_bytes_written);
    w.Key("compact_ns");
    w.Uint(t.lsm.compact_ns);
    w.Key("stalls");
    w.Uint(t.lsm.stalls);
    w.Key("stall_ns");
    w.Uint(t.lsm.stall_ns);
    w.Key("tables_probed");
    w.Uint(t.lsm.tables_probed);
    w.Key("scans");
    w.Uint(t.lsm.scans);
    w.Key("scan_keys");
    w.Uint(t.lsm.scan_keys);
    w.Key("scan_bytes");
    w.Uint(t.lsm.scan_bytes);
    w.Key("compaction_policy");
    w.String(CompactionPolicyName(t.compaction_policy));
    w.Key("wal");
    w.BeginObject();
    w.Key("appends");
    w.Uint(t.lsm.wal_appends);
    w.Key("batches");
    w.Uint(t.lsm.wal_batches);
    w.Key("batched_records");
    w.Uint(t.lsm.wal_batched_records);
    w.Key("max_batch_records");
    w.Uint(t.lsm.wal_max_batch_records);
    w.EndObject();
    w.Key("table_cache");
    w.BeginObject();
    w.Key("hits");
    w.Uint(t.lsm.table_cache_hits);
    w.Key("misses");
    w.Uint(t.lsm.table_cache_misses);
    w.Key("evictions");
    w.Uint(t.lsm.table_cache_evictions);
    w.Key("resident_bytes");
    w.Uint(t.lsm.table_cache_resident_bytes);
    w.EndObject();
    w.Key("bloom");
    w.BeginObject();
    w.Key("probes");
    w.Uint(t.lsm.bloom_probes);
    w.Key("negatives");
    w.Uint(t.lsm.bloom_negatives);
    w.Key("false_positives");
    w.Uint(t.lsm.bloom_false_positives);
    w.EndObject();
    w.Key("block_cache");
    w.BeginObject();
    w.Key("index_hits");
    w.Uint(t.lsm.bcache_index_hits);
    w.Key("index_misses");
    w.Uint(t.lsm.bcache_index_misses);
    w.Key("filter_hits");
    w.Uint(t.lsm.bcache_filter_hits);
    w.Key("filter_misses");
    w.Uint(t.lsm.bcache_filter_misses);
    w.Key("data_hits");
    w.Uint(t.lsm.bcache_data_hits);
    w.Key("data_misses");
    w.Uint(t.lsm.bcache_data_misses);
    w.Key("evictions");
    w.Uint(t.lsm.bcache_evictions);
    w.Key("resident_bytes");
    w.Uint(t.lsm.bcache_resident_bytes);
    w.Key("capacity_bytes");
    w.Uint(t.lsm.bcache_capacity_bytes);
    w.EndObject();
    w.Key("read_path");
    w.BeginObject();
    w.Key("index_block_reads");
    w.Uint(t.lsm.index_block_reads);
    w.Key("filter_block_reads");
    w.Uint(t.lsm.filter_block_reads);
    w.Key("data_block_reads");
    w.Uint(t.lsm.data_block_reads);
    w.Key("data_cache_hits");
    w.Uint(t.lsm.data_cache_hits);
    w.EndObject();
    w.Key("files_per_level");
    w.BeginArray();
    for (int n : t.lsm.files_per_level) {
      w.Int(n);
    }
    w.EndArray();
    w.EndObject();
    w.Key("attribution");
    WriteAttribution(w, t.attribution);
    w.Key("sla");
    WriteSla(w, t.sla);
    w.EndObject();
  }
  w.EndArray();

  w.Key("audit");
  w.BeginArray();
  for (const obs::AuditRecord& rec : stats.audit) {
    WriteAuditRecord(w, rec);
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

}  // namespace libra::kv
