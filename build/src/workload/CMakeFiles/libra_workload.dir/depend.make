# Empty dependencies file for libra_workload.
# This may be replaced when dependencies are built.
