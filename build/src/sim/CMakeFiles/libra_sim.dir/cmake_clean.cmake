file(REMOVE_RECURSE
  "CMakeFiles/libra_sim.dir/event_loop.cc.o"
  "CMakeFiles/libra_sim.dir/event_loop.cc.o.d"
  "liblibra_sim.a"
  "liblibra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
