// IO capacity model (paper §4.2).
//
// IO interference makes throughput workload-dependent and unpredictable, so
// Libra provisions against a conservative *floor* of the capacity surface —
// the minimum VOP/s observed across an interference probe grid — rather
// than modeling the surface. The floor is the admission-control bound for
// the resource policy; a live EWMA monitor tracks current throughput so
// violations can be detected and reported to higher-level policies.

#ifndef LIBRA_SRC_IOSCHED_CAPACITY_H_
#define LIBRA_SRC_IOSCHED_CAPACITY_H_

#include <cstdint>

#include "src/common/ewma.h"
#include "src/common/units.h"
#include "src/ssd/calibration.h"
#include "src/ssd/profile.h"

namespace libra::iosched {

// Floor measured for the simulated Intel 320 profile via the Fig. 4 probe
// grid (bench/fig04_interference_heatmaps): the deepest valley sits at
// read-heavy mixes of small reads and small-to-medium writes and measures
// ~19.2 kVOP/s against a ~38.0 kVOP/s interference-free max (51% — the
// paper's physical Intel 320: 18 of 37.5 kop/s, 48%). Configured with a
// safety margin below the measured minimum, as the paper does; it matches
// the paper's 18 kop/s.
inline constexpr double kIntel320VopFloor = 18000.0;

class CapacityModel {
 public:
  explicit CapacityModel(double floor_vops, double ewma_alpha = 0.3)
      : floor_vops_(floor_vops), monitor_(ewma_alpha) {}

  // The provisionable bound: allocations must sum to at most this.
  double provisionable() const { return floor_vops_; }

  // Live monitor: feed per-interval achieved VOP/s.
  void ObserveThroughput(double vops_per_sec) {
    monitor_.Observe(vops_per_sec);
  }

  // Smoothed current throughput (0 until the first observation).
  double current_estimate() const { return monitor_.Value(); }

  // True when recent throughput has fallen below the floor — the
  // pathological case the paper defers to SLAs / higher-level mechanisms.
  bool below_floor() const {
    return monitor_.initialized() && monitor_.Value() < floor_vops_;
  }

 private:
  double floor_vops_;
  Ewma monitor_;
};

struct FloorProbeOptions {
  SimDuration warmup = 300 * kMillisecond;
  SimDuration measure = 1 * kSecond;
  int num_tenants = 8;
  int workers_per_tenant = 4;  // 8 x 4 = queue depth 32
  uint64_t seed = 17;
  // Read/write mixes and IOP sizes probed; coarse by default.
  bool full_grid = false;
};

// Empirically probes the interference floor of `profile`: runs mixed
// read/write workloads over an IOP-size grid through a Libra scheduler with
// equal allocations and returns the minimum achieved VOP/s (measured with
// the exact cost model for `table`).
double ProbeInterferenceFloor(const ssd::DeviceProfile& profile,
                              const ssd::CalibrationTable& table,
                              const FloorProbeOptions& options = {});

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_CAPACITY_H_
