#include "src/obs/span.h"

#include <cstdio>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/json.h"

namespace libra::obs {
namespace {

// Mirrors the iosched::AppRequest / InternalOp vocabulary (io_tag.h); obs
// sits below iosched, so the names are duplicated rather than included.
const char* AppName(uint8_t app) {
  switch (app) {
    case 1:
      return "GET";
    case 2:
      return "PUT";
    case 3:
      return "SCAN";
    default:
      return "none";
  }
}

const char* InternalName(uint8_t internal) {
  switch (internal) {
    case 1:
      return "FLUSH";
    case 2:
      return "COMPACT";
    default:
      return "direct";
  }
}

std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(id));
  return buf;
}

std::string SliceName(const SpanRecord& s) {
  switch (s.kind) {
    case SpanKind::kClientRequest:
      return std::string("rpc ") + AppName(s.app);
    case SpanKind::kRequest:
      return AppName(s.app);
    case SpanKind::kDeviceIo:
      return std::string("io ") + (s.is_write != 0 ? "W " : "R ") +
             InternalName(s.internal);
    case SpanKind::kFlush:
      return "FLUSH";
    case SpanKind::kCompact:
      return "COMPACT";
    case SpanKind::kCoalescedGet:
      return "GET coalesced";
    case SpanKind::kMigration:
      return "MIGRATE";
  }
  return "?";
}

const char* SliceCategory(const SpanRecord& s) {
  switch (s.kind) {
    case SpanKind::kClientRequest:
      return "rpc";
    case SpanKind::kRequest:
    case SpanKind::kCoalescedGet:
      return "request";
    case SpanKind::kDeviceIo:
      return "io";
    case SpanKind::kFlush:
    case SpanKind::kCompact:
      return "lsm";
    case SpanKind::kMigration:
      return "migration";
  }
  return "?";
}

// One retained span with the pid it exports under.
struct IndexedSpan {
  const SpanRecord* span = nullptr;
  int pid = 0;
};

void WriteCommonFields(JsonWriter& w, const SpanRecord& s, int pid) {
  w.Key("pid");
  w.Int(pid);
  w.Key("tid");
  w.Uint(s.tenant);
}

void WriteCompleteEvent(JsonWriter& w, const SpanRecord& s, int pid) {
  w.BeginObject();
  w.Key("name");
  w.String(SliceName(s));
  w.Key("cat");
  w.String(SliceCategory(s));
  w.Key("ph");
  w.String("X");
  w.Key("ts");
  w.Double(static_cast<double>(s.start_ns) / 1000.0);
  w.Key("dur");
  w.Double(static_cast<double>(s.end_ns - s.start_ns) / 1000.0);
  WriteCommonFields(w, s, pid);
  w.Key("args");
  w.BeginObject();
  w.Key("trace");
  w.String(HexId(s.trace_id));
  w.Key("span");
  w.String(HexId(s.span_id));
  if (s.parent_span != 0) {
    w.Key("parent");
    w.String(HexId(s.parent_span));
  }
  w.Key("app");
  w.String(AppName(s.app));
  w.Key("internal");
  w.String(InternalName(s.internal));
  w.Key("bytes");
  w.Uint(s.bytes);
  w.Key("vops");
  w.Double(s.vops);
  if (s.links.total > 0) {
    w.Key("links_total");
    w.Uint(s.links.total);
    w.Key("links_sampled");
    w.Uint(s.links.count);
  }
  w.EndObject();
  w.EndObject();
}

// One causal arrow: flow-start inside the source slice, flow-finish bound
// to the destination slice's start (bp:"e").
void WriteFlowPair(JsonWriter& w, const std::string& id,
                   const IndexedSpan& src, const IndexedSpan& dst) {
  w.BeginObject();
  w.Key("name");
  w.String("causal");
  w.Key("cat");
  w.String("flow");
  w.Key("ph");
  w.String("s");
  w.Key("id");
  w.String(id);
  w.Key("ts");
  w.Double(static_cast<double>(src.span->end_ns) / 1000.0);
  WriteCommonFields(w, *src.span, src.pid);
  w.EndObject();

  w.BeginObject();
  w.Key("name");
  w.String("causal");
  w.Key("cat");
  w.String("flow");
  w.Key("ph");
  w.String("f");
  w.Key("bp");
  w.String("e");
  w.Key("id");
  w.String(id);
  w.Key("ts");
  w.Double(static_cast<double>(dst.span->start_ns) / 1000.0);
  WriteCommonFields(w, *dst.span, dst.pid);
  w.EndObject();
}

}  // namespace

std::string_view SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kClientRequest:
      return "client_request";
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kDeviceIo:
      return "device_io";
    case SpanKind::kFlush:
      return "flush";
    case SpanKind::kCompact:
      return "compact";
    case SpanKind::kCoalescedGet:
      return "coalesced_get";
    case SpanKind::kMigration:
      return "migration";
  }
  return "?";
}

SpanCollector::SpanCollector(size_t capacity, uint32_t sample_every,
                             uint64_t id_seed)
    : ring_(std::max<size_t>(1, capacity)),
      seed_((id_seed & 0xFF) << 56),
      sample_every_(std::max<uint32_t>(1, sample_every)) {}

void SpanCollector::SeedIds(uint64_t seed) {
  seed_ = (seed & 0xFF) << 56;
}

TraceContext SpanCollector::MintTrace() {
  const uint64_t call = mint_calls_++;
  if (call % sample_every_ != 0) {
    ++sampled_out_;
    return {};
  }
  ++minted_;
  const uint64_t id = NextId();
  return {id, id};
}

TraceContext SpanCollector::MintAlways() {
  ++minted_;
  const uint64_t id = NextId();
  return {id, id};
}

TraceContext SpanCollector::MintChild(const TraceContext& parent) {
  if (!parent.valid()) {
    return {};
  }
  return {parent.trace_id, NextId()};
}

void SpanCollector::Record(const SpanRecord& rec) {
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<SpanRecord> SpanCollector::Spans() const {
  std::vector<SpanRecord> out;
  const size_t n = size();
  out.reserve(n);
  const size_t start = total_ > ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string SpansToChromeTraceJson(const std::vector<SpanExportGroup>& groups) {
  // Materialize every group's retained spans, indexed by span id so flow
  // arrows can resolve sources across collectors (cluster exports).
  std::vector<std::vector<SpanRecord>> spans_by_group;
  spans_by_group.reserve(groups.size());
  std::unordered_map<uint64_t, IndexedSpan> index;
  for (const SpanExportGroup& g : groups) {
    spans_by_group.push_back(g.collector != nullptr ? g.collector->Spans()
                                                    : std::vector<SpanRecord>());
    for (const SpanRecord& s : spans_by_group.back()) {
      index[s.span_id] = IndexedSpan{&s, g.pid};
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();

  // Metadata: process names, and one named thread per tenant seen.
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    w.BeginObject();
    w.Key("name");
    w.String("process_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(groups[gi].pid);
    w.Key("tid");
    w.Int(0);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(groups[gi].process_name.empty() ? "node" : groups[gi].process_name);
    w.EndObject();
    w.EndObject();
    std::unordered_set<uint32_t> named;
    for (const SpanRecord& s : spans_by_group[gi]) {
      if (!named.insert(s.tenant).second) {
        continue;
      }
      w.BeginObject();
      w.Key("name");
      w.String("thread_name");
      w.Key("ph");
      w.String("M");
      w.Key("pid");
      w.Int(groups[gi].pid);
      w.Key("tid");
      w.Uint(s.tenant);
      w.Key("args");
      w.BeginObject();
      w.Key("name");
      w.String("tenant " + std::to_string(s.tenant));
      w.EndObject();
      w.EndObject();
    }
  }

  // Slices.
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (const SpanRecord& s : spans_by_group[gi]) {
      WriteCompleteEvent(w, s, groups[gi].pid);
    }
  }

  // Causal arrows: parent edges and sampled links whose source span is
  // still retained somewhere (evicted sources drop their arrows, never the
  // destination slice).
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (const SpanRecord& s : spans_by_group[gi]) {
      const IndexedSpan dst{&s, groups[gi].pid};
      if (s.parent_span != 0) {
        if (const auto it = index.find(s.parent_span); it != index.end()) {
          WriteFlowPair(w, "p" + HexId(s.span_id), it->second, dst);
        }
      }
      for (uint32_t li = 0; li < s.links.count; ++li) {
        const auto it = index.find(s.links.items[li].span_id);
        if (it == index.end()) {
          continue;
        }
        WriteFlowPair(
            w, "l" + HexId(s.links.items[li].span_id) + "." + HexId(s.span_id),
            it->second, dst);
      }
    }
  }

  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string SpansToChromeTraceJson(const SpanCollector& collector, int pid,
                                   const std::string& process_name) {
  return SpansToChromeTraceJson({SpanExportGroup{&collector, pid,
                                                 process_name}});
}

bool CausallyReaches(const std::vector<SpanRecord>& spans, uint64_t from,
                     const std::function<bool(const SpanRecord&)>& pred) {
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    by_id[s.span_id] = &s;
  }
  std::deque<uint64_t> frontier{from};
  std::unordered_set<uint64_t> visited;
  while (!frontier.empty()) {
    const uint64_t id = frontier.front();
    frontier.pop_front();
    if (!visited.insert(id).second) {
      continue;
    }
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      continue;
    }
    const SpanRecord& s = *it->second;
    if (pred(s)) {
      return true;
    }
    if (s.parent_span != 0) {
      frontier.push_back(s.parent_span);
    }
    for (uint32_t i = 0; i < s.links.count; ++i) {
      frontier.push_back(s.links.items[i].span_id);
    }
  }
  return false;
}

}  // namespace libra::obs
