file(REMOVE_RECURSE
  "CMakeFiles/fig03_ssd_curves.dir/fig03_ssd_curves.cc.o"
  "CMakeFiles/fig03_ssd_curves.dir/fig03_ssd_curves.cc.o.d"
  "fig03_ssd_curves"
  "fig03_ssd_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ssd_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
