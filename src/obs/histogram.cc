#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace libra::obs {

int LatencyHistogram::SlotFor(uint64_t value) {
  if (value > kMaxValue) {
    value = kMaxValue;
  }
  // Values below kSubBuckets sit in the first (unit-width) octave; for the
  // rest, the octave is the position of the highest set bit.
  const int bits = value < kSubBuckets ? kSubBucketBits + 1
                                       : std::bit_width(value);
  const int shift = bits - 1 - kSubBucketBits;
  return static_cast<int>(kSubBuckets) * shift +
         static_cast<int>(value >> shift);
}

uint64_t LatencyHistogram::SlotLowerBound(int slot) {
  const int shift =
      slot < static_cast<int>(2 * kSubBuckets) ? 0 : slot / kSubBuckets - 1;
  const uint64_t sub = static_cast<uint64_t>(slot) - kSubBuckets * shift;
  return sub << shift;
}

uint64_t LatencyHistogram::SlotWidth(int slot) {
  const int shift =
      slot < static_cast<int>(2 * kSubBuckets) ? 0 : slot / kSubBuckets - 1;
  return 1ULL << shift;
}

void LatencyHistogram::RecordN(uint64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  uint32_t& slot = counts_[SlotFor(value)];
  slot = static_cast<uint32_t>(
      std::min<uint64_t>(static_cast<uint64_t>(slot) + n, UINT32_MAX));
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min();
  }
  const double want = std::ceil(p * static_cast<double>(count_));
  const uint64_t rank =
      std::min(count_, static_cast<uint64_t>(std::max(1.0, want)));
  uint64_t cum = 0;
  for (int s = 0; s < kNumSlots; ++s) {
    cum += counts_[s];
    if (cum >= rank) {
      const uint64_t hi = SlotLowerBound(s) + SlotWidth(s) - 1;
      return std::clamp(hi, min(), max_);
    }
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int s = 0; s < kNumSlots; ++s) {
    counts_[s] = static_cast<uint32_t>(
        std::min<uint64_t>(static_cast<uint64_t>(counts_[s]) + other.counts_[s],
                           UINT32_MAX));
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = UINT64_MAX;
  max_ = 0;
}

}  // namespace libra::obs
