#include "src/metrics/meter.h"

namespace libra::metrics {

double TimeSeries::MeanOver(SimTime from, SimTime to) const {
  double sum = 0.0;
  size_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= from && p.time <= to) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace libra::metrics
