// Virtual IOP (VOP) cost models (paper §4.3, Figs. 6 and 8).
//
// A cost model maps (op type, IOP size) to a VOP charge. Libra's model is
//   VOPcost(size) = Max-IOP / Achieved-IOPS(type, size)
// so that any pure backlogged workload consumes ~Max-IOP VOPs per second
// regardless of op size or type, unifying the IOPS-bound and
// bandwidth-bound regimes into one currency.
//
// Alternative models reproduced for the Fig. 8/9 comparison:
//   - ConstantCpb: constant cost-per-byte (DynamoDB pricing: one 100KB GET
//     == one hundred 1KB GETs). Over-charges mid/large ops.
//   - Linear: affine in size, from a naive least-squares fit of the
//     service-time curve (the FlashFQ/mClock family). The bandwidth-bound
//     large sizes dominate the fit, so it under-charges small/medium ops.
//   - FixedPerIop: every IOP costs the same regardless of size (classic
//     IOPS provisioning). Grossly under-charges large ops.

#ifndef LIBRA_SRC_IOSCHED_COST_MODEL_H_
#define LIBRA_SRC_IOSCHED_COST_MODEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/ssd/calibration.h"
#include "src/ssd/io_types.h"

namespace libra::iosched {

class CostModel {
 public:
  virtual ~CostModel() = default;

  // VOP charge for one IO operation of `size_bytes`.
  virtual double Cost(ssd::IoType type, uint32_t size_bytes) const = 0;

  // The model's capacity normalizer: VOP/s a pure workload should achieve.
  virtual double max_vops() const = 0;

  virtual std::string_view name() const = 0;
};

// Table-driven model interpolating the measured calibration curves.
class ExactCostModel : public CostModel {
 public:
  explicit ExactCostModel(ssd::CalibrationTable table);

  double Cost(ssd::IoType type, uint32_t size_bytes) const override;
  double max_vops() const override { return max_iops_; }
  std::string_view name() const override { return "exact"; }

  const ssd::CalibrationTable& table() const { return table_; }

 private:
  ssd::CalibrationTable table_;
  double max_iops_;
};

// Analytic fit of the exact curves: per type, least-squares fit of the
// per-op service time 1/IOPS(s) to the two-bottleneck form t0 + s/bw. The
// fit error relative to ExactCostModel is what separates the "fitted" and
// "exact" bars in Fig. 9.
class FittedCostModel : public CostModel {
 public:
  explicit FittedCostModel(const ssd::CalibrationTable& table);

  double Cost(ssd::IoType type, uint32_t size_bytes) const override;
  double max_vops() const override { return max_iops_; }
  std::string_view name() const override { return "fitted"; }

 private:
  double max_iops_;
  double read_t0_, read_inv_bw_;
  double write_t0_, write_inv_bw_;
};

// DynamoDB-style constant cost-per-byte, anchored at the 1KB cost.
class ConstantCpbModel : public CostModel {
 public:
  explicit ConstantCpbModel(const ssd::CalibrationTable& table);

  double Cost(ssd::IoType type, uint32_t size_bytes) const override;
  double max_vops() const override { return max_iops_; }
  std::string_view name() const override { return "constant"; }

 private:
  double max_iops_;
  double read_cpb_;   // VOPs per KB
  double write_cpb_;
};

// Affine cost from a naive least-squares service-time fit (mClock/FlashFQ
// style): accurate for bandwidth-bound large ops, undercuts the rest.
class LinearCostModel : public CostModel {
 public:
  explicit LinearCostModel(const ssd::CalibrationTable& table);

  double Cost(ssd::IoType type, uint32_t size_bytes) const override;
  double max_vops() const override { return max_iops_; }
  std::string_view name() const override { return "linear"; }

 private:
  double max_iops_;
  double read_alpha_, read_beta_;    // cost = alpha + beta * KB
  double write_alpha_, write_beta_;
};

// Size-oblivious per-IOP cost, anchored at the 1KB cost.
class FixedCostModel : public CostModel {
 public:
  explicit FixedCostModel(const ssd::CalibrationTable& table);

  double Cost(ssd::IoType type, uint32_t size_bytes) const override;
  double max_vops() const override { return max_iops_; }
  std::string_view name() const override { return "fixed"; }

 private:
  double max_iops_;
  double read_cost_;
  double write_cost_;
};

// Factory by name ("exact", "fitted", "constant", "linear", "fixed").
std::unique_ptr<CostModel> MakeCostModel(std::string_view name,
                                         const ssd::CalibrationTable& table);

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_COST_MODEL_H_
