#include "src/sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace libra::sim {

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, Callback cb) {
  assert(cb);
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end());
  return id;
}

void EventLoop::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return;
  }
  cancelled_.insert(id);
}

bool EventLoop::PopNext(Event& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

uint64_t EventLoop::Run() {
  stopped_ = false;
  uint64_t dispatched = 0;
  Event ev;
  while (!stopped_ && PopNext(ev)) {
    assert(ev.when >= now_);
    now_ = ev.when;
    ev.cb();
    ++dispatched;
  }
  return dispatched;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!stopped_) {
    // Peek: find the earliest live event without committing to running it.
    Event ev;
    if (!PopNext(ev)) {
      break;
    }
    if (ev.when > deadline) {
      // Put it back; it belongs to a later epoch.
      heap_.push_back(std::move(ev));
      std::push_heap(heap_.begin(), heap_.end());
      break;
    }
    now_ = ev.when;
    ev.cb();
    ++dispatched;
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
  return dispatched;
}

bool EventLoop::RunOne() {
  Event ev;
  if (!PopNext(ev)) {
    return false;
  }
  now_ = ev.when;
  ev.cb();
  return true;
}

}  // namespace libra::sim
