// Shared setup for the prototype (KV-node) benches: Figs. 2, 10, 11, 12.

#ifndef LIBRA_BENCH_KV_BENCH_COMMON_H_
#define LIBRA_BENCH_KV_BENCH_COMMON_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::bench {

// Node configured like the paper's prototype: Intel 320, exact cost model,
// no object cache, 4MB write buffers.
kv::NodeOptions PrototypeNodeOptions();

// Applies --trace-json/--trace-sample to a node's scheduler options: span
// collection on (capacity `span_capacity`) when tracing was requested,
// sampling 1 of every args.trace_sample root requests. Leave id seeding to
// Cluster for multi-node benches; single-node benches can pass a nonzero
// `id_seed` to namespace ids per node themselves.
void ApplyTraceFlags(const BenchArgs& args, kv::NodeOptions& options,
                     size_t span_capacity = 1 << 16, uint64_t id_seed = 0);

// Runs `preloads` to completion on `loop` (sequentially).
void RunPreloads(sim::EventLoop& loop,
                 std::vector<workload::KvTenantWorkload*> workloads);

}  // namespace libra::bench

#endif  // LIBRA_BENCH_KV_BENCH_COMMON_H_
