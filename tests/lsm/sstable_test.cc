#include "src/lsm/sstable.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

const iosched::IoTag kFlushTag{1, iosched::AppRequest::kPut,
                               iosched::InternalOp::kFlush};
const iosched::IoTag kGetTag{1, iosched::AppRequest::kGet,
                             iosched::InternalOp::kNone};

// Builds a table with `n` keys "key00000i" -> "value_i" at seq i+1.
fs::FileId BuildTestTable(LsmRig& rig, int n, uint32_t value_size = 100) {
  const fs::FileId file = *rig.fs.Create("sst_1");
  rig.RunTask([&, file]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file);
    for (int i = 0; i < n; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%07d", i);
      builder.Add(key, static_cast<SequenceNumber>(i + 1), ValueType::kPut,
                  std::string(value_size, 'a' + (i % 26)));
    }
    EXPECT_TRUE((co_await builder.Finish(kFlushTag)).ok());
  }());
  return file;
}

TEST(SstableTest, BuildAndLookup) {
  LsmRig rig;
  const fs::FileId file = BuildTestTable(rig, 500);
  SstableReader reader(rig.fs, file);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0000042", UINT64_MAX);
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.found);
    if (r.found) {
      EXPECT_EQ(r.value, std::string(100, 'a' + (42 % 26)));
    }
  }());
}

TEST(SstableTest, MissingKeyNotFound) {
  LsmRig rig;
  const fs::FileId file = BuildTestTable(rig, 100);
  SstableReader reader(rig.fs, file);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0000xyz", UINT64_MAX);
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.found);
    // Before the first key and after the last key.
    r = co_await reader.Get(kGetTag, "aaa", UINT64_MAX);
    EXPECT_FALSE(r.found);
    r = co_await reader.Get(kGetTag, "zzz", UINT64_MAX);
    EXPECT_FALSE(r.found);
  }());
}

TEST(SstableTest, SmallestLargestTracked) {
  LsmRig rig;
  const fs::FileId file = *rig.fs.Create("sst_1");
  rig.RunTask([&]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file);
    builder.Add("apple", 1, ValueType::kPut, "1");
    builder.Add("mango", 2, ValueType::kPut, "2");
    builder.Add("zebra", 3, ValueType::kPut, "3");
    EXPECT_EQ(builder.smallest_key(), "apple");
    EXPECT_EQ(builder.largest_key(), "zebra");
    EXPECT_EQ(builder.num_entries(), 3u);
    co_await builder.Finish(kFlushTag);
  }());
}

TEST(SstableTest, TombstonesSurfaceAsDeleted) {
  LsmRig rig;
  const fs::FileId file = *rig.fs.Create("sst_1");
  rig.RunTask([&]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file);
    builder.Add("key", 5, ValueType::kDelete, "");
    builder.Add("key", 2, ValueType::kPut, "old");
    co_await builder.Finish(kFlushTag);
    SstableReader reader(rig.fs, file);
    auto r = co_await reader.Get(kGetTag, "key", UINT64_MAX);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.deleted);
    // At an older snapshot the PUT is visible.
    r = co_await reader.Get(kGetTag, "key", 2);
    EXPECT_TRUE(r.found);
    EXPECT_FALSE(r.deleted);
    EXPECT_EQ(r.value, "old");
  }());
}

TEST(SstableTest, LookupCostsIndexPlusDataBlock) {
  LsmRig rig;
  const fs::FileId file = BuildTestTable(rig, 2000);  // many 4KB blocks
  SstableReader reader(rig.fs, file);
  const auto before = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0001000", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  const auto after = rig.sched.tracker().Stats(1);
  // Footer + index + one data block = 3 reads (both cached afterwards,
  // like LevelDB's table cache).
  EXPECT_EQ(after.read_ops - before.read_ops, 3u);

  const auto mid = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0000001", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  // Second lookup: one data-block read only.
  EXPECT_EQ(rig.sched.tracker().Stats(1).read_ops - mid.read_ops, 1u);
}

CachedBlockRef MakeBlock() { return std::make_shared<CachedBlock>(); }

TEST(BlockCacheTest, BoundedCapacityEvictsLeastRecentlyUsed) {
  constexpr auto kIdx = BlockCache::Kind::kIndex;
  BlockCache cache(100);
  cache.Insert(1, 1, kIdx, 0, MakeBlock(), 40);
  cache.Insert(1, 2, kIdx, 0, MakeBlock(), 40);
  EXPECT_EQ(cache.resident_bytes(), 80u);
  // Touch table 1 so table 2 becomes the LRU tail.
  EXPECT_NE(cache.Get(1, 1, kIdx, 0), nullptr);
  cache.Insert(1, 3, kIdx, 0, MakeBlock(), 40);  // 120 > 100: evicts table 2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 80u);
  EXPECT_EQ(cache.Get(1, 2, kIdx, 0), nullptr);  // miss
  EXPECT_NE(cache.Get(1, 1, kIdx, 0), nullptr);
  EXPECT_NE(cache.Get(1, 3, kIdx, 0), nullptr);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
  // EraseTable (table deletion) is not an eviction.
  cache.EraseTable(1, 1);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(BlockCacheTest, ZeroCapacityIsUnbounded) {
  BlockCache cache(0);
  for (uint64_t t = 0; t < 32; ++t) {
    cache.Insert(1, t, BlockCache::Kind::kIndex, 0, MakeBlock(), 1 * kMiB);
  }
  EXPECT_EQ(cache.entries(), 32u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 32u * kMiB);
}

TEST(SstableTest, SharedCacheServesRepeatLookups) {
  LsmRig rig;
  const fs::FileId file = BuildTestTable(rig, 2000);
  // Index-only mode — the deprecated table_cache_bytes configuration.
  BlockCache cache(1 * kMiB, /*cache_data=*/false);
  SstableReader reader(rig.fs, file, {}, &cache, /*table=*/1, /*tenant=*/1);
  const auto before = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0001000", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  // Cold: footer + index + data block, and the index landed in the cache.
  EXPECT_EQ(rig.sched.tracker().Stats(1).read_ops - before.read_ops, 3u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);
  const auto mid = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await reader.Get(kGetTag, "key0000001", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  // Warm: the shared cache supplies the index; only the data block is read.
  EXPECT_EQ(rig.sched.tracker().Stats(1).read_ops - mid.read_ops, 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(SstableTest, EvictedIndexReloadIsRereadAndCharged) {
  LsmRig rig;
  const fs::FileId file_a = BuildTestTable(rig, 2000);
  // A second table in the same FS (BuildTestTable always names "sst_1").
  const fs::FileId file_b = *rig.fs.Create("sst_2");
  rig.RunTask([&]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file_b);
    for (int i = 0; i < 2000; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%07d", i);
      builder.Add(key, static_cast<SequenceNumber>(i + 1), ValueType::kPut,
                  std::string(100, 'b'));
    }
    EXPECT_TRUE((co_await builder.Finish(kFlushTag)).ok());
  }());
  // Capacity below a single index: every insert evicts the other table's
  // entry (an insert never evicts itself, so the newest index is resident).
  BlockCache cache(1, /*cache_data=*/false);
  SstableReader ra(rig.fs, file_a, {}, &cache, /*table=*/1, /*tenant=*/1);
  SstableReader rb(rig.fs, file_b, {}, &cache, /*table=*/2, /*tenant=*/1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await ra.Get(kGetTag, "key0001000", UINT64_MAX);
    EXPECT_TRUE(r.found);
    r = co_await rb.Get(kGetTag, "key0001000", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  ASSERT_GE(cache.evictions(), 1u);
  const auto mid = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await ra.Get(kGetTag, "key0000500", UINT64_MAX);
    EXPECT_TRUE(r.found);
  }());
  // Table A's index was evicted: reload re-reads the index block (footer
  // stays cached in the reader) plus the data block = 2 charged reads,
  // where a resident index would have cost 1.
  EXPECT_EQ(rig.sched.tracker().Stats(1).read_ops - mid.read_ops, 2u);
}

TEST(SstableTest, ScanAllYieldsEverythingInOrder) {
  LsmRig rig;
  const fs::FileId file = BuildTestTable(rig, 777);
  SstableReader reader(rig.fs, file);
  std::vector<std::string> keys;
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await reader.ScanAll(
                     kGetTag, [&](const Record& r) { keys.emplace_back(r.key); }))
                    .ok());
  }());
  ASSERT_EQ(keys.size(), 777u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), "key0000000");
  EXPECT_EQ(keys.back(), "key0000776");
}

TEST(SstableTest, LargeValuesSpanBlocks) {
  LsmRig rig;
  const fs::FileId file = *rig.fs.Create("sst_1");
  const std::string big(64 * 1024, 'B');
  rig.RunTask([&]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file);
    builder.Add("big0", 1, ValueType::kPut, big);
    builder.Add("big1", 2, ValueType::kPut, big);
    co_await builder.Finish(kFlushTag);
    SstableReader reader(rig.fs, file);
    auto r = co_await reader.Get(kGetTag, "big1", UINT64_MAX);
    EXPECT_TRUE(r.found);
    if (r.found) {
      EXPECT_EQ(r.value, big);
    }
  }());
}

TEST(SstableTest, EmptyTableLookups) {
  LsmRig rig;
  const fs::FileId file = *rig.fs.Create("sst_1");
  rig.RunTask([&]() -> sim::Task<void> {
    SstableBuilder builder(rig.fs, file);
    co_await builder.Finish(kFlushTag);
    SstableReader reader(rig.fs, file);
    auto r = co_await reader.Get(kGetTag, "anything", UINT64_MAX);
    EXPECT_FALSE(r.found);
  }());
}

}  // namespace
}  // namespace libra::lsm
