#include "src/sim/multi_loop.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

namespace libra::sim {

MultiLoop::MultiLoop(int num_loops, MultiLoopOptions options)
    : options_(options) {
  assert(num_loops >= 1);
  assert(options_.lookahead > 0 && "MultiLoop requires a positive lookahead");
  if (options_.threads < 1) {
    options_.threads = 1;
  }
  loops_.reserve(static_cast<size_t>(num_loops));
  for (int i = 0; i < num_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  outbox_.resize(static_cast<size_t>(num_loops));
  const int pool = std::min(options_.threads, num_loops) - 1;
  workers_.reserve(static_cast<size_t>(std::max(0, pool)));
  for (int i = 0; i < pool; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

MultiLoop::~MultiLoop() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
}

Status MultiLoop::CheckDelay(SimDuration delay) const {
  if (delay < options_.lookahead) {
    return Status::InvalidArgument(
        "cross-loop delay " + std::to_string(delay) +
        "ns is below the conservative-sync lookahead " +
        std::to_string(options_.lookahead) +
        "ns: a message could arrive inside an epoch that already ran, "
        "diverging from the serial engine (raise the delay or lower the "
        "lookahead)");
  }
  return Status::Ok();
}

void MultiLoop::Send(int from, int to, SimDuration delay, SmallFn cb) {
  assert(from >= 0 && from < num_loops());
  assert(to >= 0 && to < num_loops());
  if (Status s = CheckDelay(delay); !s.ok()) {
    std::fprintf(stderr, "MultiLoop::Send: %s\n", s.message().c_str());
    std::abort();
  }
  Outbox& ob = outbox_[static_cast<size_t>(from)];
  ob.msgs.push_back(Message{loops_[static_cast<size_t>(from)]->Now() + delay,
                            static_cast<uint32_t>(from),
                            static_cast<uint32_t>(to), ob.next_seq++,
                            std::move(cb)});
}

void MultiLoop::ScheduleBarrierAt(SimTime when, std::function<void()> hook) {
  if (when < barrier_now_) {
    when = barrier_now_;
  }
  hooks_.push_back(Hook{when, hook_seq_++, std::move(hook)});
}

void MultiLoop::Exchange() {
  std::vector<Message> all;
  for (Outbox& ob : outbox_) {
    if (ob.msgs.empty()) {
      continue;
    }
    all.insert(all.end(), std::make_move_iterator(ob.msgs.begin()),
               std::make_move_iterator(ob.msgs.end()));
    ob.msgs.clear();
  }
  if (all.empty()) {
    return;
  }
  messages_sent_ += all.size();
  // Stable cross-thread order: delivery time, then sender, then the
  // sender's own send order. Injection in this order makes the receiving
  // loop's FIFO tie-break at equal timestamps schedule-independent.
  std::sort(all.begin(), all.end(), [](const Message& a, const Message& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.from != b.from) {
      return a.from < b.from;
    }
    return a.seq < b.seq;
  });
  for (Message& m : all) {
    // The lookahead floor guarantees delivery at or after the next horizon,
    // which is ahead of every receiver's clock — never clamped.
    assert(m.when >= loops_[m.to]->Now());
    loops_[m.to]->ScheduleAt(m.when, std::move(m.cb));
  }
}

std::optional<SimTime> MultiLoop::NextBarrierTime() {
  std::optional<SimTime> g;
  for (auto& l : loops_) {
    const std::optional<SimTime> t = l->NextEventTime();
    if (t.has_value() && (!g.has_value() || *t < *g)) {
      g = t;
    }
  }
  for (const Hook& h : hooks_) {
    const SimTime t = std::max(h.when, barrier_now_);
    if (!g.has_value() || t < *g) {
      g = t;
    }
  }
  return g;
}

void MultiLoop::RunDueHooks(SimTime barrier) {
  if (hooks_.empty()) {
    return;
  }
  // Snapshot the due set: hooks registered by a running hook (re-arming
  // timers) wait for the next barrier. (when, seq) order keeps multiple
  // due hooks deterministic.
  std::vector<Hook> due;
  std::vector<Hook> rest;
  for (Hook& h : hooks_) {
    (h.when <= barrier ? due : rest).push_back(std::move(h));
  }
  hooks_ = std::move(rest);
  std::sort(due.begin(), due.end(), [](const Hook& a, const Hook& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  });
  for (Hook& h : due) {
    h.fn();
  }
}

uint64_t MultiLoop::RunEpochs(bool bounded, SimTime deadline) {
  uint64_t dispatched = 0;
  for (;;) {
    Exchange();
    const std::optional<SimTime> g = NextBarrierTime();
    if (!g.has_value() || (bounded && *g > deadline)) {
      break;
    }
    const SimTime barrier = *g;
    for (auto& l : loops_) {
      l->AdvanceTo(barrier);
    }
    barrier_now_ = barrier;
    RunDueHooks(barrier);
    // Exclusive horizon: an event exactly at `deadline` must dispatch (the
    // serial RunUntil deadline is inclusive), while events exactly at an
    // interior barrier time H belong to the NEXT epoch, whose barrier will
    // be exactly H — the same instant the serial engine runs them.
    SimTime horizon = barrier + options_.lookahead;
    if (bounded && horizon > deadline) {
      horizon = deadline + 1;
    }
    dispatched += StepAll(horizon);
    ++epochs_;
  }
  if (bounded) {
    for (auto& l : loops_) {
      l->AdvanceTo(deadline);
    }
    if (barrier_now_ < deadline) {
      barrier_now_ = deadline;
    }
  }
  return dispatched;
}

uint64_t MultiLoop::RunUntil(SimTime deadline) {
  return RunEpochs(/*bounded=*/true, deadline);
}

uint64_t MultiLoop::Run() {
  return RunEpochs(/*bounded=*/false,
                   std::numeric_limits<SimTime>::max());
}

uint64_t MultiLoop::StepAll(SimTime horizon) {
  step_horizon_ = horizon;
  next_loop_.store(0, std::memory_order_relaxed);
  step_dispatched_.store(0, std::memory_order_relaxed);
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++epoch_gen_;
      workers_running_ = static_cast<int>(workers_.size());
    }
    cv_start_.notify_all();
  }
  StepWorker();
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return workers_running_ == 0; });
  }
  return step_dispatched_.load(std::memory_order_relaxed);
}

void MultiLoop::StepWorker() {
  const int n = num_loops();
  for (;;) {
    const int i = next_loop_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    step_dispatched_.fetch_add(
        loops_[static_cast<size_t>(i)]->RunBefore(step_horizon_),
        std::memory_order_relaxed);
  }
}

void MultiLoop::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk,
                     [this, seen] { return shutdown_ || epoch_gen_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = epoch_gen_;
    }
    StepWorker();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_running_ == 0) {
        cv_done_.notify_one();
      }
    }
  }
}

}  // namespace libra::sim
