// Multi-tenant key-value storage node — the full per-node stack of Fig. 1:
// protocol/cache layer, per-tenant LSM partitions, the Libra IO scheduler
// and resource policy over a simulated SSD.
//
// This is the library's primary user-facing facade: register tenants with
// app-request reservations (normalized 1KB requests/s per class — GET, PUT,
// SCAN — as a system-wide policy such as Pisces would set per node), issue
// GET/PUT/DEL/SCAN, and Libra provisions VOP allocations to meet the
// reservations while staying work-conserving.

#ifndef LIBRA_SRC_KV_STORAGE_NODE_H_
#define LIBRA_SRC_KV_STORAGE_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace_context.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/capacity.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/resource_policy.h"
#include "src/iosched/scheduler.h"
#include "src/kv/cache.h"
#include "src/kv/node_stats.h"
#include "src/lsm/db.h"
#include "src/obs/registry.h"
#include "src/sim/event_loop.h"
#include "src/ssd/calibration.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::kv {

struct NodeOptions {
  ssd::DeviceProfile device_profile;        // defaults to Intel 320
  ssd::DeviceOptions device_options;
  ssd::CalibrationTable calibration;        // cost-model source (required)
  std::string cost_model = "exact";         // exact|fitted|constant|linear|fixed
  iosched::SchedulerOptions scheduler_options;
  iosched::PolicyOptions policy_options;
  double capacity_floor_vops = iosched::kIntel320VopFloor;
  // lsm_options.bloom_bits_per_key turns on per-SSTable bloom filters;
  // lsm_options.block_cache_bytes makes the node own ONE BlockCache shared
  // by every tenant's partition (single budget, per-tenant accounting)
  // rather than a per-partition cache. Both default off.
  lsm::LsmOptions lsm_options;
  bool enable_cache = false;                // paper's experiments: disabled
  size_t cache_bytes = 64 * kMiB;
  // Singleflight for duplicate in-flight GETs of the same (tenant, key):
  // followers ride the leader's LSM lookup instead of issuing their own
  // index/data block reads. Off by default (paper-faithful: every GET pays
  // its own IO).
  bool enable_read_coalescing = false;
  uint64_t prefill_bytes = 1ULL * kGiB;     // device preconditioning
  // Attribution-conformance flagging threshold: a tenant whose observed
  // q̂^{a,i} diverges from its declared profile by more than this relative
  // error (on any significant cell) is reported non-conformant in the
  // stats JSON. Only meaningful when tracing (span_capacity) is on and the
  // tenant declared a profile.
  double attribution_tolerance = 0.25;

  NodeOptions() : device_profile(ssd::Intel320Profile()) {}
};

class StorageNode {
 public:
  StorageNode(sim::EventLoop& loop, NodeOptions options);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  // Registers a tenant with its local app-request reservation and creates
  // its partition. Rejects duplicate tenants (kAlreadyExists) and malformed
  // reservations (kInvalidArgument: negative or non-finite rates; zero is
  // legal and means best-effort).
  // `declared` is the attribution profile the tenant claims (VOPs per
  // normalized request by app-request x internal-op cell); when provided,
  // the conformance monitor verifies the observed matrix against it.
  // `compaction` is the tenant's LSM compaction policy — a per-tenant
  // choice that shapes the indirect profile (and so the per-class VOP
  // prices); it sticks across Restart() and is stamped on audit records.
  Status AddTenant(
      iosched::TenantId tenant, iosched::Reservation reservation,
      obs::DeclaredAttribution declared = {},
      lsm::CompactionPolicy compaction = lsm::CompactionPolicy::kLeveled);

  // Replaces a registered tenant's reservation. Rejects unknown tenants
  // (kNotFound) and malformed reservations (kInvalidArgument), mirroring
  // AddTenant.
  Status UpdateReservation(iosched::TenantId tenant,
                           iosched::Reservation reservation);

  // Starts the resource policy's periodic reprovisioning.
  void Start() { policy_.Start(); }
  void Stop() { policy_.Stop(); }

  // --- crash / recovery simulation ---

  // Crash(): stops the policy, kills every partition (in-flight coroutines
  // unwind at their next suspension point) and gates the request API
  // behind kUnavailable. The device, filesystem and reservations survive —
  // disk contents and control-plane state are durable; only the process
  // dies. Killed partitions are parked in a graveyard until Restart().
  void Crash();
  bool crashed() const { return crashed_; }

  // Restart(): waits for the killed partitions' coroutines to unwind,
  // destroys them (their installed SSTs are reclaimed — with no manifest,
  // table metadata died with the process; WAL files persist), then
  // recreates every tenant's partition over the same prefix so Open()
  // replays the surviving WALs. Reservations and declared profiles are
  // restored from the policy, which kept them. Resumes the policy. The
  // cluster layer drives re-replication catch-up afterwards.
  sim::Task<Status> Restart();

  // Cumulative recovery accounting across all restarts of this node.
  uint64_t crashes() const { return crashes_; }
  uint64_t restarts() const { return restarts_; }

  // --- request API (coroutines; suspend on IO scheduling) ---

  // `ctx` is an optional caller span (the cluster layer's client-request
  // span); when invalid and tracing is on, the node mints a root trace for
  // the request (honoring the collector's 1/N sampling).
  sim::Task<Status> Put(iosched::TenantId tenant, const std::string& key,
                        const std::string& value, TraceContext ctx = {});
  sim::Task<Status> Delete(iosched::TenantId tenant, const std::string& key,
                           TraceContext ctx = {});

  sim::Task<Result<std::string>> Get(iosched::TenantId tenant,
                                     const std::string& key,
                                     TraceContext ctx = {});

  // Bounded range scan over [start, end) — empty `end` = to the end of the
  // keyspace — yielding at most `limit` live entries (0 = no limit). A
  // merge-read across the tenant's whole LSM partition; its IO is charged
  // to the SCAN class and billed by the bytes it returns (min. one
  // normalized request), so range reads carry their own q̂^{a,i} column.
  sim::Task<lsm::LsmDb::ScanResult> Scan(iosched::TenantId tenant,
                                         const std::string& start,
                                         const std::string& end, size_t limit,
                                         TraceContext ctx = {});

  // --- introspection for evaluation harnesses ---

  iosched::IoScheduler& scheduler() { return scheduler_; }
  iosched::ResourcePolicy& policy() { return policy_; }
  iosched::ResourceTracker& tracker() { return scheduler_.tracker(); }
  iosched::CapacityModel& capacity() { return capacity_; }
  ssd::SsdDevice& device() { return device_; }
  fs::SimFs& filesystem() { return fs_; }
  lsm::LsmDb* partition(iosched::TenantId tenant);
  bool HasTenant(iosched::TenantId tenant) const {
    return partitions_.count(tenant) > 0;
  }
  std::vector<iosched::TenantId> tenants() const;
  const LruCache* cache() const { return cache_.get(); }
  // The node-shared SSTable block cache; nullptr unless
  // lsm_options.block_cache_bytes > 0.
  const lsm::BlockCache* block_cache() const { return block_cache_.get(); }
  // GETs that rode another request's in-flight lookup (read coalescing).
  uint64_t coalesced_gets() const { return coalesced_gets_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Gathers every layer's statistics at the current simulated time; the
  // JSON rendering is NodeStatsToJson (node_stats.h).
  NodeStats Snapshot() const;

 private:
  // Per-tenant app-request latency series, resolved once at AddTenant so
  // the request path records without registry lookups or allocation.
  struct RequestLatency {
    obs::LatencyHistogram* get = nullptr;
    obs::LatencyHistogram* put = nullptr;
    obs::LatencyHistogram* scan = nullptr;
  };

  // The tenant's LsmOptions: the node-wide base with the tenant's declared
  // compaction policy applied.
  lsm::LsmOptions TenantLsmOptions(iosched::TenantId tenant) const;

  sim::EventLoop& loop_;
  NodeOptions options_;
  ssd::SsdDevice device_;
  iosched::IoScheduler scheduler_;
  fs::SimFs fs_;
  iosched::CapacityModel capacity_;
  iosched::ResourcePolicy policy_;
  std::unique_ptr<LruCache> cache_;
  // Node-shared SSTable block cache (see NodeOptions.lsm_options). Declared
  // before partitions_/graveyard_: their TableHandle destructors erase
  // blocks from it, so it must outlive them.
  std::unique_ptr<lsm::BlockCache> block_cache_;
  std::map<iosched::TenantId, std::unique_ptr<lsm::LsmDb>> partitions_;
  // Killed partitions awaiting quiescence (see Crash/Restart). Declared
  // next to partitions_ so destruction order versus fs_/scheduler_ is the
  // same for both.
  std::vector<std::unique_ptr<lsm::LsmDb>> graveyard_;
  bool crashed_ = false;
  bool policy_was_running_ = false;  // policy state to restore at Restart()
  uint64_t crashes_ = 0;
  uint64_t restarts_ = 0;
  // WAL replay totals accumulated over every restart (the per-partition
  // LsmStats reset with each new incarnation).
  uint64_t recovery_wal_files_ = 0;
  uint64_t recovery_replay_records_ = 0;
  uint64_t recovery_replay_bytes_ = 0;
  obs::MetricsRegistry metrics_;
  std::map<iosched::TenantId, RequestLatency> request_latency_;
  // Singleflight table: in-flight GET leaders keyed by (tenant, key);
  // followers park a OneShot here and are resolved when the leader's
  // lookup lands. Single-threaded coroutine interleaving makes the
  // find-or-claim race-free. The leader's span context is kept so follower
  // spans can link the lookup they rode.
  struct GetFlight {
    TraceContext leader_ctx;
    std::vector<sim::OneShot<Result<std::string>>*> waiters;
  };
  std::map<std::pair<iosched::TenantId, std::string>, GetFlight> inflight_gets_;
  uint64_t coalesced_gets_ = 0;
};

}  // namespace libra::kv

#endif  // LIBRA_SRC_KV_STORAGE_NODE_H_
