// Read-path demo: per-SSTable bloom filters and the shared block cache as
// a filters x cache ablation over a read-heavy mix.
//
// Five sequential deterministic simulations on identical workloads (same
// seeds, same reservations; two tenants — leveled and size-tiered):
//   baseline        bloom off, cache off (the seed read path)
//   filters         bloom 10 bits/key    — negative probes skip index+data
//   cache           shared 4MiB block cache — hot blocks cost zero device IO
//   filters+cache   both
//   conformance     filters+cache again, with declared profiles: tenant 1
//                   declares the STALE baseline q̂ (flagged — the filtered
//                   read path repriced its GETs), tenant 2 declares the
//                   filtered q̂ (conformant).
// For each phase the demo reads back data-block device reads per GET, the
// floor (min-tenant) GET throughput, the admitted reservation mass from the
// audit records, and bit-for-bit VOP conservation (attribution total ==
// tracker sum on every node; filter and cache-fill IO rides the caller's
// IoTag, so conservation must survive the new read path).
// Contract (exit 1 on violation): filters cut data-block reads per GET
// >= 3x vs baseline, bloom counters are exactly zero when off, cache hits
// appear only when the cache is on, required VOP mass drops under
// filters+cache (repricing), conservation holds everywhere, and the
// conformance verdicts split as declared. Output is byte-identical for any
// --sim-threads at a fixed --rpc-latency-us.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/metrics/table.h"
#include "src/obs/conformance.h"
#include "src/workload/cluster_workload.h"

namespace libra::bench {
namespace {

using cluster::Cluster;
using cluster::GlobalReservation;
using iosched::AppRequest;
using iosched::TenantId;

struct PhaseSpec {
  const char* name;
  uint32_t bloom_bits;
  uint64_t cache_bytes;
  bool declare = false;  // conformance phase: install declared profiles
};

constexpr PhaseSpec kPhases[] = {
    {"baseline", 0, 0},
    {"filters", 10, 0},
    {"cache", 0, 4 * kMiB},
    {"filters+cache", 10, 4 * kMiB},
    {"conformance", 10, 4 * kMiB, true},
};
constexpr size_t kBaseline = 0, kFilters = 1, kCache = 2, kBoth = 3,
                 kConformance = 4;

constexpr TenantId kTenants[] = {1, 2};
constexpr lsm::CompactionPolicy kPolicies[] = {
    lsm::CompactionPolicy::kLeveled, lsm::CompactionPolicy::kSizeTiered};
constexpr size_t kN = std::size(kTenants);

// Read-heavy per-class reservation, identical across phases: any shift in
// required VOP mass is purely the measured profiles repricing.
constexpr GlobalReservation kGlobal{1600.0, 400.0, 100.0};

// Cluster-wide measured profile (attribution matrices summed across nodes
// in node order — deterministic FP).
struct MeasuredProfile {
  double vops[obs::kAttrApps][obs::kAttrInternal] = {};
  double norm_requests[obs::kAttrApps] = {};

  double Q(int app, int internal) const {
    const double n = norm_requests[app];
    return n > 0.0 ? vops[app][internal] / n : 0.0;
  }
  double QTotal(int app) const {
    double q = 0.0;
    for (int i = 0; i < obs::kAttrInternal; ++i) {
      q += Q(app, i);
    }
    return q;
  }
};

struct PhaseResult {
  // LSM read-path counters summed over nodes x tenants.
  uint64_t lsm_gets = 0;
  uint64_t data_reads = 0;
  uint64_t index_reads = 0;
  uint64_t filter_reads = 0;
  uint64_t data_cache_hits = 0;
  uint64_t probes = 0;
  uint64_t negatives = 0;
  uint64_t false_positives = 0;
  // Node-shared block caches (summed over nodes).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Floor (min-tenant) achieved GET rate, normalized requests/s.
  double floor_get_rate = 0.0;
  // Admitted reservation mass (last audit record, summed over nodes).
  double required = 0.0;
  double granted = 0.0;
  uint64_t conservation_cells = 0;
  uint64_t conservation_violations = 0;
  uint64_t scan_errors = 0;
  MeasuredProfile profile[kN];
  // Conformance phase only: per-tenant verdict rollup.
  int observed_nodes[kN] = {};
  int nonconformant_nodes[kN] = {};

  double DataReadsPerGet() const {
    return lsm_gets > 0 ? static_cast<double>(data_reads) / lsm_gets : 0.0;
  }
};

sim::Task<void> PreloadAll(
    std::vector<std::unique_ptr<workload::ClusterTenantWorkload>>* workloads) {
  for (auto& wl : *workloads) {
    co_await wl->Preload();
  }
}

PhaseResult RunPhase(const BenchArgs& args, const PhaseSpec& spec,
                     const obs::DeclaredAttribution* declared) {
  PhaseResult out;
  SimRig rig = MakeSimRig(args, args.nodes);
  sim::EventLoop& loop = rig.client();
  cluster::ClusterOptions copt;
  copt.num_nodes = args.nodes;
  copt.node_options = PrototypeNodeOptions();
  copt.provisioner.interval = 1 * kSecond;
  // Small memtables and files so the read range spans many tables; the
  // workload's in-range miss GETs are what the filters' negative probes
  // collapse to zero device reads.
  copt.node_options.lsm_options.write_buffer_bytes = 128 * kKiB;
  copt.node_options.lsm_options.target_file_bytes = 256 * kKiB;
  copt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  copt.node_options.lsm_options.l0_compaction_trigger = 6;
  copt.node_options.lsm_options.wal_group_commit = true;
  copt.node_options.lsm_options.bloom_bits_per_key = spec.bloom_bits;
  copt.node_options.lsm_options.block_cache_bytes = spec.cache_bytes;
  copt.node_options.scheduler_options.span_capacity = 1 << 14;
  // Declared profiles are the cluster-wide mean, but each node observes its
  // own q̂ and compaction phases drift node-to-node (measured jitter up to
  // ~0.28 here). 0.4 clears that jitter while still catching the stale
  // baseline declaration, which diverges by ~0.98 after filters reprice.
  copt.node_options.attribution_tolerance = 0.4;
  std::unique_ptr<Cluster> cl_holder = MakeCluster(rig, copt);
  Cluster& cl = *cl_holder;

  std::vector<cluster::TenantHandle> handles;
  for (size_t i = 0; i < kN; ++i) {
    obs::DeclaredAttribution decl;
    if (spec.declare && declared != nullptr) {
      decl = declared[i];
    }
    Result<cluster::TenantHandle> h =
        cl.AddTenant(kTenants[i], kGlobal, kPolicies[i], decl);
    if (!h.ok()) {
      std::fprintf(stderr, "AddTenant(%u): %s\n", kTenants[i],
                   h.status().message().c_str());
      std::exit(1);
    }
    handles.push_back(h.value());
  }

  std::vector<std::unique_ptr<workload::ClusterTenantWorkload>> workloads;
  for (size_t i = 0; i < kN; ++i) {
    workload::KvWorkloadSpec w;
    w.get_fraction = 0.8;  // read-heavy
    // Most GETs are existence probes for keys that were never written
    // (in-range misses). Without filters each miss still pays a data-block
    // read in the covering table; with filters the negative probe answers
    // from the resident filter block at zero device reads.
    w.get_absent_fraction = 0.75;
    w.scan_fraction = 0.05;
    w.scan_span = 16;
    w.get_size = {1024.0, 256.0};
    w.put_size = {1024.0, 256.0};
    w.live_bytes_target = (args.full ? 8ULL : 4ULL) * kMiB;
    w.workers = 8;
    workloads.push_back(std::make_unique<workload::ClusterTenantWorkload>(
        loop, handles[i], w, 7000 + kTenants[i]));
  }
  {
    sim::TaskGroup group(loop);
    group.Spawn(PreloadAll(&workloads));
    rig.Run();
  }

  const SimTime t0 = loop.Now();
  const SimTime t_warm = t0 + (args.full ? 10 : 5) * kSecond;
  const SimTime t_end = t_warm + (args.full ? 20 : 10) * kSecond;

  cl.Start();

  double gets0[kN]{}, gets1[kN]{};
  auto snap = [&](double* g) {
    for (size_t i = 0; i < kN; ++i) {
      g[i] = cl.GlobalNormalizedTotal(kTenants[i], AppRequest::kGet);
    }
  };
  rig.AtTime(t_warm, [&] { snap(gets0); });
  rig.AtTime(t_end, [&] { snap(gets1); });

  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      wl->Start(group, t_end);
    }
    rig.RunUntil(t_end + kSecond);
    cl.Stop();
    rig.Run();
  }

  const double secs = ToSeconds(t_end - t_warm);
  out.floor_get_rate = (gets1[0] - gets0[0]) / secs;
  for (size_t i = 1; i < kN; ++i) {
    out.floor_get_rate =
        std::min(out.floor_get_rate, (gets1[i] - gets0[i]) / secs);
  }
  for (size_t i = 0; i < kN; ++i) {
    out.scan_errors += workloads[i]->scan_errors();
  }

  for (int n = 0; n < cl.num_nodes(); ++n) {
    const kv::NodeStats stats = cl.node(n).Snapshot();
    out.cache_hits += stats.block_cache.hits;
    out.cache_misses += stats.block_cache.misses;
    if (!stats.audit.empty()) {
      for (const obs::AuditTenantEntry& e : stats.audit.back().tenants) {
        out.required += e.required_vops;
        out.granted += e.granted_vops;
      }
    }
    for (const kv::TenantSnapshot& t : stats.tenants) {
      size_t i = 0;
      while (i < kN && kTenants[i] != t.tenant) {
        ++i;
      }
      if (i == kN) {
        continue;
      }
      out.lsm_gets += t.lsm.gets;
      out.data_reads += t.lsm.data_block_reads;
      out.index_reads += t.lsm.index_block_reads;
      out.filter_reads += t.lsm.filter_block_reads;
      out.data_cache_hits += t.lsm.data_cache_hits;
      out.probes += t.lsm.bloom_probes;
      out.negatives += t.lsm.bloom_negatives;
      out.false_positives += t.lsm.bloom_false_positives;
      if (t.attribution.observed) {
        ++out.observed_nodes[i];
        if (!t.attribution.conformant) {
          ++out.nonconformant_nodes[i];
        }
      }
    }
    for (size_t i = 0; i < kN; ++i) {
      const obs::AttributionMatrix* m =
          cl.node(n).scheduler().spans()->attribution().Of(kTenants[i]);
      if (m == nullptr) {
        continue;
      }
      ++out.conservation_cells;
      if (m->total_vops != cl.node(n).tracker().Stats(kTenants[i]).vops) {
        ++out.conservation_violations;
      }
      for (int a = 0; a < obs::kAttrApps; ++a) {
        out.profile[i].norm_requests[a] += m->norm_requests[a];
        for (int io = 0; io < obs::kAttrInternal; ++io) {
          out.profile[i].vops[a][io] += m->vops[a][io];
        }
      }
    }
  }

  AddStatsSection(args, std::string("read_path_") + spec.name,
                  cluster::ClusterStatsToJson(cl.Snapshot()));
  return out;
}

int RunDemo(const BenchArgs& args) {
  constexpr size_t kP = std::size(kPhases);
  PhaseResult results[kP];
  obs::DeclaredAttribution declared[kN];

  Section(args, "Read-path demo: filters x cache ablation (read-heavy mix)");
  for (size_t p = 0; p < kP; ++p) {
    if (kPhases[p].declare) {
      // Tenant 1 declares the STALE baseline profile; tenant 2 declares the
      // filtered one just measured.
      for (size_t i = 0; i < kN; ++i) {
        const MeasuredProfile& src =
            results[i == 0 ? kBaseline : kBoth].profile[i];
        declared[i].declared = true;
        for (int a = 0; a < obs::kAttrApps; ++a) {
          for (int io = 0; io < obs::kAttrInternal; ++io) {
            declared[i].at(a, io) = src.Q(a, io);
          }
        }
      }
    }
    results[p] = RunPhase(args, kPhases[p], declared);
    std::printf("phase %-13s done: %llu LSM gets, %llu data-block reads\n",
                kPhases[p].name,
                static_cast<unsigned long long>(results[p].lsm_gets),
                static_cast<unsigned long long>(results[p].data_reads));
  }

  constexpr int kGet = static_cast<int>(AppRequest::kGet);
  metrics::Table table({"phase", "bloom", "cache", "dataRd/GET", "neg",
                        "fp", "cacheHit%", "q_get", "floorGET/s", "req_vops",
                        "granted"});
  for (size_t p = 0; p < kP; ++p) {
    const PhaseResult& r = results[p];
    const double lookups = static_cast<double>(r.cache_hits + r.cache_misses);
    double q_get = 0.0;
    for (size_t i = 0; i < kN; ++i) {
      q_get += r.profile[i].QTotal(kGet);
    }
    table.AddRow(
        {kPhases[p].name, std::to_string(kPhases[p].bloom_bits),
         std::to_string(kPhases[p].cache_bytes / kMiB) + "MiB",
         metrics::FormatDouble(r.DataReadsPerGet(), 3),
         std::to_string(r.negatives), std::to_string(r.false_positives),
         metrics::FormatDouble(
             lookups > 0.0 ? 100.0 * r.cache_hits / lookups : 0.0, 1),
         metrics::FormatDouble(q_get / kN, 3),
         metrics::FormatDouble(r.floor_get_rate, 0),
         metrics::FormatDouble(r.required, 0),
         metrics::FormatDouble(r.granted, 0)});
  }
  Emit(args, table);

  Section(args, "Read-path demo: conservation, repricing, conformance");
  uint64_t cells = 0, violations = 0;
  for (const PhaseResult& r : results) {
    cells += r.conservation_cells;
    violations += r.conservation_violations;
  }
  std::printf("attribution cells checked: %llu, bitwise violations: %llu\n",
              static_cast<unsigned long long>(cells),
              static_cast<unsigned long long>(violations));
  const double reduction =
      results[kFilters].DataReadsPerGet() > 0.0
          ? results[kBaseline].DataReadsPerGet() /
                results[kFilters].DataReadsPerGet()
          : 0.0;
  std::printf("data-block reads/GET: baseline %.3f -> filters %.3f "
              "(%.1fx), filters+cache %.3f\n",
              results[kBaseline].DataReadsPerGet(),
              results[kFilters].DataReadsPerGet(), reduction,
              results[kBoth].DataReadsPerGet());
  std::printf("required VOP mass: baseline %.0f -> filters+cache %.0f\n",
              results[kBaseline].required, results[kBoth].required);
  for (size_t i = 0; i < kN; ++i) {
    std::printf("conformance tenant %u: observed on %d nodes, flagged on %d "
                "(%s profile)\n",
                kTenants[i], results[kConformance].observed_nodes[i],
                results[kConformance].nonconformant_nodes[i],
                i == 0 ? "stale baseline" : "fresh filtered");
  }

  bool failed = false;
  if (cells == 0 || violations > 0) {
    std::fprintf(stderr, "FAIL: VOP attribution not conserved bit-for-bit\n");
    failed = true;
  }
  if (reduction < 3.0) {
    std::fprintf(stderr,
                 "FAIL: filters cut data-block reads/GET only %.2fx "
                 "(need >= 3x)\n",
                 reduction);
    failed = true;
  }
  for (size_t p : {kBaseline, kCache}) {
    if (results[p].probes + results[p].negatives +
            results[p].false_positives + results[p].filter_reads !=
        0) {
      std::fprintf(stderr, "FAIL: phase %s has bloom activity with "
                   "filters off\n",
                   kPhases[p].name);
      failed = true;
    }
  }
  for (size_t p : {kFilters, kBoth}) {
    if (results[p].probes == 0 || results[p].negatives == 0) {
      std::fprintf(stderr, "FAIL: phase %s ran no bloom probes\n",
                   kPhases[p].name);
      failed = true;
    }
  }
  for (size_t p : {kBaseline, kFilters}) {
    if (results[p].cache_hits + results[p].data_cache_hits != 0) {
      std::fprintf(stderr, "FAIL: phase %s has cache hits with the cache "
                   "off\n",
                   kPhases[p].name);
      failed = true;
    }
  }
  for (size_t p : {kCache, kBoth}) {
    if (results[p].cache_hits == 0 || results[p].data_cache_hits == 0) {
      std::fprintf(stderr, "FAIL: phase %s recorded no cache hits\n",
                   kPhases[p].name);
      failed = true;
    }
  }
  if (results[kBoth].required >= results[kBaseline].required) {
    std::fprintf(stderr, "FAIL: filters+cache did not reprice the required "
                 "VOP mass down\n");
    failed = true;
  }
  if (results[kBoth].floor_get_rate < results[kBaseline].floor_get_rate) {
    std::fprintf(stderr, "FAIL: filters+cache lowered the floor GET "
                 "throughput\n");
    failed = true;
  }
  for (const PhaseResult& r : results) {
    if (r.scan_errors > 0) {
      std::fprintf(stderr, "FAIL: scan errors (filters must not break range "
                   "reads)\n");
      failed = true;
      break;
    }
  }
  const PhaseResult& conf = results[kConformance];
  if (conf.observed_nodes[0] == 0 || conf.nonconformant_nodes[0] == 0) {
    std::fprintf(stderr, "FAIL: stale baseline profile was not flagged "
                 "after repricing\n");
    failed = true;
  }
  if (conf.observed_nodes[1] == 0 || conf.nonconformant_nodes[1] != 0) {
    std::fprintf(stderr, "FAIL: fresh filtered profile wrongly flagged\n");
    failed = true;
  }
  if (failed) {
    return 1;
  }
  std::printf(
      "read-path contract held: filters cut data-block reads >= 3x, cache "
      "hits cost zero device IO, VOPs conserved bit-for-bit, reservations "
      "repriced, conformance verdicts track the new profile.\n");
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  return libra::bench::RunDemo(args);
}
