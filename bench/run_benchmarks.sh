#!/usr/bin/env bash
# Builds the microbenchmarks in Release mode and writes the results as
# google-benchmark JSON to BENCH_micro.json at the repository root.
#
# Usage:
#   bench/run_benchmarks.sh            # full run (default min_time)
#   BENCH_MIN_TIME=0.05s bench/run_benchmarks.sh   # quick smoke run
#   BENCH_OUT=path.json bench/run_benchmarks.sh    # alternate output path
#   BENCH_BUILD_DIR=dir bench/run_benchmarks.sh    # alternate build tree
#                                                  # (default: build-bench/)
#
# BENCH_MIN_TIME is passed to --benchmark_min_time verbatim; older
# google-benchmark versions want a plain double ("0.05"), newer ones also
# accept a duration suffix ("0.05s").
#
# Compare two runs (e.g. before/after a perf change) with
# bench/compare_benchmarks.py, which fails above a fractional real_time
# threshold; the committed BENCH_micro.json is the reference baseline.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BENCH_BUILD_DIR:-${REPO_ROOT}/build-bench}"
OUT="${BENCH_OUT:-${REPO_ROOT}/BENCH_micro.json}"
MIN_TIME="${BENCH_MIN_TIME:-}"

if ! cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release; then
  echo "error: failed to configure benchmark build tree" \
       "BENCH_BUILD_DIR=${BUILD_DIR}" >&2
  exit 1
fi
if ! cmake --build "${BUILD_DIR}" --target micro_benchmarks -j"$(nproc)"; then
  echo "error: micro_benchmarks failed to build in" \
       "BENCH_BUILD_DIR=${BUILD_DIR}" >&2
  exit 1
fi

BIN="${BUILD_DIR}/bench/micro_benchmarks"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} is missing or not executable; delete or point" \
       "BENCH_BUILD_DIR=${BUILD_DIR} at a tree configured from this repo" >&2
  exit 1
fi

ARGS=(--benchmark_format=json --benchmark_out="${OUT}" --benchmark_out_format=json)
if [[ -n "${MIN_TIME}" ]]; then
  ARGS+=(--benchmark_min_time="${MIN_TIME}")
fi

"${BIN}" "${ARGS[@]}"

# Wall-clock of one fig11 run at --sim-threads=1 vs a 4-wide pool, appended
# to the benchmark JSON as synthetic entries (compare_benchmarks.py treats
# names missing from the other file as informational, so older baselines
# still compare cleanly). fig11's parallelism is its mode sweep, so the
# ratio measures the host's usable sweep speedup; on a single-core host the
# two times simply coincide. FIG11_THREADS=0 skips the timing runs.
FIG11_THREADS="${FIG11_THREADS:-4}"
if [[ "${FIG11_THREADS}" != "0" ]]; then
  cmake --build "${BUILD_DIR}" --target fig11_reservations -j"$(nproc)"
  fig11_secs() {
    local start end
    start=$(date +%s.%N)
    "${BUILD_DIR}/bench/fig11_reservations" --sim-threads="$1" > /dev/null
    end=$(date +%s.%N)
    awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.6f", b - a }'
  }
  T1=$(fig11_secs 1)
  TN=$(fig11_secs "${FIG11_THREADS}")
  python3 - "${OUT}" "${T1}" "${TN}" "${FIG11_THREADS}" <<'PYEOF'
import json
import sys

path, t1, tn, n = sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4]
with open(path, "r", encoding="utf-8") as f:
    doc = json.load(f)


def entry(name, secs):
    ns = secs * 1e9
    return {"name": name, "run_name": name, "run_type": "iteration",
            "repetitions": 1, "iterations": 1, "real_time": ns,
            "cpu_time": ns, "time_unit": "ns"}


doc.setdefault("benchmarks", []).extend([
    entry("fig11_reservations/walltime/sim_threads:1", t1),
    entry(f"fig11_reservations/walltime/sim_threads:{n}", tn),
])
with open(path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF
  echo "fig11 wall-clock: ${T1}s at --sim-threads=1, ${TN}s at --sim-threads=${FIG11_THREADS}"
fi
echo "wrote ${OUT}"
