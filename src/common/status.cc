#include "src/common/status.h"

namespace libra {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace libra
