# Empty dependencies file for fig10_prototype_throughput.
# This may be replaced when dependencies are built.
