// MultiLoop (conservative parallel epoch engine) tests, plus regression
// pins for the EventLoop epoch primitives it is built on: RunBefore's
// exclusive horizon, AdvanceTo, NextEventTime, and RunUntil's inclusive
// deadline + idle-advance. These boundary semantics are what make an event
// scheduled exactly at a barrier timestamp run at the same instant — and
// in the same relative order — as under the serial engine.

#include "src/sim/multi_loop.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"

namespace libra::sim {
namespace {

// --- EventLoop epoch-primitive regressions (satellite: barrier semantics) ---

TEST(EventLoopEpochTest, RunBeforeHorizonIsExclusive) {
  EventLoop loop;
  std::vector<int> ran;
  loop.ScheduleAt(10, [&] { ran.push_back(10); });
  loop.ScheduleAt(19, [&] { ran.push_back(19); });
  loop.ScheduleAt(20, [&] { ran.push_back(20); });  // exactly at horizon
  EXPECT_EQ(loop.RunBefore(20), 2u);
  EXPECT_EQ(ran, (std::vector<int>{10, 19}));
  // Clock rests at the last dispatched event, not the horizon: the barrier
  // advances clocks explicitly.
  EXPECT_EQ(loop.Now(), 19);
  ASSERT_TRUE(loop.NextEventTime().has_value());
  EXPECT_EQ(*loop.NextEventTime(), 20);
}

TEST(EventLoopEpochTest, RunBeforeIdleLoopDoesNotAdvance) {
  EventLoop loop;
  EXPECT_EQ(loop.RunBefore(1000), 0u);
  EXPECT_EQ(loop.Now(), 0);
}

TEST(EventLoopEpochTest, AdvanceToMovesOnlyForward) {
  EventLoop loop;
  loop.AdvanceTo(50);
  EXPECT_EQ(loop.Now(), 50);
  loop.AdvanceTo(30);  // behind: no-op
  EXPECT_EQ(loop.Now(), 50);
}

TEST(EventLoopEpochTest, NextEventTimeSkipsCancelledEvents) {
  EventLoop loop;
  const EventLoop::EventId early = loop.ScheduleAt(10, [] {});
  loop.ScheduleAt(25, [] {});
  ASSERT_TRUE(loop.NextEventTime().has_value());
  EXPECT_EQ(*loop.NextEventTime(), 10);
  loop.Cancel(early);
  ASSERT_TRUE(loop.NextEventTime().has_value());
  EXPECT_EQ(*loop.NextEventTime(), 25);
  loop.Run();
  EXPECT_FALSE(loop.NextEventTime().has_value());
}

TEST(EventLoopEpochTest, RunUntilDeadlineIsInclusiveAndIdleAdvances) {
  EventLoop loop;
  std::vector<int> ran;
  loop.ScheduleAt(100, [&] { ran.push_back(100); });  // exactly at deadline
  loop.ScheduleAt(101, [&] { ran.push_back(101); });
  EXPECT_EQ(loop.RunUntil(100), 1u);
  EXPECT_EQ(ran, (std::vector<int>{100}));
  EXPECT_EQ(loop.Now(), 100);
  EXPECT_EQ(loop.RunUntil(500), 1u);  // 101 runs, then idle-advance
  EXPECT_EQ(loop.Now(), 500);
}

// Stepping one loop in fixed-lookahead epochs (the MultiLoop inner loop:
// RunBefore to an exclusive horizon, AdvanceTo the barrier) dispatches the
// same events in the same order at the same clock readings as a serial
// RunUntil — including events landing exactly on epoch boundaries and at
// the final deadline.
TEST(EventLoopEpochTest, ManualEpochSteppingMatchesSerialRunUntil) {
  constexpr SimTime kDeadline = 100;
  constexpr SimDuration kLookahead = 10;
  const std::vector<SimTime> kWhens = {0, 5, 10, 10, 19, 20, 21,
                                       30, 55, 99, 100, 100};

  auto seed = [&](EventLoop& loop, std::vector<SimTime>& log) {
    for (const SimTime w : kWhens) {
      loop.ScheduleAt(w, [&loop, &log] { log.push_back(loop.Now()); });
    }
  };

  EventLoop serial;
  std::vector<SimTime> serial_log;
  seed(serial, serial_log);
  const uint64_t serial_n = serial.RunUntil(kDeadline);

  EventLoop epoch;
  std::vector<SimTime> epoch_log;
  seed(epoch, epoch_log);
  uint64_t epoch_n = 0;
  for (;;) {
    const std::optional<SimTime> g = epoch.NextEventTime();
    if (!g.has_value() || *g > kDeadline) {
      break;
    }
    epoch.AdvanceTo(*g);
    SimTime horizon = *g + kLookahead;
    if (horizon > kDeadline) {
      horizon = kDeadline + 1;  // inclusive deadline in the last epoch
    }
    epoch_n += epoch.RunBefore(horizon);
  }
  epoch.AdvanceTo(kDeadline);

  EXPECT_EQ(epoch_n, serial_n);
  EXPECT_EQ(epoch_log, serial_log);
  EXPECT_EQ(epoch.Now(), serial.Now());
}

// --- MultiLoop engine ---

TEST(MultiLoopTest, CrossLoopMessageDeliversAtSendTimePlusDelay) {
  MultiLoop ml(2, {/*threads=*/1, /*lookahead=*/10});
  SimTime delivered_at = -1;
  ml.loop(0).ScheduleAt(5, [&] {
    ml.Send(0, 1, 25, [&] { delivered_at = ml.loop(1).Now(); });
  });
  EXPECT_EQ(ml.Run(), 2u);
  EXPECT_EQ(delivered_at, 30);
  EXPECT_EQ(ml.messages_sent(), 1u);
}

TEST(MultiLoopTest, RunUntilInclusiveDeadlineAndIdleAdvance) {
  MultiLoop ml(3, {/*threads=*/1, /*lookahead=*/10});
  std::vector<int> ran;
  ml.loop(1).ScheduleAt(100, [&] { ran.push_back(1); });  // exactly at deadline
  ml.loop(2).ScheduleAt(101, [&] { ran.push_back(2); });  // past it
  EXPECT_EQ(ml.RunUntil(100), 1u);
  EXPECT_EQ(ran, (std::vector<int>{1}));
  // Every clock — and the barrier clock — idle-advances to the deadline.
  EXPECT_EQ(ml.Now(), 100);
  for (int i = 0; i < ml.num_loops(); ++i) {
    EXPECT_EQ(ml.loop(i).Now(), 100) << "loop " << i;
  }
  EXPECT_EQ(ml.RunUntil(500), 1u);
  EXPECT_EQ(ml.Now(), 500);
  EXPECT_EQ(ml.loop(0).Now(), 500);
}

// An event scheduled exactly at an interior epoch boundary G + lookahead
// belongs to the next epoch and still runs at its exact timestamp.
TEST(MultiLoopTest, EventExactlyAtEpochBoundaryRunsAtItsTime) {
  MultiLoop ml(2, {/*threads=*/1, /*lookahead=*/10});
  std::vector<std::pair<int, SimTime>> log;
  ml.loop(0).ScheduleAt(0, [&] { log.push_back({0, ml.loop(0).Now()}); });
  // First barrier G = 0, horizon 10: this event sits exactly on it.
  ml.loop(1).ScheduleAt(10, [&] { log.push_back({1, ml.loop(1).Now()}); });
  ml.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, SimTime>{0, 0}));
  EXPECT_EQ(log[1], (std::pair<int, SimTime>{1, 10}));
  EXPECT_EQ(ml.epochs(), 2u);  // one epoch per boundary event
}

// At equal delivery timestamps the exchange injects messages in (sender,
// sender-seq) order regardless of the order outboxes were filled, so the
// destination's FIFO tie-break is schedule-independent.
TEST(MultiLoopTest, ExchangeOrdersBySenderThenSendOrderAtEqualTimestamps) {
  MultiLoop ml(4, {/*threads=*/1, /*lookahead=*/10});
  std::vector<std::string> order;
  // Fill outboxes in reverse sender order, all delivering to loop 0 at
  // t=10; sender 3 sends twice to exercise the per-sender seq tie-break.
  for (int from = 3; from >= 1; --from) {
    ml.Send(from, 0, 10, [&order, from] {
      order.push_back("s" + std::to_string(from) + "a");
    });
  }
  ml.Send(3, 0, 10, [&order] { order.push_back("s3b"); });
  ml.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"s1a", "s2a", "s3a", "s3b"}));
}

TEST(MultiLoopTest, CheckDelayRejectsBelowLookaheadWithDescriptiveError) {
  MultiLoop ml(2, {/*threads=*/1, /*lookahead=*/50000});
  EXPECT_TRUE(ml.CheckDelay(50000).ok());
  EXPECT_TRUE(ml.CheckDelay(70000).ok());
  const Status s = ml.CheckDelay(49999);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The message must name both values and explain the hazard.
  EXPECT_NE(s.message().find("49999"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("50000"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("lookahead"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("epoch that already ran"), std::string::npos)
      << s.message();
}

TEST(MultiLoopTest, BarrierHookFiresAtExactTimeOnIdleEngine) {
  MultiLoop ml(3, {/*threads=*/1, /*lookahead=*/10});
  SimTime fired_at = -1;
  SimTime loop2_at = -1;
  ml.ScheduleBarrierAt(1234, [&] {
    fired_at = ml.Now();
    loop2_at = ml.loop(2).Now();  // every loop quiesced and advanced
  });
  ml.Run();  // no events at all: the hook time alone bounds the barrier
  EXPECT_EQ(fired_at, 1234);
  EXPECT_EQ(loop2_at, 1234);
}

TEST(MultiLoopTest, RearmingBarrierHookRunsOncePerRequestedTime) {
  MultiLoop ml(2, {/*threads=*/1, /*lookahead=*/10});
  std::vector<SimTime> fires;
  std::function<void()> tick = [&] {
    fires.push_back(ml.Now());
    if (fires.size() < 3) {
      ml.ScheduleBarrierAt(ml.Now() + 100, tick);
    }
  };
  ml.ScheduleBarrierAt(100, tick);
  ml.Run();
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300}));
}

TEST(MultiLoopTest, HookAndEventAtSameBarrierHookRunsFirst) {
  MultiLoop ml(2, {/*threads=*/1, /*lookahead=*/10});
  std::vector<std::string> order;
  ml.loop(1).ScheduleAt(40, [&] { order.push_back("event"); });
  ml.ScheduleBarrierAt(40, [&] { order.push_back("hook"); });
  ml.Run();
  // Hooks run at the barrier with loops quiesced, before the epoch step.
  EXPECT_EQ(order, (std::vector<std::string>{"hook", "event"}));
}

// --- determinism across worker counts ---

struct Logs {
  std::array<std::vector<std::string>, 4> per_loop;
};

// Three ping-pong rounds between the coordinator and each node loop, with
// node-local events interleaved. Captures stay under SmallFn's inline
// budget; each callback writes only its own loop's log (the engine's
// no-shared-state rule).
void PingPong(MultiLoop* ml, Logs* logs, int node, int rounds_left) {
  ml->Send(0, node, 10 + node, [ml, logs, node, rounds_left] {
    logs->per_loop[node].push_back("recv@" +
                                   std::to_string(ml->loop(node).Now()));
    ml->Send(node, 0, 15, [ml, logs, node, rounds_left] {
      logs->per_loop[0].push_back("ack" + std::to_string(node) + "@" +
                                  std::to_string(ml->loop(0).Now()));
      if (rounds_left > 1) {
        PingPong(ml, logs, node, rounds_left - 1);
      }
    });
  });
}

struct ScenarioResult {
  Logs logs;
  uint64_t dispatched = 0;
  uint64_t epochs = 0;
  uint64_t messages = 0;
  std::array<SimTime, 4> final_now{};
};

ScenarioResult RunScenario(int threads) {
  ScenarioResult out;
  MultiLoop ml(4, {threads, /*lookahead=*/10});
  Logs& logs = out.logs;
  for (int l = 0; l < 4; ++l) {
    for (int k = 0; k < 5; ++k) {
      ml.loop(l).ScheduleAt(7 * k + l, [&ml, &logs, l, k] {
        logs.per_loop[l].push_back("local" + std::to_string(k) + "@" +
                                   std::to_string(ml.loop(l).Now()));
      });
    }
  }
  for (int node = 1; node < 4; ++node) {
    PingPong(&ml, &logs, node, 3);
  }
  ml.ScheduleBarrierAt(25, [&ml, &logs] {
    logs.per_loop[0].push_back("hook@" + std::to_string(ml.Now()));
  });
  out.dispatched = ml.RunUntil(200);
  out.epochs = ml.epochs();
  out.messages = ml.messages_sent();
  for (int l = 0; l < 4; ++l) {
    out.final_now[l] = ml.loop(l).Now();
  }
  return out;
}

TEST(MultiLoopTest, IdenticalResultsForAnyWorkerCount) {
  const ScenarioResult base = RunScenario(1);
  // Sanity: the scenario actually exercised cross-loop traffic.
  EXPECT_EQ(base.messages, 18u);  // 3 nodes * 3 rounds * 2 legs
  EXPECT_GT(base.epochs, 0u);
  for (const int threads : {2, 4}) {
    const ScenarioResult other = RunScenario(threads);
    EXPECT_EQ(other.logs.per_loop, base.logs.per_loop) << threads;
    EXPECT_EQ(other.dispatched, base.dispatched) << threads;
    EXPECT_EQ(other.epochs, base.epochs) << threads;
    EXPECT_EQ(other.messages, base.messages) << threads;
    EXPECT_EQ(other.final_now, base.final_now) << threads;
  }
}

// Degenerate single-loop engine: with no cross-loop traffic possible, the
// epoch engine must reproduce the serial EventLoop exactly (this is how
// single-node demos run under --sim-threads without changing output).
TEST(MultiLoopTest, SingleLoopEngineMatchesSerialEventLoop) {
  const std::vector<SimTime> kWhens = {0, 3, 10, 10, 20, 47, 50};

  EventLoop serial;
  std::vector<SimTime> serial_log;
  for (const SimTime w : kWhens) {
    serial.ScheduleAt(w, [&serial, &serial_log] {
      serial_log.push_back(serial.Now());
      if (serial.Now() == 3) {
        serial.ScheduleAfter(9, [&serial, &serial_log] {
          serial_log.push_back(serial.Now());
        });
      }
    });
  }
  const uint64_t serial_n = serial.RunUntil(50);

  MultiLoop ml(1, {/*threads=*/1, /*lookahead=*/10});
  EventLoop& loop = ml.loop(0);
  std::vector<SimTime> ml_log;
  for (const SimTime w : kWhens) {
    loop.ScheduleAt(w, [&loop, &ml_log] {
      ml_log.push_back(loop.Now());
      if (loop.Now() == 3) {
        loop.ScheduleAfter(9, [&loop, &ml_log] {
          ml_log.push_back(loop.Now());
        });
      }
    });
  }
  const uint64_t ml_n = ml.RunUntil(50);

  EXPECT_EQ(ml_n, serial_n);
  EXPECT_EQ(ml_log, serial_log);
  EXPECT_EQ(loop.Now(), serial.Now());
}

}  // namespace
}  // namespace libra::sim
