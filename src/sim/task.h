// C++20 coroutine tasks for the simulator.
//
// The paper's Libra prototype "employs coroutines to handle blocking disk IO
// and inter-task coordination" (§5): a tenant task whose IO would exceed its
// VOP allocation is swapped out and resumed in a later scheduling round. We
// mirror that structure with lazily-started Task<T> coroutines driven by the
// virtual-time EventLoop.
//
// Ownership rules:
//  - Task<T> owns its coroutine frame; the frame is destroyed when the Task
//    is destroyed (normally at the end of the co_await full-expression).
//  - A task may be awaited at most once, and only as an rvalue:
//    `co_await Foo();` or `co_await std::move(t);`.
//  - Detach(std::move(task)) starts a task that owns itself and frees its
//    frame on completion (used for background FLUSH/COMPACT jobs and
//    workload workers).
// Exceptions must not escape a task body: the runtime terminates if one does
// (the codebase reports errors via Status).

#ifndef LIBRA_SRC_SIM_TASK_H_
#define LIBRA_SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

namespace libra::sim {

template <typename T>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.detached) {
        h.destroy();
        return std::noop_coroutine();
      }
      if (p.continuation) {
        return p.continuation;
      }
      return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

template <typename T>
struct TaskPromise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();

  template <typename U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }

  T TakeResult() {
    assert(value.has_value());
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
  void TakeResult() {}
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle handle) noexcept : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { DestroyFrame(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  // Relinquishes frame ownership (used by Detach and TaskGroup).
  Handle Release() noexcept { return std::exchange(handle_, {}); }

  struct Awaiter {
    Handle handle;

    bool await_ready() const noexcept { return !handle || handle.done(); }

    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // symmetric transfer: start the lazy task now
    }

    T await_resume() { return handle.promise().TakeResult(); }
  };

  Awaiter operator co_await() && noexcept {
    assert(handle_ && "awaiting an empty or already-consumed Task");
    return Awaiter{handle_};
  }

 private:
  void DestroyFrame() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal

// Starts `task` detached: it owns itself and frees its frame on completion.
inline void Detach(Task<void> task) {
  auto handle = task.Release();
  assert(handle);
  handle.promise().detached = true;
  handle.resume();
}

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_TASK_H_
