// Chrome trace_event schema validation for span exports.
//
// Validates the invariants ui.perfetto.dev / chrome://tracing rely on:
// a top-level object with a traceEvents array; every event carries
// name/ph/pid/tid; "X" slices carry numeric ts/dur; "s"/"f" flow events
// carry an id and the finish side binds enclosing ("bp":"e"); "M" metadata
// carries args.name. Runs against a self-generated export always, and —
// when LIBRA_TRACE_JSON names a file (CI points it at the bench-smoke
// artifact) — against a real emitted trace too.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/span.h"

namespace libra::obs {
namespace {

void ValidateChromeTrace(const std::string& json) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonParse(json, &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(unit->is_string());
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t slices = 0;
  size_t starts = 0;
  size_t finishes = 0;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(name->is_string());
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    const std::string& phase = ph->string_value;
    if (phase == "X") {
      ++slices;
      const JsonValue* ts = e.Find("ts");
      const JsonValue* dur = e.Find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_TRUE(ts->is_number());
      EXPECT_TRUE(dur->is_number());
      EXPECT_GE(dur->number, 0.0);
    } else if (phase == "s" || phase == "f") {
      const JsonValue* id = e.Find("id");
      ASSERT_NE(id, nullptr);
      ASSERT_NE(e.Find("ts"), nullptr);
      if (phase == "s") {
        ++starts;
      } else {
        ++finishes;
        const JsonValue* bp = e.Find("bp");
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->string_value, "e");
      }
    } else if (phase == "M") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->Find("name"), nullptr);
    } else {
      FAIL() << "unexpected phase: " << phase;
    }
  }
  EXPECT_GT(slices, 0u);
  EXPECT_EQ(starts, finishes);  // flow arrows come in matched pairs
}

TEST(TraceSchemaTest, SelfGeneratedExportValidates) {
  SpanCollector c(64);
  const TraceContext root = c.MintTrace();
  SpanRecord req;
  req.trace_id = root.trace_id;
  req.span_id = root.span_id;
  req.kind = SpanKind::kRequest;
  req.app = 2;  // PUT
  req.tenant = 1;
  req.start_ns = 1000;
  req.end_ns = 9000;
  c.Record(req);

  const TraceContext flush = c.MintAlways();
  SpanRecord f;
  f.trace_id = flush.trace_id;
  f.span_id = flush.span_id;
  f.kind = SpanKind::kFlush;
  f.tenant = 1;
  f.start_ns = 10000;
  f.end_ns = 20000;
  f.links.Add(root);  // cross-trace causal arrow
  c.Record(f);

  const TraceContext io = c.MintChild(flush);
  SpanRecord d;
  d.trace_id = io.trace_id;
  d.span_id = io.span_id;
  d.parent_span = flush.span_id;
  d.kind = SpanKind::kDeviceIo;
  d.is_write = 1;
  d.tenant = 1;
  d.start_ns = 11000;
  d.end_ns = 15000;
  c.Record(d);

  // A SCAN request span: the export must label the kScan class by name.
  const TraceContext scan = c.MintTrace();
  SpanRecord sc;
  sc.trace_id = scan.trace_id;
  sc.span_id = scan.span_id;
  sc.kind = SpanKind::kRequest;
  sc.app = 3;  // SCAN
  sc.tenant = 1;
  sc.start_ns = 21000;
  sc.end_ns = 29000;
  c.Record(sc);

  const std::string json = SpansToChromeTraceJson(c, 0, "node0");
  ValidateChromeTrace(json);
  EXPECT_NE(json.find("SCAN"), std::string::npos)
      << "kScan request spans must export under the SCAN class name";
}

TEST(TraceSchemaTest, ExternalTraceFileValidates) {
  const char* path = std::getenv("LIBRA_TRACE_JSON");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "LIBRA_TRACE_JSON not set";
  }
  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr) << "cannot open " << path;
  std::string json;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    json.append(buf, n);
  }
  std::fclose(f);
  ValidateChromeTrace(json);
}

}  // namespace
}  // namespace libra::obs
