#include "src/obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace libra::obs {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(LatencyHistogramTest, SmallValuesRecordedExactly) {
  // Values below 2 * kSubBuckets (= 64) get a dedicated slot each.
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    const int slot = LatencyHistogram::SlotFor(v);
    EXPECT_EQ(LatencyHistogram::SlotLowerBound(slot), v) << "v=" << v;
    EXPECT_EQ(LatencyHistogram::SlotWidth(slot), 1u) << "v=" << v;
  }
}

TEST(LatencyHistogramTest, BucketBoundariesExact) {
  // Every slot's lower bound must map back to that slot, its upper bound
  // too, and lower_bound - 1 must map to the previous slot.
  for (int s = 0; s < LatencyHistogram::kNumSlots; ++s) {
    const uint64_t lo = LatencyHistogram::SlotLowerBound(s);
    const uint64_t width = LatencyHistogram::SlotWidth(s);
    EXPECT_EQ(LatencyHistogram::SlotFor(lo), s) << "slot " << s;
    EXPECT_EQ(LatencyHistogram::SlotFor(lo + width - 1), s) << "slot " << s;
    if (s > 0) {
      EXPECT_EQ(LatencyHistogram::SlotFor(lo - 1), s - 1) << "slot " << s;
    }
  }
}

TEST(LatencyHistogramTest, SlotsArePartition) {
  // Consecutive slots tile the value range with no gaps or overlaps.
  uint64_t expected_lo = 0;
  for (int s = 0; s < LatencyHistogram::kNumSlots; ++s) {
    EXPECT_EQ(LatencyHistogram::SlotLowerBound(s), expected_lo);
    expected_lo += LatencyHistogram::SlotWidth(s);
  }
  EXPECT_EQ(expected_lo, LatencyHistogram::kMaxValue + 1);
}

TEST(LatencyHistogramTest, RelativeErrorBounded) {
  // Bucket width / lower bound <= 1 / kSubBuckets for values >= kSubBuckets.
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextU64(LatencyHistogram::kMaxValue);
    const int s = LatencyHistogram::SlotFor(v);
    const uint64_t lo = LatencyHistogram::SlotLowerBound(s);
    const uint64_t width = LatencyHistogram::SlotWidth(s);
    EXPECT_LE(lo, v);
    EXPECT_LT(v, lo + width);
    if (lo >= LatencyHistogram::kSubBuckets) {
      EXPECT_LE(static_cast<double>(width) / static_cast<double>(lo),
                1.0 / static_cast<double>(LatencyHistogram::kSubBuckets) +
                    1e-12);
    }
  }
}

TEST(LatencyHistogramTest, OverflowSaturates) {
  LatencyHistogram h;
  h.Record(LatencyHistogram::kMaxValue + 12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), LatencyHistogram::kMaxValue + 12345);
  // p100 clamps to the recorded max even though the bucket saturated.
  EXPECT_EQ(h.Percentile(1.0), LatencyHistogram::kMaxValue + 12345);
}

TEST(LatencyHistogramTest, PercentilesOfKnownDistribution) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // p50 is the bucket holding sample #500 — within 3.2% of 500.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 990.0 * 0.04);
  EXPECT_EQ(h.Percentile(0.0), 1u);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
}

TEST(LatencyHistogramTest, PercentileMonotonic) {
  Rng rng(7);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread over the full range.
    const uint64_t v = rng.NextU64(1ULL << (1 + rng.NextU64(40)));
    h.Record(v);
  }
  uint64_t prev = 0;
  for (double p = 0.0; p <= 1.0; p += 0.001) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_EQ(h.Percentile(1.0), h.max());
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  Rng rng(99);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.NextU64(1000000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  for (double p : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeWithEmpty) {
  LatencyHistogram a, empty;
  a.Record(42);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.Percentile(0.5), 42u);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(1000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.9), 0u);
}

TEST(LatencyHistogramTest, ForEachBucketCoversAllSamples) {
  Rng rng(5);
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(rng.NextU64(1 << 20));
  }
  uint64_t total = 0;
  uint64_t prev_end = 0;
  h.ForEachBucket([&](uint64_t lo, uint64_t width, uint64_t count) {
    EXPECT_GE(lo, prev_end);
    prev_end = lo + width;
    total += count;
  });
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace libra::obs
