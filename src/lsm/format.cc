#include "src/lsm/format.h"

#include <array>
#include <cassert>
#include <cstring>

namespace libra::lsm {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

uint32_t GetFixed32(std::string_view src, size_t offset) {
  assert(offset + 4 <= src.size());
  const auto* p = reinterpret_cast<const unsigned char*>(src.data() + offset);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetFixed64(std::string_view src, size_t offset) {
  return static_cast<uint64_t>(GetFixed32(src, offset)) |
         (static_cast<uint64_t>(GetFixed32(src, offset + 4)) << 32);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view src, size_t* offset,
                       std::string_view* out) {
  if (*offset + 4 > src.size()) {
    return false;
  }
  const uint32_t len = GetFixed32(src, *offset);
  *offset += 4;
  if (*offset + len > src.size()) {
    return false;
  }
  *out = src.substr(*offset, len);
  *offset += len;
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82F63B78u & (~(crc & 1) + 1));
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

int CompareInternalKey(std::string_view a_user, SequenceNumber a_seq,
                       std::string_view b_user, SequenceNumber b_seq) {
  const int c = a_user.compare(b_user);
  if (c != 0) {
    return c;
  }
  // Higher sequence numbers sort first (descending).
  if (a_seq > b_seq) {
    return -1;
  }
  if (a_seq < b_seq) {
    return 1;
  }
  return 0;
}

void EncodeRecord(std::string* dst, std::string_view key, SequenceNumber seq,
                  ValueType type, std::string_view value) {
  PutLengthPrefixed(dst, key);
  PutFixed64(dst, seq);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixed(dst, value);
}

bool DecodeRecord(std::string_view src, size_t* offset, Record* out) {
  if (!GetLengthPrefixed(src, offset, &out->key)) {
    return false;
  }
  if (*offset + 9 > src.size()) {
    return false;
  }
  out->seq = GetFixed64(src, *offset);
  *offset += 8;
  out->type = static_cast<ValueType>(src[*offset]);
  *offset += 1;
  return GetLengthPrefixed(src, offset, &out->value);
}

}  // namespace libra::lsm
