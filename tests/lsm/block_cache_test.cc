#include "src/lsm/block_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace libra::lsm {
namespace {

constexpr auto kIdx = BlockCache::Kind::kIndex;
constexpr auto kFlt = BlockCache::Kind::kFilter;
constexpr auto kDat = BlockCache::Kind::kData;

CachedBlockRef MakeBlock(std::string bytes = {}) {
  auto b = std::make_shared<CachedBlock>();
  b->bytes = std::move(bytes);
  return b;
}

TEST(BlockCacheTest, KindsAndOffsetsAreDistinctKeys) {
  BlockCache cache(0);
  cache.Insert(1, 1, kIdx, 0, MakeBlock("i"), 10);
  cache.Insert(1, 1, kFlt, 0, MakeBlock("f"), 10);
  cache.Insert(1, 1, kDat, 0, MakeBlock("d0"), 10);
  cache.Insert(1, 1, kDat, 4096, MakeBlock("d1"), 10);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.Get(1, 1, kIdx, 0)->bytes, "i");
  EXPECT_EQ(cache.Get(1, 1, kFlt, 0)->bytes, "f");
  EXPECT_EQ(cache.Get(1, 1, kDat, 0)->bytes, "d0");
  EXPECT_EQ(cache.Get(1, 1, kDat, 4096)->bytes, "d1");
}

TEST(BlockCacheTest, TenantsDoNotShareEntries) {
  BlockCache cache(0);
  // Two tenants' partitions both number their first table 1 — the tenant
  // id in the key keeps them apart in the node-shared cache.
  cache.Insert(1, 1, kDat, 0, MakeBlock("tenant1"), 10);
  cache.Insert(2, 1, kDat, 0, MakeBlock("tenant2"), 10);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.Get(1, 1, kDat, 0)->bytes, "tenant1");
  EXPECT_EQ(cache.Get(2, 1, kDat, 0)->bytes, "tenant2");
}

TEST(BlockCacheTest, PerTenantPerKindCounters) {
  BlockCache cache(0);
  cache.Insert(1, 1, kIdx, 0, MakeBlock(), 10);
  cache.Insert(2, 1, kDat, 0, MakeBlock(), 10);
  EXPECT_NE(cache.Get(1, 1, kIdx, 0), nullptr);   // tenant 1 index hit
  EXPECT_EQ(cache.Get(1, 1, kFlt, 0), nullptr);   // tenant 1 filter miss
  EXPECT_NE(cache.Get(2, 1, kDat, 0), nullptr);   // tenant 2 data hit
  EXPECT_EQ(cache.Get(2, 1, kDat, 4096), nullptr);  // tenant 2 data miss

  const auto t1 = cache.CountersOf(1);
  EXPECT_EQ(t1.hits[static_cast<int>(kIdx)], 1u);
  EXPECT_EQ(t1.misses[static_cast<int>(kFlt)], 1u);
  EXPECT_EQ(t1.hits[static_cast<int>(kDat)], 0u);
  const auto t2 = cache.CountersOf(2);
  EXPECT_EQ(t2.hits[static_cast<int>(kDat)], 1u);
  EXPECT_EQ(t2.misses[static_cast<int>(kDat)], 1u);
  // Globals are the per-tenant sums.
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  // Unknown tenant: all zero.
  const auto t9 = cache.CountersOf(9);
  EXPECT_EQ(t9.hits[0] + t9.misses[0] + t9.evictions, 0u);
}

TEST(BlockCacheTest, EvictionChargedToVictimTenant) {
  BlockCache cache(100);
  cache.Insert(1, 1, kDat, 0, MakeBlock(), 60);
  cache.Insert(2, 1, kDat, 0, MakeBlock(), 60);  // evicts tenant 1's block
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.CountersOf(1).evictions, 1u);
  EXPECT_EQ(cache.CountersOf(2).evictions, 0u);
  EXPECT_EQ(cache.Get(1, 1, kDat, 0), nullptr);
  EXPECT_NE(cache.Get(2, 1, kDat, 0), nullptr);
}

TEST(BlockCacheTest, InsertReplacesExistingKey) {
  BlockCache cache(0);
  cache.Insert(1, 1, kDat, 0, MakeBlock("old"), 10);
  cache.Insert(1, 1, kDat, 0, MakeBlock("new"), 20);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 20u);
  EXPECT_EQ(cache.evictions(), 0u);  // replacement is not an eviction
  EXPECT_EQ(cache.Get(1, 1, kDat, 0)->bytes, "new");
}

TEST(BlockCacheTest, OversizedInsertKeepsNewestEntry) {
  // An entry larger than the whole budget still becomes resident — the
  // eviction loop never evicts the block just inserted.
  BlockCache cache(10);
  cache.Insert(1, 1, kDat, 0, MakeBlock(), 50);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 50u);
}

TEST(BlockCacheTest, EraseTableDropsAllKindsForThatTableOnly) {
  BlockCache cache(0);
  cache.Insert(1, 7, kIdx, 0, MakeBlock(), 10);
  cache.Insert(1, 7, kFlt, 0, MakeBlock(), 10);
  cache.Insert(1, 7, kDat, 0, MakeBlock(), 10);
  cache.Insert(1, 7, kDat, 4096, MakeBlock(), 10);
  cache.Insert(1, 8, kIdx, 0, MakeBlock(), 10);
  cache.Insert(2, 7, kIdx, 0, MakeBlock(), 10);  // other tenant's table 7
  cache.EraseTable(1, 7);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);  // deletion is not an eviction
  EXPECT_NE(cache.Get(1, 8, kIdx, 0), nullptr);
  EXPECT_NE(cache.Get(2, 7, kIdx, 0), nullptr);
}

TEST(BlockCacheTest, RefPinsBlockPastEviction) {
  BlockCache cache(100);
  cache.Insert(1, 1, kDat, 0, MakeBlock("pinned"), 60);
  CachedBlockRef ref = cache.Get(1, 1, kDat, 0);
  cache.Insert(1, 2, kDat, 0, MakeBlock(), 60);  // evicts table 1's block
  EXPECT_EQ(cache.Get(1, 1, kDat, 0), nullptr);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->bytes, "pinned");  // the caller's view stays valid
}

TEST(BlockCacheTest, IndexOnlyModeReportsNoDataCaching) {
  BlockCache full(0);
  EXPECT_TRUE(full.caches_data());
  BlockCache index_only(0, /*cache_data=*/false);
  EXPECT_FALSE(index_only.caches_data());
}

}  // namespace
}  // namespace libra::lsm
