# Empty compiler generated dependencies file for libra_fs.
# This may be replaced when dependencies are built.
