// Deterministic crash/fault injection for the cluster layer.
//
// The injector drives three fault families, all seeded and replayable:
//  - process crashes: ScheduleCrash/ScheduleRestart arm Cluster::CrashNode /
//    Cluster::RestartNode at absolute virtual times, so a run's failure
//    schedule is part of its seed;
//  - RPC faults: installed as the cluster's RpcFaultInjector, each routed
//    node call may be dropped (surfacing kUnavailable — the failover/retry
//    path) or delayed by a uniform draw from [delay_min, delay_max];
//  - SSD faults: InjectGcStall pushes a node's device into a synchronous
//    garbage-collection pause, and DeviceOptions.latent_read_error_rate (set
//    at construction) makes reads occasionally pay a checksum-verified
//    re-read.
//
// Everything draws from one splitmix64 stream per injector, so two runs
// with the same seed and the same call sequence inject byte-identical
// faults — the property the CI determinism smoke test pins down.

#ifndef LIBRA_SRC_CLUSTER_FAULT_INJECTOR_H_
#define LIBRA_SRC_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/cluster/cluster.h"
#include "src/sim/event_loop.h"

namespace libra::cluster {

struct FaultInjectorOptions {
  uint64_t seed = 0xFA17ED5EEDULL;
  // Per-RPC drop/delay probabilities; both 0 disables the RPC hook
  // entirely (the cluster's request path then never consults the RNG, so
  // a fault-free run is byte-identical to one without an injector).
  double rpc_drop_rate = 0.0;
  double rpc_delay_rate = 0.0;
  // On a parallel cluster an injected delay REPLACES the request leg's
  // cross-node latency, so rpc_delay_min must be at least the engine's
  // conservative lookahead (see CheckFaultDelayFloor).
  SimDuration rpc_delay_min = 100 * kMicrosecond;
  SimDuration rpc_delay_max = 2 * kMillisecond;
};

// Validates a fault configuration against a parallel engine's conservative
// lookahead. An injected RPC delay replaces the request leg's cross-node
// latency, so every possible draw must stay at or above the lookahead —
// otherwise the delayed message could land inside an epoch that already
// ran and silently diverge from the single-threaded schedule. Returns Ok
// for serial engines (lookahead <= 0) or configs that never inject delays.
Status CheckFaultDelayFloor(const FaultInjectorOptions& options,
                            SimDuration lookahead);

class FaultInjector : public RpcFaultInjector {
 public:
  // Installs itself as `cluster`'s RPC fault hook when either RPC rate is
  // nonzero. The injector must outlive the cluster's request traffic.
  FaultInjector(sim::EventLoop& loop, Cluster& cluster,
                FaultInjectorOptions options);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms a crash (resp. restart) of `node` at absolute virtual time `at`.
  // The restart runs detached: WAL replay and catch-up proceed in the
  // background while the workload keeps issuing requests.
  void ScheduleCrash(int node, SimTime at);
  void ScheduleRestart(int node, SimTime at);

  // Synchronous GC pause on one node's device (all dies busy for `stall`).
  void InjectGcStall(int node, SimDuration stall);

  // RpcFaultInjector: one RNG draw per configured fault family per RPC.
  RpcFault OnRpc(iosched::TenantId tenant, int node) override;

  // Non-Ok when the configuration failed CheckFaultDelayFloor against the
  // cluster's engine at construction; the RPC hook is then left
  // uninstalled (crash and GC-stall faults still work).
  const Status& config_status() const { return config_status_; }

  uint64_t crashes_injected() const { return crashes_injected_; }
  uint64_t restarts_injected() const { return restarts_injected_; }
  uint64_t rpcs_dropped() const { return rpcs_dropped_; }
  uint64_t rpcs_delayed() const { return rpcs_delayed_; }

 private:
  double NextUniform();

  sim::EventLoop& loop_;
  Cluster& cluster_;
  FaultInjectorOptions options_;
  uint64_t rng_;
  Status config_status_;
  bool installed_ = false;
  uint64_t crashes_injected_ = 0;
  uint64_t restarts_injected_ = 0;
  uint64_t rpcs_dropped_ = 0;
  uint64_t rpcs_delayed_ = 0;
};

}  // namespace libra::cluster

#endif  // LIBRA_SRC_CLUSTER_FAULT_INJECTOR_H_
