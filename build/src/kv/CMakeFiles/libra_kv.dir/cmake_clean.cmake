file(REMOVE_RECURSE
  "CMakeFiles/libra_kv.dir/cache.cc.o"
  "CMakeFiles/libra_kv.dir/cache.cc.o.d"
  "CMakeFiles/libra_kv.dir/storage_node.cc.o"
  "CMakeFiles/libra_kv.dir/storage_node.cc.o.d"
  "liblibra_kv.a"
  "liblibra_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
