// Quickstart: bring up a Libra-provisioned storage node, register a tenant
// with an app-request reservation, and serve GET/PUT traffic.
//
//   $ ./examples/quickstart
//
// Walks through the full stack: device calibration -> cost model -> node
// with scheduler + resource policy -> tenant requests on the coroutine
// runtime.

#include <cstdio>

#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/ssd/calibration.h"

using namespace libra;

int main() {
  // 1. Calibrate the device (a deployment does this once per SSD model;
  //    see paper §4.3). The table feeds the VOP cost model.
  const ssd::DeviceProfile profile = ssd::Intel320Profile();
  std::printf("calibrating %s...\n", profile.name.c_str());
  ssd::CalibrationOptions copt;
  copt.measure = 500 * kMillisecond;
  const ssd::CalibrationTable table = ssd::Calibrate(profile, copt);
  std::printf("  max IOP throughput: %.0f op/s (the VOP normalizer)\n",
              table.max_iops());

  // 2. Build the storage node: LSM partitions over Libra over the SSD.
  sim::EventLoop loop;
  kv::NodeOptions options;
  options.device_profile = profile;
  options.calibration = table;
  kv::NodeOptions node_options = options;
  kv::StorageNode node(loop, node_options);

  // 3. Register a tenant with a local reservation: 2000 normalized (1KB)
  //    GET/s and 1000 normalized PUT/s. A system-wide policy (e.g. Pisces)
  //    would compute these per node from the tenant's global SLA.
  const iosched::TenantId tenant = 42;
  if (Status s = node.AddTenant(tenant, {2000.0, 1000.0}); !s.ok()) {
    std::printf("AddTenant failed: %s\n", s.ToString().c_str());
    return 1;
  }
  node.Start();  // the resource policy reprovisions every second

  // 4. Issue requests. Application code is written as coroutines; each
  //    co_await suspends until Libra schedules the IO.
  auto client = [&]() -> sim::Task<void> {
    Status s = co_await node.Put(tenant, "user:1001", "alice");
    std::printf("PUT user:1001 -> %s (t=%.3fs)\n", s.ToString().c_str(),
                ToSeconds(loop.Now()));
    s = co_await node.Put(tenant, "user:1002", "bob");
    std::printf("PUT user:1002 -> %s\n", s.ToString().c_str());

    auto r = co_await node.Get(tenant, "user:1001");
    std::printf("GET user:1001 -> %s value=%s\n", r.status.ToString().c_str(),
                r.value.c_str());

    s = co_await node.Delete(tenant, "user:1002");
    std::printf("DEL user:1002 -> %s\n", s.ToString().c_str());
    r = co_await node.Get(tenant, "user:1002");
    std::printf("GET user:1002 -> %s (expected not_found)\n",
                r.status.ToString().c_str());
  };
  sim::Detach(client());
  // The policy keeps a 1s timer pending while started, so bound the run,
  // stop it, and drain the rest.
  loop.RunUntil(loop.Now() + 5 * kSecond);
  node.Stop();
  loop.Run();

  // 5. Inspect what the tenant's requests cost.
  const auto& stats = node.tracker().Stats(tenant);
  std::printf("tenant %u consumed %.2f VOPs over %llu IOs (%llu bytes)\n",
              tenant, stats.vops,
              static_cast<unsigned long long>(stats.total_ops()),
              static_cast<unsigned long long>(stats.total_bytes()));
  std::printf("VOP allocation provisioned by the policy: %.1f VOP/s\n",
              node.scheduler().Allocation(tenant));
  return 0;
}
