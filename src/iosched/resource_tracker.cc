#include "src/iosched/resource_tracker.h"

#include <cassert>

namespace libra::iosched {

ResourceTracker::Tenant::Tenant(double alpha) {
  app.reserve(kNumAppRequests);
  for (int i = 0; i < kNumAppRequests; ++i) {
    app.emplace_back(alpha);
  }
  internal.reserve(kNumInternalOps);
  for (int i = 0; i < kNumInternalOps; ++i) {
    internal.emplace_back(alpha);
  }
  trig.reserve(kNumAppRequests * kNumInternalOps);
  for (int i = 0; i < kNumAppRequests * kNumInternalOps; ++i) {
    trig.emplace_back(alpha);
  }
}

ResourceTracker::ResourceTracker(double ewma_alpha) : alpha_(ewma_alpha) {}

ResourceTracker::Tenant& ResourceTracker::GetTenant(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    it = tenants_.emplace(id, Tenant(alpha_)).first;
  }
  return it->second;
}

void ResourceTracker::RecordIo(const IoTag& tag, ssd::IoType type,
                               uint32_t size_bytes, double vop_cost) {
  Tenant& t = GetTenant(tag.tenant);
  total_vops_ += vop_cost;
  t.stats.vops += vop_cost;
  if (type == ssd::IoType::kRead) {
    ++t.stats.read_ops;
    t.stats.read_bytes += size_bytes;
  } else {
    ++t.stats.write_ops;
    t.stats.write_bytes += size_bytes;
  }
  if (tag.internal != InternalOp::kNone) {
    t.internal[static_cast<int>(tag.internal)].u += vop_cost;
  } else {
    t.app[static_cast<int>(tag.app)].u += vop_cost;
  }
  t.vops_by[static_cast<int>(tag.app)][static_cast<int>(tag.internal)]
          [static_cast<int>(type)] += vop_cost;
}

void ResourceTracker::RecordIoShare(const IoTag& tag, ssd::IoType type,
                                    uint32_t size_bytes, double vop_cost) {
  ++shared_io_shares_;
  shared_io_bytes_ += size_bytes;
  RecordIo(tag, type, size_bytes, vop_cost);
}

void ResourceTracker::RecordAppRequest(TenantId tenant, AppRequest app,
                                       uint64_t size_bytes) {
  Tenant& t = GetTenant(tenant);
  const double n = NormalizedRequests(size_bytes);
  AppClass& cls = t.app[static_cast<int>(app)];
  cls.s += n;
  cls.s_total += n;
  cls.bytes += static_cast<double>(size_bytes);
  cls.requests += 1.0;
  // Every trigger class originating from this request type sees the new
  // requests in its since-last-trigger accumulator.
  for (int i = 0; i < kNumInternalOps; ++i) {
    t.trig[static_cast<int>(app) * kNumInternalOps + i].s_accum += n;
  }
}

void ResourceTracker::RecordTrigger(TenantId tenant, AppRequest origin,
                                    InternalOp op) {
  Tenant& t = GetTenant(tenant);
  t.trig[static_cast<int>(origin) * kNumInternalOps + static_cast<int>(op)]
      .triggers += 1.0;
}

void ResourceTracker::RecordInternalOpDone(TenantId tenant, InternalOp op) {
  GetTenant(tenant).internal[static_cast<int>(op)].ops += 1.0;
}

void ResourceTracker::Roll() {
  for (auto& [id, t] : tenants_) {
    for (auto& a : t.app) {
      if (a.s > 0.0) {
        a.q.Observe(a.u / a.s);
      }
      if (a.requests > 0.0) {
        a.mean_size.Observe(a.bytes / a.requests);
      }
      a.u = 0.0;
      a.s = 0.0;
      a.bytes = 0.0;
      a.requests = 0.0;
    }
    for (auto& i : t.internal) {
      if (i.ops > 0.0) {
        i.q.Observe(i.u / i.ops);
        i.u = 0.0;
        i.ops = 0.0;
      }
      // If an op is still in flight (u > 0 but ops == 0), leave its partial
      // consumption accumulating: it is attributed when the op completes,
      // normalized by the full span of requests since the last trigger.
    }
    for (auto& tr : t.trig) {
      if (tr.triggers > 0.0 && tr.s_accum > 0.0) {
        tr.rate.Observe(tr.triggers / tr.s_accum);
        tr.triggers = 0.0;
        tr.s_accum = 0.0;
      }
      // Without a trigger this interval, s_accum keeps growing so that a
      // sporadic operation's rate reflects the full inter-trigger span.
    }
  }
}

AppRequestProfile ResourceTracker::Profile(TenantId tenant, AppRequest app,
                                           double fallback_direct) const {
  AppRequestProfile p;
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    p.direct = fallback_direct;
    return p;
  }
  const Tenant& t = it->second;
  const AppClass& a = t.app[static_cast<int>(app)];
  p.direct = a.q.initialized() ? a.q.Value() : fallback_direct;
  for (int i = 1; i < kNumInternalOps; ++i) {
    const InternalClass& ic = t.internal[i];
    const TriggerClass& tc = t.trig[static_cast<int>(app) * kNumInternalOps + i];
    if (ic.q.initialized() && tc.rate.initialized()) {
      p.indirect[i] = ic.q.Value() * tc.rate.Value();
    }
  }
  return p;
}

double ResourceTracker::VopsBy(TenantId tenant, AppRequest app,
                               InternalOp internal, ssd::IoType type) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return 0.0;
  }
  return it->second.vops_by[static_cast<int>(app)][static_cast<int>(internal)]
                           [static_cast<int>(type)];
}

double ResourceTracker::MeanRequestSize(TenantId tenant, AppRequest app) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return 0.0;
  }
  const AppClass& cls = it->second.app[static_cast<int>(app)];
  // Prefer the smoothed value; fall back to the live interval.
  if (cls.mean_size.initialized()) {
    return cls.mean_size.Value();
  }
  return cls.requests > 0.0 ? cls.bytes / cls.requests : 0.0;
}

double ResourceTracker::NormalizedRequestsTotal(TenantId tenant,
                                                AppRequest app) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return 0.0;
  }
  return it->second.app[static_cast<int>(app)].s_total;
}

const TenantIoStats& ResourceTracker::Stats(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? empty_stats_ : it->second.stats;
}

std::vector<TenantId> ResourceTracker::tenants() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace libra::iosched
