#include "src/cluster/global_provisioner.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/iosched/resource_tracker.h"
#include "src/sim/task.h"

namespace libra::cluster {

namespace {

uint64_t DemandKey(iosched::TenantId tenant, int node) {
  return (static_cast<uint64_t>(tenant) << 32) | static_cast<uint32_t>(node);
}

// Fire-and-forget wrapper for automatic migrations: the provisioner must not
// block its interval timer on a drain. Failures leave the shard where it was
// (MigrateShard is key-preserving on every error path), so the next
// overbooked streak simply retries.
sim::Task<void> RunMigration(Cluster* cluster, iosched::TenantId tenant,
                             int slot, int to_node) {
  (void)co_await cluster->MigrateShard(tenant, slot, to_node);
}

}  // namespace

GlobalProvisioner::GlobalProvisioner(sim::EventLoop& loop, Cluster& cluster,
                                     GlobalProvisionerOptions options)
    : loop_(loop), cluster_(cluster), options_(options) {
  assert(options_.interval > 0);
  overbooked_streak_.assign(static_cast<size_t>(cluster_.num_nodes()), 0);
  audit_seen_.assign(static_cast<size_t>(cluster_.num_nodes()), 0);
}

GlobalProvisioner::~GlobalProvisioner() { Stop(); }

void GlobalProvisioner::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (sim::MultiLoop* multi = cluster_.multi_loop(); multi != nullptr) {
    // Parallel engine: the interval step reads every node's tracker and
    // audit log, which is only safe with all node loops quiesced — so the
    // timer is a re-arming barrier hook instead of a loop event. A stale
    // hook after Stop() fires once as a no-op (hooks cannot be cancelled).
    auto rearm = [this, multi](auto&& self) -> void {
      multi->ScheduleBarrierAt(multi->Now() + options_.interval,
                               [this, multi, self] {
                                 if (!running_) {
                                   return;
                                 }
                                 RunIntervalStep();
                                 self(self);
                               });
    };
    rearm(rearm);
    return;
  }
  auto reschedule = [this](auto&& self) -> void {
    pending_event_ = loop_.ScheduleAfter(options_.interval, [this, self] {
      if (!running_) {
        return;
      }
      RunIntervalStep();
      self(self);
    });
  };
  reschedule(reschedule);
}

void GlobalProvisioner::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_event_ != 0) {
    loop_.Cancel(pending_event_);
    pending_event_ = 0;
  }
}

void GlobalProvisioner::RunIntervalStep() {
  const SimTime now = loop_.Now();
  const bool first_step = last_step_time_ < 0;
  for (const iosched::TenantId tenant : cluster_.tenants()) {
    const std::vector<int> slots = cluster_.shard_map_.SlotsPerNode(tenant);
    for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
      if (slots[n] > 0 && cluster_.NodeAlive(n)) {
        UpdateDemand(tenant, n);
      }
    }
    if (!first_step) {
      ResplitTenant(tenant);
    }
  }
  last_step_time_ = now;
  CheckOverbooking();
}

void GlobalProvisioner::UpdateDemand(iosched::TenantId tenant,
                                     int node_index) {
  const auto& tracker = cluster_.nodes_[node_index]->tracker();
  const double get_total = tracker.NormalizedRequestsTotal(
      tenant, iosched::AppRequest::kGet);
  const double put_total = tracker.NormalizedRequestsTotal(
      tenant, iosched::AppRequest::kPut);

  auto [it, created] = demand_.try_emplace(DemandKey(tenant, node_index),
                                           options_.demand_alpha);
  NodeDemand& d = it->second;
  const double elapsed =
      last_step_time_ < 0 ? 0.0 : ToSeconds(loop_.Now() - last_step_time_);
  if (!created && elapsed > 0.0) {
    d.get_rate.Observe((get_total - d.last_get_total) / elapsed);
    d.put_rate.Observe((put_total - d.last_put_total) / elapsed);
  }
  d.last_get_total = get_total;
  d.last_put_total = put_total;
}

double GlobalProvisioner::DemandShare(iosched::TenantId tenant,
                                      int node) const {
  const auto it = demand_.find(DemandKey(tenant, node));
  if (it == demand_.end()) {
    return 0.0;
  }
  double mine = it->second.get_rate.Value() + it->second.put_rate.Value();
  double total = 0.0;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    const auto nit = demand_.find(DemandKey(tenant, n));
    if (nit != demand_.end()) {
      total += nit->second.get_rate.Value() + nit->second.put_rate.Value();
    }
  }
  return total > 0.0 ? mine / total : 0.0;
}

void GlobalProvisioner::ResplitTenant(iosched::TenantId tenant) {
  const auto tit = cluster_.tenants_.find(tenant);
  if (tit == cluster_.tenants_.end()) {
    return;
  }
  const GlobalReservation global = tit->second.global;

  // Hosting set: alive nodes only — a crashed node earns no share, and its
  // mass must land on the survivors so the split still sums to the global.
  const std::vector<int> slots = cluster_.shard_map_.SlotsPerNode(tenant);
  std::vector<int> hosting;
  int total_slots = 0;
  for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
    if (slots[n] > 0 && cluster_.NodeAlive(n)) {
      hosting.push_back(n);
      total_slots += slots[n];
    }
  }
  if (hosting.empty()) {
    return;
  }

  // Demand-proportional shares per request class, falling back to
  // slot-proportional while a class is entirely unobserved, floored at
  // min_share and renormalized so every hosting node can ramp back up.
  const size_t k = hosting.size();
  std::vector<double> get_d(k, 0.0);
  std::vector<double> put_d(k, 0.0);
  double get_total = 0.0;
  double put_total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const auto dit = demand_.find(DemandKey(tenant, hosting[i]));
    if (dit != demand_.end()) {
      get_d[i] = dit->second.get_rate.Value();
      put_d[i] = dit->second.put_rate.Value();
    }
    get_total += get_d[i];
    put_total += put_d[i];
  }
  auto shares = [&](const std::vector<double>& demand, double total) {
    std::vector<double> s(k);
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      s[i] = total > 1e-9
                 ? demand[i] / total
                 : static_cast<double>(slots[hosting[i]]) / total_slots;
      s[i] = std::max(s[i], options_.min_share);
      sum += s[i];
    }
    for (double& v : s) {
      v /= sum;
    }
    return s;
  };
  const std::vector<double> get_share = shares(get_d, get_total);
  const std::vector<double> put_share = shares(put_d, put_total);

  // All but the last hosting node take their proportional cut; the last
  // takes the remainder so the split sums exactly to the global rate.
  std::map<int, iosched::Reservation> split;
  double get_used = 0.0;
  double put_used = 0.0;
  for (size_t i = 0; i + 1 < k; ++i) {
    iosched::Reservation r;
    r.get_rps = global.get_rps * get_share[i];
    r.put_rps = global.put_rps * put_share[i];
    get_used += r.get_rps;
    put_used += r.put_rps;
    split[hosting[i]] = r;
  }
  iosched::Reservation last;
  last.get_rps = std::max(0.0, global.get_rps - get_used);
  last.put_rps = std::max(0.0, global.put_rps - put_used);
  split[hosting[k - 1]] = last;

  // Hysteresis: apply only when some node's share moved by more than the
  // band, as a fraction of the tenant's total global rate. A change in the
  // hosting set (migration) always passes.
  const auto& current = tit->second.split;
  double max_change = 0.0;
  bool hosting_changed = current.size() != split.size();
  for (const auto& [node, r] : split) {
    const auto cit = current.find(node);
    if (cit == current.end()) {
      hosting_changed = true;
      break;
    }
    max_change = std::max(max_change,
                          std::abs(r.get_rps - cit->second.get_rps) +
                              std::abs(r.put_rps - cit->second.put_rps));
  }
  const double denom = std::max(1.0, global.get_rps + global.put_rps);
  if (!hosting_changed && !current.empty() &&
      max_change / denom < options_.hysteresis) {
    return;
  }

  if (!cluster_.ApplySplit(tenant, split).ok()) {
    return;
  }
  ++splits_applied_;

  obs::RebalanceRecord rec;
  rec.kind = obs::RebalanceRecord::Kind::kSplit;
  rec.time_ns = loop_.Now();
  rec.tenant = tenant;
  rec.nodes = static_cast<int>(k);
  cluster_.rebalance_log_.Append(rec);
}

void GlobalProvisioner::CheckOverbooking() {
  // Advance per-node streaks from the nodes' provisioning audit logs (one
  // record per policy interval; the watermark skips already-seen records).
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (!cluster_.NodeAlive(n)) {
      overbooked_streak_[n] = 0;  // a dead node cannot be overbooked
      continue;
    }
    const auto& log = cluster_.nodes_[n]->policy().audit_log();
    const uint64_t total = log.total_appended();
    if (total > audit_seen_[n]) {
      audit_seen_[n] = total;
      overbooked_streak_[n] =
          log.back().overbooked ? overbooked_streak_[n] + 1 : 0;
    }
  }
  if (options_.overbook_intervals_before_migration <= 0 ||
      cluster_.active_migrations_ > 0) {
    return;  // disabled, or a migration is already draining
  }

  // Most persistently overbooked node past the threshold (lowest index on
  // ties, for determinism).
  int src = -1;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (overbooked_streak_[n] >= options_.overbook_intervals_before_migration &&
        (src < 0 || overbooked_streak_[n] > overbooked_streak_[src])) {
      src = n;
    }
  }
  if (src < 0) {
    return;
  }

  // Victim: the tenant with the highest smoothed demand on the overbooked
  // node — moving its hottest shard sheds the most load per migration.
  iosched::TenantId victim = iosched::kInvalidTenant;
  double victim_demand = -1.0;
  for (const auto& [tenant, state] : cluster_.tenants_) {
    if (cluster_.shard_map_.SlotsPerNode(tenant)[src] == 0) {
      continue;
    }
    double d = 0.0;
    if (const auto dit = demand_.find(DemandKey(tenant, src));
        dit != demand_.end()) {
      d = dit->second.get_rate.Value() + dit->second.put_rate.Value();
    }
    if (d > victim_demand) {
      victim_demand = d;
      victim = tenant;
    }
  }
  if (victim == iosched::kInvalidTenant) {
    overbooked_streak_[src] = 0;
    return;
  }
  int slot = -1;
  const std::vector<int> assignment = cluster_.shard_map_.Assignment(victim);
  for (int s = 0; s < static_cast<int>(assignment.size()); ++s) {
    if (assignment[s] == src) {
      slot = s;
      break;
    }
  }
  assert(slot >= 0);

  // Target: the least-provisioned node that is not itself on an overbooked
  // streak (any other node as a last resort).
  int dst = -1;
  double dst_load = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2 && dst < 0; ++pass) {
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      if (n == src || !cluster_.NodeAlive(n) ||
          (pass == 0 && overbooked_streak_[n] > 0)) {
        continue;
      }
      double load = 0.0;
      for (const auto& [tenant, state] : cluster_.tenants_) {
        if (const auto sit = state.split.find(n); sit != state.split.end()) {
          load += cluster_.PricedVops(sit->second);
        }
      }
      if (load < dst_load) {
        dst_load = load;
        dst = n;
      }
    }
  }
  if (dst < 0) {
    return;
  }

  ++migrations_started_;
  overbooked_streak_[src] = 0;  // give the migration time to take effect
  sim::Detach(RunMigration(&cluster_, victim, slot, dst));
}

}  // namespace libra::cluster
