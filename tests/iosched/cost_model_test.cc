#include "src/iosched/cost_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace libra::iosched {
namespace {

// Synthetic calibration table with the canonical two-bottleneck shape:
// IOPS flat at small sizes (controller), ~BW/size at large sizes.
ssd::CalibrationTable SyntheticTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

class CostModelTest : public ::testing::Test {
 protected:
  ssd::CalibrationTable table_ = SyntheticTable();
};

TEST_F(CostModelTest, ExactSmallReadCostsAboutOneVop) {
  ExactCostModel m(table_);
  EXPECT_NEAR(m.Cost(ssd::IoType::kRead, 1024), 1.0, 1e-9);
}

TEST_F(CostModelTest, ExactWriteCostlierThanRead) {
  ExactCostModel m(table_);
  for (uint32_t kb : ssd::kSweepSizesKb) {
    EXPECT_GT(m.Cost(ssd::IoType::kWrite, kb * 1024),
              m.Cost(ssd::IoType::kRead, kb * 1024))
        << kb << "KB";
  }
}

TEST_F(CostModelTest, ExactCostGapNarrowsAtLargeSizes) {
  // Paper Fig. 6: the write/read cost ratio shrinks as IOP size grows.
  ExactCostModel m(table_);
  const double ratio_small = m.Cost(ssd::IoType::kWrite, 1024) /
                             m.Cost(ssd::IoType::kRead, 1024);
  const double ratio_large = m.Cost(ssd::IoType::kWrite, 256 * 1024) /
                             m.Cost(ssd::IoType::kRead, 256 * 1024);
  EXPECT_LT(ratio_large, ratio_small);
}

TEST_F(CostModelTest, ExactCostPerByteDecreasesWithSize) {
  ExactCostModel m(table_);
  double prev_cpb = 1e30;
  for (uint32_t kb : ssd::kSweepSizesKb) {
    const double cpb = m.Cost(ssd::IoType::kRead, kb * 1024) / kb;
    // Non-increasing up to measurement noise (real curves wiggle ~1%).
    EXPECT_LE(cpb, prev_cpb * 1.02) << kb << "KB";
    prev_cpb = cpb;
  }
}

TEST_F(CostModelTest, ExactEquivalentWorkloadsChargedEqually) {
  // Paper §4.3: 10000 1KB reads and ~160 256KB reads both represent about a
  // quarter of SSD throughput and should cost about the same VOP/s.
  ExactCostModel m(table_);
  const double quarter_small = 38000.0 / 4.0 * m.Cost(ssd::IoType::kRead, 1024);
  const double quarter_large =
      1025.0 / 4.0 * m.Cost(ssd::IoType::kRead, 256 * 1024);
  EXPECT_NEAR(quarter_small / quarter_large, 1.0, 0.05);
}

TEST_F(CostModelTest, FittedTracksExactWithinTolerance) {
  ExactCostModel exact(table_);
  FittedCostModel fitted(table_);
  for (uint32_t kb : ssd::kSweepSizesKb) {
    for (ssd::IoType t : {ssd::IoType::kRead, ssd::IoType::kWrite}) {
      const double e = exact.Cost(t, kb * 1024);
      const double f = fitted.Cost(t, kb * 1024);
      EXPECT_NEAR(f / e, 1.0, 0.45) << ssd::IoTypeName(t) << " " << kb << "KB";
    }
  }
}

TEST_F(CostModelTest, ConstantOverchargesLargeOps) {
  // DynamoDB pricing: one 256KB op costs 256x a 1KB op, far above the true
  // cost ratio (~37x here).
  ExactCostModel exact(table_);
  ConstantCpbModel constant(table_);
  EXPECT_NEAR(constant.Cost(ssd::IoType::kRead, 256 * 1024) /
                  constant.Cost(ssd::IoType::kRead, 1024),
              256.0, 1e-6);
  EXPECT_GT(constant.Cost(ssd::IoType::kRead, 256 * 1024),
            2.0 * exact.Cost(ssd::IoType::kRead, 256 * 1024));
}

TEST_F(CostModelTest, LinearAccurateAtBandwidthBoundEnd) {
  // The naive fit is dominated by the large-size points, so it tracks the
  // exact model closely there.
  ExactCostModel exact(table_);
  LinearCostModel linear(table_);
  for (ssd::IoType t : {ssd::IoType::kRead, ssd::IoType::kWrite}) {
    EXPECT_NEAR(linear.Cost(t, 256 * 1024) / exact.Cost(t, 256 * 1024), 1.0,
                0.15);
  }
}

TEST_F(CostModelTest, LinearUndercutsExactForSmallOps) {
  // Paper Fig. 8: the linear (mClock/FlashFQ-style) model undercuts the
  // Libra cost curve away from the bandwidth-bound end. With our convex
  // service-time curve the undercut concentrates at small sizes (~2x at
  // 1KB), which is the mispricing that skews allocations in Fig. 9.
  ExactCostModel exact(table_);
  LinearCostModel linear(table_);
  for (uint32_t kb : {1u, 2u}) {
    EXPECT_LT(linear.Cost(ssd::IoType::kRead, kb * 1024),
              0.8 * exact.Cost(ssd::IoType::kRead, kb * 1024))
        << kb << "KB";
  }
  // Deviation from exact is material across the small/mid range.
  double worst = 1.0;
  for (uint32_t kb : {1u, 2u, 4u, 8u, 16u}) {
    const double ratio = linear.Cost(ssd::IoType::kRead, kb * 1024) /
                         exact.Cost(ssd::IoType::kRead, kb * 1024);
    worst = std::min(worst, ratio);
  }
  EXPECT_LT(worst, 0.7);
}

TEST_F(CostModelTest, FixedChargesSizeIndependent) {
  FixedCostModel fixed(table_);
  EXPECT_DOUBLE_EQ(fixed.Cost(ssd::IoType::kRead, 1024),
                   fixed.Cost(ssd::IoType::kRead, 256 * 1024));
  EXPECT_DOUBLE_EQ(fixed.Cost(ssd::IoType::kWrite, 4096),
                   fixed.Cost(ssd::IoType::kWrite, 128 * 1024));
}

TEST_F(CostModelTest, FactoryMakesAllModels) {
  for (const char* name : {"exact", "fitted", "constant", "linear", "fixed"}) {
    auto m = MakeCostModel(name, table_);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->name(), name);
    EXPECT_GT(m->Cost(ssd::IoType::kRead, 4096), 0.0);
  }
  EXPECT_EQ(MakeCostModel("nope", table_), nullptr);
}

TEST_F(CostModelTest, AllModelsAgreeAtOneKilobyte) {
  // Every model is anchored so a 1KB op costs the true 1KB price.
  ExactCostModel exact(table_);
  for (const char* name : {"constant", "fixed"}) {
    auto m = MakeCostModel(name, table_);
    for (ssd::IoType t : {ssd::IoType::kRead, ssd::IoType::kWrite}) {
      EXPECT_NEAR(m->Cost(t, 1024), exact.Cost(t, 1024), 1e-9) << name;
    }
  }
}

}  // namespace
}  // namespace libra::iosched
