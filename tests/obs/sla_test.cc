#include "src/obs/sla.h"

#include <gtest/gtest.h>

namespace libra::obs {
namespace {

TEST(SlaMonitorTest, ViolationRequiresDemandAndShortfall) {
  SlaMonitor sla;
  // Achieved >= reserved: fine.
  EXPECT_FALSE(sla.RecordInterval(1, 1'000'000, 100.0, 120.0,
                                  /*demand_pending=*/true, 0.05));
  // Short but within tolerance: fine.
  EXPECT_FALSE(sla.RecordInterval(1, 2'000'000, 100.0, 96.0, true, 0.05));
  // Short beyond tolerance with demand: violation.
  EXPECT_TRUE(sla.RecordInterval(1, 3'000'000, 100.0, 50.0, true, 0.05));
  // Same shortfall, no pending demand: the tenant just wasn't asking.
  EXPECT_FALSE(sla.RecordInterval(1, 4'000'000, 100.0, 50.0, false, 0.05));

  const SlaMonitor::TenantSla* t = sla.Of(1);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->intervals, 4u);
  EXPECT_EQ(t->violations, 1u);
  EXPECT_DOUBLE_EQ(t->violation_rate(), 0.25);
  EXPECT_FALSE(t->last_violated);
  EXPECT_EQ(t->last_time_ns, 4'000'000);
}

TEST(SlaMonitorTest, ZeroReservationNeverTracked) {
  SlaMonitor sla;
  EXPECT_FALSE(sla.RecordInterval(2, 1'000'000, 0.0, 0.0, true, 0.05));
  const SlaMonitor::TenantSla* t = sla.Of(2);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->intervals, 0u);  // best-effort tenants have no SLA
  EXPECT_EQ(t->violations, 0u);
}

TEST(SlaMonitorTest, TenantsListsDeterministically) {
  SlaMonitor sla;
  sla.RecordInterval(9, 1, 10.0, 10.0, true, 0.05);
  sla.RecordInterval(3, 1, 10.0, 10.0, true, 0.05);
  const std::vector<uint32_t> ts = sla.tenants();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], 3u);
  EXPECT_EQ(ts[1], 9u);
}

}  // namespace
}  // namespace libra::obs
