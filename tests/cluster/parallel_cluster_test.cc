// Parallel-engine cluster tests: the Cluster seam layer on a MultiLoop —
// request routing across per-node loops, thread-count-independent stats,
// the fault-injector delay floor against the engine lookahead, crash
// failover + recovery, and lossless migration, all through cross-loop
// messages instead of direct calls.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/fault_injector.h"
#include "src/cluster/global_provisioner.h"
#include "src/sim/multi_loop.h"
#include "src/sim/sync.h"

namespace libra::cluster {
namespace {

using iosched::TenantId;

constexpr SimDuration kRpcLatency = 50 * kMicrosecond;

ssd::CalibrationTable TestTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

ClusterOptions TestOptions(int nodes, int rf = 1) {
  ClusterOptions opt;
  opt.num_nodes = nodes;
  opt.replication_factor = rf;
  opt.node_options.calibration = TestTable();
  opt.node_options.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.node_options.prefill_bytes = 64 * kMiB;
  opt.rpc_latency = kRpcLatency;
  return opt;
}

// num_nodes + 1 loops: loop 0 is the coordinator, loop i + 1 is node i.
struct ParallelRig {
  sim::MultiLoop ml;
  Cluster cl;

  ParallelRig(int nodes, int threads, int rf = 1)
      : ml(nodes + 1, {threads, kRpcLatency}),
        cl(ml, TestOptions(nodes, rf)) {}

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    ml.Run();
  }
};

std::string Key(int i) { return "k" + std::to_string(i); }
std::string Val(int i) { return "v" + std::to_string(i); }

// Coroutines that outlive their spawning statement are free functions
// taking parameters by value (a capturing lambda's closure dies at the end
// of the spawning full expression).
sim::Task<void> PutAll(TenantHandle h, int n) {
  for (int i = 0; i < n; ++i) {
    const Status s = co_await h.Put(Key(i), Val(i));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

sim::Task<void> GetAll(TenantHandle h, int n, uint64_t* ok) {
  for (int i = 0; i < n; ++i) {
    const Result<std::string> r = co_await h.Get(Key(i));
    if (r.ok() && r.value() == Val(i)) {
      ++*ok;
    } else {
      ADD_FAILURE() << Key(i) << ": "
                    << (r.ok() ? "wrong value" : r.status().ToString());
    }
  }
}

sim::Task<void> MigrateAndCheck(Cluster* cl, TenantId tenant, int slot,
                                int to) {
  const Status s = co_await cl->MigrateShard(tenant, slot, to);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

sim::Task<void> RestartAndCheck(Cluster* cl, int node) {
  const Status s = co_await cl->RestartNode(node);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ParallelClusterTest, ServesRequestsAcrossNodeLoops) {
  ParallelRig rig(/*nodes=*/4, /*threads=*/1);
  ASSERT_TRUE(rig.cl.parallel());
  TenantHandle h = rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask(PutAll(h, 32));
  uint64_t ok = 0;
  rig.RunTask(GetAll(h, 32, &ok));
  EXPECT_EQ(ok, 32u);
  // The traffic really crossed loops: every request is at least a
  // request + response message pair.
  EXPECT_GE(rig.ml.messages_sent(), 128u);
  EXPECT_GT(rig.ml.epochs(), 0u);
}

TEST(ParallelClusterTest, DeleteAndMultiGetThroughSeams) {
  ParallelRig rig(/*nodes=*/3, /*threads=*/1);
  TenantHandle h = rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask([](TenantHandle t) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE((co_await t.Put(Key(i), Val(i))).ok());
    }
    EXPECT_TRUE((co_await t.Delete(Key(3))).ok());
    std::vector<std::string> keys;
    for (int i = 0; i < 8; ++i) {
      keys.push_back(Key(i));
    }
    const auto results = co_await t.MultiGet(keys);
    EXPECT_EQ(results.size(), keys.size());
    if (results.size() != keys.size()) {
      co_return;  // ASSERT_* returns are not usable inside a coroutine
    }
    for (int i = 0; i < 8; ++i) {
      if (i == 3) {
        EXPECT_EQ(results[i].status().code(), StatusCode::kNotFound);
      } else {
        EXPECT_TRUE(results[i].ok()) << keys[i];
        EXPECT_EQ(results[i].ok() ? results[i].value() : "", Val(i));
      }
    }
  }(h));
}

// One full scenario — admission, traffic, provisioner interval steps via
// barrier hooks, stop, drain — rendered to the stats JSON. The render must
// be byte-identical for any worker count.
std::string StatsScenario(int threads) {
  ParallelRig rig(/*nodes=*/3, threads);
  TenantHandle h1 =
      rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  TenantHandle h2 =
      rig.cl.AddTenant(2, GlobalReservation{300.0, 300.0}).value();
  rig.cl.Start();
  sim::Detach(PutAll(h1, 48));
  sim::Detach(PutAll(h2, 16));
  rig.ml.RunUntil(3 * kSecond);  // a few provisioner intervals pass idle
  rig.cl.Stop();
  rig.ml.Run();
  return ClusterStatsToJson(rig.cl.Snapshot());
}

TEST(ParallelClusterTest, StatsJsonIdenticalAcrossThreadCounts) {
  const std::string one = StatsScenario(1);
  const std::string three = StatsScenario(3);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, three);
}

TEST(ParallelClusterTest, FaultDelayFloorValidation) {
  FaultInjectorOptions opt;
  opt.rpc_delay_rate = 0.5;
  opt.rpc_delay_min = 10 * kMicrosecond;

  // Serial engines (no lookahead) and configs that never delay are fine.
  EXPECT_TRUE(CheckFaultDelayFloor(opt, 0).ok());
  FaultInjectorOptions inactive = opt;
  inactive.rpc_delay_rate = 0.0;
  EXPECT_TRUE(CheckFaultDelayFloor(inactive, kRpcLatency).ok());

  // A delay draw below the lookahead could land in an epoch that already
  // ran: rejected with both values and the hazard spelled out.
  const Status s = CheckFaultDelayFloor(opt, kRpcLatency);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find(std::to_string(10 * kMicrosecond)),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find(std::to_string(kRpcLatency)), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("lookahead"), std::string::npos) << s.message();

  FaultInjectorOptions good = opt;
  good.rpc_delay_min = kRpcLatency;
  EXPECT_TRUE(CheckFaultDelayFloor(good, kRpcLatency).ok());
}

TEST(ParallelClusterTest, FaultInjectorRefusesShortDelaysOnParallelEngine) {
  ParallelRig rig(/*nodes=*/2, /*threads=*/1);
  FaultInjectorOptions bad;
  bad.rpc_delay_rate = 0.25;
  bad.rpc_delay_min = rig.ml.lookahead() - 1;
  FaultInjector rejected(rig.ml.loop(0), rig.cl, bad);
  EXPECT_FALSE(rejected.config_status().ok());
  EXPECT_EQ(rejected.config_status().code(), StatusCode::kInvalidArgument);

  FaultInjectorOptions good = bad;
  good.rpc_delay_min = rig.ml.lookahead();
  FaultInjector accepted(rig.ml.loop(0), rig.cl, good);
  EXPECT_TRUE(accepted.config_status().ok());
}

TEST(ParallelClusterTest, CrashFailoverAndRecoveryAtRf2) {
  ParallelRig rig(/*nodes=*/4, /*threads=*/2, /*rf=*/2);
  TenantHandle h = rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask(PutAll(h, 64));

  ASSERT_TRUE(rig.cl.CrashNode(1).ok());
  rig.ml.Run();  // the crash message lands on node 1's loop
  EXPECT_FALSE(rig.cl.NodeAlive(1));

  // Every key still reads back: requests fail over to the live replica.
  uint64_t ok = 0;
  rig.RunTask(GetAll(h, 64, &ok));
  EXPECT_EQ(ok, 64u);

  rig.RunTask(RestartAndCheck(&rig.cl, 1));
  EXPECT_TRUE(rig.cl.NodeAlive(1));
  EXPECT_FALSE(rig.cl.NodeSyncing(1));  // catch-up completed

  ok = 0;
  rig.RunTask(GetAll(h, 64, &ok));
  EXPECT_EQ(ok, 64u);
}

TEST(ParallelClusterTest, MigrationIsLosslessOnParallelEngine) {
  ParallelRig rig(/*nodes=*/4, /*threads=*/2);
  const TenantId tenant = 1;
  TenantHandle h =
      rig.cl.AddTenant(tenant, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask(PutAll(h, 64));

  const int slot = 0;
  const int from = rig.cl.shard_map().HomeOf(tenant, slot);
  const int to = (from + 1) % rig.cl.num_nodes();
  rig.RunTask(MigrateAndCheck(&rig.cl, tenant, slot, to));
  EXPECT_EQ(rig.cl.shard_map().HomeOf(tenant, slot), to);

  uint64_t moved = 0;
  for (const auto& rec : rig.cl.rebalance_log().records()) {
    if (rec.kind == obs::RebalanceRecord::Kind::kMigration &&
        rec.tenant == tenant && rec.slot == slot) {
      moved = rec.keys_moved;
    }
  }
  EXPECT_GT(moved, 0u);

  uint64_t ok = 0;
  rig.RunTask(GetAll(h, 64, &ok));
  EXPECT_EQ(ok, 64u);
}

// The parallel engine must agree with the serial engine on every visible
// request result, not just on timing-free invariants.
TEST(ParallelClusterTest, ResultsMatchSerialEngine) {
  std::vector<std::string> serial_results;
  {
    sim::EventLoop loop;
    ClusterOptions opt = TestOptions(3);
    opt.rpc_latency = 0;
    Cluster cl(loop, opt);
    TenantHandle h = cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
    sim::Detach(PutAll(h, 24));
    loop.Run();
    sim::Detach([](TenantHandle t, std::vector<std::string>* out)
                    -> sim::Task<void> {
      for (int i = 0; i < 24; ++i) {
        const Result<std::string> r = co_await t.Get(Key(i));
        out->push_back(r.ok() ? r.value() : r.status().ToString());
      }
      const Result<std::string> miss = co_await t.Get("absent");
      out->push_back(miss.ok() ? miss.value() : miss.status().ToString());
    }(h, &serial_results));
    loop.Run();
  }

  std::vector<std::string> parallel_results;
  {
    ParallelRig rig(/*nodes=*/3, /*threads=*/2);
    TenantHandle h =
        rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
    rig.RunTask(PutAll(h, 24));
    rig.RunTask([](TenantHandle t, std::vector<std::string>* out)
                    -> sim::Task<void> {
      for (int i = 0; i < 24; ++i) {
        const Result<std::string> r = co_await t.Get(Key(i));
        out->push_back(r.ok() ? r.value() : r.status().ToString());
      }
      const Result<std::string> miss = co_await t.Get("absent");
      out->push_back(miss.ok() ? miss.value() : miss.status().ToString());
    }(h, &parallel_results));
  }

  EXPECT_EQ(parallel_results, serial_results);
}

}  // namespace
}  // namespace libra::cluster
