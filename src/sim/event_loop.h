// Single-threaded, virtual-time discrete-event loop.
//
// All Libra experiments run on simulated time: a 400-second reservation
// experiment (paper Fig. 12) replays in seconds of wall-clock time, and every
// run is deterministic given the workload seeds. The loop dispatches events
// in (time, insertion-order) order; callbacks run with the clock set to the
// event's timestamp.

#ifndef LIBRA_SRC_SIM_EVENT_LOOP_H_
#define LIBRA_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace libra::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when` (clamped to now).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Callback cb);

  // Schedules `cb` to run `delay` after the current virtual time.
  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  // Schedules `cb` at the current virtual time, after already-queued events
  // for this instant.
  EventId Post(Callback cb) { return ScheduleAt(now_, std::move(cb)); }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op.
  void Cancel(EventId id);

  // Runs events until the queue drains (or Stop() is called). Returns the
  // number of events dispatched.
  uint64_t Run();

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if idle). Returns the number of events dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Convenience: RunUntil(Now() + d).
  uint64_t RunFor(SimDuration d) { return RunUntil(now_ + d); }

  // Dispatches a single event if one is pending. Returns false when idle.
  bool RunOne();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  bool empty() const { return heap_.size() == cancelled_.size(); }
  size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-break: FIFO at equal timestamps
    EventId id;
    Callback cb;

    // Min-heap via std::push_heap's max-heap comparator inversion.
    bool operator<(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Pops the earliest non-cancelled event; returns false when empty.
  bool PopNext(Event& out);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  bool stopped_ = false;
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_EVENT_LOOP_H_
