#include "src/cluster/global_provisioner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/sync.h"

namespace libra::cluster {
namespace {

using iosched::Reservation;
using iosched::TenantId;

ssd::CalibrationTable TestTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

ClusterOptions TestOptions(int nodes = 4) {
  ClusterOptions opt;
  opt.num_nodes = nodes;
  opt.node_options.calibration = TestTable();
  opt.node_options.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.node_options.prefill_bytes = 64 * kMiB;
  return opt;
}

double SplitGetSum(Cluster& cl, TenantId tenant) {
  double sum = 0.0;
  for (int n = 0; n < cl.num_nodes(); ++n) {
    sum += cl.node(n).policy().GetReservation(tenant).get_rps;
  }
  return sum;
}

// Keys of `tenant` homed on `node` under the cluster's shard map.
std::vector<std::string> KeysOn(const Cluster& cl, TenantId tenant, int node,
                                int count) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < static_cast<size_t>(count) && i < 100000;
       ++i) {
    std::string key = "hot-" + std::to_string(i);
    if (cl.shard_map().NodeOfKey(tenant, key) == node) {
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

// Spawned coroutines that suspend must be free functions with by-value
// parameters (copied into the frame); a capturing lambda's closure is a
// temporary that dies before the loop resumes the coroutine.
sim::Task<void> PutAll(TenantHandle tenant, std::vector<std::string> keys,
                       std::string value) {
  for (const std::string& k : keys) {
    co_await tenant.Put(k, value);
  }
}

sim::Task<void> HammerKeys(sim::EventLoop* loop, TenantHandle tenant,
                           std::vector<std::string> keys, SimTime end) {
  size_t i = 0;
  while (loop->Now() < end) {
    co_await tenant.Get(keys[i++ % keys.size()]);
    // Memtable-resident GETs complete in zero simulated time; yield so the
    // clock advances and the loop terminates.
    co_await sim::SleepFor(*loop, 100 * kMicrosecond);
  }
}

TEST(GlobalProvisionerTest, ResplitSumsExactlyToGlobalUnderSkew) {
  sim::EventLoop loop;
  Cluster cl(loop, TestOptions());
  const GlobalReservation global{3000.0, 1000.0};
  TenantHandle tenant = cl.AddTenant(1, global).value();

  // Concentrate all demand on one node, then provision repeatedly: the
  // split must follow the demand and always re-sum exactly to the global
  // reservation.
  const int hot_node = cl.shard_map().HomeOf(1, 0);
  const std::vector<std::string> keys = KeysOn(cl, 1, hot_node, 8);
  ASSERT_FALSE(keys.empty());
  {
    sim::TaskGroup group(loop);
    group.Spawn(PutAll(tenant, keys, std::string(1024, 'x')));
    loop.Run();
  }

  GlobalProvisioner& prov = cl.provisioner();
  for (int round = 0; round < 5; ++round) {
    {
      sim::TaskGroup group(loop);
      group.Spawn(HammerKeys(&loop, tenant, keys,
                             loop.Now() + 500 * kMillisecond));
      loop.Run();
    }
    prov.RunIntervalStep();
    EXPECT_DOUBLE_EQ(SplitGetSum(cl, 1), global.get_rps) << round;
  }
  EXPECT_GT(prov.splits_applied(), 0u);

  // The hot node ended up with the dominant share of the reservation.
  const double hot_share =
      cl.node(hot_node).policy().GetReservation(1).get_rps / global.get_rps;
  EXPECT_GT(hot_share, 0.5);
  EXPECT_GT(prov.DemandShare(1, hot_node), 0.5);
}

TEST(GlobalProvisionerTest, HysteresisStopsSteadyStateThrash) {
  sim::EventLoop loop;
  Cluster cl(loop, TestOptions());
  TenantHandle tenant = cl.AddTenant(1, GlobalReservation{1000.0, 0.0}).value();
  const int hot_node = cl.shard_map().HomeOf(1, 0);
  const std::vector<std::string> keys = KeysOn(cl, 1, hot_node, 4);
  ASSERT_FALSE(keys.empty());
  {
    sim::TaskGroup group(loop);
    group.Spawn(PutAll(tenant, keys, "v"));
    loop.Run();
  }

  GlobalProvisioner& prov = cl.provisioner();
  // Steady identical demand every interval: after the split converges, the
  // hysteresis band must hold it still.
  for (int round = 0; round < 8; ++round) {
    sim::TaskGroup group(loop);
    group.Spawn(
        HammerKeys(&loop, tenant, keys, loop.Now() + 500 * kMillisecond));
    loop.Run();
    prov.RunIntervalStep();
  }
  const uint64_t converged = prov.splits_applied();
  for (int round = 0; round < 4; ++round) {
    sim::TaskGroup group(loop);
    group.Spawn(
        HammerKeys(&loop, tenant, keys, loop.Now() + 500 * kMillisecond));
    loop.Run();
    prov.RunIntervalStep();
  }
  EXPECT_EQ(prov.splits_applied(), converged);
}

TEST(GlobalProvisionerTest, NoDemandKeepsSlotProportionalSplit) {
  sim::EventLoop loop;
  Cluster cl(loop, TestOptions());
  const GlobalReservation global{800.0, 400.0};
  ASSERT_TRUE(cl.AddTenant(1, global).ok());
  const auto initial = [&] {
    std::vector<Reservation> r;
    for (int n = 0; n < cl.num_nodes(); ++n) {
      r.push_back(cl.node(n).policy().GetReservation(1));
    }
    return r;
  };
  const std::vector<Reservation> before = initial();
  GlobalProvisioner& prov = cl.provisioner();
  prov.RunIntervalStep();
  loop.RunUntil(loop.Now() + kSecond);
  prov.RunIntervalStep();
  // Nothing observed: the slot-proportional split equals the admission-time
  // even split, so hysteresis holds it and nothing thrashes.
  EXPECT_EQ(prov.splits_applied(), 0u);
  const std::vector<Reservation> after = initial();
  for (int n = 0; n < cl.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(after[n].get_rps, before[n].get_rps) << n;
    EXPECT_DOUBLE_EQ(after[n].put_rps, before[n].put_rps) << n;
  }
  loop.Run();
}

TEST(GlobalProvisionerTest, PersistentOverbookingTriggersMigration) {
  sim::EventLoop loop;
  ClusterOptions opt = TestOptions(2);
  opt.provisioner.overbook_intervals_before_migration = 3;
  Cluster cl(loop, opt);
  ASSERT_TRUE(cl.AddTenant(1, GlobalReservation{100.0, 100.0}).ok());

  // Overbook node 0 behind the cluster's back: its policy now records
  // overbooked == true every interval.
  const int src = 0;
  ASSERT_TRUE(cl.node(src).HasTenant(1));
  ASSERT_TRUE(cl.node(src).UpdateReservation(1, {1.0e6, 1.0e6}).ok());
  cl.node(0).Start();
  cl.node(1).Start();

  GlobalProvisioner& prov = cl.provisioner();
  const size_t overrides_before = cl.shard_map().num_overrides();
  for (int i = 0; i < 5 && prov.migrations_started() == 0; ++i) {
    loop.RunUntil(loop.Now() + 1100 * kMillisecond);
    prov.RunIntervalStep();
  }
  EXPECT_EQ(prov.migrations_started(), 1u);

  // Let the detached migration drain and flip the map.
  loop.RunUntil(loop.Now() + kSecond);
  EXPECT_GT(cl.shard_map().num_overrides(), overrides_before);
  bool saw_migration = false;
  for (const auto& rec : cl.rebalance_log().records()) {
    if (rec.kind == obs::RebalanceRecord::Kind::kMigration) {
      saw_migration = true;
      EXPECT_EQ(rec.tenant, 1u);
      EXPECT_EQ(rec.from_node, src);
      EXPECT_EQ(rec.to_node, 1);
    }
  }
  EXPECT_TRUE(saw_migration);

  cl.node(0).Stop();
  cl.node(1).Stop();
  loop.Run();
}

TEST(GlobalProvisionerTest, DisabledMigrationNeverFires) {
  sim::EventLoop loop;
  ClusterOptions opt = TestOptions(2);
  opt.provisioner.overbook_intervals_before_migration = 0;  // disabled
  Cluster cl(loop, opt);
  ASSERT_TRUE(cl.AddTenant(1, GlobalReservation{100.0, 100.0}).ok());
  ASSERT_TRUE(cl.node(0).UpdateReservation(1, {1.0e6, 1.0e6}).ok());
  cl.node(0).Start();
  cl.node(1).Start();
  GlobalProvisioner& prov = cl.provisioner();
  for (int i = 0; i < 5; ++i) {
    loop.RunUntil(loop.Now() + 1100 * kMillisecond);
    prov.RunIntervalStep();
  }
  EXPECT_EQ(prov.migrations_started(), 0u);
  cl.node(0).Stop();
  cl.node(1).Stop();
  loop.Run();
}

}  // namespace
}  // namespace libra::cluster
