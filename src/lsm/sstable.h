// Immutable sorted string tables.
//
// Layout (paper §3.1 mechanics: block reads + one index block per lookup):
//   [data block 0][data block 1]...[index block][footer]
//   data block:  concatenated records, ~4KB target size
//   index block: per data block {last_key, offset, size}
//   footer (16B): index offset u64, index size u64
//
// A point lookup loads the index block (>= one 4KB read, cached in memory
// after first use like LevelDB's table cache), binary-searches it, and
// reads exactly one data block. There is no bloom filter, matching 2014
// LevelDB defaults — every eligible file costs at least a data-block read,
// which is the per-file GET amplification the paper measures (Figs. 2/12).
//
// The builder emits the table through a sequential, chunked append stream
// (the paper's "asynchronous, io-efficient" FLUSH/COMPACT writes).

#ifndef LIBRA_SRC_LSM_SSTABLE_H_
#define LIBRA_SRC_LSM_SSTABLE_H_

#include <functional>
#include <list>
#include <memory>
#include <tuple>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/lsm/format.h"
#include "src/sim/task.h"

namespace libra::lsm {

struct SstableOptions {
  uint32_t block_bytes = 4096;          // data block target
  uint32_t write_chunk_bytes = 262144;  // sequential append granularity
};

// Builds a table in memory block by block; Finish() streams it to `file`.
class SstableBuilder {
 public:
  SstableBuilder(fs::SimFs& fs, fs::FileId file, SstableOptions options = {});

  // Keys must arrive in internal order (user key asc, seq desc).
  void Add(std::string_view key, SequenceNumber seq, ValueType type,
           std::string_view value);

  // Writes all pending data to the file with `tag` IO. No Adds afterwards.
  sim::Task<Status> Finish(const iosched::IoTag& tag);

  uint64_t estimated_bytes() const { return buffer_.size() + block_.size(); }
  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  void FlushBlock();

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;

  std::string buffer_;  // completed data blocks
  std::string block_;   // current data block
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };
  std::vector<IndexEntry> index_;
  std::string last_key_in_block_;
  std::string smallest_;
  std::string largest_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

// Bounded LRU cache of parsed sstable index blocks, shared across one DB's
// readers and keyed by table file number. Capacity 0 = unbounded — an
// index stays resident after first use, exactly the pre-cache behavior.
// Entries are shared_ptr<const Index> so a lookup in flight keeps a
// just-evicted index alive until it finishes; the next lookup on that
// table re-reads (and is re-charged) the index block from the device.
class TableIndexCache {
 public:
  // {last_key, block offset, block size} per data block (parsed index).
  using Index = std::vector<std::tuple<std::string, uint64_t, uint32_t>>;
  using IndexRef = std::shared_ptr<const Index>;

  explicit TableIndexCache(uint64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  TableIndexCache(const TableIndexCache&) = delete;
  TableIndexCache& operator=(const TableIndexCache&) = delete;

  // nullptr on miss; a hit refreshes the entry's LRU position.
  IndexRef Get(uint64_t table);

  // Inserts (replacing any previous entry for `table`), charging `bytes`
  // (the on-disk index size) against capacity, then evicts from the LRU
  // tail until resident bytes fit. The inserted entry itself is never
  // evicted by its own insertion.
  void Insert(uint64_t table, IndexRef index, uint64_t bytes);

  // Drops the entry when its table is deleted (not counted as eviction).
  void Erase(uint64_t table);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  size_t entries() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t table = 0;
    IndexRef index;
    uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  uint64_t capacity_bytes_;
  LruList lru_;  // front = most recent
  std::unordered_map<uint64_t, LruList::iterator> map_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

// Reads a finished table. Footer and index block are loaded from disk on
// first access and cached in memory thereafter (tables are immutable); data
// blocks are always read from the device — O_DIRECT leaves no page cache,
// and the engine keeps no block cache. With a shared TableIndexCache the
// parsed index lives there instead of in the reader, bounded by the cache's
// capacity; without one it is resident in the reader forever (the default).
class SstableReader {
 public:
  // `cache`, if non-null, holds this reader's parsed index under
  // `cache_key` (the table file number).
  SstableReader(fs::SimFs& fs, fs::FileId file, SstableOptions options = {},
                TableIndexCache* cache = nullptr, uint64_t cache_key = 0);

  struct GetResult {
    bool found = false;    // an entry for the key exists in this table
    bool deleted = false;  // ... and it is a tombstone
    std::string value;
    Status status;         // IO / parse errors
  };

  // Point lookup: newest entry for `key` visible at `snapshot`.
  sim::Task<GetResult> Get(const iosched::IoTag& tag, std::string_view key,
                           SequenceNumber snapshot);

  // Streaming in-order cursor over the table's records with user key >=
  // the seek key, for range scans. Data blocks are loaded on demand as the
  // cursor advances (each charged to the cursor's tag), so a
  // limit-truncated scan pays only for the blocks it actually touched —
  // unlike ScanAll's whole-table read. The cursor pins the parsed index
  // for its lifetime (a cache eviction mid-scan cannot invalidate it).
  class RangeCursor {
   public:
    bool Valid() const { return valid_; }
    // The current record; views point into the cursor's resident block and
    // are invalidated by Next(). Requires Valid().
    const Record& record() const { return record_; }
    // Advances to the next record in internal-key order, reading the next
    // data block when the current one is exhausted. Clears Valid() past
    // the table's last record.
    sim::Task<Status> Next();

   private:
    friend class SstableReader;
    RangeCursor(fs::SimFs& fs, fs::FileId file, iosched::IoTag tag,
                TableIndexCache::IndexRef index)
        : fs_(fs), file_(file), tag_(tag), index_(std::move(index)) {}

    // Decodes forward until a record with user key >= `start` surfaces
    // (every record when `bounded` is false), loading blocks as needed.
    sim::Task<Status> SkipTo(std::string_view start, bool bounded);

    fs::SimFs& fs_;
    fs::FileId file_;
    iosched::IoTag tag_;
    TableIndexCache::IndexRef index_;
    size_t next_block_ = 0;  // index of the next data block to load
    std::string block_;      // resident data block backing record_'s views
    size_t offset_ = 0;      // decode position within block_
    Record record_;
    bool valid_ = false;
  };

  // Opens a cursor positioned at the first record whose user key is >=
  // `start` (immediately invalid when the table holds none). The index
  // load and all data-block reads are charged to `tag`.
  sim::Task<StatusOr<std::unique_ptr<RangeCursor>>> Seek(
      const iosched::IoTag& tag, std::string_view start);

  // Sequential scan for compaction: reads the whole table in write_chunk
  // sized IOs and yields records in order via `fn`.
  sim::Task<Status> ScanAll(
      const iosched::IoTag& tag,
      const std::function<void(const Record&)>& fn);

 private:
  // Resolves the parsed index: from the shared cache (or the reader-local
  // resident copy when uncached), else loads footer + index block from the
  // device, charged to `tag`. The returned ref pins the index for the
  // caller even if the cache evicts it mid-lookup.
  sim::Task<StatusOr<TableIndexCache::IndexRef>> LoadIndex(
      const iosched::IoTag& tag);

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;
  TableIndexCache* cache_;  // nullptr: index resident in `resident_`
  uint64_t cache_key_;
  // Footer, cached after the first (charged) load; a post-eviction reload
  // re-reads only the index block.
  bool footer_cached_ = false;
  uint64_t index_offset_ = 0;
  uint64_t index_size_ = 0;
  TableIndexCache::IndexRef resident_;  // only used when cache_ == nullptr
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_SSTABLE_H_
