// Exponentially-weighted moving average, the smoothing primitive behind
// Libra's per-interval resource profiles (q_t^a, q_t^i in the paper, §4.1).

#ifndef LIBRA_SRC_COMMON_EWMA_H_
#define LIBRA_SRC_COMMON_EWMA_H_

#include <cassert>

namespace libra {

class Ewma {
 public:
  // alpha in (0, 1]: weight of the newest observation. The paper's policy
  // recomputes profiles once per second; alpha ~0.3 tracks workload shifts
  // within a few intervals without thrashing on noise.
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void Observe(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
      return;
    }
    value_ = alpha_ * sample + (1.0 - alpha_) * value_;
  }

  // Current average; `fallback` until the first observation.
  double Value(double fallback = 0.0) const {
    return initialized_ ? value_ : fallback;
  }

  bool initialized() const { return initialized_; }

  void Reset() {
    initialized_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_EWMA_H_
