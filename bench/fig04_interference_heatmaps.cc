// Figure 4: VOP throughput under read/write interference. Eight heat maps:
// the exclusive readers-vs-writers 1:1 split, mixed per-tenant ratios
// (99:1, 75:25, 50:50, 25:75, 1:99), and 50:50 with log-normal IOP-size
// variance (4K, 32K, 256K). Each cell: 8 equally-allocated tenants at queue
// depth 32 over a (read size x write size) grid.
//
// The summary line reports the measured capacity floor — the value Libra's
// capacity model (under)estimates as the provisionable bound (paper: 18
// kop/s against a 37.5 kop/s interference-free max on the Intel 320).
//
// Cells are independent simulations, so they are fanned across --jobs
// workers; tables are emitted serially afterwards in the fixed map order,
// making the output byte-identical to a serial run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace libra::bench {
namespace {

struct MapSpec {
  std::string name;
  CellMode mode;
  double read_fraction;
  double sigma;
};

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();

  const MapSpec maps[] = {
      {"1:1 exclusive readers/writers", CellMode::kReadWrite, 0.0, 0.0},
      {"99:1 read/write", CellMode::kMixed, 0.99, 0.0},
      {"75:25 read/write", CellMode::kMixed, 0.75, 0.0},
      {"50:50 read/write", CellMode::kMixed, 0.50, 0.0},
      {"25:75 read/write", CellMode::kMixed, 0.25, 0.0},
      {"1:99 read/write", CellMode::kMixed, 0.01, 0.0},
      {"50:50, sigma 4K", CellMode::kMixed, 0.50, 4096.0},
      {"50:50, sigma 32K", CellMode::kMixed, 0.50, 32768.0},
      {"50:50, sigma 256K", CellMode::kMixed, 0.50, 262144.0},
  };
  constexpr size_t kNumMaps = sizeof(maps) / sizeof(maps[0]);

  const auto sizes = SweepSizesKb(args.full);
  const size_t per_map = sizes.size() * sizes.size();

  TableFor(profile);  // warm the calibration cache before the pool starts
  SweepRunner runner(args.jobs);
  const std::vector<double> kvops =
      runner.Map<double>(kNumMaps * per_map, [&](size_t i) {
        const MapSpec& map = maps[i / per_map];
        const size_t c = i % per_map;
        const uint32_t w = sizes[c / sizes.size()];
        const uint32_t r = sizes[c % sizes.size()];
        RawCellSpec cell;
        cell.mode = map.mode;
        cell.read_fraction = map.read_fraction;
        cell.size_a_bytes = static_cast<double>(r) * 1024.0;
        cell.size_b_bytes = static_cast<double>(w) * 1024.0;
        cell.sigma_bytes = map.sigma;
        return RunRawCell(profile, cell).total_vops_per_sec / 1000.0;
      });

  double global_min = 1e30;
  double global_max = 0.0;
  for (size_t m = 0; m < kNumMaps; ++m) {
    Section(args, "Figure 4 map: " + maps[m].name + " (kVOP/s)");
    std::vector<std::string> header = {"write\\read_kb"};
    for (uint32_t r : sizes) {
      header.push_back(std::to_string(r));
    }
    libra::metrics::Table out(header);
    for (size_t wi = 0; wi < sizes.size(); ++wi) {
      std::vector<double> row;
      for (size_t ri = 0; ri < sizes.size(); ++ri) {
        const double v = kvops[m * per_map + wi * sizes.size() + ri];
        row.push_back(v);
        global_min = std::min(global_min, v);
        global_max = std::max(global_max, v);
      }
      out.AddNumericRow(std::to_string(sizes[wi]), row, 1);
    }
    Emit(args, out);
  }
  std::printf(
      "summary: interference-free max %.1f kVOP/s; measured floor %.1f "
      "kVOP/s (%.0f%% of max)\n",
      TableFor(profile).max_iops() / 1000.0, global_min,
      100.0 * global_min * 1000.0 / TableFor(profile).max_iops());
  std::printf("paper: max 37.5 kop/s, floor 18 kop/s (48%% of max)\n");
  return 0;
}
