// Closed-loop KV workload against the cluster layer's redesigned client
// API: the same GET/PUT/SCAN mix, key ranges, and log-normal sizes as
// KvTenantWorkload, but issued through a cluster::TenantHandle, so every
// request is routed to the node homing its key's shard (and suspends
// through shard migrations instead of failing). Scans fan out across every
// slot-serving node and merge at the client.

#ifndef LIBRA_SRC_WORKLOAD_CLUSTER_WORKLOAD_H_
#define LIBRA_SRC_WORKLOAD_CLUSTER_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/workload/workload.h"

namespace libra::workload {

class ClusterTenantWorkload {
 public:
  ClusterTenantWorkload(sim::EventLoop& loop, cluster::TenantHandle handle,
                        KvWorkloadSpec spec, uint64_t seed);

  // Populates the tenant's key ranges across the cluster.
  sim::Task<void> Preload();

  // Spawns the closed-loop workers until `end_time`.
  void Start(sim::TaskGroup& group, SimTime end_time);

  uint64_t gets_done() const { return gets_done_; }
  uint64_t puts_done() const { return puts_done_; }
  uint64_t scans_done() const { return scans_done_; }
  uint64_t scan_keys_returned() const { return scan_keys_returned_; }
  uint64_t scan_errors() const { return scan_errors_; }
  uint64_t get_errors() const { return get_errors_; }
  // Failure-mode breakdown (crash experiments): requests that ultimately
  // failed kUnavailable (retry budget exhausted against down replicas) or
  // kDeadlineExceeded (RetryPolicy.deadline ran out), and PUT failures of
  // any kind. An acked PUT never lands in put_errors_.
  uint64_t put_errors() const { return put_errors_; }
  uint64_t unavailable_errors() const { return unavailable_errors_; }
  uint64_t deadline_errors() const { return deadline_errors_; }
  cluster::TenantHandle handle() const { return handle_; }

  uint64_t put_keys() const { return put_keys_; }
  uint64_t get_keys() const { return get_keys_; }
  std::string GetKey(uint64_t index) const;
  std::string PutKey(uint64_t index) const;
  // Size the preload chose for GET-range object `index` (for recomputing
  // expected values in correctness checks).
  uint64_t GetObjectSize(uint64_t index) const;

 private:
  sim::Task<void> Worker(SimTime end_time);

  sim::EventLoop& loop_;
  cluster::TenantHandle handle_;
  KvWorkloadSpec spec_;
  uint64_t seed_;
  Rng rng_;
  std::unique_ptr<LogNormalSize> get_dist_;
  std::unique_ptr<LogNormalSize> put_dist_;
  std::unique_ptr<ZipfGenerator> zipf_;
  uint64_t get_keys_ = 0;
  uint64_t put_keys_ = 0;
  uint64_t gets_done_ = 0;
  uint64_t puts_done_ = 0;
  uint64_t scans_done_ = 0;
  uint64_t scan_keys_returned_ = 0;
  uint64_t scan_errors_ = 0;
  uint64_t get_errors_ = 0;
  uint64_t put_errors_ = 0;
  uint64_t unavailable_errors_ = 0;
  uint64_t deadline_errors_ = 0;

  void CountError(const Status& s);
};

}  // namespace libra::workload

#endif  // LIBRA_SRC_WORKLOAD_CLUSTER_WORKLOAD_H_
