# Empty compiler generated dependencies file for libra_iosched.
# This may be replaced when dependencies are built.
