#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/global_provisioner.h"
#include "src/obs/json.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::cluster {
namespace {

using iosched::Reservation;
using iosched::TenantId;

ssd::CalibrationTable TestTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

ClusterOptions TestOptions(int nodes = 4) {
  ClusterOptions opt;
  opt.num_nodes = nodes;
  opt.node_options.calibration = TestTable();
  opt.node_options.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.node_options.prefill_bytes = 64 * kMiB;
  return opt;
}

struct ClusterRig {
  sim::EventLoop loop;
  Cluster cl;

  explicit ClusterRig(int nodes = 4) : cl(loop, TestOptions(nodes)) {}

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

// Coroutines that outlive their spawning statement must be free functions
// taking parameters by value: arguments are copied into the coroutine
// frame, whereas a capturing lambda's closure is a temporary that dies at
// the end of the full expression while the coroutine is still suspended.
sim::Task<void> ReadLoop(sim::EventLoop* loop, TenantHandle tenant,
                         std::vector<std::string> keys, SimTime end,
                         uint64_t* reads) {
  size_t i = 0;
  while (loop->Now() < end) {
    Result<std::string> r = co_await tenant.Get(keys[i++ % keys.size()]);
    EXPECT_TRUE(r.ok());
    ++*reads;
    // Memtable-resident GETs complete in zero simulated time; yield so the
    // clock advances and the migration coroutine interleaves.
    co_await sim::SleepFor(*loop, 100 * kMicrosecond);
  }
}

sim::Task<void> MigrateAndCheck(Cluster* cl, TenantId tenant, int slot,
                                int to) {
  const Status s = co_await cl->MigrateShard(tenant, slot, to);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ClusterTest, HandleRoundTrip) {
  ClusterRig rig;
  Result<TenantHandle> h = rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0});
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  TenantHandle tenant = h.value();
  EXPECT_TRUE(tenant.valid());
  EXPECT_EQ(tenant.tenant(), 1u);
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await tenant.Put("k1", "v1")).ok());
    EXPECT_TRUE((co_await tenant.Put("k2", "v2")).ok());
    Result<std::string> r = co_await tenant.Get("k1");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v1");
    EXPECT_TRUE((co_await tenant.Delete("k2")).ok());
    r = co_await tenant.Get("k2");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }());
}

TEST(ClusterTest, MultiGetPreservesKeyOrder) {
  ClusterRig rig;
  TenantHandle tenant = rig.cl.AddTenant(1, GlobalReservation{}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 16; ++i) {
      co_await tenant.Put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    std::vector<std::string> keys;
    for (int i = 15; i >= 0; --i) {
      keys.push_back("k" + std::to_string(i));
    }
    keys.push_back("missing");
    const auto results = co_await tenant.MultiGet(keys);
    EXPECT_EQ(results.size(), keys.size());
    if (results.size() != keys.size()) {
      co_return;
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(results[i].ok()) << keys[i];
      EXPECT_EQ(results[i].value(), "v" + std::to_string(15 - i));
    }
    EXPECT_EQ(results[16].status().code(), StatusCode::kNotFound);
  }());
}

TEST(ClusterTest, BatchedMultiGetGroupsBySlotAndPreservesResults) {
  sim::EventLoop loop;
  ClusterOptions opt = TestOptions();
  opt.batch_multiget = true;
  Cluster cl(loop, opt);
  TenantHandle tenant = cl.AddTenant(1, GlobalReservation{}).value();
  sim::Detach([](Cluster* cl, TenantHandle tenant) -> sim::Task<void> {
    for (int i = 0; i < 32; ++i) {
      co_await tenant.Put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    // Reverse order + a miss in the middle: grouping by slot must not
    // disturb result positions or status placement.
    std::vector<std::string> keys;
    for (int i = 31; i >= 16; --i) {
      keys.push_back("k" + std::to_string(i));
    }
    keys.push_back("never-written");
    for (int i = 15; i >= 0; --i) {
      keys.push_back("k" + std::to_string(i));
    }
    const auto results = co_await tenant.MultiGet(keys);
    EXPECT_EQ(results.size(), 33u);
    if (results.size() != 33u) {
      co_return;
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(results[i].ok()) << keys[i];
      EXPECT_EQ(results[i].value(), "v" + std::to_string(31 - i));
    }
    EXPECT_EQ(results[16].status().code(), StatusCode::kNotFound);
    for (int i = 17; i < 33; ++i) {
      EXPECT_TRUE(results[i].ok()) << keys[i];
      EXPECT_EQ(results[i].value(), "v" + std::to_string(33 - i - 1));
    }
    // Every key rode a slot group, and grouping actually merged keys:
    // at most shards_per_tenant groups for the one batch.
    EXPECT_EQ(cl->multiget_grouped_keys(), 33u);
    EXPECT_GE(cl->multiget_groups(), 1u);
    EXPECT_LE(cl->multiget_groups(),
              static_cast<uint64_t>(ClusterOptions{}.shards_per_tenant));
  }(&cl, tenant));
  loop.Run();
}

TEST(ClusterTest, BatchedMultiGetMatchesUnbatchedResults) {
  // The knob must be invisible to callers: identical puts, identical
  // MultiGet, element-wise identical results.
  auto run = [](bool batched, std::vector<std::string>* out) {
    sim::EventLoop loop;
    ClusterOptions opt = TestOptions();
    opt.batch_multiget = batched;
    Cluster cl(loop, opt);
    TenantHandle tenant = cl.AddTenant(1, GlobalReservation{}).value();
    sim::Detach([](TenantHandle tenant,
                   std::vector<std::string>* out) -> sim::Task<void> {
      for (int i = 0; i < 24; ++i) {
        co_await tenant.Put("key" + std::to_string(i),
                            "val" + std::to_string(i));
      }
      std::vector<std::string> keys;
      for (int i = 0; i < 24; ++i) {
        keys.push_back("key" + std::to_string(i % 12));  // duplicates too
      }
      const auto results = co_await tenant.MultiGet(keys);
      for (const auto& r : results) {
        out->push_back(r.ok() ? r.value() : r.status().ToString());
      }
    }(tenant, out));
    loop.Run();
  };
  std::vector<std::string> plain;
  std::vector<std::string> grouped;
  run(false, &plain);
  run(true, &grouped);
  ASSERT_EQ(plain.size(), 24u);
  EXPECT_EQ(plain, grouped);
}

TEST(ClusterTest, InvalidHandleFailsClosed) {
  TenantHandle inert;
  EXPECT_FALSE(inert.valid());
  sim::EventLoop loop;
  sim::Detach([](TenantHandle h) -> sim::Task<void> {
    EXPECT_EQ((co_await h.Put("k", "v")).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ((co_await h.Get("k")).status().code(),
              StatusCode::kFailedPrecondition);
  }(inert));
  loop.Run();
}

TEST(ClusterTest, DuplicateAndMalformedTenantsRejected) {
  ClusterRig rig;
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{10.0, 10.0}).ok());
  EXPECT_EQ(rig.cl.AddTenant(1, GlobalReservation{}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(rig.cl.AddTenant(2, GlobalReservation{-1.0, 0.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rig.cl.Handle(7).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(rig.cl.Handle(1).ok());
}

TEST(ClusterTest, AdmissionRejectsOverbookedTenant) {
  ClusterRig rig;
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{1000.0, 500.0}).ok());
  const Result<TenantHandle> refused =
      rig.cl.AddTenant(2, GlobalReservation{5.0e6, 5.0e6});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The status names the node and the budget it would blow.
  EXPECT_NE(refused.status().message().find("node"), std::string::npos);
  EXPECT_NE(refused.status().message().find("capacity floor"),
            std::string::npos);
  // The refused tenant left no residue on any node.
  for (int n = 0; n < rig.cl.num_nodes(); ++n) {
    EXPECT_FALSE(rig.cl.node(n).HasTenant(2));
  }
  EXPECT_FALSE(rig.cl.Handle(2).ok());
}

TEST(ClusterTest, InitialSplitSumsExactlyToGlobal) {
  ClusterRig rig;
  const GlobalReservation global{1234.5, 678.9};
  ASSERT_TRUE(rig.cl.AddTenant(1, global).ok());
  double get_sum = 0.0;
  double put_sum = 0.0;
  for (int n = 0; n < rig.cl.num_nodes(); ++n) {
    const Reservation r = rig.cl.node(n).policy().GetReservation(1);
    get_sum += r.get_rps;
    put_sum += r.put_rps;
  }
  EXPECT_DOUBLE_EQ(get_sum, global.get_rps);
  EXPECT_DOUBLE_EQ(put_sum, global.put_rps);
}

TEST(ClusterTest, UpdateGlobalReservationReinstallsSplit) {
  ClusterRig rig;
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).ok());
  EXPECT_EQ(rig.cl.UpdateGlobalReservation(9, GlobalReservation{}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      rig.cl.UpdateGlobalReservation(1, GlobalReservation{5.0e6, 0.0}).code(),
      StatusCode::kResourceExhausted);
  ASSERT_TRUE(
      rig.cl.UpdateGlobalReservation(1, GlobalReservation{400.0, 40.0}).ok());
  EXPECT_DOUBLE_EQ(rig.cl.global_reservation(1).get_rps, 400.0);
  double get_sum = 0.0;
  for (int n = 0; n < rig.cl.num_nodes(); ++n) {
    get_sum += rig.cl.node(n).policy().GetReservation(1).get_rps;
  }
  EXPECT_DOUBLE_EQ(get_sum, 400.0);
}

TEST(ClusterTest, MigrationPreservesEveryKey) {
  ClusterRig rig;
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();

  constexpr int kKeys = 200;
  auto key_of = [](int i) { return "obj-" + std::to_string(i); };
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < kKeys; ++i) {
      co_await tenant.Put(key_of(i), "value-" + std::to_string(i));
    }
  }());

  const ShardMap& map = rig.cl.shard_map();
  const int slot = map.SlotOfKey(key_of(0));
  const int from = map.HomeOf(1, slot);
  const int to = (from + 1) % rig.cl.num_nodes();

  rig.RunTask([&]() -> sim::Task<void> {
    const Status s = co_await rig.cl.MigrateShard(1, slot, to);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }());
  EXPECT_EQ(map.HomeOf(1, slot), to);

  // Every key reads back through the handle; migrated keys are gone from
  // the source node and live on the destination.
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = key_of(i);
      Result<std::string> r = co_await tenant.Get(key);
      EXPECT_TRUE(r.ok()) << key;
      EXPECT_EQ(r.value(), "value-" + std::to_string(i));
      if (map.SlotOfKey(key) == slot) {
        const auto on_src = co_await rig.cl.node(from).Get(1, key);
        EXPECT_EQ(on_src.status().code(), StatusCode::kNotFound) << key;
        const auto on_dst = co_await rig.cl.node(to).Get(1, key);
        EXPECT_TRUE(on_dst.ok()) << key;
      }
    }
  }());

  // The rebalance log recorded the move with a key count.
  ASSERT_FALSE(rig.cl.rebalance_log().empty());
  const obs::RebalanceRecord& rec = rig.cl.rebalance_log().back();
  EXPECT_EQ(rec.kind, obs::RebalanceRecord::Kind::kMigration);
  EXPECT_EQ(rec.from_node, from);
  EXPECT_EQ(rec.to_node, to);
  EXPECT_GT(rec.keys_moved, 0u);
}

TEST(ClusterTest, MigrationUnderLiveTrafficLosesNothing) {
  ClusterRig rig;
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  auto key_of = [](int i) { return "live-" + std::to_string(i); };
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      co_await tenant.Put(key_of(i), "v");
    }
  }());
  const int slot = rig.cl.shard_map().SlotOfKey(key_of(0));
  const int to =
      (rig.cl.shard_map().HomeOf(1, slot) + 1) % rig.cl.num_nodes();

  // Readers hammer the migrating shard's keys while the migration drains
  // and flips; gated requests must suspend and then succeed.
  uint64_t reads = 0;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(key_of(i));
  }
  {
    sim::TaskGroup group(rig.loop);
    group.Spawn(ReadLoop(&rig.loop, tenant, keys,
                         rig.loop.Now() + 200 * kMillisecond, &reads));
    group.Spawn(MigrateAndCheck(&rig.cl, 1, slot, to));
    rig.loop.Run();
  }
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(rig.cl.shard_map().HomeOf(1, slot), to);
}

TEST(ClusterTest, MigrateShardValidatesArguments) {
  ClusterRig rig;
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_EQ((co_await rig.cl.MigrateShard(9, 0, 1)).code(),
              StatusCode::kNotFound);
    EXPECT_EQ((co_await rig.cl.MigrateShard(1, -1, 1)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((co_await rig.cl.MigrateShard(1, 0, 99)).code(),
              StatusCode::kInvalidArgument);
    // Migrating a slot to its current home is a no-op success.
    const int home = rig.cl.shard_map().HomeOf(1, 0);
    EXPECT_TRUE((co_await rig.cl.MigrateShard(1, 0, home)).ok());
  }());
}

TEST(ClusterTest, ScanFansOutAcrossNodesAndMergesInKeyOrder) {
  ClusterRig rig;
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0, 100.0}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    // Keys hash across every slot (and so every node); the scan must visit
    // them all and return one globally key-ordered run.
    for (int i = 0; i < 64; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%04d", i);
      co_await tenant.Put(buf, "v" + std::to_string(i));
    }
    const Result<ScanEntries> r =
        co_await tenant.Scan(std::string(), std::string(), 0);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) {
      co_return;
    }
    EXPECT_EQ(r.value().size(), 64u);
    for (size_t i = 0; i + 1 < r.value().size(); ++i) {
      EXPECT_LT(r.value()[i].first, r.value()[i + 1].first);
    }
    for (size_t i = 0; i < r.value().size(); ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%04d", static_cast<int>(i));
      EXPECT_EQ(r.value()[i].first, buf);
      EXPECT_EQ(r.value()[i].second, "v" + std::to_string(i));
    }
    // Bounded range: [k0010, k0020) → exactly ten entries.
    const Result<ScanEntries> mid = co_await tenant.Scan("k0010", "k0020", 0);
    EXPECT_TRUE(mid.ok());
    EXPECT_EQ(mid.ok() ? mid.value().size() : 0, 10u);
    // Limit truncates the merged run, not any single node's slice.
    const Result<ScanEntries> lim =
        co_await tenant.Scan(std::string(), std::string(), 5);
    EXPECT_TRUE(lim.ok());
    if (lim.ok() && lim.value().size() == 5) {
      EXPECT_EQ(lim.value()[0].first, "k0000");
      EXPECT_EQ(lim.value()[4].first, "k0004");
    } else if (lim.ok()) {
      ADD_FAILURE() << "limit 5 returned " << lim.value().size();
    }
    // Degenerate range is an empty success.
    const Result<ScanEntries> empty = co_await tenant.Scan("z", "a", 0);
    EXPECT_TRUE(empty.ok());
    EXPECT_TRUE(!empty.ok() || empty.value().empty());
  }());
}

TEST(ClusterTest, ScanSurvivesShardMigration) {
  ClusterRig rig;
  TenantHandle tenant = rig.cl.AddTenant(1, GlobalReservation{}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 48; ++i) {
      co_await tenant.Put("m" + std::to_string(100 + i), "v");
    }
    // Move a handful of slots; scans must still see every key exactly once
    // from the slots' new homes.
    for (int slot = 0; slot < 4; ++slot) {
      const int home = rig.cl.shard_map().HomeOf(1, slot);
      co_await rig.cl.MigrateShard(1, slot,
                                   (home + 1) % rig.cl.num_nodes());
    }
    const Result<ScanEntries> r =
        co_await tenant.Scan(std::string(), std::string(), 0);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ok() ? r.value().size() : 0, 48u);
  }());
}

TEST(ClusterTest, CompactionPolicyPlumbsToEveryNodeAndSnapshot) {
  ClusterRig rig;
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0},
                               lsm::CompactionPolicy::kSizeTiered)
                  .ok());
  ASSERT_TRUE(rig.cl.AddTenant(2, GlobalReservation{100.0, 100.0}).ok());
  const ClusterStats stats = rig.cl.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].compaction, lsm::CompactionPolicy::kSizeTiered);
  EXPECT_EQ(stats.tenants[1].compaction, lsm::CompactionPolicy::kLeveled);
  const std::string json = ClusterStatsToJson(stats);
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(json, &parsed, &error)) << error;
  const obs::JsonValue* tenants = parsed.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->array.size(), 2u);
  ASSERT_NE(tenants->array[0].Find("compaction"), nullptr);
  EXPECT_EQ(tenants->array[0].Find("compaction")->string_value, "tiered");
  EXPECT_EQ(tenants->array[1].Find("compaction")->string_value, "leveled");
  ASSERT_NE(tenants->array[0].Find("global_scan_rps"), nullptr);
}

TEST(ClusterTest, SnapshotCoversNodesTenantsAndRebalances) {
  ClusterRig rig(2);
  ASSERT_TRUE(rig.cl.AddTenant(1, GlobalReservation{10.0, 10.0}).ok());
  const ClusterStats stats = rig.cl.Snapshot();
  EXPECT_EQ(stats.nodes.size(), 2u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant, 1u);
  EXPECT_EQ(stats.tenants[0].slot_homes.size(),
            static_cast<size_t>(rig.cl.shard_map().shards_per_tenant()));
  const std::string json = ClusterStatsToJson(stats);
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(json, &parsed, &error)) << error;
  ASSERT_NE(parsed.Find("nodes"), nullptr);
  EXPECT_EQ(parsed.Find("nodes")->array.size(), 2u);
  ASSERT_NE(parsed.Find("tenants"), nullptr);
  EXPECT_EQ(parsed.Find("tenants")->array.size(), 1u);
}

}  // namespace
}  // namespace libra::cluster
