#include "src/lsm/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

const iosched::IoTag kPutTag{1, iosched::AppRequest::kPut,
                             iosched::InternalOp::kNone};

TEST(WalTest, AppendAndReplay) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await wal.Append(kPutTag, "k1", 1, ValueType::kPut, "v1")).ok());
    EXPECT_TRUE(
        (co_await wal.Append(kPutTag, "k2", 2, ValueType::kDelete, "")).ok());
  }());
  std::vector<Record> records;
  std::vector<std::string> keys;  // Record holds views; copy out
  ASSERT_TRUE(wal.Replay([&](const Record& r) {
                   records.push_back(r);
                   keys.emplace_back(r.key);
                 })
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(keys[0], "k1");
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].type, ValueType::kPut);
  EXPECT_EQ(keys[1], "k2");
  EXPECT_EQ(records[1].type, ValueType::kDelete);
}

TEST(WalTest, ReplayStopsAtTornTail) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "k1", 1, ValueType::kPut, "v1");
    co_await wal.Append(kPutTag, "k2", 2, ValueType::kPut, "v2");
    // Simulate a torn tail: append a frame header with no payload.
    std::string torn;
    PutFixed32(&torn, 100);
    PutFixed32(&torn, 0x12345678);
    co_await rig.fs.Append(*rig.fs.Open("wal_1"), kPutTag, torn);
  }());
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](const Record&) { ++count; }).ok());
  EXPECT_EQ(count, 2);
}

TEST(WalTest, AppendsChargeDirectPutIo) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "key", 1, ValueType::kPut,
                        std::string(4096, 'v'));
  }());
  const auto& stats = rig.sched.tracker().Stats(1);
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_GT(stats.write_bytes, 4096u);  // payload + framing
}

TEST(WalTest, RemoveDeletesFile) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_TRUE(rig.fs.Exists("wal_1"));
  EXPECT_TRUE(wal.Remove().ok());
  EXPECT_FALSE(rig.fs.Exists("wal_1"));
}

TEST(WalTest, SizeTracksAppends) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "k", 1, ValueType::kPut, std::string(100, 'v'));
  }());
  EXPECT_GT(wal.SizeBytes(), 100u);
}

// --- group commit ---

WalOptions GroupOptions() {
  WalOptions opt;
  opt.group_commit = true;
  return opt;
}

std::string Wk(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%03d", i);
  return buf;
}

TEST(WalGroupCommitTest, ConcurrentAppendsCoalesceAndReplayInArrivalOrder) {
  LsmRig rig;
  WalCounters counters;
  WriteAheadLog wal(rig.fs, "wal_1", GroupOptions(), &counters);
  ASSERT_TRUE(wal.Open().ok());
  constexpr int kN = 8;
  auto append = [&](int i) -> sim::Task<void> {
    EXPECT_TRUE((co_await wal.Append(kPutTag, Wk(i), i + 1, ValueType::kPut,
                                     "v" + std::to_string(i)))
                    .ok());
  };
  for (int i = 0; i < kN; ++i) {
    sim::Detach(append(i));
  }
  rig.loop.Run();
  EXPECT_EQ(counters.appends, static_cast<uint64_t>(kN));
  EXPECT_EQ(counters.batched_records, static_cast<uint64_t>(kN));
  // The first append leads a batch of itself; everyone arriving during its
  // device write rides the second batch.
  EXPECT_LT(counters.batches, static_cast<uint64_t>(kN));
  EXPECT_GE(counters.max_batch_records, 2u);
  std::vector<std::string> keys;
  ASSERT_TRUE(wal.Replay([&](const Record& r) { keys.emplace_back(r.key); })
                  .ok());
  ASSERT_EQ(keys.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(keys[i], Wk(i)) << i;  // arrival order, not batch order
  }
}

TEST(WalGroupCommitTest, RecordBoundCapsBatches) {
  LsmRig rig;
  WalOptions opt = GroupOptions();
  opt.group_max_records = 2;
  WalCounters counters;
  WriteAheadLog wal(rig.fs, "wal_1", opt, &counters);
  ASSERT_TRUE(wal.Open().ok());
  auto append = [&](int i) -> sim::Task<void> {
    co_await wal.Append(kPutTag, Wk(i), i + 1, ValueType::kPut, "v");
  };
  for (int i = 0; i < 9; ++i) {
    sim::Detach(append(i));
  }
  rig.loop.Run();
  EXPECT_EQ(counters.appends, 9u);
  EXPECT_EQ(counters.batched_records, 9u);
  EXPECT_LE(counters.max_batch_records, 2u);
  EXPECT_GE(counters.batches, 5u);  // 9 records at <= 2 per batch
  int replayed = 0;
  ASSERT_TRUE(wal.Replay([&](const Record&) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 9);
}

TEST(WalGroupCommitTest, ByteBoundStillAcceptsFirstRecord) {
  LsmRig rig;
  WalOptions opt = GroupOptions();
  opt.group_max_bytes = 1;  // below any single frame
  WalCounters counters;
  WriteAheadLog wal(rig.fs, "wal_1", opt, &counters);
  ASSERT_TRUE(wal.Open().ok());
  auto append = [&](int i) -> sim::Task<void> {
    EXPECT_TRUE((co_await wal.Append(kPutTag, Wk(i), i + 1, ValueType::kPut,
                                     std::string(64, 'v')))
                    .ok());
  };
  for (int i = 0; i < 4; ++i) {
    sim::Detach(append(i));
  }
  rig.loop.Run();
  // Every batch degenerates to one record — but nothing deadlocks and
  // nothing is dropped.
  EXPECT_EQ(counters.batches, 4u);
  EXPECT_EQ(counters.max_batch_records, 1u);
  int replayed = 0;
  ASSERT_TRUE(wal.Replay([&](const Record&) { ++replayed; }).ok());
  EXPECT_EQ(replayed, 4);
}

TEST(WalGroupCommitTest, TornTailAfterBatchesReplaysIntactPrefix) {
  LsmRig rig;
  WalCounters counters;
  WriteAheadLog wal(rig.fs, "wal_1", GroupOptions(), &counters);
  ASSERT_TRUE(wal.Open().ok());
  auto append = [&](int i) -> sim::Task<void> {
    co_await wal.Append(kPutTag, Wk(i), i + 1, ValueType::kPut, "v");
  };
  for (int i = 0; i < 5; ++i) {
    sim::Detach(append(i));
  }
  rig.loop.Run();
  EXPECT_GT(counters.batches, 0u);
  // Crash mid-write of the next batch: a frame header lands with no
  // payload. Records are individually framed, so replay recovers exactly
  // the acknowledged prefix.
  rig.RunTask([&]() -> sim::Task<void> {
    std::string torn;
    PutFixed32(&torn, 64);
    PutFixed32(&torn, 0xdeadbeef);
    co_await rig.fs.Append(*rig.fs.Open("wal_1"), kPutTag, torn);
  }());
  std::vector<SequenceNumber> seqs;
  ASSERT_TRUE(
      wal.Replay([&](const Record& r) { seqs.push_back(r.seq); }).ok());
  ASSERT_EQ(seqs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(seqs[i], static_cast<SequenceNumber>(i + 1));
  }
}

TEST(WalGroupCommitTest, SequentialAppendsDoNotBatch) {
  // With no concurrency there is never a sync in flight to ride: group
  // commit degenerates to one device append per record, same as the
  // legacy path.
  LsmRig rig;
  WalCounters counters;
  WriteAheadLog wal(rig.fs, "wal_1", GroupOptions(), &counters);
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await wal.Append(kPutTag, Wk(i), i + 1, ValueType::kPut, "v");
    }
  }());
  EXPECT_EQ(counters.appends, 4u);
  EXPECT_EQ(counters.batches, 4u);
  EXPECT_EQ(counters.max_batch_records, 1u);
}

TEST(WalTest, ReopenExistingLogReplays) {
  LsmRig rig;
  {
    WriteAheadLog wal(rig.fs, "wal_1");
    ASSERT_TRUE(wal.Open().ok());
    rig.RunTask([&]() -> sim::Task<void> {
      co_await wal.Append(kPutTag, "k", 9, ValueType::kPut, "v");
    }());
  }
  // A second WriteAheadLog over the same file (crash recovery).
  WriteAheadLog recovered(rig.fs, "wal_1");
  ASSERT_TRUE(recovered.Open().ok());
  int count = 0;
  SequenceNumber seq = 0;
  ASSERT_TRUE(recovered.Replay([&](const Record& r) {
                   ++count;
                   seq = r.seq;
                 })
                  .ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(seq, 9u);
}

}  // namespace
}  // namespace libra::lsm
