#include "src/fs/sim_fs.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/iosched/cost_model.h"
#include "src/sim/event_loop.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::fs {
namespace {

ssd::CalibrationTable FakeTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

struct FsRig {
  sim::EventLoop loop;
  ssd::SsdDevice device{loop, ssd::Intel320Profile()};
  iosched::IoScheduler sched{
      loop, device, std::make_unique<iosched::ExactCostModel>(FakeTable())};
  SimFs fs{sched, device};
  iosched::IoTag tag{1, iosched::AppRequest::kPut, iosched::InternalOp::kNone};

  FsRig() { sched.SetAllocation(1, 10000.0); }

  // Runs a coroutine to completion on the loop.
  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

TEST(SimFsTest, CreateOpenExistsDelete) {
  FsRig rig;
  auto id = rig.fs.Create("a");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(rig.fs.Exists("a"));
  auto open = rig.fs.Open("a");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(*open, *id);
  EXPECT_TRUE(rig.fs.Delete("a").ok());
  EXPECT_FALSE(rig.fs.Exists("a"));
  EXPECT_EQ(rig.fs.Open("a").status().code(), StatusCode::kNotFound);
}

TEST(SimFsTest, DuplicateCreateFails) {
  FsRig rig;
  ASSERT_TRUE(rig.fs.Create("a").ok());
  EXPECT_EQ(rig.fs.Create("a").status().code(), StatusCode::kAlreadyExists);
}

TEST(SimFsTest, AppendThenReadRoundTrips) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.fs.Append(id, rig.tag, "hello ")).ok());
    EXPECT_TRUE((co_await rig.fs.Append(id, rig.tag, "world")).ok());
    std::string out;
    EXPECT_TRUE((co_await rig.fs.ReadAt(id, rig.tag, 0, 11, &out)).ok());
    EXPECT_EQ(out, "hello world");
    out.clear();
    EXPECT_TRUE((co_await rig.fs.ReadAt(id, rig.tag, 6, 5, &out)).ok());
    EXPECT_EQ(out, "world");
  }());
  EXPECT_EQ(rig.fs.SizeOf(id), 11u);
}

TEST(SimFsTest, ReadPastEofFails) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, "abc");
    std::string out;
    EXPECT_EQ((co_await rig.fs.ReadAt(id, rig.tag, 2, 5, &out)).code(),
              StatusCode::kOutOfRange);
  }());
}

TEST(SimFsTest, AppendCrossesExtentBoundary) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  const std::string big(3 * 1024 * 1024 + 123, 'x');  // 3MB+ spans extents
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.fs.Append(id, rig.tag, big)).ok());
    std::string out;
    EXPECT_TRUE(
        (co_await rig.fs.ReadAt(id, rig.tag, big.size() - 10, 10, &out)).ok());
    EXPECT_EQ(out, std::string(10, 'x'));
  }());
  EXPECT_EQ(rig.fs.SizeOf(id), big.size());
}

TEST(SimFsTest, IoIsChargedToTenant) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, std::string(64 * 1024, 'y'));
  }());
  const auto& stats = rig.sched.tracker().Stats(1);
  EXPECT_EQ(stats.write_bytes, 64u * 1024u);
  EXPECT_GT(stats.vops, 1.0);
}

TEST(SimFsTest, AppendAdvancesVirtualTime) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, std::string(4096, 'z'));
    // O_SYNC: the append returns only after the device write completes.
    EXPECT_GT(rig.loop.Now(), 0);
  }());
}

TEST(SimFsTest, DeleteFreesExtentsForReuse) {
  FsRig rig;
  const auto before = rig.fs.stats().extents_free;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, std::string(2 * 1024 * 1024, 'a'));
  }());
  EXPECT_LT(rig.fs.stats().extents_free, before);
  ASSERT_TRUE(rig.fs.Delete("f").ok());
  EXPECT_EQ(rig.fs.stats().extents_free, before);
}

TEST(SimFsTest, RenamePreservesContents) {
  FsRig rig;
  const FileId id = *rig.fs.Create("old");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, "payload");
  }());
  ASSERT_TRUE(rig.fs.Rename("old", "new").ok());
  EXPECT_FALSE(rig.fs.Exists("old"));
  ASSERT_TRUE(rig.fs.Exists("new"));
  EXPECT_EQ(*rig.fs.Open("new"), id);
  EXPECT_EQ(rig.fs.SizeOf(id), 7u);
}

TEST(SimFsTest, RenameToExistingFails) {
  FsRig rig;
  ASSERT_TRUE(rig.fs.Create("a").ok());
  ASSERT_TRUE(rig.fs.Create("b").ok());
  EXPECT_EQ(rig.fs.Rename("a", "b").code(), StatusCode::kAlreadyExists);
}

TEST(SimFsTest, ListEnumeratesFiles) {
  FsRig rig;
  ASSERT_TRUE(rig.fs.Create("x").ok());
  ASSERT_TRUE(rig.fs.Create("y").ok());
  const auto names = rig.fs.List();
  EXPECT_EQ(names.size(), 2u);
}

TEST(SimFsTest, PeekContentsBypassesIo) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.fs.Append(id, rig.tag, "secret");
  }());
  const SimTime t = rig.loop.Now();
  std::string out;
  EXPECT_TRUE(rig.fs.PeekContents(id, &out).ok());
  EXPECT_EQ(out, "secret");
  EXPECT_EQ(rig.loop.Now(), t);  // no time passed, no IO charged
}

TEST(SimFsTest, ConcurrentAppendsDoNotInterleaveBytes) {
  FsRig rig;
  const FileId id = *rig.fs.Create("f");
  auto writer = [&](char c) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await rig.fs.Append(id, rig.tag, std::string(100, c));
    }
  };
  sim::Detach(writer('a'));
  sim::Detach(writer('b'));
  rig.loop.Run();
  std::string all;
  ASSERT_TRUE(rig.fs.PeekContents(id, &all).ok());
  ASSERT_EQ(all.size(), 2000u);
  // Every 100-byte record is homogeneous.
  for (size_t i = 0; i < all.size(); i += 100) {
    const char c = all[i];
    EXPECT_EQ(all.substr(i, 100), std::string(100, c)) << "chunk " << i;
  }
}

}  // namespace
}  // namespace libra::fs
