// The Libra resource policy (paper §2.2, §4.1).
//
// Local app-request reservations (normalized 1KB GET/s and PUT/s, set by
// higher-level system-wide policies such as Pisces) are converted once per
// interval into VOP allocations:
//
//   r_t = v_t^GET * profile_t^GET + v_t^PUT * profile_t^PUT
//
// using the tracker's amplified per-request resource profiles. Allocations
// are capped by the capacity model's provisionable floor: when overbooked,
// every tenant is scaled down proportionally and higher-level policies are
// notified (the paper's partition-migration signal). Underbooked capacity
// needs no explicit handling — the work-conserving scheduler shares it
// proportionally.

#ifndef LIBRA_SRC_IOSCHED_RESOURCE_POLICY_H_
#define LIBRA_SRC_IOSCHED_RESOURCE_POLICY_H_

#include <functional>
#include <map>

#include "src/common/units.h"
#include "src/iosched/capacity.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/scheduler.h"
#include "src/obs/audit.h"
#include "src/obs/conformance.h"
#include "src/obs/sla.h"
#include "src/sim/event_loop.h"

namespace libra::iosched {

// Local per-tenant reservation in normalized (1KB) requests per second,
// one rate per application request class. The storage is a per-class array
// indexed by AppRequest — pricing, admission, and demand-splitting loop
// over it, so new classes need no bespoke plumbing — while the anonymous
// struct member aliases keep the historical `r.get_rps` / `r.put_rps`
// spelling (read and write) working at every existing call site.
struct Reservation {
  union {
    double rps[kNumAppRequests];
    struct {
      double none_rps_;  // AppRequest::kNone slot: always 0, never priced
      double get_rps;
      double put_rps;
      double scan_rps;
    };
  };

  constexpr Reservation() : rps{} {}
  constexpr Reservation(double get, double put, double scan = 0.0)
      : rps{0.0, get, put, scan} {}

  constexpr double RateOf(AppRequest app) const {
    return rps[static_cast<int>(app)];
  }
  constexpr double& RateOf(AppRequest app) {
    return rps[static_cast<int>(app)];
  }
  constexpr double Total() const {
    double sum = 0.0;
    for (int a = kFirstAppRequest; a < kNumAppRequests; ++a) {
      sum += rps[a];
    }
    return sum;
  }
};
static_assert(sizeof(Reservation) == kNumAppRequests * sizeof(double),
              "member aliases must overlay the per-class rate array");

// How the policy prices a normalized request (the Fig. 11 ablation).
enum class ProfileMode {
  // Full app-request resource profiles: direct + FLUSH + COMPACT (Libra).
  kFull,
  // "No profile": price only the application-level object IO at its
  // observed size; secondary IO is invisible. Under-provisions amplified
  // workloads, which the paper shows violates reservations once the node
  // can no longer cover the gap through work conservation.
  kObjectSizeOnly,
};

struct PolicyOptions {
  SimDuration interval = 1 * kSecond;  // paper: once per second
  ProfileMode mode = ProfileMode::kFull;
  // Bounded provisioning audit log (newest records kept); 0 disables.
  size_t audit_capacity = 512;
  // SLA violation slack: an interval violates when achieved VOP/s falls
  // below (1 - sla_tolerance) x the priced reservation while the tenant
  // had pending demand (see obs::SlaMonitor).
  double sla_tolerance = 0.05;
  // Demand gate for those violations: the tenant must have had queued or
  // in-flight work for at least this fraction of the interval. The
  // guarantee is conditional on offered load — a tenant whose own load
  // dipped (workers blocked elsewhere, e.g. on a recovering shard) did not
  // have its reservation violated by this node.
  double sla_demand_fraction = 0.5;
};

// Overbooking notification passed to higher-level policies.
struct OverflowEvent {
  SimTime time = 0;
  double required_vops = 0.0;  // sum of unscaled allocations
  double capacity_vops = 0.0;  // provisionable floor
  double scale = 1.0;          // applied to every tenant
};

class ResourcePolicy {
 public:
  ResourcePolicy(sim::EventLoop& loop, IoScheduler& scheduler,
                 CapacityModel& capacity, PolicyOptions options = {});
  ~ResourcePolicy();

  ResourcePolicy(const ResourcePolicy&) = delete;
  ResourcePolicy& operator=(const ResourcePolicy&) = delete;

  void SetReservation(TenantId tenant, Reservation r);
  Reservation GetReservation(TenantId tenant) const;

  // The tenant's declared LSM compaction policy (raw code, matching
  // obs::AuditTenantEntry::compaction_policy: 0 = leveled, 1 =
  // size-tiered). Purely observational at this layer: it is stamped on
  // audit records so attribution/conformance verdicts can be read against
  // the policy that shaped the indirect profile.
  void SetCompactionPolicy(TenantId tenant, uint8_t policy) {
    compaction_policies_[tenant] = policy;
  }
  uint8_t CompactionPolicyOf(TenantId tenant) const {
    const auto it = compaction_policies_.find(tenant);
    return it == compaction_policies_.end() ? 0 : it->second;
  }

  // The attribution profile the tenant declared at admission — what the
  // conformance estimator's observed q̂^{a,i} is verified against. Optional:
  // tenants without a declaration are monitored but never flagged.
  void SetDeclaredProfile(TenantId tenant, obs::DeclaredAttribution declared) {
    declared_[tenant] = declared;
  }
  obs::DeclaredAttribution DeclaredOf(TenantId tenant) const {
    const auto it = declared_.find(tenant);
    return it == declared_.end() ? obs::DeclaredAttribution{} : it->second;
  }

  void SetOverflowCallback(std::function<void(const OverflowEvent&)> cb) {
    overflow_cb_ = std::move(cb);
  }

  // Starts/stops the periodic reprovisioning task. While started, the
  // policy keeps one timer pending at all times, so EventLoop::Run() will
  // not drain: drive the simulation with RunUntil/RunFor and call Stop()
  // before a final draining Run().
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Runs one provisioning step immediately (also used by tests).
  void RunIntervalStep();

  // Introspection for the evaluation harnesses.
  AppRequestProfile ProfileOf(TenantId tenant, AppRequest app) const;
  double AllocationOf(TenantId tenant) const {
    return scheduler_.Allocation(tenant);
  }

  // Per-interval provisioning decisions: what each tenant reserved, the
  // profile components and VOP prices used, what was granted, and whether
  // (and by how much) overbooking scaled the grants down.
  const obs::ProvisioningAuditLog& audit_log() const { return audit_log_; }

  // Per-tenant achieved-vs-reserved conformance, updated every interval.
  const obs::SlaMonitor& sla() const { return sla_; }

 private:
  // VOP price of one normalized request of class `app` for `tenant`.
  double PriceOf(TenantId tenant, AppRequest app) const;

  // Cost-model price of a normalized request at the tenant's observed mean
  // object size (fallback/no-profile pricing).
  double ObjectSizePrice(TenantId tenant, AppRequest app) const;

  sim::EventLoop& loop_;
  IoScheduler& scheduler_;
  CapacityModel& capacity_;
  PolicyOptions options_;
  std::map<TenantId, Reservation> reservations_;
  std::map<TenantId, uint8_t> compaction_policies_;
  std::map<TenantId, obs::DeclaredAttribution> declared_;
  std::map<TenantId, double> last_tenant_vops_;  // SLA interval deltas
  obs::SlaMonitor sla_;
  std::function<void(const OverflowEvent&)> overflow_cb_;
  sim::EventLoop::EventId pending_event_ = 0;
  bool running_ = false;
  double last_total_vops_ = 0.0;
  SimTime last_roll_time_ = 0;
  obs::ProvisioningAuditLog audit_log_;
};

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_RESOURCE_POLICY_H_
