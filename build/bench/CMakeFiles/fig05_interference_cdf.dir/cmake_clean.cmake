file(REMOVE_RECURSE
  "CMakeFiles/fig05_interference_cdf.dir/fig05_interference_cdf.cc.o"
  "CMakeFiles/fig05_interference_cdf.dir/fig05_interference_cdf.cc.o.d"
  "fig05_interference_cdf"
  "fig05_interference_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_interference_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
