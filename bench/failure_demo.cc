// Crash/recovery demo: the replicated cluster's failure contract end to end.
//
// --nodes storage nodes (default 4) at replication factor 2, three tenants
// with global reservations, client-side retry with a per-request deadline.
// A seeded FaultInjector crashes one node mid-run and restarts it a few
// virtual seconds later; the restarted node replays its WALs and catches up
// via the VOP-priced re-replication stream. The demo then checks the
// contract the failure machinery makes:
//   1. zero acked-write loss: every PUT that returned Ok — including those
//      issued while the victim was down — reads back with its exact value,
//      and every stable preloaded object survives;
//   2. surviving tenants see no new SlaMonitor violations on the surviving
//      nodes while re-replication runs;
//   3. the victim's recovery work is visible in attribution: WAL replay
//      counters and InternalOp::kReplicate VOPs are nonzero.
// Everything (workload, fault schedule, placement) derives from --seed, and
// the run is one deterministic virtual-time simulation, so two runs with
// the same seed emit byte-identical output — for any --sim-threads value at
// a fixed --rpc-latency-us — the property the CI fault smoke job diffs for.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/cluster/fault_injector.h"
#include "src/cluster/global_provisioner.h"
#include "src/metrics/table.h"
#include "src/sim/sync.h"
#include "src/workload/cluster_workload.h"

namespace libra::bench {
namespace {

using cluster::Cluster;
using cluster::GlobalReservation;
using iosched::AppRequest;
using iosched::TenantId;

constexpr uint64_t kMarkerValueBytes = 512;

struct TenantSpec {
  TenantId tenant;
  GlobalReservation global;  // normalized (1KB) requests/s, cluster-wide
  double get_fraction;
};

constexpr TenantSpec kTenants[] = {
    {1, {600.0, 200.0}, 0.7},
    {2, {400.0, 150.0}, 0.5},
    {3, {300.0, 250.0}, 0.3},
};

// A PUT issued every `period`, spanning the crash and the recovery; the log
// records which writes were acked so the readback can prove none was lost.
struct MarkerWrite {
  std::string key;
  bool acked = false;
};

sim::Task<void> PreloadAll(
    std::vector<std::unique_ptr<workload::ClusterTenantWorkload>>* workloads) {
  for (auto& wl : *workloads) {
    co_await wl->Preload();
  }
}

sim::Task<void> WriteMarkers(sim::EventLoop* loop, cluster::TenantHandle handle,
                             SimTime start, SimTime end, SimDuration period,
                             std::vector<MarkerWrite>* log) {
  co_await sim::SleepUntil(*loop, start);
  int i = 0;
  while (loop->Now() < end) {
    MarkerWrite m;
    m.key = "fmark_" + std::to_string(i++);
    const Status s =
        co_await handle.Put(m.key, workload::MakeValue(m.key, kMarkerValueBytes));
    m.acked = s.ok();
    log->push_back(std::move(m));
    co_await sim::SleepFor(*loop, period);
  }
}

sim::Task<void> VerifyMarkers(cluster::TenantHandle handle,
                              const std::vector<MarkerWrite>* log,
                              uint64_t* acked, uint64_t* lost) {
  for (const MarkerWrite& m : *log) {
    if (!m.acked) {
      continue;
    }
    ++*acked;
    const Result<std::string> r = co_await handle.Get(m.key);
    if (!r.ok() || r.value() != workload::MakeValue(m.key, kMarkerValueBytes)) {
      ++*lost;
    }
  }
}

// Re-reads every stable (GET-range) object of the tenant and compares it to
// the value the preload provably wrote and the cluster acked.
sim::Task<void> VerifyStableObjects(workload::ClusterTenantWorkload* wl,
                                    uint64_t* checked, uint64_t* lost) {
  for (uint64_t i = 0; i < wl->get_keys(); ++i) {
    const std::string key = wl->GetKey(i);
    const Result<std::string> r = co_await wl->handle().Get(key);
    ++*checked;
    if (!r.ok() ||
        r.value() != workload::MakeValue(key, wl->GetObjectSize(i))) {
      ++*lost;
    }
  }
}

uint64_t ParseSeedFlag(int argc, char** argv, uint64_t def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      return std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return def;
}

int RunDemo(const BenchArgs& args, uint64_t seed) {
  SimRig rig = MakeSimRig(args, args.nodes);
  sim::EventLoop& loop = rig.client();
  cluster::ClusterOptions copt;
  copt.num_nodes = args.nodes;
  copt.node_options = PrototypeNodeOptions();
  copt.replication_factor = 2;
  copt.retry.max_retries = 16;
  copt.retry.initial_backoff = 1 * kMillisecond;
  copt.retry.backoff_multiplier = 2.0;
  copt.retry.deadline = 2 * kSecond;
  std::unique_ptr<Cluster> cl_holder = MakeCluster(rig, copt);
  Cluster& cl = *cl_holder;

  cluster::FaultInjectorOptions fopt;
  fopt.seed = seed;
  cluster::FaultInjector injector(loop, cl, fopt);

  const int victim = static_cast<int>(seed % static_cast<uint64_t>(cl.num_nodes()));

  Section(args, "Failure demo: setup");
  std::printf("nodes %d, RF %d, seed %llu, victim node %d\n", cl.num_nodes(),
              copt.replication_factor, static_cast<unsigned long long>(seed),
              victim);

  std::vector<cluster::TenantHandle> handles;
  for (const TenantSpec& spec : kTenants) {
    Result<cluster::TenantHandle> h = cl.AddTenant(spec.tenant, spec.global);
    if (!h.ok()) {
      std::fprintf(stderr, "AddTenant(%u): %s\n", spec.tenant,
                   h.status().message().c_str());
      return 1;
    }
    handles.push_back(h.value());
  }

  std::vector<std::unique_ptr<workload::ClusterTenantWorkload>> workloads;
  for (size_t i = 0; i < std::size(kTenants); ++i) {
    const TenantSpec& spec = kTenants[i];
    workload::KvWorkloadSpec w;
    w.get_fraction = spec.get_fraction;
    w.get_size = {4096.0, 1024.0};
    w.put_size = {1024.0, 256.0};
    w.live_bytes_target = (args.full ? 8ULL : 4ULL) * kMiB;
    w.workers = 8;
    workloads.push_back(std::make_unique<workload::ClusterTenantWorkload>(
        loop, handles[i], w, 3000 + spec.tenant + seed * 7919));
  }
  {
    sim::TaskGroup group(loop);
    group.Spawn(PreloadAll(&workloads));
    rig.Run();
  }

  const SimDuration step = (args.full ? 2 : 1) * kSecond;
  const SimTime t0 = loop.Now();
  const SimTime t_warm = t0 + 4 * step;
  const SimTime t_crash = t_warm + 2 * step;
  const SimTime t_restart = t_crash + 4 * step;
  const SimTime t_end = t_restart + 6 * step;

  injector.ScheduleCrash(victim, t_crash);
  injector.ScheduleRestart(victim, t_restart);

  cl.Start();

  // Achieved global rates over [t_warm, t_end) — spanning the outage.
  constexpr size_t kN = std::size(kTenants);
  double gets0[kN]{}, puts0[kN]{}, gets1[kN]{}, puts1[kN]{};
  auto snap = [&](double* g, double* p) {
    for (size_t i = 0; i < kN; ++i) {
      g[i] = cl.GlobalNormalizedTotal(kTenants[i].tenant, AppRequest::kGet);
      p[i] = cl.GlobalNormalizedTotal(kTenants[i].tenant, AppRequest::kPut);
    }
  };
  // Mid-run tracker reads need quiesced node loops: barrier hooks in
  // parallel mode, plain events in serial mode.
  rig.AtTime(t_warm, [&] { snap(gets0, puts0); });
  rig.AtTime(t_end, [&] { snap(gets1, puts1); });

  // SlaMonitor baseline on the surviving nodes at the instant recovery
  // starts: any violation counted after this is a violation *during
  // re-replication*, the window the contract is about.
  std::map<std::pair<int, TenantId>, uint64_t> sla_base;
  rig.AtTime(t_restart, [&] {
    for (int n = 0; n < cl.num_nodes(); ++n) {
      if (n == victim) {
        continue;
      }
      for (const TenantId t : cl.node(n).tenants()) {
        const obs::SlaMonitor::TenantSla* s = cl.node(n).policy().sla().Of(t);
        sla_base[{n, t}] = s != nullptr ? s->violations : 0;
      }
    }
  });

  std::vector<MarkerWrite> markers;
  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      wl->Start(group, t_end);
    }
    group.Spawn(WriteMarkers(&loop, handles[0], t_warm, t_end - step,
                             100 * kMillisecond, &markers));
    rig.RunUntil(t_end + kSecond);
    cl.Stop();
    rig.Run();
  }

  Section(args, "Failure demo: workload through the outage");
  metrics::Table table({"tenant", "GET_res/s", "GET_ach/s", "PUT_res/s",
                        "PUT_ach/s", "put_err", "unavail", "deadline"});
  const double secs = ToSeconds(t_end - t_warm);
  for (size_t i = 0; i < kN; ++i) {
    table.AddRow({std::to_string(kTenants[i].tenant),
                  metrics::FormatDouble(kTenants[i].global.get_rps, 0),
                  metrics::FormatDouble((gets1[i] - gets0[i]) / secs, 0),
                  metrics::FormatDouble(kTenants[i].global.put_rps, 0),
                  metrics::FormatDouble((puts1[i] - puts0[i]) / secs, 0),
                  std::to_string(workloads[i]->put_errors()),
                  std::to_string(workloads[i]->unavailable_errors()),
                  std::to_string(workloads[i]->deadline_errors())});
  }
  Emit(args, table);

  Section(args, "Failure demo: acked-write durability");
  uint64_t marker_acked = 0, marker_lost = 0;
  uint64_t stable_checked = 0, stable_lost = 0;
  {
    sim::TaskGroup group(loop);
    group.Spawn(VerifyMarkers(handles[0], &markers, &marker_acked,
                              &marker_lost));
    for (auto& wl : workloads) {
      group.Spawn(VerifyStableObjects(wl.get(), &stable_checked, &stable_lost));
    }
    rig.Run();
  }
  std::printf(
      "markers: %llu issued, %llu acked, %llu lost; stable objects: %llu "
      "checked, %llu lost\n",
      static_cast<unsigned long long>(markers.size()),
      static_cast<unsigned long long>(marker_acked),
      static_cast<unsigned long long>(marker_lost),
      static_cast<unsigned long long>(stable_checked),
      static_cast<unsigned long long>(stable_lost));

  Section(args, "Failure demo: victim recovery");
  const cluster::ClusterStats stats = cl.Snapshot();
  const kv::NodeStats& vs = stats.nodes[victim];
  std::printf(
      "crashes %llu, restarts %llu, WAL files replayed %llu, replay records "
      "%llu (%llu bytes)\n",
      static_cast<unsigned long long>(vs.recovery.crashes),
      static_cast<unsigned long long>(vs.recovery.restarts),
      static_cast<unsigned long long>(vs.recovery.wal_files_replayed),
      static_cast<unsigned long long>(vs.recovery.replay_records),
      static_cast<unsigned long long>(vs.recovery.replay_bytes));
  std::printf(
      "catch-up: %llu keys (%llu bytes) copied in, %d slots still lagging, "
      "re-replication VOPs %s\n",
      static_cast<unsigned long long>(vs.replication.catchup_keys),
      static_cast<unsigned long long>(vs.replication.catchup_bytes),
      vs.replication.catchup_lag_slots,
      metrics::FormatDouble(vs.recovery.rereplication_vops, 1).c_str());
  // Recovery priced in the common currency: the victim's per-tenant
  // InternalOp::kReplicate VOPs, straight from the tracker.
  for (const TenantSpec& spec : kTenants) {
    double repl_vops = 0.0;
    for (const ssd::IoType type : {ssd::IoType::kRead, ssd::IoType::kWrite}) {
      repl_vops += cl.node(victim).tracker().VopsBy(
          spec.tenant, AppRequest::kPut, iosched::InternalOp::kReplicate, type);
    }
    std::printf("tenant %u REPL VOPs on victim: %s\n", spec.tenant,
                metrics::FormatDouble(repl_vops, 1).c_str());
  }

  Section(args, "Failure demo: survivor SLAs during re-replication");
  uint64_t survivor_violations = 0;
  for (const auto& [node_tenant, base] : sla_base) {
    const auto& [n, t] = node_tenant;
    const obs::SlaMonitor::TenantSla* s =
        cl.node(n).policy().sla().Of(t);
    const uint64_t now = s != nullptr ? s->violations : 0;
    if (now > base) {
      survivor_violations += now - base;
      std::printf("node %d tenant %u: +%llu violations\n", n, t,
                  static_cast<unsigned long long>(now - base));
    }
  }
  std::printf("new violations on surviving nodes: %llu\n",
              static_cast<unsigned long long>(survivor_violations));

  AddStatsSection(args, "cluster_snapshot", cluster::ClusterStatsToJson(stats));

  bool ok = true;
  if (marker_lost > 0 || stable_lost > 0 || marker_acked == 0 ||
      stable_checked == 0) {
    std::fprintf(stderr, "FAIL: acked writes were lost\n");
    ok = false;
  }
  if (injector.crashes_injected() != 1 || injector.restarts_injected() != 1 ||
      !cl.NodeAlive(victim) || cl.NodeSyncing(victim)) {
    std::fprintf(stderr, "FAIL: fault schedule did not run to completion\n");
    ok = false;
  }
  if (vs.recovery.crashes != 1 || vs.recovery.restarts != 1 ||
      vs.recovery.rereplication_vops <= 0.0 ||
      vs.replication.catchup_keys == 0 || vs.replication.catchup_lag_slots != 0) {
    std::fprintf(stderr, "FAIL: recovery left no attribution evidence\n");
    ok = false;
  }
  if (survivor_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: surviving tenants violated SLAs during catch-up\n");
    ok = false;
  }
  if (!ok) {
    return 1;
  }
  std::printf(
      "failure contract held: no acked write lost, survivors kept their "
      "SLAs, recovery VOPs attributed.\n");
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  const uint64_t seed = libra::bench::ParseSeedFlag(argc, argv, 0xFA17ED);
  return libra::bench::RunDemo(args, seed);
}
