// Write-ahead log (paper §3.1): every PUT/DELETE is appended and synced
// before it is acknowledged, charging the tenant's direct PUT IO. The log
// is size-limited; when it fills, the memtable it protects is sealed and
// FLUSHed, and the log is deleted.
//
// Record frame: [payload_len u32][crc u32][payload], payload being the
// standard record encoding. Recovery replays records until truncation or a
// CRC mismatch (a torn tail write).

#ifndef LIBRA_SRC_LSM_WAL_H_
#define LIBRA_SRC_LSM_WAL_H_

#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/lsm/format.h"
#include "src/sim/task.h"

namespace libra::lsm {

class WriteAheadLog {
 public:
  WriteAheadLog(fs::SimFs& fs, std::string filename);

  // Creates (or truncates) the log file.
  Status Open();

  // Appends one record and waits until it is durable. Concurrent appends
  // from different client tasks are safe and their IO overlaps.
  sim::Task<Status> Append(const iosched::IoTag& tag, std::string_view key,
                           SequenceNumber seq, ValueType type,
                           std::string_view value);

  // Replays all intact records in file order. Stops at corruption (torn
  // tail) without error — that is the crash-recovery contract.
  Status Replay(const std::function<void(const Record&)>& fn) const;

  // Deletes the log file (after a successful FLUSH).
  Status Remove();

  uint64_t SizeBytes() const;
  const std::string& filename() const { return filename_; }

 private:
  fs::SimFs& fs_;
  std::string filename_;
  fs::FileId file_ = fs::kInvalidFile;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_WAL_H_
