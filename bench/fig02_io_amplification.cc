// Figure 2: non-uniform IO amplification. One tenant runs a 50:50 GET/PUT
// workload at each request size against the LSM prototype; the bars are
// the tenant's VOP consumption broken down by component: GET read IO, PUT
// write IO (the WAL), FLUSH read/write IO, COMPACT read/write IO.
//
// Expected shape (paper): small sizes dominated by PUT (WAL cost-per-byte);
// PUT share falls with size; FLUSH roughly constant; GET cost climbs at
// large sizes because uniform-keyspace PUT churn widens the eligible file
// set. The final column stresses disjoint GET/PUT key ranges (32KB GETs /
// 128KB PUTs): GETs search a single pre-existing file and stay cheap.

#include <cstdio>

#include "bench/kv_bench_common.h"

namespace libra::bench {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;
using libra::ssd::IoType;

struct Breakdown {
  double get_read, put_write, flush_read, flush_write, compact_read,
      compact_write;
};

Breakdown RunPoint(const BenchArgs& args, double get_kb, double put_kb,
                   bool disjoint) {
  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  kv::StorageNode node(loop, opt);
  const iosched::TenantId tenant = 1;
  // Reservation irrelevant here (single tenant, work conserving).
  (void)node.AddTenant(tenant, {1000.0, 1000.0});

  workload::KvWorkloadSpec spec;
  spec.get_fraction = 0.5;
  spec.get_size = {get_kb * 1024.0, 0.0};
  spec.put_size = {put_kb * 1024.0, 0.0};
  spec.live_bytes_target = args.full ? 64ULL * kMiB : 24ULL * kMiB;
  spec.disjoint_get_range = disjoint;
  spec.workers = 8;
  workload::KvTenantWorkload wl(loop, node, tenant, spec, 23);
  RunPreloads(loop, {&wl});

  auto& tracker = node.tracker();
  const SimDuration warmup = 2 * kSecond;
  const SimDuration measure = args.full ? 8 * kSecond : 4 * kSecond;
  Breakdown at_warm{};
  auto snapshot = [&]() -> Breakdown {
    return Breakdown{
        tracker.VopsBy(tenant, AppRequest::kGet, InternalOp::kNone, IoType::kRead),
        tracker.VopsBy(tenant, AppRequest::kPut, InternalOp::kNone, IoType::kWrite),
        tracker.VopsBy(tenant, AppRequest::kPut, InternalOp::kFlush, IoType::kRead),
        tracker.VopsBy(tenant, AppRequest::kPut, InternalOp::kFlush, IoType::kWrite),
        tracker.VopsBy(tenant, AppRequest::kPut, InternalOp::kCompact, IoType::kRead),
        tracker.VopsBy(tenant, AppRequest::kPut, InternalOp::kCompact, IoType::kWrite)};
  };
  Breakdown end{};
  {
    sim::TaskGroup group(loop);
    const SimTime start = loop.Now();
    wl.Start(group, start + warmup + measure);
    loop.ScheduleAt(start + warmup, [&] { at_warm = snapshot(); });
    // Snapshot exactly at window end: the post-deadline drain must not
    // count against the fixed measurement span.
    loop.ScheduleAt(start + warmup + measure, [&] { end = snapshot(); });
    loop.Run();
  }
  const double secs = ToSeconds(measure);
  return Breakdown{(end.get_read - at_warm.get_read) / secs,
                   (end.put_write - at_warm.put_write) / secs,
                   (end.flush_read - at_warm.flush_read) / secs,
                   (end.flush_write - at_warm.flush_write) / secs,
                   (end.compact_read - at_warm.compact_read) / secs,
                   (end.compact_write - at_warm.compact_write) / secs};
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  std::vector<double> sizes_kb = args.full
                                     ? std::vector<double>{1, 4, 8, 16, 32, 64, 128}
                                     : std::vector<double>{1, 8, 32, 128};

  // All points (the size sweep plus the disjoint-range column) are
  // independent sims; fan them across --jobs workers and emit in order.
  TableFor(libra::ssd::Intel320Profile());  // warm before the pool starts
  SweepRunner runner(args.jobs);
  const std::vector<Breakdown> points =
      runner.Map<Breakdown>(sizes_kb.size() + 1, [&](size_t i) {
        if (i < sizes_kb.size()) {
          return RunPoint(args, sizes_kb[i], sizes_kb[i], /*disjoint=*/false);
        }
        return RunPoint(args, 32, 128, /*disjoint=*/true);
      });

  Section(args, "Figure 2: app-request VOP consumption breakdown (kVOP/s)");
  libra::metrics::Table out({"workload", "GET_read", "PUT_write", "FLUSH_read",
                             "FLUSH_write", "COMPACT_read", "COMPACT_write",
                             "total"});
  for (size_t i = 0; i <= sizes_kb.size(); ++i) {
    const Breakdown& b = points[i];
    const double total = b.get_read + b.put_write + b.flush_read +
                         b.flush_write + b.compact_read + b.compact_write;
    const std::string label =
        i < sizes_kb.size()
            ? libra::metrics::FormatDouble(sizes_kb[i], 0) + "KB"
            : "32/128KB disjoint";
    out.AddNumericRow(label,
                      {b.get_read / 1000.0, b.put_write / 1000.0,
                       b.flush_read / 1000.0, b.flush_write / 1000.0,
                       b.compact_read / 1000.0, b.compact_write / 1000.0,
                       total / 1000.0},
                      2);
  }
  Emit(args, out);
  std::printf(
      "paper shape: PUT dominates small sizes; GET share climbs at large "
      "sizes under shared-keyspace churn; disjoint-range GETs stay cheap.\n");
  return 0;
}
