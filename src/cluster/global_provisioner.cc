#include "src/cluster/global_provisioner.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/iosched/resource_tracker.h"
#include "src/sim/task.h"

namespace libra::cluster {

namespace {

uint64_t DemandKey(iosched::TenantId tenant, int node) {
  return (static_cast<uint64_t>(tenant) << 32) | static_cast<uint32_t>(node);
}

// Fire-and-forget wrapper for automatic migrations: the provisioner must not
// block its interval timer on a drain. Failures leave the shard where it was
// (MigrateShard is key-preserving on every error path), so the next
// overbooked streak simply retries.
sim::Task<void> RunMigration(Cluster* cluster, iosched::TenantId tenant,
                             int slot, int to_node) {
  (void)co_await cluster->MigrateShard(tenant, slot, to_node);
}

}  // namespace

GlobalProvisioner::GlobalProvisioner(sim::EventLoop& loop, Cluster& cluster,
                                     GlobalProvisionerOptions options)
    : loop_(loop), cluster_(cluster), options_(options) {
  assert(options_.interval > 0);
  overbooked_streak_.assign(static_cast<size_t>(cluster_.num_nodes()), 0);
  audit_seen_.assign(static_cast<size_t>(cluster_.num_nodes()), 0);
}

GlobalProvisioner::~GlobalProvisioner() { Stop(); }

void GlobalProvisioner::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (sim::MultiLoop* multi = cluster_.multi_loop(); multi != nullptr) {
    // Parallel engine: the interval step reads every node's tracker and
    // audit log, which is only safe with all node loops quiesced — so the
    // timer is a re-arming barrier hook instead of a loop event. A stale
    // hook after Stop() fires once as a no-op (hooks cannot be cancelled).
    auto rearm = [this, multi](auto&& self) -> void {
      multi->ScheduleBarrierAt(multi->Now() + options_.interval,
                               [this, multi, self] {
                                 if (!running_) {
                                   return;
                                 }
                                 RunIntervalStep();
                                 self(self);
                               });
    };
    rearm(rearm);
    return;
  }
  auto reschedule = [this](auto&& self) -> void {
    pending_event_ = loop_.ScheduleAfter(options_.interval, [this, self] {
      if (!running_) {
        return;
      }
      RunIntervalStep();
      self(self);
    });
  };
  reschedule(reschedule);
}

void GlobalProvisioner::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_event_ != 0) {
    loop_.Cancel(pending_event_);
    pending_event_ = 0;
  }
}

void GlobalProvisioner::RunIntervalStep() {
  const SimTime now = loop_.Now();
  const bool first_step = last_step_time_ < 0;
  for (const iosched::TenantId tenant : cluster_.tenants()) {
    const std::vector<int> slots = cluster_.shard_map_.SlotsPerNode(tenant);
    for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
      if (slots[n] > 0 && cluster_.NodeAlive(n)) {
        UpdateDemand(tenant, n);
      }
    }
    if (!first_step) {
      ResplitTenant(tenant);
    }
  }
  last_step_time_ = now;
  CheckOverbooking();
}

void GlobalProvisioner::UpdateDemand(iosched::TenantId tenant,
                                     int node_index) {
  const auto& tracker = cluster_.nodes_[node_index]->tracker();
  auto [it, created] = demand_.try_emplace(DemandKey(tenant, node_index),
                                           options_.demand_alpha);
  NodeDemand& d = it->second;
  const double elapsed =
      last_step_time_ < 0 ? 0.0 : ToSeconds(loop_.Now() - last_step_time_);
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    const double total = tracker.NormalizedRequestsTotal(
        tenant, static_cast<iosched::AppRequest>(a));
    if (!created && elapsed > 0.0) {
      d.rate[a].Observe((total - d.last_total[a]) / elapsed);
    }
    d.last_total[a] = total;
  }
}

double GlobalProvisioner::DemandShare(iosched::TenantId tenant,
                                      int node) const {
  const auto it = demand_.find(DemandKey(tenant, node));
  if (it == demand_.end()) {
    return 0.0;
  }
  const double mine = it->second.TotalRate();
  double total = 0.0;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    const auto nit = demand_.find(DemandKey(tenant, n));
    if (nit != demand_.end()) {
      total += nit->second.TotalRate();
    }
  }
  return total > 0.0 ? mine / total : 0.0;
}

void GlobalProvisioner::ResplitTenant(iosched::TenantId tenant) {
  const auto tit = cluster_.tenants_.find(tenant);
  if (tit == cluster_.tenants_.end()) {
    return;
  }
  const GlobalReservation global = tit->second.global;

  // Hosting set: alive nodes only — a crashed node earns no share, and its
  // mass must land on the survivors so the split still sums to the global.
  const std::vector<int> slots = cluster_.shard_map_.SlotsPerNode(tenant);
  std::vector<int> hosting;
  int total_slots = 0;
  for (int n = 0; n < static_cast<int>(slots.size()); ++n) {
    if (slots[n] > 0 && cluster_.NodeAlive(n)) {
      hosting.push_back(n);
      total_slots += slots[n];
    }
  }
  if (hosting.empty()) {
    return;
  }

  // Demand-proportional shares per request class, falling back to
  // slot-proportional while a class is entirely unobserved, floored at
  // min_share and renormalized so every hosting node can ramp back up.
  const size_t k = hosting.size();
  std::vector<std::vector<double>> class_demand(
      iosched::kNumAppRequests, std::vector<double>(k, 0.0));
  std::vector<double> class_total(iosched::kNumAppRequests, 0.0);
  for (size_t i = 0; i < k; ++i) {
    const auto dit = demand_.find(DemandKey(tenant, hosting[i]));
    if (dit == demand_.end()) {
      continue;
    }
    for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
         ++a) {
      class_demand[a][i] = dit->second.rate[a].Value();
      class_total[a] += class_demand[a][i];
    }
  }
  auto shares = [&](const std::vector<double>& demand, double total) {
    std::vector<double> s(k);
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      s[i] = total > 1e-9
                 ? demand[i] / total
                 : static_cast<double>(slots[hosting[i]]) / total_slots;
      s[i] = std::max(s[i], options_.min_share);
      sum += s[i];
    }
    for (double& v : s) {
      v /= sum;
    }
    return s;
  };
  std::vector<std::vector<double>> share(iosched::kNumAppRequests);
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    share[a] = shares(class_demand[a], class_total[a]);
  }

  // All but the last hosting node take their proportional cut; the last
  // takes the remainder so the split sums exactly to the global rate.
  std::map<int, iosched::Reservation> split;
  double used[iosched::kNumAppRequests] = {};
  for (size_t i = 0; i + 1 < k; ++i) {
    iosched::Reservation r;
    for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
         ++a) {
      r.rps[a] = global.rps[a] * share[a][i];
      used[a] += r.rps[a];
    }
    split[hosting[i]] = r;
  }
  iosched::Reservation last;
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    last.rps[a] = std::max(0.0, global.rps[a] - used[a]);
  }
  split[hosting[k - 1]] = last;

  // Hysteresis: apply only when some node's share moved by more than the
  // band, as a fraction of the tenant's total global rate. A change in the
  // hosting set (migration) always passes.
  const auto& current = tit->second.split;
  double max_change = 0.0;
  bool hosting_changed = current.size() != split.size();
  for (const auto& [node, r] : split) {
    const auto cit = current.find(node);
    if (cit == current.end()) {
      hosting_changed = true;
      break;
    }
    double change = 0.0;
    for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
         ++a) {
      change += std::abs(r.rps[a] - cit->second.rps[a]);
    }
    max_change = std::max(max_change, change);
  }
  const double denom = std::max(1.0, global.Total());
  if (!hosting_changed && !current.empty() &&
      max_change / denom < options_.hysteresis) {
    return;
  }

  if (!cluster_.ApplySplit(tenant, split).ok()) {
    return;
  }
  ++splits_applied_;

  obs::RebalanceRecord rec;
  rec.kind = obs::RebalanceRecord::Kind::kSplit;
  rec.time_ns = loop_.Now();
  rec.tenant = tenant;
  rec.nodes = static_cast<int>(k);
  cluster_.rebalance_log_.Append(rec);
}

void GlobalProvisioner::CheckOverbooking() {
  // Advance per-node streaks from the nodes' provisioning audit logs (one
  // record per policy interval; the watermark skips already-seen records).
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (!cluster_.NodeAlive(n)) {
      overbooked_streak_[n] = 0;  // a dead node cannot be overbooked
      continue;
    }
    const auto& log = cluster_.nodes_[n]->policy().audit_log();
    const uint64_t total = log.total_appended();
    if (total > audit_seen_[n]) {
      audit_seen_[n] = total;
      overbooked_streak_[n] =
          log.back().overbooked ? overbooked_streak_[n] + 1 : 0;
    }
  }
  if (options_.overbook_intervals_before_migration <= 0 ||
      cluster_.active_migrations_ > 0) {
    return;  // disabled, or a migration is already draining
  }

  // Most persistently overbooked node past the threshold (lowest index on
  // ties, for determinism).
  int src = -1;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    if (overbooked_streak_[n] >= options_.overbook_intervals_before_migration &&
        (src < 0 || overbooked_streak_[n] > overbooked_streak_[src])) {
      src = n;
    }
  }
  if (src < 0) {
    return;
  }

  // Victim: the tenant with the highest smoothed demand on the overbooked
  // node — moving its hottest shard sheds the most load per migration.
  iosched::TenantId victim = iosched::kInvalidTenant;
  double victim_demand = -1.0;
  for (const auto& [tenant, state] : cluster_.tenants_) {
    if (cluster_.shard_map_.SlotsPerNode(tenant)[src] == 0) {
      continue;
    }
    double d = 0.0;
    if (const auto dit = demand_.find(DemandKey(tenant, src));
        dit != demand_.end()) {
      d = dit->second.TotalRate();
    }
    if (d > victim_demand) {
      victim_demand = d;
      victim = tenant;
    }
  }
  if (victim == iosched::kInvalidTenant) {
    overbooked_streak_[src] = 0;
    return;
  }
  int slot = -1;
  const std::vector<int> assignment = cluster_.shard_map_.Assignment(victim);
  for (int s = 0; s < static_cast<int>(assignment.size()); ++s) {
    if (assignment[s] == src) {
      slot = s;
      break;
    }
  }
  assert(slot >= 0);

  // Target: the least-provisioned node that is not itself on an overbooked
  // streak (any other node as a last resort).
  int dst = -1;
  double dst_load = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2 && dst < 0; ++pass) {
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      if (n == src || !cluster_.NodeAlive(n) ||
          (pass == 0 && overbooked_streak_[n] > 0)) {
        continue;
      }
      double load = 0.0;
      for (const auto& [tenant, state] : cluster_.tenants_) {
        if (const auto sit = state.split.find(n); sit != state.split.end()) {
          load += cluster_.PricedVops(sit->second);
        }
      }
      if (load < dst_load) {
        dst_load = load;
        dst = n;
      }
    }
  }
  if (dst < 0) {
    return;
  }

  ++migrations_started_;
  overbooked_streak_[src] = 0;  // give the migration time to take effect
  sim::Detach(RunMigration(&cluster_, victim, slot, dst));
}

}  // namespace libra::cluster
