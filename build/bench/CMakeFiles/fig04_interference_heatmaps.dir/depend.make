# Empty dependencies file for fig04_interference_heatmaps.
# This may be replaced when dependencies are built.
