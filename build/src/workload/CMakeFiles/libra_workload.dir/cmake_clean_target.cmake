file(REMOVE_RECURSE
  "liblibra_workload.a"
)
