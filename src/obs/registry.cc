#include "src/obs/registry.h"

namespace libra::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name, SeriesKey key) {
  return counters_[Key{name, key}];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, SeriesKey key) {
  return gauges_[Key{name, key}];
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                SeriesKey key) {
  return histograms_[Key{name, key}];
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            SeriesKey key) const {
  const auto it = counters_.find(Key{name, key});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        SeriesKey key) const {
  const auto it = gauges_.find(Key{name, key});
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                       SeriesKey key) const {
  const auto it = histograms_.find(Key{name, key});
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace libra::obs
