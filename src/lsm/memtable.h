// In-memory write buffer: a skiplist over internal keys (user key asc,
// sequence desc). When it reaches the configured size it is sealed and
// FLUSHed to an L0 SSTable by a background task.

#ifndef LIBRA_SRC_LSM_MEMTABLE_H_
#define LIBRA_SRC_LSM_MEMTABLE_H_

#include <string>
#include <string_view>

#include "src/common/trace_context.h"
#include "src/lsm/format.h"
#include "src/lsm/skiplist.h"

namespace libra::lsm {

class MemTable {
 public:
  // One decoded, owned entry (also the unit compaction merges operate on).
  struct Entry {
    std::string key;
    std::string value;
    SequenceNumber seq = 0;
    ValueType type = ValueType::kPut;
    // Span of the app request that wrote this entry; lets the FLUSH that
    // later persists it emit a span causally linked to the requests whose
    // bytes it moves. Invalid (zero) when the writer was untraced.
    TraceContext origin;
  };

  struct EntryComparator {
    int operator()(const Entry& a, const Entry& b) const {
      return CompareInternalKey(a.key, a.seq, b.key, b.seq);
    }
  };

  MemTable() : table_(EntryComparator{}) {}

  void Put(std::string_view key, SequenceNumber seq, std::string_view value,
           TraceContext origin = {}) {
    Add(key, seq, ValueType::kPut, value, origin);
  }
  void Delete(std::string_view key, SequenceNumber seq,
              TraceContext origin = {}) {
    Add(key, seq, ValueType::kDelete, "", origin);
  }

  // Lookup result: `found` with the value for a PUT; a tombstone is
  // signalled via `deleted`.
  struct GetResult {
    bool found = false;
    bool deleted = false;
    std::string value;
  };

  // Newest entry for `key` visible at `snapshot` (inclusive).
  GetResult Get(std::string_view key,
                SequenceNumber snapshot = UINT64_MAX) const;

  size_t entries() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  // Bytes of key+value payload plus per-entry overhead; the FLUSH trigger
  // compares this against the write-buffer limit.
  size_t ApproximateMemoryUsage() const { return memory_usage_; }

  // In-order iteration for FLUSH.
  class Iterator {
   public:
    explicit Iterator(const MemTable* mt) : it_(&mt->table_) {}
    void SeekToFirst() { it_.SeekToFirst(); }
    bool Valid() const { return it_.Valid(); }
    void Next() { it_.Next(); }
    const Entry& entry() const { return it_.key(); }

   private:
    SkipList<Entry, EntryComparator>::Iterator it_;
  };

 private:
  void Add(std::string_view key, SequenceNumber seq, ValueType type,
           std::string_view value, TraceContext origin) {
    table_.Insert(
        Entry{std::string(key), std::string(value), seq, type, origin});
    memory_usage_ += key.size() + value.size() + 32;
  }

  SkipList<Entry, EntryComparator> table_;
  size_t memory_usage_ = 0;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_MEMTABLE_H_
