#include <gtest/gtest.h>

#include "src/metrics/meter.h"
#include "src/metrics/table.h"

namespace libra::metrics {
namespace {

TEST(ThroughputMeterTest, ZeroBeforeStart) {
  ThroughputMeter m;
  m.Add(100.0);
  EXPECT_EQ(m.total(), 0.0);
  EXPECT_EQ(m.Rate(kSecond), 0.0);
}

TEST(ThroughputMeterTest, RateOverWindow) {
  ThroughputMeter m;
  m.Start(1 * kSecond);
  m.Add(500.0);
  m.Add(500.0);
  EXPECT_DOUBLE_EQ(m.Rate(3 * kSecond), 500.0);  // 1000 over 2s
  EXPECT_DOUBLE_EQ(m.total(), 1000.0);
}

TEST(ThroughputMeterTest, RestartResetsCount) {
  ThroughputMeter m;
  m.Start(0);
  m.Add(100.0);
  m.Start(kSecond);
  EXPECT_EQ(m.total(), 0.0);
}

TEST(TimeSeriesTest, RecordsAndAverages) {
  TimeSeries ts("t");
  ts.Record(1 * kSecond, 10.0);
  ts.Record(2 * kSecond, 20.0);
  ts.Record(3 * kSecond, 30.0);
  EXPECT_EQ(ts.points().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.MeanOver(1 * kSecond, 2 * kSecond), 15.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(0, 10 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(5 * kSecond, 6 * kSecond), 0.0);
}

TEST(RateSamplerTest, ComputesIntervalRates) {
  RateSampler s("r");
  s.Tick(0, 0.0);
  s.Tick(1 * kSecond, 100.0);
  s.Tick(2 * kSecond, 300.0);
  const auto& pts = s.series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 100.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 200.0);
}

TEST(TableTest, TextRenderingAligns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("name   value"), std::string::npos);
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"x"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("x,,"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"k"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvQuotesNewlinesAndCarriageReturns) {
  // RFC-4180: fields containing CR or LF must be quoted, not just , and ".
  Table t({"k", "v"});
  t.AddRow({"multi\nline", "cr\rhere"});
  t.AddRow({"tagged", "GET,direct"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(csv.find("\"cr\rhere\""), std::string::npos);
  EXPECT_NE(csv.find("\"GET,direct\""), std::string::npos);
  // Plain fields stay unquoted.
  EXPECT_NE(csv.find("tagged,"), std::string::npos);
}

TEST(TableTest, CsvHeaderEscapedToo) {
  Table t({"plain", "odd,header"});
  t.AddRow({"a", "b"});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv.find("plain,\"odd,header\""), 0u);
}

TEST(TableTest, JsonRowsKeyedByHeader) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"quo\"te"});  // short row: padded with ""
  const std::string json = t.ToJson();
  EXPECT_EQ(json,
            "[{\"name\":\"alpha\",\"value\":\"1\"},"
            "{\"name\":\"quo\\\"te\",\"value\":\"\"}]");
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"label", "v1", "v2"});
  t.AddNumericRow("row", {1.23456, 7.0}, 2);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("row,1.23,7.00"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
}

}  // namespace
}  // namespace libra::metrics
