#include "src/lsm/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

const iosched::IoTag kPutTag{1, iosched::AppRequest::kPut,
                             iosched::InternalOp::kNone};

TEST(WalTest, AppendAndReplay) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await wal.Append(kPutTag, "k1", 1, ValueType::kPut, "v1")).ok());
    EXPECT_TRUE(
        (co_await wal.Append(kPutTag, "k2", 2, ValueType::kDelete, "")).ok());
  }());
  std::vector<Record> records;
  std::vector<std::string> keys;  // Record holds views; copy out
  ASSERT_TRUE(wal.Replay([&](const Record& r) {
                   records.push_back(r);
                   keys.emplace_back(r.key);
                 })
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(keys[0], "k1");
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].type, ValueType::kPut);
  EXPECT_EQ(keys[1], "k2");
  EXPECT_EQ(records[1].type, ValueType::kDelete);
}

TEST(WalTest, ReplayStopsAtTornTail) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "k1", 1, ValueType::kPut, "v1");
    co_await wal.Append(kPutTag, "k2", 2, ValueType::kPut, "v2");
    // Simulate a torn tail: append a frame header with no payload.
    std::string torn;
    PutFixed32(&torn, 100);
    PutFixed32(&torn, 0x12345678);
    co_await rig.fs.Append(*rig.fs.Open("wal_1"), kPutTag, torn);
  }());
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](const Record&) { ++count; }).ok());
  EXPECT_EQ(count, 2);
}

TEST(WalTest, AppendsChargeDirectPutIo) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "key", 1, ValueType::kPut,
                        std::string(4096, 'v'));
  }());
  const auto& stats = rig.sched.tracker().Stats(1);
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_GT(stats.write_bytes, 4096u);  // payload + framing
}

TEST(WalTest, RemoveDeletesFile) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_TRUE(rig.fs.Exists("wal_1"));
  EXPECT_TRUE(wal.Remove().ok());
  EXPECT_FALSE(rig.fs.Exists("wal_1"));
}

TEST(WalTest, SizeTracksAppends) {
  LsmRig rig;
  WriteAheadLog wal(rig.fs, "wal_1");
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  rig.RunTask([&]() -> sim::Task<void> {
    co_await wal.Append(kPutTag, "k", 1, ValueType::kPut, std::string(100, 'v'));
  }());
  EXPECT_GT(wal.SizeBytes(), 100u);
}

TEST(WalTest, ReopenExistingLogReplays) {
  LsmRig rig;
  {
    WriteAheadLog wal(rig.fs, "wal_1");
    ASSERT_TRUE(wal.Open().ok());
    rig.RunTask([&]() -> sim::Task<void> {
      co_await wal.Append(kPutTag, "k", 9, ValueType::kPut, "v");
    }());
  }
  // A second WriteAheadLog over the same file (crash recovery).
  WriteAheadLog recovered(rig.fs, "wal_1");
  ASSERT_TRUE(recovered.Open().ok());
  int count = 0;
  SequenceNumber seq = 0;
  ASSERT_TRUE(recovered.Replay([&](const Record& r) {
                   ++count;
                   seq = r.seq;
                 })
                  .ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(seq, 9u);
}

}  // namespace
}  // namespace libra::lsm
