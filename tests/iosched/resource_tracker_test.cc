#include "src/iosched/resource_tracker.h"

#include <gtest/gtest.h>

namespace libra::iosched {
namespace {

TEST(ResourceTrackerTest, UnknownTenantHasEmptyStats) {
  ResourceTracker tr;
  EXPECT_EQ(tr.Stats(42).total_ops(), 0u);
  EXPECT_EQ(tr.Profile(42, AppRequest::kGet, 2.0).direct, 2.0);
}

TEST(ResourceTrackerTest, DirectCostPerNormalizedRequest) {
  ResourceTracker tr(1.0);  // alpha 1: no smoothing, easier arithmetic
  // 10 GETs of 4KB each consuming 1.2 VOPs apiece.
  for (int i = 0; i < 10; ++i) {
    tr.RecordAppRequest(1, AppRequest::kGet, 4096);
    tr.RecordIo({1, AppRequest::kGet, InternalOp::kNone}, ssd::IoType::kRead,
                4096, 1.2);
  }
  tr.Roll();
  // u = 12 VOPs over s = 40 normalized requests -> q = 0.3.
  EXPECT_NEAR(tr.Profile(1, AppRequest::kGet).direct, 0.3, 1e-9);
}

TEST(ResourceTrackerTest, IndirectCostAttribution) {
  ResourceTracker tr(1.0);
  // 100 normalized PUTs trigger one FLUSH that costs 50 VOPs.
  for (int i = 0; i < 100; ++i) {
    tr.RecordAppRequest(1, AppRequest::kPut, 1024);
    tr.RecordIo({1, AppRequest::kPut, InternalOp::kNone}, ssd::IoType::kWrite,
                1024, 2.0);
  }
  tr.RecordTrigger(1, AppRequest::kPut, InternalOp::kFlush);
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kFlush}, ssd::IoType::kWrite,
              256 * 1024, 50.0);
  tr.RecordInternalOpDone(1, InternalOp::kFlush);
  tr.Roll();

  const AppRequestProfile p = tr.Profile(1, AppRequest::kPut);
  EXPECT_NEAR(p.direct, 2.0, 1e-9);
  // q_flush = 50 VOPs/op, rate = 1 trigger / 100 requests -> 0.5 VOPs/req.
  EXPECT_NEAR(p.indirect[static_cast<int>(InternalOp::kFlush)], 0.5, 1e-9);
  EXPECT_NEAR(p.total(), 2.5, 1e-9);
}

TEST(ResourceTrackerTest, SporadicOpNormalizedSinceLastTrigger) {
  ResourceTracker tr(1.0);
  // Interval 1: 50 PUTs, no compaction.
  for (int i = 0; i < 50; ++i) {
    tr.RecordAppRequest(1, AppRequest::kPut, 1024);
  }
  tr.Roll();
  // Interval 2: 50 more PUTs, then one COMPACT triggers.
  for (int i = 0; i < 50; ++i) {
    tr.RecordAppRequest(1, AppRequest::kPut, 1024);
  }
  tr.RecordTrigger(1, AppRequest::kPut, InternalOp::kCompact);
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kCompact}, ssd::IoType::kWrite,
              512 * 1024, 100.0);
  tr.RecordInternalOpDone(1, InternalOp::kCompact);
  tr.Roll();

  // The trigger rate is normalized by all 100 requests since the start,
  // not the 50 in the trigger interval.
  const AppRequestProfile p = tr.Profile(1, AppRequest::kPut);
  EXPECT_NEAR(p.indirect[static_cast<int>(InternalOp::kCompact)],
              100.0 * (1.0 / 100.0), 1e-9);
}

TEST(ResourceTrackerTest, InflightInternalOpDefersAttribution) {
  ResourceTracker tr(1.0);
  tr.RecordAppRequest(1, AppRequest::kPut, 1024);
  tr.RecordTrigger(1, AppRequest::kPut, InternalOp::kFlush);
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kFlush}, ssd::IoType::kWrite,
              4096, 10.0);
  // Flush has NOT completed; rolling must not lose the partial 10 VOPs.
  tr.Roll();
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kFlush}, ssd::IoType::kWrite,
              4096, 10.0);
  tr.RecordInternalOpDone(1, InternalOp::kFlush);
  tr.Roll();
  // q_flush sees the full 20 VOPs when the op finally completes.
  const AppRequestProfile p = tr.Profile(1, AppRequest::kPut);
  EXPECT_NEAR(p.indirect[static_cast<int>(InternalOp::kFlush)], 20.0, 1e-9);
}

TEST(ResourceTrackerTest, StatsAccumulateAcrossRolls) {
  ResourceTracker tr;
  tr.RecordIo({7, AppRequest::kGet, InternalOp::kNone}, ssd::IoType::kRead,
              2048, 1.0);
  tr.Roll();
  tr.RecordIo({7, AppRequest::kPut, InternalOp::kNone}, ssd::IoType::kWrite,
              1024, 3.0);
  const TenantIoStats& s = tr.Stats(7);
  EXPECT_EQ(s.read_ops, 1u);
  EXPECT_EQ(s.write_ops, 1u);
  EXPECT_EQ(s.total_bytes(), 3072u);
  EXPECT_NEAR(s.vops, 4.0, 1e-9);
  EXPECT_NEAR(tr.total_vops(), 4.0, 1e-9);
}

TEST(ResourceTrackerTest, MeanRequestSizeSmoothed) {
  ResourceTracker tr(1.0);
  tr.RecordAppRequest(3, AppRequest::kGet, 4096);
  tr.RecordAppRequest(3, AppRequest::kGet, 8192);
  EXPECT_NEAR(tr.MeanRequestSize(3, AppRequest::kGet), 6144.0, 1e-9);
  tr.Roll();
  EXPECT_NEAR(tr.MeanRequestSize(3, AppRequest::kGet), 6144.0, 1e-9);
  EXPECT_EQ(tr.MeanRequestSize(3, AppRequest::kPut), 0.0);
}

TEST(ResourceTrackerTest, NormalizedRequestTotalsAccumulate) {
  ResourceTracker tr;
  tr.RecordAppRequest(5, AppRequest::kPut, 4096);   // 4 normalized
  tr.RecordAppRequest(5, AppRequest::kPut, 512);    // rounds up to 1
  tr.Roll();
  tr.RecordAppRequest(5, AppRequest::kPut, 2048);   // 2 normalized
  EXPECT_NEAR(tr.NormalizedRequestsTotal(5, AppRequest::kPut), 7.0, 1e-9);
}

TEST(ResourceTrackerTest, EwmaSmoothsProfileAcrossIntervals) {
  ResourceTracker tr(0.5);
  auto interval = [&](double cost_per_req) {
    for (int i = 0; i < 10; ++i) {
      tr.RecordAppRequest(1, AppRequest::kGet, 1024);
      tr.RecordIo({1, AppRequest::kGet, InternalOp::kNone}, ssd::IoType::kRead,
                  1024, cost_per_req);
    }
    tr.Roll();
  };
  interval(1.0);
  EXPECT_NEAR(tr.Profile(1, AppRequest::kGet).direct, 1.0, 1e-9);
  interval(3.0);
  // EWMA(0.5): 0.5*3 + 0.5*1 = 2.
  EXPECT_NEAR(tr.Profile(1, AppRequest::kGet).direct, 2.0, 1e-9);
}

TEST(ResourceTrackerTest, SharedIoSlicesAccountedLikePlainIo) {
  ResourceTracker tr(1.0);
  // Two tenants' PUTs ride one batched 8KB write costing 4 VOPs, split
  // 3:1 by bytes (6KB/2KB -> 3.0/1.0 VOPs).
  tr.RecordAppRequest(1, AppRequest::kPut, 6144);
  tr.RecordAppRequest(2, AppRequest::kPut, 2048);
  tr.RecordIoShare({1, AppRequest::kPut, InternalOp::kNone},
                   ssd::IoType::kWrite, 6144, 3.0);
  tr.RecordIoShare({2, AppRequest::kPut, InternalOp::kNone},
                   ssd::IoType::kWrite, 2048, 1.0);
  // Slice accounting is byte-for-byte identical to RecordIo...
  EXPECT_EQ(tr.Stats(1).write_bytes, 6144u);
  EXPECT_EQ(tr.Stats(2).write_bytes, 2048u);
  EXPECT_NEAR(tr.Stats(1).vops, 3.0, 1e-12);
  EXPECT_NEAR(tr.Stats(2).vops, 1.0, 1e-12);
  EXPECT_NEAR(tr.VopsBy(1, AppRequest::kPut, InternalOp::kNone,
                        ssd::IoType::kWrite),
              3.0, 1e-12);
  // ...and it feeds profiles: 3 VOPs over 6 normalized requests = 0.5.
  tr.Roll();
  EXPECT_NEAR(tr.Profile(1, AppRequest::kPut).direct, 0.5, 1e-9);
  // The shared-IO rollup tracks slices and bytes for measurement.
  EXPECT_EQ(tr.shared_io_shares(), 2u);
  EXPECT_EQ(tr.shared_io_bytes(), 8192u);
}

TEST(ResourceTrackerTest, SharedIoCountersZeroWithoutBatching) {
  ResourceTracker tr;
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kNone}, ssd::IoType::kWrite,
              4096, 2.0);
  EXPECT_EQ(tr.shared_io_shares(), 0u);
  EXPECT_EQ(tr.shared_io_bytes(), 0u);
}

TEST(ResourceTrackerTest, TenantsEnumerated) {
  ResourceTracker tr;
  tr.RecordAppRequest(1, AppRequest::kGet, 1024);
  tr.RecordAppRequest(9, AppRequest::kPut, 1024);
  const auto ids = tr.tenants();
  EXPECT_EQ(ids.size(), 2u);
}

}  // namespace
}  // namespace libra::iosched
