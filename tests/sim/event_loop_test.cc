#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace libra::sim {
namespace {

TEST(EventLoopTest, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(EventLoopTest, FifoAtSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ClockVisibleInsideCallback) {
  EventLoop loop;
  SimTime seen = -1;
  loop.ScheduleAt(1000, [&] { seen = loop.Now(); });
  loop.Run();
  EXPECT_EQ(seen, 1000);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(10, [&] {
    ++fired;
    loop.ScheduleAfter(5, [&] { ++fired; });
  });
  loop.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.Now(), 15);
}

TEST(EventLoopTest, PastTimestampsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(100, [&] {
    loop.ScheduleAt(50, [&] { EXPECT_EQ(loop.Now(), 100); });
  });
  loop.Run();
  EXPECT_EQ(loop.Now(), 100);
}

TEST(EventLoopTest, CancelPreventsDispatch) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.ScheduleAt(10, [&] { fired = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, CancelUnknownIdIsNoop) {
  EventLoop loop;
  loop.Cancel(0);
  loop.Cancel(999999);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(100, [&] { order.push_back(2); });
  EXPECT_EQ(loop.RunUntil(50), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.Now(), 50);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, RunForAdvancesRelative) {
  EventLoop loop;
  loop.RunFor(25);
  EXPECT_EQ(loop.Now(), 25);
  loop.RunFor(25);
  EXPECT_EQ(loop.Now(), 50);
}

TEST(EventLoopTest, StopBreaksOutOfRun) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(1, [&] {
    ++fired;
    loop.Stop();
  });
  loop.ScheduleAt(2, [&] { ++fired; });
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending_events(), 1u);
}

TEST(EventLoopTest, RunOneDispatchesSingleEvent) {
  EventLoop loop;
  int fired = 0;
  loop.Post([&] { ++fired; });
  loop.Post([&] { ++fired; });
  EXPECT_TRUE(loop.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.RunOne());
  EXPECT_FALSE(loop.RunOne());
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, CancelAfterFireIsNoop) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.ScheduleAt(10, [&] { ++fired; });
  loop.ScheduleAt(20, [&] { ++fired; });
  loop.Run();
  EXPECT_EQ(fired, 2);
  // The id's slot has been recycled; cancelling it must not disturb
  // anything scheduled afterwards.
  loop.Cancel(id);
  bool later = false;
  loop.ScheduleAt(30, [&] { later = true; });
  loop.Cancel(id);  // again, with a live event in the (possibly reused) slot
  loop.Run();
  EXPECT_TRUE(later);
}

TEST(EventLoopTest, StaleIdCannotCancelSlotReuse) {
  EventLoop loop;
  bool first = false;
  const auto id = loop.ScheduleAt(10, [&] { first = true; });
  loop.Run();
  EXPECT_TRUE(first);
  // The new event likely reuses the fired event's slot; the stale id must
  // not hit it (generations differ).
  bool second = false;
  loop.ScheduleAt(20, [&] { second = true; });
  loop.Cancel(id);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_TRUE(second);
}

TEST(EventLoopTest, DoubleCancelIsNoop) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.ScheduleAt(10, [&] { fired = true; });
  loop.Cancel(id);
  loop.Cancel(id);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.Run(), 0u);
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, PendingCountExactUnderLazyCancellation) {
  EventLoop loop;
  std::vector<EventLoop::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(loop.ScheduleAt(10 + i, [] {}));
  }
  EXPECT_EQ(loop.pending_events(), 10u);
  // Cancel every other one: the count must drop immediately even though
  // the heap entries are removed lazily.
  for (size_t i = 0; i < ids.size(); i += 2) {
    loop.Cancel(ids[i]);
  }
  EXPECT_EQ(loop.pending_events(), 5u);
  EXPECT_FALSE(loop.empty());
  EXPECT_EQ(loop.Run(), 5u);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, EmptyTrueWhenAllPendingCancelled) {
  EventLoop loop;
  const auto a = loop.ScheduleAt(10, [] {});
  const auto b = loop.ScheduleAt(20, [] {});
  loop.Cancel(a);
  loop.Cancel(b);
  // Dead entries may still sit in the heap, but no live work remains.
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoopTest, ScheduleCancelChurnDoesNotLeakBookkeeping) {
  // Timeout pattern: every round schedules a far-future timeout and cancels
  // the previous one. Lazy cancellation must compact, and the live count
  // must stay exact throughout.
  EventLoop loop;
  EventLoop::EventId prev = 0;
  int timeouts_fired = 0;
  for (int i = 0; i < 100000; ++i) {
    if (prev != 0) {
      loop.Cancel(prev);
    }
    prev = loop.ScheduleAt(1000000 + i, [&] { ++timeouts_fired; });
    EXPECT_EQ(loop.pending_events(), 1u);
  }
  EXPECT_EQ(loop.Run(), 1u);  // only the last timeout survives
  EXPECT_EQ(timeouts_fired, 1);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, CancelInterleavedWithDispatchKeepsOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventLoop::EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(loop.ScheduleAt(10 * (i + 1), [&order, i] {
      order.push_back(i);
    }));
  }
  // Cancel 1, 3, 5, 7 from inside event 0.
  loop.ScheduleAt(5, [&] {
    for (size_t i = 1; i < ids.size(); i += 2) {
      loop.Cancel(ids[i]);
    }
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6}));
}

TEST(EventLoopTest, ManyEventsStressOrdering) {
  EventLoop loop;
  SimTime last = -1;
  int count = 0;
  for (int i = 0; i < 10000; ++i) {
    const SimTime t = (i * 7919) % 1000;
    loop.ScheduleAt(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  loop.Run();
  EXPECT_EQ(count, 10000);
}

}  // namespace
}  // namespace libra::sim
