
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iosched/capacity.cc" "src/iosched/CMakeFiles/libra_iosched.dir/capacity.cc.o" "gcc" "src/iosched/CMakeFiles/libra_iosched.dir/capacity.cc.o.d"
  "/root/repo/src/iosched/cost_model.cc" "src/iosched/CMakeFiles/libra_iosched.dir/cost_model.cc.o" "gcc" "src/iosched/CMakeFiles/libra_iosched.dir/cost_model.cc.o.d"
  "/root/repo/src/iosched/resource_policy.cc" "src/iosched/CMakeFiles/libra_iosched.dir/resource_policy.cc.o" "gcc" "src/iosched/CMakeFiles/libra_iosched.dir/resource_policy.cc.o.d"
  "/root/repo/src/iosched/resource_tracker.cc" "src/iosched/CMakeFiles/libra_iosched.dir/resource_tracker.cc.o" "gcc" "src/iosched/CMakeFiles/libra_iosched.dir/resource_tracker.cc.o.d"
  "/root/repo/src/iosched/scheduler.cc" "src/iosched/CMakeFiles/libra_iosched.dir/scheduler.cc.o" "gcc" "src/iosched/CMakeFiles/libra_iosched.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/libra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/libra_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
