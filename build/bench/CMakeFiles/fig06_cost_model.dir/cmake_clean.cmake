file(REMOVE_RECURSE
  "CMakeFiles/fig06_cost_model.dir/fig06_cost_model.cc.o"
  "CMakeFiles/fig06_cost_model.dir/fig06_cost_model.cc.o.d"
  "fig06_cost_model"
  "fig06_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
