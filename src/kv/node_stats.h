// Whole-node observability snapshot (StorageNode::Snapshot()).
//
// One struct gathers every layer's view at an instant of simulated time:
// device counters, capacity model state, per-tenant app-request latency
// histograms (protocol layer), IO lifecycle histograms per (app request,
// internal op) class (scheduler), LSM background-work accounting, and the
// resource policy's provisioning audit trail. NodeStatsToJson renders it as
// a single JSON document — the payload behind every bench binary's
// --stats-json flag, with a schema locked down by
// tests/kv/node_stats_json_test.cc.

#ifndef LIBRA_SRC_KV_NODE_STATS_H_
#define LIBRA_SRC_KV_NODE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/iosched/io_tag.h"
#include "src/iosched/resource_policy.h"
#include "src/lsm/db.h"
#include "src/obs/audit.h"
#include "src/obs/conformance.h"
#include "src/obs/histogram.h"
#include "src/obs/io_stats.h"
#include "src/obs/sla.h"
#include "src/ssd/device.h"

namespace libra::kv {

// One (app request, internal op) IO class with activity.
struct IoClassSnapshot {
  iosched::AppRequest app = iosched::AppRequest::kNone;
  iosched::InternalOp internal = iosched::InternalOp::kNone;
  obs::IoClassStats stats;
};

// Observed-vs-declared attribution matrix for one tenant (tracing on).
struct AttributionSnapshot {
  bool observed = false;  // estimator has data for this tenant
  obs::AttributionMatrix matrix;
  obs::DeclaredAttribution declared;
  obs::ConformanceReport report;  // valid when observed && declared
  bool conformant = true;
  double tolerance = 0.0;
};

// SLA conformance for one tenant (from the policy's SlaMonitor).
struct SlaSnapshot {
  bool tracked = false;
  obs::SlaMonitor::TenantSla sla;
};

struct TenantSnapshot {
  iosched::TenantId tenant = iosched::kInvalidTenant;
  iosched::Reservation reservation;
  double allocation_vops = 0.0;
  // End-to-end app-request latency (protocol layer; includes cache hits).
  obs::LatencyHistogram get_latency;
  obs::LatencyHistogram put_latency;
  obs::LatencyHistogram scan_latency;
  // The tenant's LSM compaction policy (0 = leveled, 1 = size-tiered).
  uint8_t compaction_policy = 0;
  // Scheduler lifecycle rollup across all classes, plus the breakdown.
  obs::IoClassStats io_total;
  std::vector<IoClassSnapshot> io_classes;  // only classes with ops > 0
  lsm::LsmStats lsm;
  AttributionSnapshot attribution;
  SlaSnapshot sla;
};

// Protocol-layer object (LRU) cache counters. `enabled` is false when the
// node runs cache-less (the paper's disk-bound configuration); the counters
// are then all zero.
struct ObjectCacheSnapshot {
  bool enabled = false;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t entries = 0;
};

// Node-shared SSTable BlockCache rollup (all tenants, all block kinds).
// `enabled` is false when partitions run per-DB caches or cache-less; the
// per-tenant breakdown lives in each TenantSnapshot's lsm stats.
struct BlockCacheSnapshot {
  bool enabled = false;
  uint64_t capacity_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t entries = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// IO lifecycle trace-ring counters (scheduler's TraceRing; all zero when
// trace_capacity is 0). A nonzero `dropped` means the ring wrapped.
struct TraceRingSnapshot {
  bool enabled = false;
  uint64_t capacity = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
};

// Causal span collector counters (scheduler's SpanCollector).
struct SpanCollectorSnapshot {
  bool enabled = false;
  uint64_t capacity = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t minted_traces = 0;
  uint64_t sampled_out = 0;
  uint32_t sample_every = 1;
};

// Replication role and traffic counters for this node (filled by the
// cluster layer after StorageNode::Snapshot; all defaults for a standalone
// node). `enabled` is true when the cluster runs with RF > 1.
struct ReplicationSnapshot {
  bool enabled = false;
  bool alive = true;     // false between CrashNode and RestartNode
  bool syncing = false;  // restarted; catch-up copy streams still running
  int leader_slots = 0;    // (tenant, slot) pairs this node leads
  int follower_slots = 0;  // (tenant, slot) pairs this node follows
  uint64_t fanout_puts = 0;   // replica writes forwarded to this node
  uint64_t fanout_bytes = 0;  // payload bytes of those forwarded writes
  uint64_t failover_gets = 0;  // GETs this node served for a down leader
  uint64_t catchup_keys = 0;   // keys copied INTO this node by catch-up
  uint64_t catchup_bytes = 0;  // value bytes of those copied keys
  int catchup_lag_slots = 0;   // slots still awaiting catch-up (0 if synced)
};

// Crash/recovery accounting for this node (filled by StorageNode).
struct RecoverySnapshot {
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t wal_files_replayed = 0;  // across all restarts
  uint64_t replay_records = 0;
  uint64_t replay_bytes = 0;
  // Cumulative VOPs consumed by the re-replication copy stream (the
  // InternalOp::kReplicate class, reads + writes, summed over tenants) —
  // recovery work priced in the same currency as everything else.
  double rereplication_vops = 0.0;
};

struct NodeStats {
  int64_t time_ns = 0;
  ssd::DeviceStats device;
  double capacity_floor_vops = 0.0;
  double capacity_estimate_vops = 0.0;
  uint64_t scheduler_rounds = 0;
  TraceRingSnapshot trace_ring;
  SpanCollectorSnapshot spans;
  ObjectCacheSnapshot object_cache;
  BlockCacheSnapshot block_cache;
  // GETs served by riding another request's in-flight lookup (read
  // coalescing; 0 unless NodeOptions.enable_read_coalescing).
  uint64_t coalesced_gets = 0;
  ReplicationSnapshot replication;
  RecoverySnapshot recovery;
  std::vector<TenantSnapshot> tenants;
  std::vector<obs::AuditRecord> audit;  // the policy's retained records
};

// Renders the snapshot as one JSON document (schema documented in
// DESIGN.md "Observability"; validated by tests/kv/node_stats_json_test.cc).
std::string NodeStatsToJson(const NodeStats& stats);

}  // namespace libra::kv

#endif  // LIBRA_SRC_KV_NODE_STATS_H_
