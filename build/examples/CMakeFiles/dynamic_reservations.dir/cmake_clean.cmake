file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reservations.dir/dynamic_reservations.cpp.o"
  "CMakeFiles/dynamic_reservations.dir/dynamic_reservations.cpp.o.d"
  "dynamic_reservations"
  "dynamic_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
