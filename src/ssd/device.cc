#include "src/ssd/device.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace libra::ssd {

SsdDevice::SsdDevice(sim::EventLoop& loop, DeviceProfile profile,
                     DeviceOptions options)
    : loop_(loop),
      profile_(std::move(profile)),
      options_(options),
      ftl_(profile_),
      die_free_at_(profile_.num_dies, 0),
      die_last_type_(profile_.num_dies, IoType::kRead),
      fault_rng_(options.fault_seed) {
  stream_ends_.fill(UINT64_MAX);
  qd_start_time_ = loop_.Now();
  qd_last_change_ = qd_start_time_;
}

void SsdDevice::UpdateInflight(int delta) {
  const SimTime now = loop_.Now();
  qd_integral_ += static_cast<double>(inflight_) *
                  static_cast<double>(now - qd_last_change_);
  qd_last_change_ = now;
  inflight_ += delta;
}

SsdDevice::PageSpan SsdDevice::SpanOf(const IoRequest& req) const {
  assert(req.size > 0);
  const uint64_t first = req.offset / profile_.page_bytes;
  const uint64_t last = (req.offset + req.size - 1) / profile_.page_bytes;
  return PageSpan{first, static_cast<uint32_t>(last - first + 1)};
}

bool SsdDevice::DetectSequential(const IoRequest& req) {
  bool seq = false;
  if (options_.enable_seq_detection) {
    for (uint64_t end : stream_ends_) {
      if (end == req.offset && end != UINT64_MAX) {
        seq = true;
        break;
      }
    }
  }
  stream_ends_[stream_cursor_] = req.offset + req.size;
  stream_cursor_ = (stream_cursor_ + 1) % kMaxStreams;
  return seq;
}

SimTime SsdDevice::OccupyDie(int die, IoType type, SimDuration busy,
                             SimTime earliest) {
  SimTime start = std::max(earliest, die_free_at_[die]);
  if (options_.enable_rw_switch_penalty && die_last_type_[die] != type) {
    start += profile_.rw_switch_penalty_ns;
  }
  die_last_type_[die] = type;
  die_free_at_[die] = start + busy;
  return die_free_at_[die];
}

double SsdDevice::NextFaultUniform() {
  // splitmix64 step; top 53 bits to a uniform in [0, 1).
  fault_rng_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = fault_rng_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void SsdDevice::InjectGcStall(SimDuration stall) {
  if (stall <= 0) {
    return;
  }
  const SimTime now = loop_.Now();
  for (int d = 0; d < profile_.num_dies; ++d) {
    die_free_at_[d] = std::max(die_free_at_[d], now) + stall;
  }
  ++gc_stalls_injected_;
}

SimDuration SsdDevice::GcPageCost() const {
  // Internal copyback: read + program of one page with command latencies
  // partially pipelined (25% of the host-visible command cost).
  const double bytes = static_cast<double>(profile_.page_bytes);
  const SimDuration transfer =
      static_cast<SimDuration>(bytes / profile_.die_read_bw * 1e9) +
      static_cast<SimDuration>(bytes / profile_.die_write_bw * 1e9);
  return transfer + (profile_.die_read_latency_ns + profile_.die_write_latency_ns) / 4;
}

void SsdDevice::Submit(const IoRequest& req, CompletionFn done) {
  assert(req.size > 0);
  const PageSpan span = SpanOf(req);
  const bool seq = DetectSequential(req);

  UpdateInflight(+1);

  // Controller admission.
  const SimTime t_submit = loop_.Now();
  const SimDuration ctrl_cost =
      (req.type == IoType::kRead ? profile_.ctrl_read_op_ns
                                 : profile_.ctrl_write_op_ns) +
      static_cast<SimDuration>(span.npages) * profile_.ctrl_page_ns;
  const SimTime ctrl_start = std::max(t_submit, ctrl_free_at_);
  ctrl_free_at_ = ctrl_start + ctrl_cost;
  const SimTime ctrl_done = ctrl_free_at_;

  SimTime completion = ctrl_done;

  if (req.type == IoType::kRead) {
    // Dies: chunked over the stripes the extent covers.
    const uint64_t stripes =
        (span.npages + profile_.stripe_pages - 1) / profile_.stripe_pages;
    const int d_used = static_cast<int>(
        std::min<uint64_t>(stripes, static_cast<uint64_t>(profile_.num_dies)));
    const int start_die = static_cast<int>(
        (span.first_page / profile_.stripe_pages) %
        static_cast<uint64_t>(profile_.num_dies));
    const double chunk_bytes =
        static_cast<double>(req.size) / static_cast<double>(d_used);
    const SimDuration die_busy =
        static_cast<SimDuration>(
            static_cast<double>(profile_.die_read_latency_ns) *
            (seq ? profile_.seq_read_latency_factor : 1.0)) +
        static_cast<SimDuration>(chunk_bytes / profile_.die_read_bw * 1e9);
    SimTime dies_done = ctrl_done;
    for (int i = 0; i < d_used; ++i) {
      const int die = (start_die + i) % profile_.num_dies;
      dies_done = std::max(
          dies_done, OccupyDie(die, IoType::kRead, die_busy, ctrl_done));
    }
    // Latent media error: the checksum on one stripe fails and the die
    // re-reads it (retry voltage pass). The fallback always returns good
    // data; the fault surfaces purely as extra die occupancy and latency.
    if (options_.latent_read_error_rate > 0.0 &&
        NextFaultUniform() < options_.latent_read_error_rate) {
      dies_done = std::max(
          dies_done, OccupyDie(start_die, IoType::kRead, die_busy, dies_done));
      ++latent_read_errors_;
    }
    // Bus capacity is reserved in submission order at admission time (the
    // transfer physically happens after the die reads, but reserving it at
    // dies_done would let one slow op's die latency convoy every later op's
    // bus slot). The op completes once both dies and its bus share are done.
    const SimTime bus_start = std::max(ctrl_done, bus_free_at_);
    const SimDuration bus_busy =
        profile_.bus_op_ns +
        static_cast<SimDuration>(static_cast<double>(req.size) / profile_.bus_bw * 1e9);
    bus_free_at_ = bus_start + bus_busy;
    completion = std::max(dies_done, bus_free_at_);
  } else {
    // Bus transfer of the data from the host, then NAND programs.
    const SimTime bus_start = std::max(ctrl_done, bus_free_at_);
    const SimDuration bus_busy =
        profile_.bus_op_ns +
        static_cast<SimDuration>(static_cast<double>(req.size) / profile_.bus_bw * 1e9);
    bus_free_at_ = bus_start + bus_busy;
    const SimTime data_ready = bus_free_at_;

    // Firmware programs whichever dies are available first: rank dies by
    // earliest availability so placement fills idle dies (the behavior the
    // calibration curves price in for every workload alike).
    std::vector<int> die_order(profile_.num_dies);
    for (int d = 0; d < profile_.num_dies; ++d) {
      die_order[d] = d;
    }
    std::sort(die_order.begin(), die_order.end(), [this](int a, int b) {
      if (die_free_at_[a] != die_free_at_[b]) {
        return die_free_at_[a] < die_free_at_[b];
      }
      return a < b;
    });
    FtlWriteResult placement =
        ftl_.Write(span.first_page, span.npages, &die_order);
    SimTime dies_done = data_ready;
    for (const DiePlacement& p : placement.placements) {
      const SimDuration die_busy =
          static_cast<SimDuration>(
              static_cast<double>(profile_.die_write_latency_ns) *
              (seq ? profile_.seq_write_latency_factor : 1.0)) +
          static_cast<SimDuration>(static_cast<double>(p.pages) *
                                   profile_.page_bytes / profile_.die_write_bw * 1e9);
      dies_done = std::max(
          dies_done, OccupyDie(p.die, IoType::kWrite, die_busy, data_ready));
    }
    // Durable once every program completes (O_SYNC discipline).
    completion = dies_done;

    // GC runs behind the host write on the affected dies.
    if (options_.enable_gc) {
      const SimDuration page_cost = GcPageCost();
      for (const GcWork& gc : placement.gc) {
        const SimDuration gc_busy =
            static_cast<SimDuration>(gc.pages_moved) * page_cost +
            static_cast<SimDuration>(gc.erases) * profile_.erase_ns;
        die_free_at_[gc.die] += gc_busy;
      }
    }
  }

  assert(completion >= t_submit);
  const uint32_t idx = AllocPending();
  PendingIo& pending = pending_[idx];
  pending.done = std::move(done);
  pending.type = req.type;
  pending.size = req.size;
  loop_.ScheduleAt(completion, [this, idx] { CompleteIo(idx); });
}

uint32_t SsdDevice::AllocPending() {
  if (pending_free_ != kNilPending) {
    const uint32_t idx = pending_free_;
    pending_free_ = pending_[idx].next_free;
    return idx;
  }
  pending_.emplace_back();
  return static_cast<uint32_t>(pending_.size() - 1);
}

void SsdDevice::CompleteIo(uint32_t index) {
  UpdateInflight(-1);
  // Move the callback out before recycling: it may submit a new IO and
  // reuse (or grow) the pending table.
  CompletionFn done = std::move(pending_[index].done);
  if (pending_[index].type == IoType::kRead) {
    ++reads_completed_;
    read_bytes_ += pending_[index].size;
  } else {
    ++writes_completed_;
    write_bytes_ += pending_[index].size;
  }
  pending_[index].next_free = pending_free_;
  pending_free_ = index;
  done();
}

sim::Task<void> SsdDevice::SubmitAwait(IoRequest req) {
  sim::OneShot<bool> completion(loop_);
  Submit(req, [&completion] { completion.Set(true); });
  co_await completion.Wait();
}

void SsdDevice::Trim(uint64_t offset, uint32_t size) {
  if (size == 0) {
    return;
  }
  // Only whole pages fully covered by the extent are reclaimed.
  const uint64_t first = (offset + profile_.page_bytes - 1) / profile_.page_bytes;
  const uint64_t end = (offset + size) / profile_.page_bytes;
  if (end > first) {
    ftl_.Trim(first, static_cast<uint32_t>(end - first));
  }
}

void SsdDevice::Prefill(uint64_t bytes) {
  const uint64_t pages = bytes / profile_.page_bytes;
  // Large sequential chunks keep preconditioning write-amp free.
  const uint32_t chunk = profile_.pages_per_block;
  for (uint64_t p = 0; p < pages; p += chunk) {
    const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(chunk, pages - p));
    ftl_.Write(p, n);
  }
}

DeviceStats SsdDevice::stats() const {
  DeviceStats s;
  s.reads_completed = reads_completed_;
  s.writes_completed = writes_completed_;
  s.read_bytes = read_bytes_;
  s.write_bytes = write_bytes_;
  s.gc_pages_moved = ftl_.gc_pages_moved();
  s.blocks_erased = ftl_.blocks_erased();
  s.write_amp = ftl_.write_amp();
  s.gc_stalls_injected = gc_stalls_injected_;
  s.latent_read_errors = latent_read_errors_;
  const SimTime now = loop_.Now();
  const double elapsed = static_cast<double>(now - qd_start_time_);
  if (elapsed > 0.0) {
    const double integral =
        qd_integral_ + static_cast<double>(inflight_) *
                           static_cast<double>(now - qd_last_change_);
    s.avg_queue_depth = integral / elapsed;
  }
  return s;
}

}  // namespace libra::ssd
