// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values (virtual-time nanoseconds, but any non-negative integer works) are
// binned into power-of-two octaves, each subdivided into 2^kSubBucketBits
// linear sub-buckets, so relative error is bounded by 1/2^kSubBucketBits
// (~3%) across the whole range while values below 2*kSubBuckets are recorded
// exactly. Storage is one fixed-size count array — Record() is a handful of
// ALU ops and never allocates, which is what lets the IO scheduler keep a
// histogram per (tenant, app request, internal op) on its hot path without
// perturbing the benchmark shapes it exists to measure.
//
// Percentile queries scan the cumulative counts and report the bucket's
// upper bound, clamped into [min, max] so Percentile(0) and Percentile(1)
// are exact. Histograms merge by bucket-wise addition (same geometry by
// construction), which is how per-class histograms fold into per-tenant
// aggregates for snapshots.

#ifndef LIBRA_SRC_OBS_HISTOGRAM_H_
#define LIBRA_SRC_OBS_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace libra::obs {

class LatencyHistogram {
 public:
  // 32 sub-buckets per octave: <= 3.2% relative bucket width.
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  // Largest bucket shift: values up to kMaxValue land in a real bucket;
  // larger values saturate into the top bucket (max() stays exact).
  static constexpr int kMaxShift = 35;
  static constexpr uint64_t kMaxValue =
      (2 * kSubBuckets << kMaxShift) - 1;  // ~2^41 ns =~ 36 simulated minutes
  static constexpr int kNumSlots =
      static_cast<int>(kSubBuckets) * (kMaxShift + 2);

  // Slot index for a value (saturating at the top bucket).
  static int SlotFor(uint64_t value);
  // Smallest value mapping to `slot`.
  static uint64_t SlotLowerBound(int slot);
  // Number of distinct values mapping to `slot` (1 below 2*kSubBuckets).
  static uint64_t SlotWidth(int slot);

  void Record(uint64_t value) { RecordN(value, 1); }
  void RecordN(uint64_t value, uint64_t n);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Value at quantile p in [0, 1]: upper bound of the bucket holding the
  // ceil(p * count)-th sample, clamped to [min, max]. 0 when empty.
  // Monotonic in p by construction.
  uint64_t Percentile(double p) const;

  void Merge(const LatencyHistogram& other);
  void Reset();

  // Iterates non-empty buckets in value order: fn(lower_bound, width, count).
  template <typename Fn>
  void ForEachBucket(Fn&& fn) const {
    for (int s = 0; s < kNumSlots; ++s) {
      if (counts_[s] != 0) {
        fn(SlotLowerBound(s), SlotWidth(s), counts_[s]);
      }
    }
  }

 private:
  // 32-bit slot counters keep the array at ~4.6KB (vs ~9.5KB with 64-bit),
  // which matters because the scheduler walks one histogram pair per tenant
  // on every completion — the smaller footprint roughly halves the cache/TLB
  // pages that path touches. Slots saturate at UINT32_MAX (~4.3e9 samples in
  // one bucket; unreachable in practice) while count_/sum_ stay exact.
  // Metadata first: a Record() touches this header plus one slot, and with
  // the header at offset 0 both usually land in the same page.
  uint64_t count_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  double sum_ = 0.0;
  std::array<uint32_t, kNumSlots> counts_{};
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_HISTOGRAM_H_
