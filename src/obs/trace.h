// Bounded IO lifecycle event trace.
//
// The scheduler (when tracing is enabled) records one event per lifecycle
// transition — submit, first dispatch, completion — into a fixed-capacity
// ring: the newest events win, recording is a cursor bump plus a POD store
// (no allocation), and an idle trace costs one branch per transition.
// DumpJsonl() renders the surviving events oldest-first as one JSON object
// per line, the same schema DESIGN.md documents:
//
//   {"t":<ns>,"ev":"submit|dispatch|complete","tenant":N,"app":"GET",
//    "op":"direct","io":"R|W","offset":N,"size":N,
//    "queue_wait_ns":N,"service_ns":N,"chunks":N}
//
// queue_wait_ns/service_ns/chunks are meaningful on "complete" events only
// (zero otherwise); queue wait is submit -> first dispatch (DRR throttling
// delay), service is first dispatch -> completion (device time).

#ifndef LIBRA_SRC_OBS_TRACE_H_
#define LIBRA_SRC_OBS_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace libra::obs {

enum class TraceEventType : uint8_t {
  kSubmit = 0,
  kDispatch = 1,
  kComplete = 2,
};

struct TraceEvent {
  int64_t time_ns = 0;
  TraceEventType type = TraceEventType::kSubmit;
  uint32_t tenant = 0;
  uint8_t app = 0;       // iosched::AppRequest
  uint8_t internal = 0;  // iosched::InternalOp
  uint8_t is_write = 0;
  uint64_t offset = 0;
  uint32_t size = 0;
  uint32_t chunks = 0;        // complete only
  uint64_t queue_wait_ns = 0; // complete only
  uint64_t service_ns = 0;    // complete only
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Record(const TraceEvent& ev);

  size_t capacity() const { return ring_.size(); }
  // Events currently retained (<= capacity).
  size_t size() const { return std::min(total_, ring_.size()); }
  // Events recorded since construction (dropped ones included).
  uint64_t total_recorded() const { return total_; }
  // Events evicted by ring wraparound — the ring caps loudly, not silently:
  // a nonzero count in the stats JSON means the capacity was too small for
  // the run.
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  // Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  // One JSON object per line, oldest first.
  std::string DumpJsonl() const;

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;    // next write position
  uint64_t total_ = 0;
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_TRACE_H_
