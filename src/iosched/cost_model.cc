#include "src/iosched/cost_model.h"

#include <cassert>
#include <cmath>

namespace libra::iosched {
namespace {

// Least-squares fit of per-op time y = t0 + inv_bw * s over the calibration
// points (s in bytes, y in seconds), with both coefficients clamped
// non-negative. With `relative_error` the residuals are weighted by 1/y^2
// (minimizing relative error), which keeps the fit honest at small sizes
// where absolute times are tiny; without it, the largest sizes dominate —
// which is exactly the naive linear model's failure mode.
void FitServiceTime(const std::vector<uint32_t>& sizes_kb,
                    const std::vector<double>& iops, bool relative_error,
                    double* t0, double* inv_bw) {
  double sw = 0.0, sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (size_t i = 0; i < sizes_kb.size(); ++i) {
    const double x = static_cast<double>(sizes_kb[i]) * 1024.0;
    const double y = 1.0 / iops[i];
    const double w = relative_error ? 1.0 / (y * y) : 1.0;
    sw += w;
    sum_x += w * x;
    sum_y += w * y;
    sum_xx += w * x * x;
    sum_xy += w * x * y;
  }
  const double denom = sw * sum_xx - sum_x * sum_x;
  double beta = denom != 0.0 ? (sw * sum_xy - sum_x * sum_y) / denom : 0.0;
  double alpha = (sum_y - beta * sum_x) / sw;
  if (beta < 0.0) {
    beta = 0.0;
    alpha = sum_y / sw;
  }
  if (alpha < 0.0) {
    alpha = 0.0;
  }
  *t0 = alpha;
  *inv_bw = beta;
}

}  // namespace

ExactCostModel::ExactCostModel(ssd::CalibrationTable table)
    : table_(std::move(table)), max_iops_(table_.max_iops()) {
  assert(!table_.sizes_kb.empty());
  assert(max_iops_ > 0.0);
}

double ExactCostModel::Cost(ssd::IoType type, uint32_t size_bytes) const {
  const double iops = type == ssd::IoType::kRead
                          ? table_.RandReadIops(size_bytes)
                          : table_.RandWriteIops(size_bytes);
  return max_iops_ / iops;
}

FittedCostModel::FittedCostModel(const ssd::CalibrationTable& table)
    : max_iops_(table.max_iops()) {
  FitServiceTime(table.sizes_kb, table.rand_read_iops, /*relative_error=*/true,
                 &read_t0_, &read_inv_bw_);
  FitServiceTime(table.sizes_kb, table.rand_write_iops, /*relative_error=*/true,
                 &write_t0_, &write_inv_bw_);
}

double FittedCostModel::Cost(ssd::IoType type, uint32_t size_bytes) const {
  const double s = static_cast<double>(size_bytes);
  const double t = type == ssd::IoType::kRead
                       ? read_t0_ + read_inv_bw_ * s
                       : write_t0_ + write_inv_bw_ * s;
  return max_iops_ * t;  // Max-IOP / (1/t)
}

ConstantCpbModel::ConstantCpbModel(const ssd::CalibrationTable& table)
    : max_iops_(table.max_iops()) {
  // Anchor: the exact VOP cost at 1KB, charged per KB at every size.
  read_cpb_ = max_iops_ / table.RandReadIops(1024);
  write_cpb_ = max_iops_ / table.RandWriteIops(1024);
}

double ConstantCpbModel::Cost(ssd::IoType type, uint32_t size_bytes) const {
  const double kb = std::max(1.0, static_cast<double>(size_bytes) / 1024.0);
  return (type == ssd::IoType::kRead ? read_cpb_ : write_cpb_) * kb;
}

LinearCostModel::LinearCostModel(const ssd::CalibrationTable& table)
    : max_iops_(table.max_iops()) {
  // Naive (unweighted) least-squares over the service-time curve: the
  // large-size points dominate the fit, so the model hews to the exact
  // curve at the bandwidth-bound end and undercuts it for small and medium
  // ops — the paper's observation about the mClock/FlashFQ family.
  double t0 = 0.0;
  double inv_bw = 0.0;
  FitServiceTime(table.sizes_kb, table.rand_read_iops, /*relative_error=*/false,
                 &t0, &inv_bw);
  read_alpha_ = max_iops_ * t0;
  read_beta_ = max_iops_ * inv_bw * 1024.0;  // per KB
  FitServiceTime(table.sizes_kb, table.rand_write_iops,
                 /*relative_error=*/false, &t0, &inv_bw);
  write_alpha_ = max_iops_ * t0;
  write_beta_ = max_iops_ * inv_bw * 1024.0;
}

double LinearCostModel::Cost(ssd::IoType type, uint32_t size_bytes) const {
  const double kb = static_cast<double>(size_bytes) / 1024.0;
  const double c = type == ssd::IoType::kRead ? read_alpha_ + read_beta_ * kb
                                              : write_alpha_ + write_beta_ * kb;
  return std::max(c, 1e-9);
}

FixedCostModel::FixedCostModel(const ssd::CalibrationTable& table)
    : max_iops_(table.max_iops()) {
  read_cost_ = max_iops_ / table.RandReadIops(1024);
  write_cost_ = max_iops_ / table.RandWriteIops(1024);
}

double FixedCostModel::Cost(ssd::IoType type, uint32_t size_bytes) const {
  return type == ssd::IoType::kRead ? read_cost_ : write_cost_;
}

std::unique_ptr<CostModel> MakeCostModel(std::string_view name,
                                         const ssd::CalibrationTable& table) {
  if (name == "exact") {
    return std::make_unique<ExactCostModel>(table);
  }
  if (name == "fitted") {
    return std::make_unique<FittedCostModel>(table);
  }
  if (name == "constant") {
    return std::make_unique<ConstantCpbModel>(table);
  }
  if (name == "linear") {
    return std::make_unique<LinearCostModel>(table);
  }
  if (name == "fixed") {
    return std::make_unique<FixedCostModel>(table);
  }
  return nullptr;
}

}  // namespace libra::iosched
