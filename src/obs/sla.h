// SLA conformance monitoring: achieved-vs-reserved VOPs per audit interval.
//
// The resource policy prices each tenant's reservation into a required
// VOP/s rate once per interval; this monitor records, for the same
// interval, the VOP/s the tenant actually consumed and whether that
// constitutes an SLA violation: achieved below (1 - tolerance) x reserved
// *while the tenant had pending demand* (an idle tenant under-consuming is
// not a violation — the guarantee is conditional on offered load, paper
// §4.3). Violation rates feed the audit log and node/cluster stats JSON,
// and are the signal elastic-SLA (IOTune-style) and placement policies
// consume.
//
// Plain scalars only (no iosched includes): obs stays the bottom layer and
// the policy flattens its structs in, as with AuditRecord.

#ifndef LIBRA_SRC_OBS_SLA_H_
#define LIBRA_SRC_OBS_SLA_H_

#include <cstdint>
#include <map>
#include <vector>

namespace libra::obs {

class SlaMonitor {
 public:
  struct TenantSla {
    uint64_t intervals = 0;   // intervals with a nonzero reservation
    uint64_t violations = 0;
    int64_t last_time_ns = 0;
    double last_reserved_vops = 0.0;  // VOP/s the reservation priced to
    double last_achieved_vops = 0.0;  // VOP/s actually consumed
    bool last_violated = false;

    double violation_rate() const {
      return intervals > 0
                 ? static_cast<double>(violations) / static_cast<double>(intervals)
                 : 0.0;
    }
  };

  // One interval observation; returns whether it violated. `demand_pending`
  // is whether the tenant had queued or in-flight work at interval end.
  bool RecordInterval(uint32_t tenant, int64_t time_ns, double reserved_vops,
                      double achieved_vops, bool demand_pending,
                      double tolerance) {
    TenantSla& s = tenants_[tenant];
    const bool reserved = reserved_vops > 0.0;
    const bool violated = reserved && demand_pending &&
                          achieved_vops < (1.0 - tolerance) * reserved_vops;
    if (reserved) {
      ++s.intervals;
    }
    if (violated) {
      ++s.violations;
    }
    s.last_time_ns = time_ns;
    s.last_reserved_vops = reserved_vops;
    s.last_achieved_vops = achieved_vops;
    s.last_violated = violated;
    return violated;
  }

  // nullptr until the tenant has recorded an interval.
  const TenantSla* Of(uint32_t tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? nullptr : &it->second;
  }

  std::vector<uint32_t> tenants() const {
    std::vector<uint32_t> out;
    out.reserve(tenants_.size());
    for (const auto& [t, s] : tenants_) {
      out.push_back(t);
    }
    return out;
  }

 private:
  // std::map: deterministic iteration order for JSON export.
  std::map<uint32_t, TenantSla> tenants_;
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_SLA_H_
