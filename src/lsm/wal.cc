#include "src/lsm/wal.h"

namespace libra::lsm {

WriteAheadLog::WriteAheadLog(fs::SimFs& fs, std::string filename)
    : fs_(fs), filename_(std::move(filename)) {}

Status WriteAheadLog::Open() {
  if (fs_.Exists(filename_)) {
    auto open = fs_.Open(filename_);
    if (!open.ok()) {
      return open.status();
    }
    file_ = *open;
    return Status::Ok();
  }
  auto created = fs_.Create(filename_);
  if (!created.ok()) {
    return created.status();
  }
  file_ = *created;
  return Status::Ok();
}

sim::Task<Status> WriteAheadLog::Append(const iosched::IoTag& tag,
                                        std::string_view key,
                                        SequenceNumber seq, ValueType type,
                                        std::string_view value) {
  std::string payload;
  payload.reserve(key.size() + value.size() + 32);
  EncodeRecord(&payload, key, seq, type, value);
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32(payload));
  frame += payload;
  co_return co_await fs_.Append(file_, tag, frame);
}

Status WriteAheadLog::Replay(
    const std::function<void(const Record&)>& fn) const {
  if (file_ == fs::kInvalidFile) {
    return Status::FailedPrecondition("log not open");
  }
  // Recovery happens once per DB open, before the node serves traffic, so
  // it reads the raw contents host-side instead of charging a tenant.
  std::string data;
  if (Status s = fs_.PeekContents(file_, &data); !s.ok()) {
    return s;
  }
  size_t offset = 0;
  while (offset + 8 <= data.size()) {
    const uint32_t len = GetFixed32(data, offset);
    const uint32_t crc = GetFixed32(data, offset + 4);
    if (offset + 8 + len > data.size()) {
      break;  // torn tail
    }
    const std::string_view payload(data.data() + offset + 8, len);
    if (Crc32(payload) != crc) {
      break;  // corruption: stop replay
    }
    size_t rec_off = 0;
    Record rec;
    if (!DecodeRecord(payload, &rec_off, &rec)) {
      break;
    }
    fn(rec);
    offset += 8 + len;
  }
  return Status::Ok();
}

Status WriteAheadLog::Remove() {
  file_ = fs::kInvalidFile;
  return fs_.Delete(filename_);
}

uint64_t WriteAheadLog::SizeBytes() const {
  return file_ == fs::kInvalidFile ? 0 : fs_.SizeOf(file_);
}

}  // namespace libra::lsm
