# Empty dependencies file for libra_kv.
# This may be replaced when dependencies are built.
