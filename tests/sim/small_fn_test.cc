#include "src/sim/small_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace libra::sim {
namespace {

TEST(SmallFnTest, DefaultConstructedIsEmpty) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, SmallCaptureStoredInline) {
  int x = 0;
  SmallFn fn([&x] { ++x; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(x, 2);
}

TEST(SmallFnTest, CaptureUpToInlineLimitStaysInline) {
  struct Blob {
    char bytes[SmallFn::kInlineBytes - sizeof(int*)];
  };
  int hits = 0;
  int* counter = &hits;
  Blob blob{};
  blob.bytes[0] = 7;
  SmallFn fn([counter, blob] { *counter += blob.bytes[0]; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 7);
}

TEST(SmallFnTest, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[SmallFn::kInlineBytes + 1];
  };
  int hits = 0;
  int* counter = &hits;
  Big big{};
  big.bytes[0] = 3;
  SmallFn fn([counter, big] { *counter += big.bytes[0]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 3);
}

TEST(SmallFnTest, NonTriviallyCopyableCaptureWorks) {
  auto owned = std::make_shared<int>(5);
  std::weak_ptr<int> weak = owned;
  int got = 0;
  {
    SmallFn fn([owned, &got] { got = *owned; });
    owned.reset();
    EXPECT_FALSE(weak.expired());  // the closure keeps it alive
    fn();
    EXPECT_EQ(got, 5);
  }
  EXPECT_TRUE(weak.expired());  // destroyed with the SmallFn
}

TEST(SmallFnTest, MoveTransfersOwnership) {
  auto owned = std::make_shared<int>(9);
  std::weak_ptr<int> weak = owned;
  int got = 0;
  SmallFn a([owned, &got] { got = *owned; });
  owned.reset();
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(got, 9);
  b.Reset();
  EXPECT_TRUE(weak.expired());
}

TEST(SmallFnTest, MoveAssignReleasesPreviousTarget) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> weak_first = first;
  SmallFn a([first] { (void)first; });
  first.reset();
  SmallFn b([] {});
  a = std::move(b);
  EXPECT_TRUE(weak_first.expired());  // old closure destroyed on assignment
  EXPECT_TRUE(static_cast<bool>(a));
  a();
}

}  // namespace
}  // namespace libra::sim
