// End-to-end integration of the paper's headline property: tenants with
// app-request reservations, backlogged together on one node, each achieve
// their reserved normalized GET/PUT rates — across the full stack (LSM
// amplification -> tagged IO -> tracker profiles -> policy -> DRR
// scheduler -> simulated SSD).

#include <gtest/gtest.h>

#include <memory>

#include "src/iosched/capacity.h"
#include "src/kv/storage_node.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::kv {
namespace {

using iosched::AppRequest;
using iosched::Reservation;
using iosched::TenantId;

ssd::CalibrationTable IntegrationTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

TEST(ReservationIntegrationTest, ContendingTenantsMeetReservations) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = IntegrationTable();
  opt.prefill_bytes = 0;
  StorageNode node(loop, opt);

  // Tenant 1: GET-heavy small objects. Tenant 2: PUT-heavy large objects.
  ASSERT_TRUE(node.AddTenant(1, Reservation{}).ok());
  ASSERT_TRUE(node.AddTenant(2, Reservation{}).ok());

  workload::KvWorkloadSpec spec1;
  spec1.get_fraction = 0.9;
  spec1.get_size = {4096.0, 1024.0};
  spec1.put_size = {16384.0, 1024.0};
  spec1.live_bytes_target = 8 * kMiB;
  spec1.workers = 8;
  workload::KvTenantWorkload wl1(loop, node, 1, spec1, 51);

  workload::KvWorkloadSpec spec2;
  spec2.get_fraction = 0.1;
  spec2.get_size = {65536.0, 1024.0};
  spec2.put_size = {65536.0, 1024.0};
  spec2.live_bytes_target = 12 * kMiB;
  spec2.workers = 8;
  workload::KvTenantWorkload wl2(loop, node, 2, spec2, 52);

  {
    sim::TaskGroup preload(loop);
    preload.Spawn(wl1.Preload());
    preload.Spawn(wl2.Preload());
    loop.Run();
  }
  node.Start();

  const SimTime t0 = loop.Now();
  const SimTime t_reserve = t0 + 15 * kSecond;   // profiles built
  const SimTime t_measure = t_reserve + 5 * kSecond;
  const SimTime t_end = t_measure + 20 * kSecond;

  // After profiling, reserve ~35% of the floor for each tenant (safely
  // feasible; contention still forces the scheduler to arbitrate).
  Reservation res1;
  Reservation res2;
  loop.ScheduleAt(t_reserve, [&] {
    for (const TenantId t : {TenantId{1}, TenantId{2}}) {
      const double price_get =
          node.policy().ProfileOf(t, AppRequest::kGet).total();
      const double price_put =
          node.policy().ProfileOf(t, AppRequest::kPut).total();
      const double target = 0.35 * node.capacity().provisionable();
      const auto& spec = t == 1 ? spec1 : spec2;
      const double ratio = (spec.get_fraction * spec.get_size.mean_bytes) /
                           ((1.0 - spec.get_fraction) * spec.put_size.mean_bytes);
      const double v_put = target / (ratio * price_get + price_put);
      Reservation r{ratio * v_put, v_put};
      (t == 1 ? res1 : res2) = r;
      EXPECT_TRUE(node.UpdateReservation(t, r).ok());
    }
  });

  double g1 = 0.0, p1 = 0.0, g2 = 0.0, p2 = 0.0;
  loop.ScheduleAt(t_measure, [&] {
    g1 = node.tracker().NormalizedRequestsTotal(1, AppRequest::kGet);
    p1 = node.tracker().NormalizedRequestsTotal(1, AppRequest::kPut);
    g2 = node.tracker().NormalizedRequestsTotal(2, AppRequest::kGet);
    p2 = node.tracker().NormalizedRequestsTotal(2, AppRequest::kPut);
  });
  double g1e = 0.0, p1e = 0.0, g2e = 0.0, p2e = 0.0;
  loop.ScheduleAt(t_end, [&] {
    g1e = node.tracker().NormalizedRequestsTotal(1, AppRequest::kGet);
    p1e = node.tracker().NormalizedRequestsTotal(1, AppRequest::kPut);
    g2e = node.tracker().NormalizedRequestsTotal(2, AppRequest::kGet);
    p2e = node.tracker().NormalizedRequestsTotal(2, AppRequest::kPut);
  });

  {
    sim::TaskGroup group(loop);
    wl1.Start(group, t_end);
    wl2.Start(group, t_end);
    loop.RunUntil(t_end + kSecond);
    node.Stop();
    loop.Run();
  }

  const double secs = ToSeconds(t_end - t_measure);
  const double rate_g1 = (g1e - g1) / secs;
  const double rate_p1 = (p1e - p1) / secs;
  const double rate_g2 = (g2e - g2) / secs;
  const double rate_p2 = (p2e - p2) / secs;

  // Every reservation achieved within a 10% band.
  EXPECT_GE(rate_g1, 0.9 * res1.get_rps) << rate_g1 << " vs " << res1.get_rps;
  EXPECT_GE(rate_p1, 0.9 * res1.put_rps) << rate_p1 << " vs " << res1.put_rps;
  EXPECT_GE(rate_g2, 0.9 * res2.get_rps) << rate_g2 << " vs " << res2.get_rps;
  EXPECT_GE(rate_p2, 0.9 * res2.put_rps) << rate_p2 << " vs " << res2.put_rps;

  // Sanity: the reservations were non-trivial (at least hundreds of
  // normalized requests per second each).
  EXPECT_GT(res1.get_rps, 500.0);
  EXPECT_GT(res2.put_rps, 200.0);

  // The observability snapshot saw the same run: both tenants' GET and PUT
  // latency histograms are populated with sane percentiles, and the policy
  // left one audit record per provisioning interval.
  const NodeStats snap = node.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  for (const TenantSnapshot& t : snap.tenants) {
    SCOPED_TRACE(t.tenant);
    EXPECT_GT(t.get_latency.count(), 0u);
    EXPECT_GT(t.put_latency.count(), 0u);
    for (const obs::LatencyHistogram* h : {&t.get_latency, &t.put_latency}) {
      const uint64_t p50 = h->Percentile(0.5);
      const uint64_t p99 = h->Percentile(0.99);
      EXPECT_GT(p50, 0u);
      EXPECT_GE(p99, p50);
      EXPECT_LE(p99, static_cast<uint64_t>(t_end));  // bounded by the run
    }
    EXPECT_GT(t.io_total.ops, 0u);
  }
  ASSERT_FALSE(snap.audit.empty());
  EXPECT_GT(snap.audit.back().scale, 0.0);
  EXPECT_LE(snap.audit.back().scale, 1.0);
}

TEST(ReservationIntegrationTest, OverbookedReservationsAuditedAndScaled) {
  // Reservations far beyond the capacity floor: the policy must scale every
  // grant down proportionally and record the overbooking in the audit log.
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = IntegrationTable();
  opt.prefill_bytes = 0;
  StorageNode node(loop, opt);

  ASSERT_TRUE(node.AddTenant(1, Reservation{60000.0, 30000.0}).ok());
  ASSERT_TRUE(node.AddTenant(2, Reservation{30000.0, 60000.0}).ok());
  node.Start();
  loop.RunUntil(3 * kSecond);
  node.Stop();
  loop.Run();

  const auto& log = node.policy().audit_log();
  ASSERT_GT(log.records().size(), 1u);
  const obs::AuditRecord& rec = log.back();
  EXPECT_TRUE(rec.overbooked);
  EXPECT_GT(rec.total_required_vops, rec.capacity_floor_vops);
  EXPECT_GT(rec.scale, 0.0);
  EXPECT_LT(rec.scale, 1.0);
  // scale is exactly the proportional cut the policy applied.
  EXPECT_NEAR(rec.scale, rec.capacity_floor_vops / rec.total_required_vops,
              1e-9);
  ASSERT_EQ(rec.tenants.size(), 2u);
  double granted_total = 0.0;
  for (const obs::AuditTenantEntry& e : rec.tenants) {
    SCOPED_TRACE(e.tenant);
    EXPECT_GT(e.required_vops, 0.0);
    EXPECT_NEAR(e.granted_vops, e.required_vops * rec.scale,
                1e-9 * e.required_vops);
    EXPECT_LT(e.granted_vops, e.required_vops);
    granted_total += e.granted_vops;
    // The scheduler really received the scaled-down grant.
    EXPECT_NEAR(node.scheduler().Allocation(e.tenant), e.granted_vops,
                1e-9 * e.granted_vops);
  }
  // Grants sum to (at most) the floor — nothing over-promised.
  EXPECT_LE(granted_total, rec.capacity_floor_vops * (1.0 + 1e-9));
}

}  // namespace
}  // namespace libra::kv
