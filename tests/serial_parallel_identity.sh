#!/usr/bin/env bash
# Byte-identity harness for the parallel epoch engine.
#
# Runs each demo twice at the same RPC latency — --sim-threads=1 and
# --sim-threads=3 — and requires stdout, the stats JSON, and (where
# produced) the trace export to be byte-identical. Thread count may only
# change wall-clock time, never simulation output; wall-clock noise goes
# to stderr by convention, which is why stderr is captured but not diffed.
#
# Usage: serial_parallel_identity.sh <workdir> <cluster_demo> \
#            <failure_demo> <tracing_demo> <mega_demo> <scan_demo> \
#            <read_path_demo>

set -u

if [ $# -ne 7 ]; then
  echo "usage: $0 <workdir> <cluster_demo> <failure_demo> <tracing_demo> <mega_demo> <scan_demo> <read_path_demo>" >&2
  exit 2
fi

WORK=$1
CLUSTER_DEMO=$2
FAILURE_DEMO=$3
TRACING_DEMO=$4
MEGA_DEMO=$5
SCAN_DEMO=$6
READ_PATH_DEMO=$7

THREADS_A=1
THREADS_B=3
failures=0

# run_pair <name> <binary> [extra demo flags...]
# Runs the binary in per-thread-count scratch directories with identical
# relative artifact names (paths are echoed into stdout, so they must not
# differ between runs), then diffs every artifact.
run_pair() {
  local name=$1 bin=$2
  shift 2
  local extra=("$@")
  local artifacts=(stdout.txt stats.json)
  for flag in "${extra[@]}"; do
    case "$flag" in
      --trace-json=*) artifacts+=("${flag#--trace-json=}") ;;
    esac
  done

  for t in "$THREADS_A" "$THREADS_B"; do
    local dir="$WORK/$name.t$t"
    rm -rf "$dir"
    mkdir -p "$dir"
    (cd "$dir" &&
      "$bin" --sim-threads="$t" --rpc-latency-us=50 \
        --stats-json=stats.json "${extra[@]}" >stdout.txt 2>stderr.txt)
    local rc=$?
    if [ $rc -ne 0 ]; then
      echo "FAIL: $name --sim-threads=$t exited $rc" >&2
      sed 's/^/    /' "$dir/stderr.txt" >&2
      failures=$((failures + 1))
      return
    fi
  done

  local ok=1
  for f in "${artifacts[@]}"; do
    if ! diff -q "$WORK/$name.t$THREADS_A/$f" "$WORK/$name.t$THREADS_B/$f" \
        >/dev/null; then
      echo "FAIL: $name: $f differs between --sim-threads=$THREADS_A and =$THREADS_B" >&2
      diff "$WORK/$name.t$THREADS_A/$f" "$WORK/$name.t$THREADS_B/$f" | head -20 >&2
      failures=$((failures + 1))
      ok=0
    fi
  done
  if [ $ok -eq 1 ]; then
    echo "OK: $name identical across thread counts (${artifacts[*]})"
  fi
}

run_pair cluster "$CLUSTER_DEMO"
run_pair failure "$FAILURE_DEMO"
run_pair tracing "$TRACING_DEMO" --trace-json=trace.json
run_pair mega "$MEGA_DEMO" --nodes=8 --tenants=500 --rounds=2
run_pair scan "$SCAN_DEMO"
run_pair read_path "$READ_PATH_DEMO"

if [ "$failures" -ne 0 ]; then
  echo "$failures identity check(s) failed" >&2
  exit 1
fi
echo "all demos byte-identical across thread counts"
