#include "src/common/ewma.h"

#include <gtest/gtest.h>

namespace libra {
namespace {

TEST(EwmaTest, UninitializedReturnsFallback) {
  Ewma e;
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.Value(), 0.0);
  EXPECT_EQ(e.Value(5.0), 5.0);
}

TEST(EwmaTest, FirstObservationSeedsValue) {
  Ewma e(0.5);
  e.Observe(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.Value(), 10.0);
}

TEST(EwmaTest, BlendsTowardNewSamples) {
  Ewma e(0.5);
  e.Observe(0.0);
  e.Observe(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 5.0);
  e.Observe(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 7.5);
}

TEST(EwmaTest, AlphaOneTracksLatest) {
  Ewma e(1.0);
  e.Observe(3.0);
  e.Observe(-8.0);
  EXPECT_DOUBLE_EQ(e.Value(), -8.0);
}

TEST(EwmaTest, ConvergesToSteadyInput) {
  Ewma e(0.3);
  e.Observe(100.0);
  for (int i = 0; i < 50; ++i) {
    e.Observe(7.0);
  }
  EXPECT_NEAR(e.Value(), 7.0, 1e-4);
}

TEST(EwmaTest, ResetClearsState) {
  Ewma e;
  e.Observe(4.0);
  e.Reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.Value(9.0), 9.0);
}

}  // namespace
}  // namespace libra
