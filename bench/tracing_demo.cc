// Tracing demo: end-to-end causal spans plus the two online monitors.
//
// One storage node, two PUT-heavy tenants with small write buffers so
// flushes and compactions churn. A calibration simulation first measures
// each tenant's attribution matrix q̂^{a,i}; the main run then registers
// tenant 1 with that honest profile and tenant 2 with a deliberately
// dishonest one (its write amplification zeroed — PUTs claimed to cost
// only their direct WAL IO). The main run uses different workload seeds
// than calibration, so conformance is a real statistical check, and the
// demo verifies:
//   1. causality — at least one COMPACT device-IO span reaches a PUT
//      request span by walking parent edges and causal links backwards;
//   2. conformance — the honest tenant's observed matrix stays within 10%
//      of its declaration while the mis-declared tenant is flagged;
// and reports per-tenant SLA conformance from the policy's monitor.
// With --trace-json=PATH the spans are exported as Chrome trace_event JSON
// (loadable in ui.perfetto.dev); --trace-sample=1/N thins request traces.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/kv/node_stats.h"
#include "src/metrics/table.h"
#include "src/obs/span.h"
#include "src/workload/workload.h"

namespace libra::bench {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;
using iosched::TenantId;

constexpr TenantId kHonest = 1;
constexpr TenantId kMisdeclared = 2;

// A declaration copied from an observed matrix: the profile a tenant that
// measured its own workload would hand the provider.
obs::DeclaredAttribution DeclareFrom(const obs::AttributionMatrix& m) {
  obs::DeclaredAttribution d;
  d.declared = true;
  for (int a = 0; a < obs::kAttrApps; ++a) {
    for (int i = 0; i < obs::kAttrInternal; ++i) {
      d.at(a, i) = m.Q(a, i);
    }
  }
  return d;
}

// One simulated run: preload, then the closed-loop mix for `duration`.
// `declared` (when non-null) registers each tenant with its profile;
// `seed_base` varies the workload RNG between calibration and main run.
struct RunOutput {
  kv::NodeStats stats;
  std::vector<obs::SpanRecord> spans;
  std::map<TenantId, obs::AttributionMatrix> observed;
};

RunOutput RunOnce(const BenchArgs& args, SimDuration duration,
                  uint64_t seed_base,
                  const std::map<TenantId, obs::DeclaredAttribution>* declared,
                  bool export_artifacts) {
  // Single-node demo: with --sim-threads/--rpc-latency-us the node simply
  // lives on the parallel engine's only loop, which pins the degenerate
  // one-loop case of the epoch engine to the serial EventLoop's output.
  SimRig rig = MakeSimRig(args, /*nodes=*/0);
  sim::EventLoop& loop = rig.client();
  kv::NodeOptions opt = PrototypeNodeOptions();
  // Small buffers/levels so flush + compaction churn within seconds.
  opt.lsm_options.write_buffer_bytes = 256 * kKiB;
  opt.lsm_options.target_file_bytes = 128 * kKiB;
  opt.lsm_options.max_bytes_level1 = 512 * kKiB;
  // Span collection is the point of this demo: always on, flag-thinned.
  opt.scheduler_options.span_capacity = 1 << 16;
  opt.scheduler_options.span_sample_every = args.trace_sample;
  opt.attribution_tolerance = 0.10;
  kv::StorageNode node(loop, opt);
  for (TenantId t : {kHonest, kMisdeclared}) {
    obs::DeclaredAttribution d;
    if (declared != nullptr) {
      if (auto it = declared->find(t); it != declared->end()) {
        d = it->second;
      }
    }
    (void)node.AddTenant(t, {500.0, 500.0}, d);
  }

  std::vector<std::unique_ptr<workload::KvTenantWorkload>> wls;
  std::vector<workload::KvTenantWorkload*> raw;
  for (TenantId t : {kHonest, kMisdeclared}) {
    workload::KvWorkloadSpec spec;
    spec.get_fraction = 0.3;  // PUT-heavy: drives flush/compaction spans
    spec.get_size = {1024.0, 0.0};
    spec.put_size = {1024.0, 0.0};
    spec.live_bytes_target = 2ULL * kMiB;
    spec.workers = 8;
    wls.push_back(std::make_unique<workload::KvTenantWorkload>(
        loop, node, t, spec, seed_base + t));
    raw.push_back(wls.back().get());
  }
  RunPreloads(rig, raw);

  {
    sim::TaskGroup group(loop);
    const SimTime start = loop.Now();
    node.Start();
    for (auto& wl : wls) {
      wl->Start(group, start + duration);
    }
    rig.RunUntil(start + duration + kSecond);
    node.Stop();
    rig.Run();
  }

  RunOutput out;
  out.stats = node.Snapshot();
  out.spans = node.scheduler().spans()->Spans();
  for (TenantId t : {kHonest, kMisdeclared}) {
    if (const obs::AttributionMatrix* m =
            node.scheduler().spans()->attribution().Of(t)) {
      out.observed[t] = *m;
    }
  }
  // Export while the collector is still alive (the node owns it).
  if (export_artifacts) {
    AddStatsSection(args, "node", kv::NodeStatsToJson(out.stats));
    WriteTraceJson(args, {{node.scheduler().spans(), 0, "node0"}});
  }
  return out;
}

int RunDemo(const BenchArgs& args) {
  const SimDuration duration = (args.full ? 12 : 6) * kSecond;

  // Calibration run: measure each tenant's attribution matrix.
  const RunOutput calib = RunOnce(args, duration, /*seed_base=*/4200,
                                  /*declared=*/nullptr,
                                  /*export_artifacts=*/false);
  std::map<TenantId, obs::DeclaredAttribution> declared;
  for (const auto& [t, m] : calib.observed) {
    declared[t] = DeclareFrom(m);
  }
  // The mis-declared tenant claims its PUTs have no flush/compaction
  // amplification (direct WAL IO only).
  if (auto it = declared.find(kMisdeclared); it != declared.end()) {
    it->second.at(static_cast<int>(AppRequest::kPut),
                  static_cast<int>(InternalOp::kFlush)) = 0.0;
    it->second.at(static_cast<int>(AppRequest::kPut),
                  static_cast<int>(InternalOp::kCompact)) = 0.0;
  }

  // Main run: same workload statistics, different RNG seeds, profiles
  // declared up front — the monitor judges them online.
  const RunOutput main_run = RunOnce(args, duration, /*seed_base=*/9300,
                                     &declared, /*export_artifacts=*/true);
  const kv::NodeStats& stats = main_run.stats;
  const std::vector<obs::SpanRecord>& spans = main_run.spans;

  Section(args, "Attribution + SLA conformance (tolerance 10%)");
  {
    metrics::Table t({"tenant", "declared", "divergence", "conformant",
                      "sla_intervals", "sla_violations", "sla_rate"});
    for (const kv::TenantSnapshot& ts : stats.tenants) {
      t.AddRow({std::to_string(ts.tenant),
                ts.attribution.declared.declared ? "yes" : "no",
                metrics::FormatDouble(ts.attribution.report.divergence, 3),
                ts.attribution.conformant ? "yes" : "NO",
                std::to_string(ts.sla.sla.intervals),
                std::to_string(ts.sla.sla.violations),
                metrics::FormatDouble(ts.sla.sla.violation_rate(), 3)});
    }
    Emit(args, t);
  }

  // Causality: every COMPACT device IO should walk back to a PUT request.
  uint64_t compact_ios = 0;
  uint64_t compact_ios_linked = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.kind == obs::SpanKind::kDeviceIo &&
        s.internal == static_cast<uint8_t>(InternalOp::kCompact)) {
      ++compact_ios;
      if (obs::CausallyReaches(spans, s.span_id, [](const obs::SpanRecord& r) {
            return r.kind == obs::SpanKind::kRequest &&
                   r.app == static_cast<uint8_t>(AppRequest::kPut);
          })) {
        ++compact_ios_linked;
      }
    }
  }
  std::printf(
      "spans: %zu retained (%llu recorded, %llu dropped); COMPACT device "
      "IOs: %llu, causally linked to a PUT request: %llu\n",
      spans.size(),
      static_cast<unsigned long long>(stats.spans.recorded),
      static_cast<unsigned long long>(stats.spans.dropped),
      static_cast<unsigned long long>(compact_ios),
      static_cast<unsigned long long>(compact_ios_linked));

  if (TraceRequested(args)) {
    std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                args.trace_json.c_str());
  }

  // --- contract checks ---
  const kv::TenantSnapshot* honest = nullptr;
  const kv::TenantSnapshot* lying = nullptr;
  for (const kv::TenantSnapshot& ts : stats.tenants) {
    if (ts.tenant == kHonest) {
      honest = &ts;
    } else if (ts.tenant == kMisdeclared) {
      lying = &ts;
    }
  }
  int failures = 0;
  if (compact_ios_linked == 0) {
    std::fprintf(stderr,
                 "FAIL: no COMPACT device-IO span reaches a PUT request\n");
    ++failures;
  }
  if (honest == nullptr || !honest->attribution.declared.declared ||
      !honest->attribution.conformant ||
      honest->attribution.report.divergence > 0.10) {
    std::fprintf(stderr,
                 "FAIL: honest tenant not conformant within 10%%\n");
    ++failures;
  }
  if (lying == nullptr || !lying->attribution.declared.declared ||
      lying->attribution.conformant) {
    std::fprintf(stderr, "FAIL: mis-declared tenant not flagged\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("tracing contract held: compaction IO attributed to PUTs, "
                "honest tenant conformant, mis-declared tenant flagged.\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  return libra::bench::RunDemo(args);
}
