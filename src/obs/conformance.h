// Attribution-conformance estimation: the observed indirect-IO matrix
// q̂_t^{a,i} and its divergence from a tenant's declared profile.
//
// Libra's provisioner prices reservations with per-(app request, internal
// op) resource profiles. Nothing in the aggregate metrics can verify that
// the profile a tenant *declared* at admission matches what actually flows
// through the scheduler; this estimator closes that loop. It accumulates,
// per tenant, the VOPs attributed to every (app, internal) cell — fed by
// the scheduler on each chunk completion with the exact same cost values
// the ResourceTracker records, in the same order, so the per-tenant total
// reproduces the tracker's VOP sum bit-for-bit — plus the normalized
// request counts that form the denominators of q̂^{a,i} = VOPs attributed
// to (a, i) per normalized request of class a.
//
// Field vocabulary mirrors iosched::AppRequest / InternalOp (io_tag.h) as
// raw uint8 switches: obs stays the bottom observability layer.

#ifndef LIBRA_SRC_OBS_CONFORMANCE_H_
#define LIBRA_SRC_OBS_CONFORMANCE_H_

#include <cstdint>
#include <map>
#include <vector>

namespace libra::obs {

// Mirrors iosched::kNumAppRequests / kNumInternalOps.
inline constexpr int kAttrApps = 4;      // none, GET, PUT, SCAN
inline constexpr int kAttrInternal = 4;  // direct, FLUSH, COMPACT, REPL

// One tenant's cumulative attribution state. A value type: a steady-state
// window is the element-wise difference of two snapshots (Diff below).
struct AttributionMatrix {
  double vops[kAttrApps][kAttrInternal] = {};  // attributed VOPs per cell
  double norm_requests[kAttrApps] = {};        // normalized requests served
  // Arrival-order accumulation of every attributed cost — bitwise equal to
  // the ResourceTracker's per-tenant VOP sum (the cell sums above re-order
  // the additions and may differ in the last ulp).
  double total_vops = 0.0;

  // Observed q̂^{a,i}: VOPs of (app, internal) per normalized request of
  // `app`; 0 when the tenant has served no requests of that class.
  double Q(int app, int internal) const {
    const double n = norm_requests[app];
    return n > 0.0 ? vops[app][internal] / n : 0.0;
  }
};

// later - earlier, element-wise (windowed observation between snapshots).
AttributionMatrix Diff(const AttributionMatrix& later,
                       const AttributionMatrix& earlier);

class AttributionEstimator {
 public:
  // One attributed IO cost (called once per chunk, or once per share of a
  // shared chunk, with the exact cost the tracker records).
  void RecordIo(uint32_t tenant, uint8_t app, uint8_t internal, double vops) {
    AttributionMatrix& m = tenants_[tenant];
    m.vops[app][internal] += vops;
    m.total_vops += vops;
  }

  // One served app request in normalized (1KB) units.
  void RecordRequest(uint32_t tenant, uint8_t app, double normalized) {
    tenants_[tenant].norm_requests[app] += normalized;
  }

  // nullptr until the tenant has recorded anything.
  const AttributionMatrix* Of(uint32_t tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? nullptr : &it->second;
  }

  std::vector<uint32_t> tenants() const {
    std::vector<uint32_t> out;
    out.reserve(tenants_.size());
    for (const auto& [t, m] : tenants_) {
      out.push_back(t);
    }
    return out;
  }

 private:
  // std::map: deterministic iteration order for JSON export.
  std::map<uint32_t, AttributionMatrix> tenants_;
};

// The per-request VOP matrix a tenant declared at admission — the profile
// the provisioner assumed when pricing its reservation.
struct DeclaredAttribution {
  bool declared = false;
  double q[kAttrApps][kAttrInternal] = {};

  double& at(int app, int internal) { return q[app][internal]; }
};

// Worst-cell comparison of observed q̂ against a declaration.
struct ConformanceReport {
  // max over declared-relevant cells of |observed - declared| /
  // max(declared, min_declared); 0 when nothing is comparable.
  double divergence = 0.0;
  int worst_app = 0;
  int worst_internal = 0;
  double worst_observed = 0.0;
  double worst_declared = 0.0;

  bool conformant(double tolerance) const { return divergence <= tolerance; }
};

// Compares cell-wise. Cells where both sides are below `min_declared`
// (VOPs per normalized request) are skipped as noise; an undeclared matrix
// reports zero divergence (nothing was assumed, nothing can diverge).
ConformanceReport CompareAttribution(const AttributionMatrix& observed,
                                     const DeclaredAttribution& declared,
                                     double min_declared = 0.05);

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_CONFORMANCE_H_
