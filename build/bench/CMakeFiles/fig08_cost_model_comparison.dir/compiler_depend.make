# Empty compiler generated dependencies file for fig08_cost_model_comparison.
# This may be replaced when dependencies are built.
