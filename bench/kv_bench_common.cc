#include "bench/kv_bench_common.h"

namespace libra::bench {

kv::NodeOptions PrototypeNodeOptions() {
  kv::NodeOptions opt;
  opt.device_profile = ssd::Intel320Profile();
  opt.calibration = TableFor(opt.device_profile);
  opt.cost_model = "exact";
  opt.enable_cache = false;
  opt.prefill_bytes = 0;  // the LSM preload populates the FTL
  return opt;
}

void ApplyTraceFlags(const BenchArgs& args, kv::NodeOptions& options,
                     size_t span_capacity, uint64_t id_seed) {
  if (!TraceRequested(args)) {
    return;
  }
  options.scheduler_options.span_capacity = span_capacity;
  options.scheduler_options.span_sample_every = args.trace_sample;
  options.scheduler_options.span_id_seed = id_seed;
}

void RunPreloads(sim::EventLoop& loop,
                 std::vector<workload::KvTenantWorkload*> workloads) {
  sim::TaskGroup group(loop);
  for (auto* wl : workloads) {
    group.Spawn(wl->Preload());
  }
  loop.Run();
}

}  // namespace libra::bench
