// Lightweight error-handling vocabulary for the Libra codebase.
//
// We deliberately avoid exceptions on IO paths (CppCoreGuidelines E.x aside,
// the coroutine scheduler suspends/resumes across layers where stack
// unwinding is unavailable), so fallible operations return Status or
// StatusOr<T>.

#ifndef LIBRA_SRC_COMMON_STATUS_H_
#define LIBRA_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace libra {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kDataLoss,
  kInternal,
  kDeadlineExceeded,
};

// Human-readable name for a status code ("ok", "not_found", ...).
std::string_view StatusCodeName(StatusCode code);

// Value-semantic status: a code plus an optional message. The common OK case
// carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg = "") {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "code: message" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: a Status plus a T payload, the uniform result shape of the KV
// request surface (StorageNode::Get, the cluster layer's TenantHandle::Get /
// MultiGet, and cluster routing). Unlike StatusOr, a Result always holds a T
// — default-constructed on error — so containers of Result (MultiGet) need
// no sentinel. value() on an error returns the default-constructed payload;
// callers gate on ok() for meaning.
template <typename T>
class Result {
 public:
  // Default: OK with a default-constructed payload.
  Result() = default;
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status, T value)
      : status_(std::move(status)), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

// StatusOr<T>: either a value or a non-OK status. Access to value() on an
// error is a programming bug and asserts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "OK status requires a value");
  }
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_STATUS_H_
