// Scheduler-level span emission and attribution conservation: device-IO
// spans parent to the submitting context, WriteShared manifests spread
// their contexts into links, and the attribution estimator's per-tenant
// VOP total reproduces the ResourceTracker's sum bit-for-bit.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/calibration.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::iosched {
namespace {

const ssd::CalibrationTable& Table() {
  static const ssd::CalibrationTable* table = [] {
    ssd::CalibrationOptions opt;
    opt.warmup = 200 * kMillisecond;
    opt.measure = 500 * kMillisecond;
    opt.working_set_bytes = 256 * kMiB;
    return new ssd::CalibrationTable(
        ssd::Calibrate(ssd::Intel320Profile(), opt));
  }();
  return *table;
}

struct Rig {
  sim::EventLoop loop;
  ssd::SsdDevice device;
  IoScheduler sched;

  explicit Rig(size_t span_capacity = 1 << 12)
      : device(loop, ssd::Intel320Profile()),
        sched(loop, device, std::make_unique<ExactCostModel>(Table()), [&] {
          SchedulerOptions o;
          o.span_capacity = span_capacity;
          return o;
        }()) {
    device.Prefill(1ULL * kGiB);
  }
};

TEST(SchedulerTraceTest, DeviceIoSpanParentsToSubmitterContext) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  obs::SpanCollector* spans = rig.sched.spans();
  ASSERT_NE(spans, nullptr);
  const TraceContext req = spans->MintTrace();
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone, req}, 0,
                            4096);
  };
  sim::Detach(t());
  rig.loop.Run();

  const std::vector<obs::SpanRecord> recs = spans->Spans();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, obs::SpanKind::kDeviceIo);
  EXPECT_EQ(recs[0].trace_id, req.trace_id);
  EXPECT_EQ(recs[0].parent_span, req.span_id);
  EXPECT_EQ(recs[0].tenant, 0u);
  EXPECT_EQ(recs[0].is_write, 0);
  EXPECT_EQ(recs[0].bytes, 4096u);
  EXPECT_GT(recs[0].vops, 0.0);
  EXPECT_GT(recs[0].end_ns, recs[0].start_ns);
}

TEST(SchedulerTraceTest, UntracedIoEmitsNoSpan) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, 4096);
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_EQ(rig.sched.spans()->total_recorded(), 0u);
}

TEST(SchedulerTraceTest, WriteSharedLinksFollowerContexts) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  rig.sched.SetAllocation(1, 1000.0);
  obs::SpanCollector* spans = rig.sched.spans();
  const TraceContext leader = spans->MintTrace();
  const TraceContext follower = spans->MintTrace();
  auto t = [&]() -> sim::Task<void> {
    std::vector<IoShare> manifest;
    manifest.push_back(
        {IoTag{0, AppRequest::kPut, InternalOp::kNone, leader}, 4096});
    manifest.push_back(
        {IoTag{1, AppRequest::kPut, InternalOp::kNone, follower}, 4096});
    co_await rig.sched.WriteShared(0, 8192, std::move(manifest));
  };
  sim::Detach(t());
  rig.loop.Run();

  const std::vector<obs::SpanRecord> recs = spans->Spans();
  ASSERT_EQ(recs.size(), 1u);
  // One span for the merged IOP: parented on the leader, follower linked.
  EXPECT_EQ(recs[0].trace_id, leader.trace_id);
  EXPECT_EQ(recs[0].parent_span, leader.span_id);
  ASSERT_EQ(recs[0].links.count, 1u);
  EXPECT_EQ(recs[0].links.items[0].trace_id, follower.trace_id);
  EXPECT_EQ(recs[0].is_write, 1);
}

// The conservation invariant the whole attribution pipeline hangs off:
// the estimator is fed the exact cost doubles the tracker records, in the
// same order, so per-tenant totals agree bitwise — across plain reads and
// writes, chunked large ops, and WriteShared cost splits.
TEST(SchedulerTraceTest, AttributionTotalsMatchTrackerBitForBit) {
  Rig rig;
  for (TenantId t = 0; t < 3; ++t) {
    rig.sched.SetAllocation(t, 1000.0);
  }
  obs::SpanCollector* spans = rig.sched.spans();
  Rng rng(77);
  auto worker = [&](TenantId tenant) -> sim::Task<void> {
    for (int i = 0; i < 40; ++i) {
      const uint32_t size = 1024u << rng.NextU64(8);  // 1KB .. 128KB+
      const uint64_t offset = rng.NextU64(1ULL * kGiB / size) * size;
      IoTag tag{tenant, i % 2 == 0 ? AppRequest::kGet : AppRequest::kPut,
                i % 3 == 0 ? InternalOp::kCompact : InternalOp::kNone,
                spans->MintTrace()};
      if (i % 2 == 0) {
        co_await rig.sched.Read(tag, offset, size);
      } else {
        co_await rig.sched.Write(tag, offset, size);
      }
    }
    // A shared write splitting cost across two tenants (uneven bytes).
    std::vector<IoShare> manifest;
    manifest.push_back(
        {IoTag{tenant, AppRequest::kPut, InternalOp::kNone, spans->MintTrace()},
         1024});
    manifest.push_back({IoTag{static_cast<TenantId>((tenant + 1) % 3),
                              AppRequest::kPut, InternalOp::kNone,
                              spans->MintTrace()},
                        7168});
    co_await rig.sched.WriteShared(0, 8192, std::move(manifest));
  };
  {
    sim::TaskGroup group(rig.loop);
    for (TenantId t = 0; t < 3; ++t) {
      group.Spawn(worker(t));
    }
    rig.loop.Run();
  }

  for (TenantId t = 0; t < 3; ++t) {
    const obs::AttributionMatrix* m = spans->attribution().Of(t);
    ASSERT_NE(m, nullptr);
    // Bitwise equality, not EXPECT_NEAR: same values, same order.
    EXPECT_EQ(m->total_vops, rig.sched.tracker().Stats(t).vops)
        << "tenant " << t;
    EXPECT_GT(m->total_vops, 0.0);
  }
}

TEST(SchedulerTraceTest, SampledOutRequestsStillFeedAttribution) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  SchedulerOptions o;
  o.span_capacity = 1 << 10;
  o.span_sample_every = 1000;  // nothing but the first trace sampled
  sim::EventLoop loop2;
  ssd::SsdDevice device2(loop2, ssd::Intel320Profile());
  device2.Prefill(1ULL * kGiB);
  IoScheduler sched2(loop2, device2, std::make_unique<ExactCostModel>(Table()),
                     o);
  sched2.SetAllocation(0, 1000.0);
  auto t = [&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      // Mint per request as the node does: most come back invalid.
      co_await sched2.Read(
          {0, AppRequest::kGet, InternalOp::kNone, sched2.spans()->MintTrace()},
          static_cast<uint64_t>(i) * 4096, 4096);
    }
  };
  sim::Detach(t());
  loop2.Run();
  // Attribution saw all 8 IOs even though at most one span was recorded.
  const obs::AttributionMatrix* m = sched2.spans()->attribution().Of(0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->total_vops, sched2.tracker().Stats(0).vops);
  EXPECT_LE(sched2.spans()->total_recorded(), 1u);
}

TEST(SchedulerTraceTest, HasDemandReflectsQueuedWork) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  EXPECT_FALSE(rig.sched.HasDemand(0));
  bool checked = false;
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, 4096);
  };
  sim::Detach(t());
  rig.loop.ScheduleAt(1, [&] {
    checked = true;
    EXPECT_TRUE(rig.sched.HasDemand(0));
  });
  rig.loop.Run();
  EXPECT_TRUE(checked);
  EXPECT_FALSE(rig.sched.HasDemand(0));
}

}  // namespace
}  // namespace libra::iosched
