# Empty dependencies file for fig11_reservations.
# This may be replaced when dependencies are built.
