#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace libra::obs {
namespace {

// Mirrors the iosched::AppRequest / InternalOp vocabulary (io_tag.h); obs
// sits below iosched, so the names are duplicated rather than included.
const char* AppName(uint8_t app) {
  switch (app) {
    case 1:
      return "GET";
    case 2:
      return "PUT";
    case 3:
      return "SCAN";
    default:
      return "none";
  }
}

const char* InternalName(uint8_t internal) {
  switch (internal) {
    case 1:
      return "FLUSH";
    case 2:
      return "COMPACT";
    default:
      return "direct";
  }
}

const char* EventName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kSubmit:
      return "submit";
    case TraceEventType::kDispatch:
      return "dispatch";
    case TraceEventType::kComplete:
      return "complete";
  }
  return "?";
}

}  // namespace

TraceRing::TraceRing(size_t capacity) : ring_(std::max<size_t>(1, capacity)) {}

void TraceRing::Record(const TraceEvent& ev) {
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  // Oldest retained event: head_ when the ring has wrapped, else slot 0.
  const size_t start = total_ > ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRing::DumpJsonl() const {
  std::string out;
  char buf[320];
  for (const TraceEvent& ev : Events()) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"t\":%lld,\"ev\":\"%s\",\"tenant\":%u,\"app\":\"%s\",\"op\":\"%s\","
        "\"io\":\"%s\",\"offset\":%llu,\"size\":%u,\"queue_wait_ns\":%llu,"
        "\"service_ns\":%llu,\"chunks\":%u}\n",
        static_cast<long long>(ev.time_ns), EventName(ev.type), ev.tenant,
        AppName(ev.app), InternalName(ev.internal), ev.is_write ? "W" : "R",
        static_cast<unsigned long long>(ev.offset), ev.size,
        static_cast<unsigned long long>(ev.queue_wait_ns),
        static_cast<unsigned long long>(ev.service_ns), ev.chunks);
    out += buf;
  }
  return out;
}

}  // namespace libra::obs
