#include "src/lsm/format.h"

#include <gtest/gtest.h>

namespace libra::lsm {
namespace {

TEST(FormatTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, UINT32_MAX);
  EXPECT_EQ(buf.size(), 12u);
  EXPECT_EQ(GetFixed32(buf, 0), 0u);
  EXPECT_EQ(GetFixed32(buf, 4), 0xDEADBEEFu);
  EXPECT_EQ(GetFixed32(buf, 8), UINT32_MAX);
}

TEST(FormatTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(GetFixed64(buf, 0), 0x0123456789ABCDEFULL);
}

TEST(FormatTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  size_t off = 0;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_FALSE(GetLengthPrefixed(buf, &off, &s));  // exhausted
}

TEST(FormatTest, LengthPrefixedRejectsTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  size_t off = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &off, &s));
}

TEST(FormatTest, Crc32KnownVector) {
  // CRC-32C ("Castagnoli") of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(FormatTest, Crc32DetectsCorruption) {
  std::string a = "some payload";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(Crc32(a), Crc32(b));
}

TEST(FormatTest, InternalKeyOrdering) {
  // User key ascending.
  EXPECT_LT(CompareInternalKey("a", 5, "b", 5), 0);
  EXPECT_GT(CompareInternalKey("b", 5, "a", 5), 0);
  // Same key: higher sequence first.
  EXPECT_LT(CompareInternalKey("a", 9, "a", 5), 0);
  EXPECT_GT(CompareInternalKey("a", 1, "a", 5), 0);
  EXPECT_EQ(CompareInternalKey("a", 5, "a", 5), 0);
}

TEST(FormatTest, RecordRoundTrip) {
  std::string buf;
  EncodeRecord(&buf, "key1", 42, ValueType::kPut, "value1");
  EncodeRecord(&buf, "key2", 43, ValueType::kDelete, "");
  size_t off = 0;
  Record r;
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, "key1");
  EXPECT_EQ(r.value, "value1");
  EXPECT_EQ(r.seq, 42u);
  EXPECT_EQ(r.type, ValueType::kPut);
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, "key2");
  EXPECT_EQ(r.type, ValueType::kDelete);
  EXPECT_FALSE(DecodeRecord(buf, &off, &r));
}

TEST(FormatTest, RecordDecodeRejectsTruncation) {
  std::string buf;
  EncodeRecord(&buf, "key", 1, ValueType::kPut, "value");
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    size_t off = 0;
    Record r;
    EXPECT_FALSE(DecodeRecord(std::string_view(buf).substr(0, cut), &off, &r))
        << "cut at " << cut;
  }
}

TEST(FormatTest, BinaryKeysAndValuesSurvive) {
  std::string key("\x00\x01\xFF", 3);
  std::string value("\xDE\xAD\x00\xBE\xEF", 5);
  std::string buf;
  EncodeRecord(&buf, key, 7, ValueType::kPut, value);
  size_t off = 0;
  Record r;
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, key);
  EXPECT_EQ(r.value, value);
}

}  // namespace
}  // namespace libra::lsm
