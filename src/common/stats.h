// Streaming statistics and CDF helpers used by the evaluation harnesses:
// running mean/stddev (Welford), percentile extraction, and the normalized
// min-max ratio (MMR) accuracy metric from §6.2.

#ifndef LIBRA_SRC_COMMON_STATS_H_
#define LIBRA_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace libra {

// Welford's online mean/variance.
class RunningStat {
 public:
  void Observe(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Collects samples and answers percentile/CDF queries. Sorting is deferred
// to query time.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // p in [0, 1]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(0.5); }
  double Min() const { return Percentile(0.0); }
  double Max() const { return Percentile(1.0); }
  double Mean() const;

  // Fraction of samples <= x.
  double CdfAt(double x) const;

  // Evenly-spaced (value, cumulative-fraction) points for plotting a CDF.
  std::vector<std::pair<double, double>> CdfPoints(size_t num_points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Min-max ratio over a set of per-tenant throughput ratios (§6.2):
//   MMR = min_t(x_t) / max_t(x_t), in [0, 1]; 1 means perfectly even.
// Returns 1.0 for empty input and 0.0 if the max is non-positive.
double MinMaxRatio(const std::vector<double>& ratios);

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_STATS_H_
