#include "src/cluster/shard_map.h"

#include <map>
#include <string>

#include "gtest/gtest.h"

namespace libra::cluster {
namespace {

TEST(ShardMapTest, SameSpecSamePlacement) {
  ShardMapOptions opt;
  opt.num_nodes = 5;
  opt.shards_per_tenant = 16;
  ShardMap a(opt);
  ShardMap b(opt);
  for (uint32_t tenant = 0; tenant < 20; ++tenant) {
    EXPECT_EQ(a.Assignment(tenant), b.Assignment(tenant)) << tenant;
  }
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.SlotOfKey(key), b.SlotOfKey(key));
    EXPECT_EQ(a.NodeOfKey(7, key), b.NodeOfKey(7, key));
  }
}

TEST(ShardMapTest, SeedChangesPlacement) {
  ShardMapOptions opt;
  opt.num_nodes = 8;
  opt.shards_per_tenant = 64;
  ShardMap a(opt);
  opt.seed ^= 1;
  ShardMap b(opt);
  int moved = 0;
  for (int s = 0; s < opt.shards_per_tenant; ++s) {
    if (a.HomeOf(1, s) != b.HomeOf(1, s)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardMapTest, PlacementsInRangeAndCoverEveryNode) {
  ShardMapOptions opt;
  opt.num_nodes = 4;
  opt.shards_per_tenant = 8;
  ShardMap map(opt);
  std::map<int, int> hits;
  for (uint32_t tenant = 0; tenant < 64; ++tenant) {
    for (int s = 0; s < opt.shards_per_tenant; ++s) {
      const int node = map.HomeOf(tenant, s);
      ASSERT_GE(node, 0);
      ASSERT_LT(node, opt.num_nodes);
      ++hits[node];
    }
  }
  // With 512 placements over 4 nodes and 64 vnodes each, every node should
  // home something.
  EXPECT_EQ(hits.size(), static_cast<size_t>(opt.num_nodes));
}

TEST(ShardMapTest, SlotsPerNodeMatchesAssignment) {
  ShardMap map(ShardMapOptions{});
  const auto assignment = map.Assignment(3);
  const auto per_node = map.SlotsPerNode(3);
  int total = 0;
  for (const int count : per_node) {
    total += count;
  }
  EXPECT_EQ(total, map.shards_per_tenant());
  for (int s = 0; s < map.shards_per_tenant(); ++s) {
    EXPECT_GT(per_node[assignment[s]], 0);
  }
}

TEST(ShardMapTest, RehomeOverridesRing) {
  ShardMap map(ShardMapOptions{});
  const int slot = 2;
  const int original = map.HomeOf(9, slot);
  const int target = (original + 1) % map.num_nodes();
  map.Rehome(9, slot, target);
  EXPECT_EQ(map.HomeOf(9, slot), target);
  EXPECT_EQ(map.num_overrides(), 1u);
  // Other slots and tenants are untouched.
  EXPECT_EQ(map.HomeOf(9, (slot + 1) % map.shards_per_tenant()),
            ShardMap(ShardMapOptions{}).HomeOf(
                9, (slot + 1) % map.shards_per_tenant()));
  EXPECT_EQ(map.HomeOf(10, slot), ShardMap(ShardMapOptions{}).HomeOf(10, slot));
  // NodeOfKey follows the override for keys in the slot.
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (map.SlotOfKey(key) == slot) {
      EXPECT_EQ(map.NodeOfKey(9, key), target);
    }
  }
}

TEST(ShardMapTest, KeysSpreadAcrossSlots) {
  ShardMap map(ShardMapOptions{});
  std::map<int, int> slot_hits;
  for (int i = 0; i < 4096; ++i) {
    ++slot_hits[map.SlotOfKey("object-" + std::to_string(i))];
  }
  EXPECT_EQ(slot_hits.size(), static_cast<size_t>(map.shards_per_tenant()));
}

}  // namespace
}  // namespace libra::cluster
