# Empty dependencies file for fig02_io_amplification.
# This may be replaced when dependencies are built.
