// Conservative parallel discrete-event runtime: N EventLoops stepped in
// virtual-time epochs by a worker pool, exchanging cross-loop messages only
// at epoch barriers.
//
// Model (classic conservative PDES with a global lookahead):
//  - Every cross-loop interaction is a message sent with Send(from, to,
//    delay, cb); `delay` must be at least the configured lookahead. Messages
//    accumulate in per-sender outboxes during an epoch.
//  - An epoch starts at a barrier: outboxes are drained and each message is
//    injected into its destination loop as an ordinary event at its delivery
//    time, in (delivery_time, sender, sender_seq) order, so injection order
//    — and therefore the destination's FIFO tie-break at equal timestamps —
//    is independent of thread schedule.
//  - The barrier computes G = the minimum next event (or barrier-hook) time
//    across all loops, advances every clock to G, runs due hooks, then steps
//    every loop independently up to the exclusive horizon H = G + lookahead.
//    A message sent at time t >= G has delivery time t + delay >= G +
//    lookahead = H, so nothing sent during an epoch can be needed before the
//    next barrier: loops never see a message "from the past".
//
// Determinism: each loop is single-threaded within an epoch and loops share
// no mutable state (callers must route every cross-loop effect through
// Send), the exchange order is a pure function of (delivery_time, sender,
// seq), and barrier times depend only on event timestamps. The same epoch
// algorithm runs regardless of worker count, so a run's outputs are
// byte-identical for any `threads`, including 1.
//
// Convention used by the cluster layer: loop 0 is the coordinator (client
// routing, workloads, fault schedule), loops 1..N-1 are storage nodes.

#ifndef LIBRA_SRC_SIM_MULTI_LOOP_H_
#define LIBRA_SRC_SIM_MULTI_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/small_fn.h"

namespace libra::sim {

struct MultiLoopOptions {
  // Worker threads stepping loops within an epoch, including the calling
  // thread (<= 1: no pool, the caller steps every loop). Thread count never
  // affects simulation output, only wall-clock time.
  int threads = 1;
  // Epoch width and the minimum legal Send() delay. Must be positive.
  SimDuration lookahead = 0;
};

class MultiLoop {
 public:
  MultiLoop(int num_loops, MultiLoopOptions options);
  ~MultiLoop();

  MultiLoop(const MultiLoop&) = delete;
  MultiLoop& operator=(const MultiLoop&) = delete;

  int num_loops() const { return static_cast<int>(loops_.size()); }
  int threads() const { return options_.threads; }
  SimDuration lookahead() const { return options_.lookahead; }
  EventLoop& loop(int i) { return *loops_[i]; }

  // Virtual time of the most recent barrier (all loop clocks are >= this).
  SimTime Now() const { return barrier_now_; }

  // Checks a cross-loop delay against the lookahead floor. Callers that
  // accept latencies from configuration should validate with this before
  // sending; Send() aborts on violation (a delay below the lookahead would
  // deliver into an epoch that already ran, silently diverging from the
  // serial engine).
  Status CheckDelay(SimDuration delay) const;

  // Schedules `cb` to run on loop `to` at loop(from).Now() + delay. May be
  // called from the sending loop's callbacks during an epoch step, from a
  // barrier hook, or while the engine is idle (setup). Messages between the
  // same (from, to) pair with the same delay deliver in send order.
  void Send(int from, int to, SimDuration delay, SmallFn cb);

  // Runs `hook` once at the first barrier whose time G >= when, with every
  // loop quiesced and every clock advanced to exactly max(when, G). Hook
  // times bound the barrier like events do, so an otherwise idle simulation
  // still fires hooks at their requested times. This is the sanctioned way
  // to read or mutate cross-loop state mid-run (control-plane steps,
  // mid-run stat sampling).
  void ScheduleBarrierAt(SimTime when, std::function<void()> hook);

  // Runs epochs until every event with timestamp <= deadline has
  // dispatched, then advances all clocks to `deadline` (mirrors
  // EventLoop::RunUntil, including the idle-advance and the inclusive
  // deadline). Returns events dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Runs epochs until no events, messages, or hooks remain (mirrors
  // EventLoop::Run).
  uint64_t Run();

  uint64_t epochs() const { return epochs_; }
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  struct Message {
    SimTime when;
    uint32_t from;
    uint32_t to;
    uint64_t seq;  // per-sender send order
    SmallFn cb;
  };
  struct Outbox {
    std::vector<Message> msgs;
    uint64_t next_seq = 0;
    // Outboxes are written by whichever worker steps the owning loop; pad
    // to a cache line so neighbors do not false-share.
    char pad[64];
  };
  struct Hook {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };

  uint64_t RunEpochs(bool bounded, SimTime deadline);
  void Exchange();
  std::optional<SimTime> NextBarrierTime();
  void RunDueHooks(SimTime barrier);
  uint64_t StepAll(SimTime horizon);
  void StepWorker();
  void WorkerMain();

  MultiLoopOptions options_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<Outbox> outbox_;
  std::vector<Hook> hooks_;
  uint64_t hook_seq_ = 0;
  SimTime barrier_now_ = 0;
  uint64_t epochs_ = 0;
  uint64_t messages_sent_ = 0;

  // Worker pool (created only when threads > 1): workers park on cv_start_
  // between epochs; an epoch publishes its horizon under mu_, workers claim
  // loops by atomic index, and the caller waits on cv_done_. The mutex
  // hand-offs order each epoch's loop state (and outbox writes) before the
  // next barrier's reads.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t epoch_gen_ = 0;
  int workers_running_ = 0;
  bool shutdown_ = false;
  SimTime step_horizon_ = 0;
  std::atomic<int> next_loop_{0};
  std::atomic<uint64_t> step_dispatched_{0};
};

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_MULTI_LOOP_H_
