// The Libra IO scheduler (paper §2.2, §4.3, §5).
//
// Tenant tasks submit tagged reads/writes; the scheduler interleaves them
// in deficit round robin order, charging each dispatched IOP its VOP cost
// and deducting it from the tenant's per-round budget. A task whose tenant
// has exhausted its budget stays suspended until a later round — exactly
// the paper's coroutine mechanism ("Libra ... delays IO operations that
// would otherwise exceed a tenant's resource allocation until a subsequent
// scheduling round").
//
// Rounds are demand-driven: the dispatcher fills the device queue (depth
// 32) from tenants with budget and work; when no tenant is both eligible
// and affordable, a new round starts and budgets are replenished in
// proportion to VOP allocations. Consequences:
//   - proportional sharing: backlogged tenants split actual device
//     throughput by allocation ratio;
//   - absolute guarantees: as long as the sum of allocations stays within
//     the capacity floor, each tenant's share of real throughput is at
//     least its allocation (paper §4.3);
//   - work conservation: an idle tenant's budget is not hoarded (classic
//     DRR deficit reset), so spare throughput flows to busy tenants.
//
// IOPs larger than chunk_bytes (128KB) are split into chunks that are
// scheduled independently — the responsiveness/throughput trade-off the
// paper notes as the cause of the Fig. 7 large-read deviation.
//
// The paper's implementation distributes DRR state across scheduler
// threads (DDRR) to avoid lock contention; in this single-threaded
// simulation the ring below is the sequential projection of that design
// (see DESIGN.md §6).

#ifndef LIBRA_SRC_IOSCHED_SCHEDULER_H_
#define LIBRA_SRC_IOSCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/iosched/cost_model.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/resource_tracker.h"
#include "src/obs/io_stats.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"

namespace libra::iosched {

struct SchedulerOptions {
  int queue_depth = ssd::kSsdQueueDepth;  // concurrent IOPs at the device
  uint32_t chunk_bytes = 128 * 1024;      // split threshold (0x20000)
  bool enable_chunking = true;            // ablation switch
  double round_quantum_vops = 256.0;      // total budget added per round
  // IO lifecycle event trace: 0 disables; > 0 keeps the newest N events in
  // a ring (see obs::TraceRing), dumpable as JSONL.
  size_t trace_capacity = 0;
  // Causal span collection: 0 disables (every trace-context branch in the
  // IO path then costs one null/validity check); > 0 keeps the newest N
  // spans (see obs::SpanCollector) and turns on attribution estimation.
  size_t span_capacity = 0;
  // Mint 1 of every N root traces (1 = trace every request).
  uint32_t span_sample_every = 1;
  // High-byte namespace for minted span ids (cluster nodes use their index
  // so ids never collide across collectors).
  uint64_t span_id_seed = 0;
};

// Per-tenant IO lifecycle statistics, always on: queue-wait (submit ->
// first dispatch, i.e. DRR throttling delay) and device-service (first
// dispatch -> last chunk completion) histograms per (app request, internal
// op) class, plus op/chunk/byte counts.
//
// Classes allocate on first use: a tenant typically exercises 2-4 of the 9
// (app, internal) combinations, and embedding all of them eagerly (a pair of
// full histograms each) would put ~170KB of mostly-dead per-tenant state on
// the completion path's cache/TLB footprint. After the one-time allocation,
// recording is plain arithmetic.
struct TenantLifecycleStats {
  std::unique_ptr<obs::IoClassStats> cls[kNumAppRequests][kNumInternalOps];

  // Get-or-create (allocates at most once per class).
  obs::IoClassStats& Mutable(AppRequest a, InternalOp i) {
    std::unique_ptr<obs::IoClassStats>& p =
        cls[static_cast<int>(a)][static_cast<int>(i)];
    if (p == nullptr) {
      p = std::make_unique<obs::IoClassStats>();
    }
    return *p;
  }
  // nullptr if the class never saw traffic.
  const obs::IoClassStats* of(AppRequest a, InternalOp i) const {
    return cls[static_cast<int>(a)][static_cast<int>(i)].get();
  }

  // All classes folded together (per-tenant rollup).
  obs::IoClassStats Aggregate() const {
    obs::IoClassStats out;
    for (const auto& row : cls) {
      for (const std::unique_ptr<obs::IoClassStats>& c : row) {
        if (c != nullptr) {
          out.Merge(*c);
        }
      }
    }
    return out;
  }
};

class IoScheduler {
 public:
  IoScheduler(sim::EventLoop& loop, ssd::SsdDevice& device,
              std::unique_ptr<CostModel> cost_model,
              SchedulerOptions options = {});

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Registers a tenant with a VOP/s allocation (used as its DRR weight).
  // Re-registering updates the allocation.
  void SetAllocation(TenantId tenant, double vops_per_sec);
  double Allocation(TenantId tenant) const;

  // Submits one IO and suspends until it (all chunks) completes.
  sim::Task<void> Read(const IoTag& tag, uint64_t offset, uint32_t size);
  sim::Task<void> Write(const IoTag& tag, uint64_t offset, uint32_t size);

  // Submits one batched IOP carrying a multi-tag manifest. The manifest's
  // shares must be non-empty, byte-ordered, and sum exactly to `size`. The
  // op is scheduled (DRR queue, deficit charge, lifecycle stats) under the
  // first share's tag — the batch leader — but its VOP cost is split across
  // all shares proportionally to bytes with an exact-sum invariant, so the
  // ResourceTracker's per-(tenant, app, op) profiles see each contributor's
  // true fraction of the merged IOP. A single-share manifest degenerates to
  // the plain Write path.
  sim::Task<void> WriteShared(uint64_t offset, uint32_t size,
                              std::vector<IoShare> manifest);

  ResourceTracker& tracker() { return tracker_; }
  const ResourceTracker& tracker() const { return tracker_; }
  const CostModel& cost_model() const { return *cost_model_; }
  sim::EventLoop& loop() { return loop_; }

  // Rounds completed so far (scheduling-cadence introspection).
  uint64_t rounds() const { return rounds_; }
  int inflight() const { return inflight_; }

  // Sum of queued (not yet dispatched) chunks across tenants.
  size_t backlog() const;

  // Lifecycle statistics for a tenant; nullptr until the tenant has been
  // registered (SetAllocation) or has submitted an IO.
  const TenantLifecycleStats* lifecycle(TenantId tenant) const;

  // Event trace ring; nullptr unless options.trace_capacity > 0.
  const obs::TraceRing* trace() const { return trace_.get(); }

  // Span collector; nullptr unless options.span_capacity > 0. Every layer
  // above the scheduler reaches tracing through this single owner.
  obs::SpanCollector* spans() { return spans_.get(); }
  const obs::SpanCollector* spans() const { return spans_.get(); }

  // Whether the tenant has queued or in-flight work right now.
  bool HasDemand(TenantId tenant) const {
    const Tenant* t = FindTenant(tenant);
    return t != nullptr && t->active();
  }

  // Nanoseconds the tenant had queued or in-flight work since the last
  // call — the SLA monitor's per-interval demand measure (an instantaneous
  // HasDemand sample at interval end mislabels load dips as enforcement
  // failures). Closes any open busy period at the current time and starts
  // a fresh one if the tenant is still active.
  SimDuration ConsumeDemandTime(TenantId tenant);

 private:
  // Ops live in a scheduler-owned pool (op_arena_ + op_free_) and are
  // recycled when the last chunk completes — no per-IO allocation after the
  // pool warms up. Raw Op* are safe: the pool outlives every queue entry
  // and in-flight chunk context, and an Op is only freed at its single
  // completion point.
  struct Op {
    IoTag tag;
    ssd::IoType type;
    uint64_t offset;
    uint32_t size;
    uint32_t dispatched;       // bytes handed to the device
    uint32_t chunks_inflight;
    uint32_t chunks_total;     // chunks dispatched over the op's lifetime
    SimTime submit_time;
    SimTime first_dispatch;    // valid once dispatched > 0
    double cost_accum;         // summed chunk VOPs (span emission only)
    sim::OneShot<bool>* done;
    // Multi-tag cost manifest for batched IOPs (WriteShared); empty for
    // plain single-tag IOs, which keep the exact pre-manifest fast path.
    std::vector<IoShare> manifest;

    bool fully_dispatched() const { return dispatched >= size; }
  };

  struct Tenant {
    TenantId id = 0;
    double allocation = 0.0;  // VOP/s (DRR weight)
    double deficit = 0.0;     // VOPs available now
    int chunks_inflight = 0;  // dispatched, not yet completed
    std::deque<Op*> queue;    // owned by the op pool
    // Heap-allocated (large: fixed histogram arrays); created once at
    // tenant registration, then updated allocation-free.
    std::unique_ptr<TenantLifecycleStats> lifecycle;

    // Demand busy-time accounting for ConsumeDemandTime: start of the open
    // busy period (< 0 while idle) and time accumulated since last consumed.
    SimTime busy_since = -1;
    SimDuration busy_accum = 0;

    // A tenant is active while it has queued or in-flight work; closed-loop
    // workers mid-IO count as demand (their next op arrives on completion).
    bool active() const { return !queue.empty() || chunks_inflight > 0; }
  };

  // Tenants sit in a dense vector kept sorted by id, so Pump()/NewRound()
  // iterate contiguously; the sort order makes the DRR ring scan identical
  // to the previous std::map iteration (deterministic round-robin order).
  // Registration (rare) inserts in the middle; the hot paths only scan.
  Tenant* FindTenant(TenantId id);
  const Tenant* FindTenant(TenantId id) const;

  // Find-or-create with lifecycle stats attached.
  Tenant& GetTenant(TenantId id);

  // Index of the first tenant with id >= `id` (== tenants_.size() if none).
  size_t LowerBound(TenantId id) const;

  Op* AllocOp(const IoTag& tag, ssd::IoType type, uint64_t offset,
              uint32_t size);
  void FreeOp(Op* op);

  // `manifest` is empty for plain IOs; for shared IOPs it is the validated,
  // byte-ordered multi-tag manifest. Every parameter — the tag included —
  // is taken by value: coroutine parameters must own their storage across
  // suspension (WriteShared passes tags whose backing locals die before
  // the task first runs).
  sim::Task<void> Submit(IoTag tag, ssd::IoType type, uint64_t offset,
                         uint32_t size, std::vector<IoShare> manifest);

  // Next chunk size for the head op of a tenant queue.
  uint32_t NextChunkBytes(const Op& op) const;

  // Dispatch pump: fills device slots while eligible work exists.
  void Pump();

  // Replenishes deficits; returns true if any tenant became eligible.
  bool NewRound();

  void DispatchChunk(Tenant& tenant);

  // One contributor's pre-split slice of a shared chunk: `bytes` overlap
  // between the chunk's byte range and the share's manifest range, and the
  // exact VOP cost charged for it (all but the last slice take their byte
  // fraction of the chunk cost; the last takes the remainder, so the slice
  // costs reconstruct the chunk cost bit-for-bit).
  struct ChunkShare {
    IoTag tag;
    uint32_t bytes = 0;
    double cost = 0.0;
  };

  // Per-chunk completion context, recycled through a free list (live
  // entries bounded by queue_depth). The device completion callback
  // captures only {this, index} — one reused record per chunk slot instead
  // of a fresh closure per dispatch.
  struct ChunkCtx {
    Op* op = nullptr;
    TenantId tenant = 0;
    double cost = 0.0;
    uint32_t chunk = 0;
    uint32_t next_free = 0;
    // Cost split for shared chunks; empty for plain chunks. The vector's
    // capacity is recycled with the slot, so steady-state shared traffic
    // does not allocate.
    std::vector<ChunkShare> shares;
  };
  uint32_t AllocChunkCtx();
  void OnChunkComplete(uint32_t index);

  // Emits the op's kDeviceIo span (traced ops only; shared ops link every
  // traced manifest rider beyond the one chosen as parent).
  void EmitDeviceIoSpan(const Op& op, SimTime now);

  sim::EventLoop& loop_;
  ssd::SsdDevice& device_;
  std::unique_ptr<CostModel> cost_model_;
  SchedulerOptions options_;
  ResourceTracker tracker_;

  std::vector<Tenant> tenants_;  // sorted by Tenant::id
  TenantId ring_cursor_ = 0;     // tenant id to consider next

  std::deque<Op> op_arena_;  // stable addresses; Op* handles circulate
  std::vector<Op*> op_free_;

  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;
  std::vector<ChunkCtx> chunk_ctx_;
  uint32_t chunk_free_ = kNilIndex;

  int inflight_ = 0;
  uint64_t rounds_ = 0;
  bool pumping_ = false;
  double max_carry_vops_ = 64.0;  // covers the dearest chunk (see ctor)
  std::unique_ptr<obs::TraceRing> trace_;
  std::unique_ptr<obs::SpanCollector> spans_;
};

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_SCHEDULER_H_
