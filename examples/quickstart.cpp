// Quickstart: bring up a provisioned multi-node cluster, admit a tenant
// with a global app-request reservation, and serve GET/PUT traffic through
// a TenantHandle.
//
//   $ ./examples/quickstart
//
// Walks through the full stack: device calibration -> cost model -> N
// storage nodes behind the Cluster API -> global provisioner splitting the
// tenant's reservation across nodes -> tenant requests on the coroutine
// runtime. (For the single-node surface underneath, see
// examples/dynamic_reservations.cpp.)

#include <cstdio>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"
#include "src/ssd/calibration.h"

using namespace libra;

int main() {
  // 1. Calibrate the device (a deployment does this once per SSD model;
  //    see paper §4.3). The table feeds every node's VOP cost model.
  const ssd::DeviceProfile profile = ssd::Intel320Profile();
  std::printf("calibrating %s...\n", profile.name.c_str());
  ssd::CalibrationOptions copt;
  copt.measure = 500 * kMillisecond;
  const ssd::CalibrationTable table = ssd::Calibrate(profile, copt);
  std::printf("  max IOP throughput: %.0f op/s (the VOP normalizer)\n",
              table.max_iops());

  // 2. Build the cluster: four identical storage nodes (LSM partitions over
  //    Libra over the SSD) on one loop, sharded by consistent hashing.
  sim::EventLoop loop;
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.node_options.device_profile = profile;
  options.node_options.calibration = table;
  // Request-path batching (off by default, paper-faithful): WAL group
  // commit merges concurrent PUT syncs into one fairly-split device write,
  // duplicate in-flight GETs share one lookup, MultiGet groups same-shard
  // keys, and index blocks live in a bounded LRU table cache.
  options.batch_multiget = true;
  options.node_options.enable_read_coalescing = true;
  options.node_options.lsm_options.wal_group_commit = true;
  options.node_options.lsm_options.table_cache_bytes = 256 * kKiB;
  cluster::Cluster cl(loop, options);

  // 3. Admit a tenant with a *global* reservation: 2000 normalized (1KB)
  //    GET/s and 1000 normalized PUT/s, cluster-wide. Admission control
  //    checks every hosting node's capacity up front; the global
  //    provisioner then keeps splitting the reservation across nodes in
  //    proportion to where the tenant's demand actually lands.
  Result<cluster::TenantHandle> admitted =
      cl.AddTenant(42, cluster::GlobalReservation{2000.0, 1000.0});
  if (!admitted.ok()) {
    std::printf("AddTenant failed: %s\n",
                admitted.status().ToString().c_str());
    return 1;
  }
  cluster::TenantHandle tenant = admitted.value();
  cl.Start();  // node policies + global provisioner, 1s intervals

  // 4. Issue requests through the handle. Application code is written as
  //    coroutines; each co_await suspends until the owning node's scheduler
  //    serves the IO. Keys route to nodes by shard — the caller never
  //    addresses a node.
  auto client = [&]() -> sim::Task<void> {
    Status s = co_await tenant.Put("user:1001", "alice");
    std::printf("PUT user:1001 -> %s (t=%.3fs)\n", s.ToString().c_str(),
                ToSeconds(loop.Now()));
    s = co_await tenant.Put("user:1002", "bob");
    std::printf("PUT user:1002 -> %s\n", s.ToString().c_str());

    Result<std::string> r = co_await tenant.Get("user:1001");
    std::printf("GET user:1001 -> %s value=%s\n",
                r.status().ToString().c_str(), r.value().c_str());

    // MultiGet fans the lookups out concurrently (possibly to different
    // nodes) and returns results in key order. (Built as a named vector:
    // GCC 12 miscompiles braced initializer lists inside coroutines.)
    std::vector<std::string> batch;
    batch.push_back("user:1001");
    batch.push_back("user:1002");
    const auto many = co_await tenant.MultiGet(batch);
    std::printf("MULTIGET -> [%s, %s]\n", many[0].value().c_str(),
                many[1].value().c_str());

    s = co_await tenant.Delete("user:1002");
    std::printf("DEL user:1002 -> %s\n", s.ToString().c_str());
    r = co_await tenant.Get("user:1002");
    std::printf("GET user:1002 -> %s (expected not_found)\n",
                r.status().ToString().c_str());
  };
  sim::Detach(client());
  // Started policies keep timers pending, so bound the run, stop, drain.
  loop.RunUntil(loop.Now() + 5 * kSecond);
  cl.Stop();
  loop.Run();

  // 5. Inspect where the requests landed and what they cost.
  const auto homes = cl.shard_map().Assignment(42);
  std::printf("shard homes:");
  for (const int node : homes) {
    std::printf(" %d", node);
  }
  std::printf("\n");
  double vops = 0.0;
  for (int n = 0; n < cl.num_nodes(); ++n) {
    vops += cl.node(n).tracker().Stats(42).vops;
  }
  std::printf("tenant 42 consumed %.2f VOPs across %d nodes\n", vops,
              cl.num_nodes());
  return 0;
}
