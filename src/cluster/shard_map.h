// Deterministic shard placement for the cluster layer.
//
// Each tenant's keyspace is divided into a fixed number of shard slots
// (slot = hash(key) mod shards_per_tenant); slots are placed on nodes by
// consistent hashing: every node projects `vnodes_per_node` points onto a
// 64-bit ring, and a (tenant, slot) pair homes on the first node point at or
// after its own ring position. The construction is a pure function of the
// options, so two maps built from the same spec agree on every placement —
// the property a restarting router or a test harness relies on.
//
// Migrations re-home a slot explicitly: Rehome() records an override that
// takes precedence over the ring until cleared. Overrides are the only
// mutable state.

#ifndef LIBRA_SRC_CLUSTER_SHARD_MAP_H_
#define LIBRA_SRC_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace libra::cluster {

struct ShardMapOptions {
  int num_nodes = 4;
  int shards_per_tenant = 8;
  // Virtual points per node on the hash ring; more points smooth the
  // slot-count imbalance between nodes.
  int vnodes_per_node = 64;
  uint64_t seed = 0x11b7a5eed;  // any change reshuffles every placement
  // Replicas per slot: the leader plus rf-1 followers on distinct nodes
  // (the next distinct nodes walking the ring from the slot's position).
  // Clamped to num_nodes. 1 = unreplicated, the pre-replication layout.
  int replication_factor = 1;
};

class ShardMap {
 public:
  explicit ShardMap(ShardMapOptions options);

  int num_nodes() const { return options_.num_nodes; }
  int shards_per_tenant() const { return options_.shards_per_tenant; }
  int replication_factor() const {
    return options_.replication_factor < options_.num_nodes
               ? options_.replication_factor
               : options_.num_nodes;
  }

  // Shard slot of a key (tenant-independent: a tenant's keys spread over
  // all of its slots regardless of id).
  int SlotOfKey(std::string_view key) const;

  // Node currently homing (tenant, slot): the migration override when one
  // exists, else the ring placement.
  int HomeOf(uint32_t tenant, int slot) const;

  // Convenience: HomeOf(tenant, SlotOfKey(key)).
  int NodeOfKey(uint32_t tenant, std::string_view key) const;

  // Replica set of (tenant, slot): the leader (HomeOf, override-aware)
  // first, then RF-1 followers — the next distinct nodes walking the ring
  // from the slot's position. Size = replication_factor() (leader-only at
  // RF=1). Followers come from the ring even when a migration override
  // moved the leader, so a re-homed slot keeps its original followers.
  std::vector<int> ReplicasOf(uint32_t tenant, int slot) const;

  // Per-slot homes for a tenant (size shards_per_tenant).
  std::vector<int> Assignment(uint32_t tenant) const;

  // Number of `tenant` slot *replicas* hosted on each node (size
  // num_nodes). At RF=1 this is the leader count per node; at RF>1 a node
  // is counted for every slot it leads or follows — the unit of PUT work
  // (and reservation mass) the node actually carries.
  std::vector<int> SlotsPerNode(uint32_t tenant) const;

  // Pins (tenant, slot) to `node` (shard migration). An override equal to
  // the ring placement is stored anyway: placements must not silently move
  // back if the ring were ever rebuilt differently.
  void Rehome(uint32_t tenant, int slot, int node);

  size_t num_overrides() const { return overrides_.size(); }

 private:
  struct RingPoint {
    uint64_t point;
    int node;
    bool operator<(const RingPoint& other) const {
      if (point != other.point) {
        return point < other.point;
      }
      return node < other.node;  // total order: ties must break the same way
    }
  };

  int RingLookup(uint64_t point) const;
  // Index of the first ring point at or after `point` (wrapping).
  size_t RingIndex(uint64_t point) const;
  uint64_t SlotPoint(uint32_t tenant, int slot) const;

  ShardMapOptions options_;
  std::vector<RingPoint> ring_;  // sorted by point
  std::map<uint64_t, int> overrides_;  // key: tenant << 32 | slot
};

}  // namespace libra::cluster

#endif  // LIBRA_SRC_CLUSTER_SHARD_MAP_H_
