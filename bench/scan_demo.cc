// Scan demo: the SCAN request class end to end, with the per-tenant
// compaction policy as a VAT ablation.
//
// A 2x2 tenant grid on one cluster — {leveled, size-tiered} compaction x
// {point-only, scan-mixed} workload — all four with identical global
// per-class reservations (GET/PUT/SCAN rps). Range scans fan out across
// every slot-owning node and merge at the client; their table reads are
// charged to the SCAN attribution column. The demo then reads back what
// Libra's accounting says the policy choice did:
//   1. the measured per-class cost profiles q̂_t^{a,i} (VOPs per normalized
//      request of class a attributed to internal op i), aggregated across
//      nodes from the span attribution matrices,
//   2. the admitted reservation mass (required/granted VOPs summed over the
//      per-node audit records) — SCAN reservations are priced and admitted
//      like any other class,
//   3. bit-for-bit VOP conservation: on every node, each tenant's
//      attribution total equals the scheduler tracker's admitted VOP sum
//      exactly, scans included.
// The ablation contract (exit 1 on violation): scan-mixed tenants carry a
// nonzero SCAN column while point-only tenants do not, every tenant's churn
// actually compacted under its declared policy, and the policy measurably
// shifts the indirect (compaction) component of q̂ between the two
// scan-mixed tenants. One deterministic virtual-time simulation: output is
// byte-identical for any --sim-threads at a fixed --rpc-latency-us.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/metrics/table.h"
#include "src/obs/conformance.h"
#include "src/workload/cluster_workload.h"

namespace libra::bench {
namespace {

using cluster::Cluster;
using cluster::GlobalReservation;
using iosched::AppRequest;
using iosched::TenantId;

struct CellSpec {
  TenantId tenant;
  lsm::CompactionPolicy policy;
  double scan_fraction;  // 0 = point-only cell
  const char* policy_name;
  const char* mix_name;
};

constexpr CellSpec kCells[] = {
    {1, lsm::CompactionPolicy::kLeveled, 0.0, "leveled", "point"},
    {2, lsm::CompactionPolicy::kLeveled, 0.25, "leveled", "scan"},
    {3, lsm::CompactionPolicy::kSizeTiered, 0.0, "tiered", "point"},
    {4, lsm::CompactionPolicy::kSizeTiered, 0.25, "tiered", "scan"},
};

// Every cell gets the same per-class reservation, so any shift in required
// VOP mass is purely the measured profiles moving.
constexpr GlobalReservation kGlobal{800.0, 400.0, 200.0};

sim::Task<void> PreloadAll(
    std::vector<std::unique_ptr<workload::ClusterTenantWorkload>>* workloads) {
  for (auto& wl : *workloads) {
    co_await wl->Preload();
  }
}

// Cluster-wide measured profile for one tenant: attribution matrices summed
// across nodes in node order (deterministic FP), then Q = vops / requests.
struct MeasuredProfile {
  double vops[obs::kAttrApps][obs::kAttrInternal] = {};
  double norm_requests[obs::kAttrApps] = {};

  double Q(int app, int internal) const {
    const double n = norm_requests[app];
    return n > 0.0 ? vops[app][internal] / n : 0.0;
  }
  double QTotal(int app) const {
    double q = 0.0;
    for (int i = 0; i < obs::kAttrInternal; ++i) {
      q += Q(app, i);
    }
    return q;
  }
};

int RunDemo(const BenchArgs& args) {
  SimRig rig = MakeSimRig(args, args.nodes);
  sim::EventLoop& loop = rig.client();
  cluster::ClusterOptions copt;
  copt.num_nodes = args.nodes;
  copt.node_options = PrototypeNodeOptions();
  copt.provisioner.interval = 1 * kSecond;
  // Small memtables/levels so the run's churn flushes and compacts under
  // both policies — the ablation is about the indirect profile.
  copt.node_options.lsm_options.write_buffer_bytes = 256 * kKiB;
  copt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  copt.node_options.lsm_options.wal_group_commit = true;
  // Span attribution on: the conservation check and q̂ readback need the
  // per-class matrices.
  copt.node_options.scheduler_options.span_capacity = 1 << 14;
  std::unique_ptr<Cluster> cl_holder = MakeCluster(rig, copt);
  Cluster& cl = *cl_holder;

  Section(args, "Scan demo: admission (per-class reservations)");
  std::vector<cluster::TenantHandle> handles;
  for (const CellSpec& cell : kCells) {
    Result<cluster::TenantHandle> h =
        cl.AddTenant(cell.tenant, kGlobal, cell.policy);
    if (!h.ok()) {
      std::fprintf(stderr, "AddTenant(%u): %s\n", cell.tenant,
                   h.status().message().c_str());
      return 1;
    }
    handles.push_back(h.value());
    std::printf("tenant %u admitted: %s compaction, %.0f/%.0f/%.0f "
                "GET/PUT/SCAN rps\n",
                cell.tenant, cell.policy_name, kGlobal.get_rps,
                kGlobal.put_rps, kGlobal.scan_rps);
  }
  // A malformed per-class reservation is rejected up front, naming the
  // offending class.
  GlobalReservation bad = kGlobal;
  bad.scan_rps = -1.0;
  const Result<cluster::TenantHandle> refused = cl.AddTenant(99, bad);
  if (refused.ok()) {
    std::fprintf(stderr, "negative scan_rps was wrongly admitted\n");
    return 1;
  }
  std::printf("malformed AddTenant(99) rejected: %s\n",
              refused.status().message().c_str());

  std::vector<std::unique_ptr<workload::ClusterTenantWorkload>> workloads;
  for (size_t i = 0; i < std::size(kCells); ++i) {
    const CellSpec& cell = kCells[i];
    workload::KvWorkloadSpec w;
    w.get_fraction = 0.5;
    w.scan_fraction = cell.scan_fraction;
    w.scan_span = 24;
    w.get_size = {4096.0, 1024.0};
    w.put_size = {1024.0, 256.0};
    w.live_bytes_target = (args.full ? 8ULL : 4ULL) * kMiB;
    w.workers = 8;
    workloads.push_back(std::make_unique<workload::ClusterTenantWorkload>(
        loop, handles[i], w, 3000 + cell.tenant));
  }
  {
    sim::TaskGroup group(loop);
    group.Spawn(PreloadAll(&workloads));
    rig.Run();
  }

  const SimTime t0 = loop.Now();
  const SimTime t_warm = t0 + (args.full ? 20 : 10) * kSecond;
  const SimTime t_end = t_warm + (args.full ? 30 : 15) * kSecond;

  cl.Start();

  // Achieved normalized request rates over [t_warm, t_end).
  constexpr size_t kN = std::size(kCells);
  double gets0[kN]{}, scans0[kN]{}, gets1[kN]{}, scans1[kN]{};
  auto snap = [&](double* g, double* s) {
    for (size_t i = 0; i < kN; ++i) {
      g[i] = cl.GlobalNormalizedTotal(kCells[i].tenant, AppRequest::kGet);
      s[i] = cl.GlobalNormalizedTotal(kCells[i].tenant, AppRequest::kScan);
    }
  };
  rig.AtTime(t_warm, [&] { snap(gets0, scans0); });
  rig.AtTime(t_end, [&] { snap(gets1, scans1); });

  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      wl->Start(group, t_end);
    }
    rig.RunUntil(t_end + kSecond);
    cl.Stop();
    rig.Run();
  }

  // --- cluster-wide measured profiles + bitwise conservation ---
  MeasuredProfile profiles[kN];
  uint64_t conservation_cells = 0;
  uint64_t conservation_violations = 0;
  uint64_t compactions[kN]{};
  for (int n = 0; n < cl.num_nodes(); ++n) {
    for (size_t i = 0; i < kN; ++i) {
      const TenantId t = kCells[i].tenant;
      const obs::AttributionMatrix* m =
          cl.node(n).scheduler().spans()->attribution().Of(t);
      if (m != nullptr) {
        ++conservation_cells;
        // Arrival-order attribution total vs the tracker's admitted VOP
        // sum: equal to the last bit, scans included.
        if (m->total_vops != cl.node(n).tracker().Stats(t).vops) {
          ++conservation_violations;
        }
        for (int a = 0; a < obs::kAttrApps; ++a) {
          profiles[i].norm_requests[a] += m->norm_requests[a];
          for (int io = 0; io < obs::kAttrInternal; ++io) {
            profiles[i].vops[a][io] += m->vops[a][io];
          }
        }
      }
      if (cl.node(n).partition(t) != nullptr) {
        compactions[i] += cl.node(n).partition(t)->stats().compactions;
      }
    }
  }

  // --- admitted reservation mass from the per-node audit records ---
  double required[kN]{}, granted[kN]{}, price_scan[kN]{}, price_n[kN]{};
  for (int n = 0; n < cl.num_nodes(); ++n) {
    const kv::NodeStats stats = cl.node(n).Snapshot();
    if (stats.audit.empty()) {
      continue;
    }
    const obs::AuditRecord& rec = stats.audit.back();
    for (const obs::AuditTenantEntry& e : rec.tenants) {
      for (size_t i = 0; i < kN; ++i) {
        if (e.tenant == kCells[i].tenant) {
          required[i] += e.required_vops;
          granted[i] += e.granted_vops;
          price_scan[i] += e.price[static_cast<int>(AppRequest::kScan)];
          price_n[i] += 1.0;
        }
      }
    }
  }

  Section(args, "Scan demo: VAT ablation (policy x mix)");
  constexpr int kGet = static_cast<int>(AppRequest::kGet);
  constexpr int kScan = static_cast<int>(AppRequest::kScan);
  constexpr int kCompact = static_cast<int>(iosched::InternalOp::kCompact);
  const double secs = ToSeconds(t_end - t_warm);
  metrics::Table table({"tenant", "policy", "mix", "q_get", "q_scan",
                        "q_put_compact", "price_scan", "req_vops",
                        "granted_vops", "scan_nreq/s"});
  for (size_t i = 0; i < kN; ++i) {
    const double scan_rate = (scans1[i] - scans0[i]) / secs;
    table.AddRow(
        {std::to_string(kCells[i].tenant), kCells[i].policy_name,
         kCells[i].mix_name,
         metrics::FormatDouble(profiles[i].QTotal(kGet), 3),
         metrics::FormatDouble(profiles[i].QTotal(kScan), 3),
         metrics::FormatDouble(
             profiles[i].Q(static_cast<int>(AppRequest::kPut), kCompact), 3),
         metrics::FormatDouble(
             price_n[i] > 0.0 ? price_scan[i] / price_n[i] : 0.0, 3),
         metrics::FormatDouble(required[i], 0),
         metrics::FormatDouble(granted[i], 0),
         metrics::FormatDouble(scan_rate, 0)});
  }
  Emit(args, table);

  Section(args, "Scan demo: conservation and contract");
  std::printf("attribution cells checked: %llu, bitwise violations: %llu\n",
              static_cast<unsigned long long>(conservation_cells),
              static_cast<unsigned long long>(conservation_violations));
  for (size_t i = 0; i < kN; ++i) {
    std::printf("tenant %u: %llu compactions (%s), %llu scans issued\n",
                kCells[i].tenant,
                static_cast<unsigned long long>(compactions[i]),
                kCells[i].policy_name,
                static_cast<unsigned long long>(workloads[i]->scans_done()));
  }

  AddStatsSection(args, "cluster_snapshot",
                  cluster::ClusterStatsToJson(cl.Snapshot()));

  bool failed = false;
  if (conservation_cells == 0 || conservation_violations > 0) {
    std::fprintf(stderr, "FAIL: VOP attribution not conserved bit-for-bit\n");
    failed = true;
  }
  for (size_t i = 0; i < kN; ++i) {
    const bool scan_cell = kCells[i].scan_fraction > 0.0;
    if (scan_cell &&
        (workloads[i]->scans_done() == 0 || profiles[i].QTotal(kScan) <= 0.0)) {
      std::fprintf(stderr, "FAIL: tenant %u ran no attributed scans\n",
                   kCells[i].tenant);
      failed = true;
    }
    if (!scan_cell && profiles[i].QTotal(kScan) != 0.0) {
      std::fprintf(stderr, "FAIL: point-only tenant %u has SCAN VOPs\n",
                   kCells[i].tenant);
      failed = true;
    }
    if (compactions[i] == 0) {
      std::fprintf(stderr, "FAIL: tenant %u never compacted\n",
                   kCells[i].tenant);
      failed = true;
    }
    if (workloads[i]->scan_errors() > 0) {
      std::fprintf(stderr, "FAIL: tenant %u had scan errors\n",
                   kCells[i].tenant);
      failed = true;
    }
  }
  // The policy must measurably shift the indirect profile between the two
  // scan-mixed cells (same reservation, same workload, different picker).
  const double q_lev = profiles[1].Q(static_cast<int>(AppRequest::kPut),
                                     kCompact);
  const double q_tier = profiles[3].Q(static_cast<int>(AppRequest::kPut),
                                      kCompact);
  std::printf("compaction q̂ (PUT class): leveled %.4f vs tiered %.4f\n",
              q_lev, q_tier);
  if (q_lev == q_tier) {
    std::fprintf(stderr,
                 "FAIL: compaction policy did not shift the measured q̂\n");
    failed = true;
  }
  if (failed) {
    return 1;
  }
  std::printf(
      "scan contract held: SCAN class attributed and conserved, per-class "
      "reservations admitted, compaction policy shifted the profile.\n");
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  return libra::bench::RunDemo(args);
}
