// Shared test rig for WAL/SSTable/LsmDb tests: event loop, device,
// scheduler with a fixed synthetic cost table, and SimFs.

#ifndef LIBRA_TESTS_LSM_LSM_RIG_H_
#define LIBRA_TESTS_LSM_LSM_RIG_H_

#include <memory>

#include "src/fs/sim_fs.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::lsm::testing {

inline ssd::CalibrationTable RigTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

struct LsmRig {
  sim::EventLoop loop;
  ssd::SsdDevice device{loop, ssd::Intel320Profile()};
  iosched::IoScheduler sched{
      loop, device, std::make_unique<iosched::ExactCostModel>(RigTable())};
  fs::SimFs fs{sched, device};

  LsmRig() { sched.SetAllocation(1, 50000.0); }

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

}  // namespace libra::lsm::testing

#endif  // LIBRA_TESTS_LSM_LSM_RIG_H_
