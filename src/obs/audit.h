// Provisioning audit log: the resource policy's per-interval decisions.
//
// Libra's reservation guarantees are made by a once-per-second control loop
// (resource_policy.cc) that prices each tenant's reservation under its live
// EWMA profile and scales allocations into the capacity floor. This log
// captures every step's inputs and outputs — the record a tenant-facing
// "why did my allocation change" question needs, and what IOTune/Serifos
// style tuning of the interval/EWMA parameters reads. Appends happen once
// per interval per node (not per IO), so a bounded deque is fine.
//
// Field types are plain scalars (no iosched includes): obs stays the bottom
// observability layer and the policy flattens its structs in.

#ifndef LIBRA_SRC_OBS_AUDIT_H_
#define LIBRA_SRC_OBS_AUDIT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/obs/conformance.h"

namespace libra::obs {

// One tenant's row within an interval step. Per-class values are arrays
// indexed like conformance.h's kAttrApps vocabulary (0 = unattributed and
// always zero; 1 = GET, 2 = PUT, 3 = SCAN) so new application request
// classes flow through the audit trail without new fields.
struct AuditTenantEntry {
  uint32_t tenant = 0;
  // Reservation in normalized (1KB) requests per second, per class.
  double reserved_rps[kAttrApps] = {};
  // EWMA profile components (VOPs per normalized request), per class.
  double profile_direct[kAttrApps] = {};
  double profile_flush[kAttrApps] = {};
  double profile_compact[kAttrApps] = {};
  // Effective VOP prices actually used by the policy (mode-dependent: under
  // object-size pricing these differ from the full profile totals).
  double price[kAttrApps] = {};
  // The tenant's declared LSM compaction policy (0 = leveled, 1 =
  // size-tiered): the policy shapes the indirect profile, so conformance
  // verdicts on q^{a,i} are read against it.
  uint8_t compaction_policy = 0;
  double required_vops = 0.0;  // priced reservation before scaling
  double granted_vops = 0.0;   // allocation installed in the scheduler
  // SLA conformance over the interval that just ended (see obs::SlaMonitor):
  // achieved VOP/s vs required, and whether that violated the reservation
  // (under-achievement with demand pending). Zero/false on the first step
  // (no elapsed interval yet).
  double achieved_vops = 0.0;
  bool sla_violated = false;
};

// One interval step.
struct AuditRecord {
  int64_t time_ns = 0;
  double total_required_vops = 0.0;
  double capacity_floor_vops = 0.0;
  double scale = 1.0;  // < 1 when overbooked
  bool overbooked = false;
  std::vector<AuditTenantEntry> tenants;
};

// One cluster-layer rebalance action: a global provisioner either re-split a
// tenant's global reservation across nodes or migrated a shard off a
// persistently overbooked node. Plain scalars only, like AuditRecord: obs
// stays below the cluster layer.
struct RebalanceRecord {
  enum class Kind { kSplit, kMigration };
  Kind kind = Kind::kSplit;
  int64_t time_ns = 0;
  uint32_t tenant = 0;
  // kSplit: number of nodes the reservation was spread over.
  // kMigration: shard slot moved, source and destination node.
  int nodes = 0;
  int slot = -1;
  int from_node = -1;
  int to_node = -1;
  uint64_t keys_moved = 0;  // kMigration only
};

// Bounded cluster rebalance history (newest records kept).
class RebalanceLog {
 public:
  explicit RebalanceLog(size_t max_records = 512)
      : max_records_(max_records) {}

  void Append(RebalanceRecord record) {
    records_.push_back(record);
    ++total_appended_;
    while (records_.size() > max_records_) {
      records_.pop_front();
    }
  }

  const std::deque<RebalanceRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const RebalanceRecord& back() const { return records_.back(); }
  uint64_t total_appended() const { return total_appended_; }

 private:
  size_t max_records_;
  uint64_t total_appended_ = 0;
  std::deque<RebalanceRecord> records_;
};

class ProvisioningAuditLog {
 public:
  explicit ProvisioningAuditLog(size_t max_records = 512)
      : max_records_(max_records) {}

  void Append(AuditRecord record) {
    records_.push_back(std::move(record));
    ++total_appended_;
    while (records_.size() > max_records_) {
      records_.pop_front();
    }
  }

  const std::deque<AuditRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const AuditRecord& back() const { return records_.back(); }
  // Records appended since construction, including evicted ones.
  uint64_t total_appended() const { return total_appended_; }

 private:
  size_t max_records_;
  uint64_t total_appended_ = 0;
  std::deque<AuditRecord> records_;
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_AUDIT_H_
