// Device calibration: the benchmarking step the paper prescribes (§4.3,
// "Determining the VOP cost model ... requires benchmarking the storage
// system") before a Libra deployment. Runs pure read/write closed-loop
// sweeps across IOP sizes at queue depth 32 and records the achieved IOPS;
// the resulting table is the input to the exact VOP cost model and Fig. 3.

#ifndef LIBRA_SRC_SSD_CALIBRATION_H_
#define LIBRA_SRC_SSD_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/ssd/io_types.h"
#include "src/ssd/profile.h"

namespace libra::ssd {

struct CalibrationOptions {
  SimDuration warmup = 500 * kMillisecond;
  SimDuration measure = 2 * kSecond;
  int queue_depth = 32;  // kSsdQueueDepth in the paper's experiments
  uint64_t working_set_bytes = 1ULL * kGiB;
  uint64_t seed = 42;
};

struct CalibrationTable {
  std::vector<uint32_t> sizes_kb;  // probed IOP sizes
  std::vector<double> rand_read_iops;
  std::vector<double> rand_write_iops;
  std::vector<double> seq_read_iops;
  std::vector<double> seq_write_iops;

  // The VOP normalizer Max-IOP: the highest achieved IOPS over the random
  // curves (in practice the smallest random read size).
  double max_iops() const;

  // Achieved random IOPS at an arbitrary size, log-interpolated between
  // probed points (clamped at the ends).
  double RandReadIops(uint32_t size_bytes) const;
  double RandWriteIops(uint32_t size_bytes) const;
};

// Runs the full sweep for `profile`. Simulated duration per point is
// warmup + measure; wall-clock cost is a few hundred thousand events.
CalibrationTable Calibrate(const DeviceProfile& profile,
                           const CalibrationOptions& options = {});

// Single-point probe: achieved IOPS for a pure workload of `size` bytes.
double MeasureIops(const DeviceProfile& profile, IoType type, uint32_t size,
                   bool sequential, const CalibrationOptions& options = {});

}  // namespace libra::ssd

#endif  // LIBRA_SRC_SSD_CALIBRATION_H_
