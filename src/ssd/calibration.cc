#include "src/ssd/calibration.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"

namespace libra::ssd {
namespace {

// Interpolates IOPS at `size_bytes` from a probed (sizes_kb, iops) curve,
// linearly in log2(size) — the natural axis for these curves (Fig. 3).
double InterpolateIops(const std::vector<uint32_t>& sizes_kb,
                       const std::vector<double>& iops, uint32_t size_bytes) {
  assert(!sizes_kb.empty());
  const double kb = std::max(1.0, static_cast<double>(size_bytes) / 1024.0);
  const double x = std::log2(kb);
  const double x_lo = std::log2(static_cast<double>(sizes_kb.front()));
  const double x_hi = std::log2(static_cast<double>(sizes_kb.back()));
  if (x <= x_lo) {
    return iops.front();
  }
  if (x >= x_hi) {
    return iops.back();
  }
  for (size_t i = 1; i < sizes_kb.size(); ++i) {
    const double xi = std::log2(static_cast<double>(sizes_kb[i]));
    if (x <= xi) {
      const double xp = std::log2(static_cast<double>(sizes_kb[i - 1]));
      const double frac = (x - xp) / (xi - xp);
      return iops[i - 1] * (1.0 - frac) + iops[i] * frac;
    }
  }
  return iops.back();
}

struct ProbeState {
  uint64_t completed = 0;
  uint64_t measured = 0;
  bool measuring = false;
  uint64_t seq_cursor = 0;
};

sim::Task<void> Worker(sim::EventLoop& loop, SsdDevice& dev, IoType type,
                       uint32_t size, bool sequential, uint64_t working_set,
                       Rng& rng, ProbeState& state, SimTime end_time) {
  while (loop.Now() < end_time) {
    IoRequest req;
    req.type = type;
    req.size = size;
    if (sequential) {
      req.offset = state.seq_cursor % working_set;
      state.seq_cursor += size;
    } else {
      // Align random accesses to the op size to avoid page-split noise.
      const uint64_t slots = std::max<uint64_t>(1, working_set / size);
      req.offset = rng.NextU64(slots) * size;
    }
    co_await dev.SubmitAwait(req);
    ++state.completed;
    if (state.measuring) {
      ++state.measured;
    }
  }
}

}  // namespace

double CalibrationTable::max_iops() const {
  double best = 0.0;
  for (double v : rand_read_iops) {
    best = std::max(best, v);
  }
  for (double v : rand_write_iops) {
    best = std::max(best, v);
  }
  return best;
}

double CalibrationTable::RandReadIops(uint32_t size_bytes) const {
  return InterpolateIops(sizes_kb, rand_read_iops, size_bytes);
}

double CalibrationTable::RandWriteIops(uint32_t size_bytes) const {
  return InterpolateIops(sizes_kb, rand_write_iops, size_bytes);
}

double MeasureIops(const DeviceProfile& profile, IoType type, uint32_t size,
                   bool sequential, const CalibrationOptions& options) {
  sim::EventLoop loop;
  SsdDevice dev(loop, profile);
  const uint64_t working_set =
      std::min(options.working_set_bytes, profile.capacity_bytes / 2);
  dev.Prefill(working_set);

  Rng rng(options.seed);
  ProbeState state;
  const SimTime end_time = options.warmup + options.measure;
  {
    sim::TaskGroup group(loop);
    for (int w = 0; w < options.queue_depth; ++w) {
      group.Spawn(Worker(loop, dev, type, size, sequential, working_set, rng,
                         state, end_time));
    }
    loop.ScheduleAt(options.warmup, [&state] {
      state.measuring = true;
      state.measured = 0;
    });
    loop.ScheduleAt(end_time, [&state] { state.measuring = false; });
    loop.Run();
  }
  return static_cast<double>(state.measured) / ToSeconds(options.measure);
}

CalibrationTable Calibrate(const DeviceProfile& profile,
                           const CalibrationOptions& options) {
  CalibrationTable table;
  for (uint32_t kb : kSweepSizesKb) {
    table.sizes_kb.push_back(kb);
    const uint32_t size = kb * 1024;
    table.rand_read_iops.push_back(
        MeasureIops(profile, IoType::kRead, size, /*sequential=*/false, options));
    table.rand_write_iops.push_back(
        MeasureIops(profile, IoType::kWrite, size, /*sequential=*/false, options));
    table.seq_read_iops.push_back(
        MeasureIops(profile, IoType::kRead, size, /*sequential=*/true, options));
    table.seq_write_iops.push_back(
        MeasureIops(profile, IoType::kWrite, size, /*sequential=*/true, options));
  }
  return table;
}

}  // namespace libra::ssd
