// Microbenchmarks (google-benchmark): per-operation cost of the hot paths.
// The DRR scheduling decision is O(1) (the paper's argument against
// virtual-time fair queuing's O(log n)); cost-model evaluation, skiplist
// and event loop costs bound the simulator's wall-clock throughput.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/lsm/block_cache.h"
#include "src/lsm/db.h"
#include "src/lsm/format.h"
#include "src/lsm/memtable.h"
#include "src/lsm/wal.h"
#include "src/sim/event_loop.h"
#include "src/sim/multi_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra {
namespace {

ssd::CalibrationTable MicroTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

void BM_EventLoopScheduleDispatch(benchmark::State& state) {
  sim::EventLoop loop;
  int sink = 0;
  for (auto _ : state) {
    loop.ScheduleAfter(10, [&sink] { ++sink; });
    loop.RunOne();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventLoopScheduleDispatch);

void BM_CostModelExact(benchmark::State& state) {
  iosched::ExactCostModel model(MicroTable());
  Rng rng(1);
  for (auto _ : state) {
    const uint32_t size = static_cast<uint32_t>(1024 + rng.NextU64(255 * 1024));
    benchmark::DoNotOptimize(model.Cost(ssd::IoType::kRead, size));
  }
}
BENCHMARK(BM_CostModelExact);

void BM_CostModelFitted(benchmark::State& state) {
  iosched::FittedCostModel model(MicroTable());
  Rng rng(1);
  for (auto _ : state) {
    const uint32_t size = static_cast<uint32_t>(1024 + rng.NextU64(255 * 1024));
    benchmark::DoNotOptimize(model.Cost(ssd::IoType::kWrite, size));
  }
}
BENCHMARK(BM_CostModelFitted);

// One full scheduler round trip per iteration: submit + dispatch + device
// completion — the paper's "constant time" scheduling claim. Tenant count
// is the benchmark argument; per-op cost should stay ~flat.
void BM_SchedulerRoundTrip(benchmark::State& state) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(loop, device,
                             std::make_unique<iosched::ExactCostModel>(MicroTable()));
  const int tenants = static_cast<int>(state.range(0));
  for (int t = 0; t < tenants; ++t) {
    sched.SetAllocation(t, 1000.0);
  }
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    const iosched::TenantId t = static_cast<iosched::TenantId>(i++ % tenants);
    sim::Detach([](iosched::IoScheduler& s, iosched::TenantId id,
                   uint64_t off) -> sim::Task<void> {
      co_await s.Read({id, iosched::AppRequest::kGet, iosched::InternalOp::kNone},
                      off, 4096);
    }(sched, t, rng.NextU64(50000) * 4096));
    loop.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRoundTrip)->Arg(1)->Arg(8)->Arg(64);

void BM_SkiplistInsert(benchmark::State& state) {
  lsm::MemTable mt;
  Rng rng(5);
  lsm::SequenceNumber seq = 0;
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%012llu",
                  static_cast<unsigned long long>(rng.NextU64(1u << 20)));
    mt.Put(key, ++seq, "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkiplistInsert);

void BM_MemtableGet(benchmark::State& state) {
  lsm::MemTable mt;
  Rng rng(5);
  char key[32];
  for (int i = 0; i < 100000; ++i) {
    std::snprintf(key, sizeof(key), "key%012d", i);
    mt.Put(key, static_cast<lsm::SequenceNumber>(i + 1), "value");
  }
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%012llu",
                  static_cast<unsigned long long>(rng.NextU64(100000)));
    benchmark::DoNotOptimize(mt.Get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemtableGet);

// One bloom probe per iteration against a filter block sized like a flushed
// SSTable's (4K keys at 10 bits/key, ~5KiB). Half the probes are keys in
// the filter, half are misses — the mix the filtered GET path sees on the
// read-miss traffic the filters exist for. This is the per-GET CPU cost
// added to every table visit, so it must stay tens of nanoseconds.
void BM_BloomProbe(benchmark::State& state) {
  constexpr int kKeys = 4096;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  char buf[32];
  for (int i = 0; i < kKeys; ++i) {
    std::snprintf(buf, sizeof(buf), "key%012d", i);
    keys.emplace_back(buf);
  }
  std::string filter;
  lsm::BloomFilterBuild(keys, 10, &filter);
  Rng rng(13);
  uint64_t maybe = 0;
  for (auto _ : state) {
    const uint64_t i = rng.NextU64(2 * kKeys);
    std::snprintf(buf, sizeof(buf), "key%012llu",
                  static_cast<unsigned long long>(i));
    maybe += lsm::BloomFilterMayContain(filter, buf) ? 1 : 0;
  }
  benchmark::DoNotOptimize(maybe);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

// One shared-block-cache hit per iteration: the map probe + LRU splice that
// replaces a device read on the cached GET path. The cache holds a working
// set of data blocks across several tenants/tables, all resident (no
// evictions inside the timed loop) — this is the pure hit cost.
void BM_BlockCacheGet(benchmark::State& state) {
  constexpr int kTenants = 4;
  constexpr int kTables = 16;
  constexpr int kBlocks = 8;
  constexpr uint64_t kBlockBytes = 4096;
  lsm::BlockCache cache(/*capacity_bytes=*/0, /*cache_data=*/true);
  for (int t = 1; t <= kTenants; ++t) {
    for (int f = 0; f < kTables; ++f) {
      for (int b = 0; b < kBlocks; ++b) {
        auto block = std::make_shared<lsm::CachedBlock>();
        block->bytes = std::string(kBlockBytes, 'd');
        cache.Insert(static_cast<iosched::TenantId>(t),
                     static_cast<uint64_t>(f), lsm::BlockCache::Kind::kData,
                     static_cast<uint64_t>(b) * kBlockBytes, std::move(block),
                     kBlockBytes);
      }
    }
  }
  Rng rng(17);
  uint64_t hits = 0;
  for (auto _ : state) {
    const auto tenant =
        static_cast<iosched::TenantId>(1 + rng.NextU64(kTenants));
    const uint64_t table = rng.NextU64(kTables);
    const uint64_t offset = rng.NextU64(kBlocks) * kBlockBytes;
    hits += cache.Get(tenant, table, lsm::BlockCache::Kind::kData, offset) !=
            nullptr;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockCacheGet);

void BM_Crc32_4K(benchmark::State& state) {
  const std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsm::Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Crc32_4K);

void BM_DeviceSubmitComplete(benchmark::State& state) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  Rng rng(7);
  for (auto _ : state) {
    device.Submit({ssd::IoType::kWrite, rng.NextU64(50000) * 4096, 4096},
                  [] {});
    loop.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceSubmitComplete);

// One group-commit cycle per iteration: `qd` concurrent WAL appends
// submitted together, drained to completion. qd=1 is the degenerate
// no-batching case; 8 and 32 measure the leader/follower machinery under
// the queue depths the demos use. The simulated-time IOP savings are
// covered by tests; this tracks the wall-clock cost of the batching code
// itself (queueing, manifest build, per-record completion fan-out).
void BM_WalGroupCommit(benchmark::State& state) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(
      loop, device, std::make_unique<iosched::ExactCostModel>(MicroTable()));
  sched.SetAllocation(1, 100000.0);
  fs::SimFs fs(sched, device);
  lsm::WalOptions wopt;
  wopt.group_commit = true;
  const int qd = static_cast<int>(state.range(0));
  const iosched::IoTag tag{1, iosched::AppRequest::kPut,
                           iosched::InternalOp::kNone};
  std::unique_ptr<lsm::WriteAheadLog> wal;
  uint64_t wal_number = 0;
  uint64_t records = 0;
  auto roll_wal = [&] {
    if (wal != nullptr) {
      (void)wal->Remove();
    }
    wal = std::make_unique<lsm::WriteAheadLog>(
        fs, "bench_wal_" + std::to_string(++wal_number), wopt);
    if (!wal->Open().ok()) {
      state.SkipWithError("wal open failed");
    }
  };
  roll_wal();
  lsm::SequenceNumber seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < qd; ++i) {
      sim::Detach([](lsm::WriteAheadLog* w, iosched::IoTag t,
                     lsm::SequenceNumber s) -> sim::Task<void> {
        co_await w->Append(t, "key", s, lsm::ValueType::kPut, "value");
      }(wal.get(), tag, ++seq));
    }
    loop.Run();
    records += static_cast<uint64_t>(qd);
    if (records % 16384 == 0) {
      roll_wal();  // keep the backing SimFs file bounded
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * qd);
}
BENCHMARK(BM_WalGroupCommit)->Arg(1)->Arg(8)->Arg(32);

// One bounded range scan per iteration through the LSM k-way merge path:
// the window overlaps the memtable and several flushed tables, so every
// scan exercises cursor seeding, heap merging, newest-version-wins dedup,
// and tombstone shadowing (every 7th key is deleted). Arg = scan limit in
// keys; items = live entries returned.
void BM_ScanMerge(benchmark::State& state) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(
      loop, device, std::make_unique<iosched::ExactCostModel>(MicroTable()));
  sched.SetAllocation(1, 100000.0);
  fs::SimFs fs(sched, device);
  lsm::LsmOptions opt;
  opt.write_buffer_bytes = 64 * 1024;  // many small tables in the merge
  lsm::LsmDb db(loop, fs, sched, 1, "bench_scan", opt);
  if (!db.Open().ok()) {
    state.SkipWithError("lsm open failed");
    return;
  }
  sim::Detach([](lsm::LsmDb* d) -> sim::Task<void> {
    char k[32];
    for (int i = 0; i < 4096; ++i) {
      std::snprintf(k, sizeof(k), "key%06d", i);
      co_await d->Put(k, std::string(128, 'v'));
      if (i % 7 == 0) {
        co_await d->Delete(k);
      }
    }
    co_await d->WaitIdle();
  }(&db));
  loop.Run();
  const int span = static_cast<int>(state.range(0));
  Rng rng(11);
  char key[32];
  uint64_t returned = 0;
  for (auto _ : state) {
    const int start = static_cast<int>(rng.NextU64(4096 - span));
    std::snprintf(key, sizeof(key), "key%06d", start);
    sim::Detach([](lsm::LsmDb* d, std::string s, size_t lim,
                   uint64_t* out) -> sim::Task<void> {
      const lsm::LsmDb::ScanResult r = co_await d->Scan(s, "", lim);
      *out += r.entries.size();
    }(&db, key, static_cast<size_t>(span), &returned));
    loop.Run();
  }
  benchmark::DoNotOptimize(returned);
  state.SetItemsProcessed(static_cast<int64_t>(returned));
}
BENCHMARK(BM_ScanMerge)->Arg(16)->Arg(128);

// One 16-key MultiGet per iteration through the cluster routing layer,
// keys resident in memtables (zero simulated IO time): measures the
// per-request fan-out machinery. Arg(0) = per-key routing (default),
// Arg(1) = slot-grouped batching.
void BM_MultiGetFanout(benchmark::State& state) {
  sim::EventLoop loop;
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  options.node_options.calibration = MicroTable();
  options.node_options.prefill_bytes = 64 * kMiB;
  options.batch_multiget = state.range(0) != 0;
  cluster::Cluster cl(loop, options);
  auto admitted = cl.AddTenant(1, cluster::GlobalReservation{});
  if (!admitted.ok()) {
    state.SkipWithError("AddTenant failed");
    return;
  }
  cluster::TenantHandle tenant = admitted.value();
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  sim::Detach([](cluster::TenantHandle h,
                 std::vector<std::string> ks) -> sim::Task<void> {
    for (const std::string& k : ks) {
      co_await h.Put(k, "value");
    }
  }(tenant, keys));
  loop.Run();
  for (auto _ : state) {
    sim::Detach([](cluster::TenantHandle h,
                   const std::vector<std::string>* ks) -> sim::Task<void> {
      benchmark::DoNotOptimize(co_await h.MultiGet(*ks));
    }(tenant, &keys));
    loop.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_MultiGetFanout)->Arg(0)->Arg(1);

// One epoch of the parallel engine: every loop sends one message around a
// ring, then a single barrier — outbox exchange, (when, sender, seq) sort,
// injection, and the epoch step — delivers them all. Arg0 = loop count,
// Arg1 = worker threads (1 = no pool; >1 adds the cv hand-off, which is
// the per-epoch overhead a multi-core host must amortize against the
// per-loop event work). Items = messages exchanged.
void BM_EpochBarrierExchange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr SimDuration kLookahead = 1000;
  sim::MultiLoop ml(n, {threads, kLookahead});
  uint64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      ml.Send(i, (i + 1) % n, kLookahead, [&delivered] { ++delivered; });
    }
    ml.Run();  // one barrier: exchange + advance + step every loop
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EpochBarrierExchange)
    ->Args({2, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({8, 4});

}  // namespace
}  // namespace libra

BENCHMARK_MAIN();
