// Causal span recording: the bounded per-node store behind end-to-end
// request tracing, and its Chrome/Perfetto trace_event JSON export.
//
// A span is one timed operation (virtual-time start/end) inside a trace: a
// client RPC, a node-level request, a device IO (one scheduler op, all
// chunks), a FLUSH/COMPACT rewrite, or a migration copy. Spans carry their
// parent within the trace plus a bounded sample of *cross-trace causal
// links* — the contexts of the app requests whose bytes a flush moves, the
// followers who rode a WAL group commit, the tables a compaction consumed —
// which is how a COMPACT device IO is connected back to the PUTs that
// caused it even though they belong to different traces.
//
// The collector is a fixed-capacity ring like obs::TraceRing: recording is
// a cursor bump plus a POD store, dropped spans are counted (no silent
// caps), and id minting is a deterministic counter (optionally namespaced
// by a per-node seed) so traces are byte-identical across runs and --jobs
// values. Sampling (1/N minting) gates span *recording* only; the embedded
// AttributionEstimator is fed for every IO regardless, so the observed
// q̂^{a,i} matrix and VOP-conservation invariants are exact.

#ifndef LIBRA_SRC_OBS_SPAN_H_
#define LIBRA_SRC_OBS_SPAN_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/trace_context.h"
#include "src/obs/conformance.h"

namespace libra::obs {

enum class SpanKind : uint8_t {
  kClientRequest = 0,  // cluster routing dispatch (TenantHandle)
  kRequest = 1,        // app request at the storage node
  kDeviceIo = 2,       // one scheduler op (all chunks)
  kFlush = 3,          // memtable -> L0 rewrite
  kCompact = 4,        // level merge rewrite
  kCoalescedGet = 5,   // follower riding a singleflight leader's lookup
  kMigration = 6,      // shard migration copy
};

std::string_view SpanKindName(SpanKind k);

inline constexpr int kMaxSpanLinks = 4;

// Bounded sample of causal contributors: `total` counts every traced
// contributor seen, the first kMaxSpanLinks of them are retained. Callers
// can always tell sampled links from complete ones (count < total).
struct SpanLinkSet {
  uint32_t total = 0;
  uint32_t count = 0;
  TraceContext items[kMaxSpanLinks];

  void Add(const TraceContext& ctx) {
    if (!ctx.valid()) {
      return;
    }
    ++total;
    if (count < kMaxSpanLinks) {
      items[count++] = ctx;
    }
  }

  void Merge(const SpanLinkSet& other) {
    for (uint32_t i = 0; i < other.count; ++i) {
      Add(other.items[i]);
    }
    total += other.total - other.count;  // unretained contributors still count
  }
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;  // 0 = root of its trace
  SpanKind kind = SpanKind::kRequest;
  uint8_t app = 0;       // iosched::AppRequest vocabulary (see io_tag.h)
  uint8_t internal = 0;  // iosched::InternalOp vocabulary
  uint8_t is_write = 0;  // device IO direction (kDeviceIo only)
  uint32_t tenant = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t bytes = 0;
  double vops = 0.0;       // attributed cost (kDeviceIo: exact op total)
  SpanLinkSet links;       // sampled cross-trace causal contributors
};

class SpanCollector {
 public:
  // capacity: spans retained (newest win). sample_every: mint 1 of every N
  // root traces (1 = trace everything). id_seed: high-byte namespace for
  // minted ids so multiple collectors (cluster nodes) never collide.
  explicit SpanCollector(size_t capacity, uint32_t sample_every = 1,
                         uint64_t id_seed = 0);

  // Mints a root context for a new application request, honoring the 1/N
  // sampling rate: unsampled requests get an invalid context and flow
  // through every layer untraced at the cost of one branch each.
  TraceContext MintTrace();

  // Mints a root context unconditionally (background ops — flush,
  // compaction, migration — are rare and always traced when collection is
  // on, so their causal links to sampled requests are never lost).
  TraceContext MintAlways();

  // Child span id within an existing trace; invalid if the parent is.
  TraceContext MintChild(const TraceContext& parent);

  void Record(const SpanRecord& rec);

  // Re-namespace minted ids; must precede any minting.
  void SeedIds(uint64_t seed);

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return std::min(total_, ring_.size()); }
  uint64_t total_recorded() const { return total_; }
  // Spans evicted from the ring since construction (no silent caps).
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  uint64_t minted_traces() const { return minted_; }
  uint64_t sampled_out() const { return sampled_out_; }
  uint32_t sample_every() const { return sample_every_; }

  // Retained spans, oldest first.
  std::vector<SpanRecord> Spans() const;

  AttributionEstimator& attribution() { return attribution_; }
  const AttributionEstimator& attribution() const { return attribution_; }

 private:
  uint64_t NextId() { return seed_ | ++next_id_; }

  std::vector<SpanRecord> ring_;
  size_t head_ = 0;  // next write position
  uint64_t total_ = 0;
  uint64_t seed_ = 0;
  uint64_t next_id_ = 0;
  uint32_t sample_every_ = 1;
  uint64_t mint_calls_ = 0;
  uint64_t minted_ = 0;
  uint64_t sampled_out_ = 0;
  AttributionEstimator attribution_;
};

// One collector's contribution to a merged Chrome trace export: its spans
// become slices under `pid` (Perfetto renders one process group per pid,
// one thread track per tenant).
struct SpanExportGroup {
  const SpanCollector* collector = nullptr;
  int pid = 0;
  std::string process_name;
};

// Renders spans as a Chrome trace_event JSON document loadable in
// ui.perfetto.dev: "X" complete events (ts/dur in microseconds of virtual
// time), "s"/"f" flow events drawing the causal arrows (parent edges and
// sampled links whose source span is still retained), and "M" metadata
// naming processes and tenant threads. Deterministic: byte-identical for
// identical simulations.
std::string SpansToChromeTraceJson(const std::vector<SpanExportGroup>& groups);
std::string SpansToChromeTraceJson(const SpanCollector& collector, int pid = 0,
                                   const std::string& process_name = "node");

// True if `from` (a span id) reaches a span satisfying `pred` by following
// parent edges and retained links backwards through `spans`. Test helper
// for causal-chain assertions (e.g. COMPACT device IO -> ... -> PUT).
bool CausallyReaches(const std::vector<SpanRecord>& spans, uint64_t from,
                     const std::function<bool(const SpanRecord&)>& pred);

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_SPAN_H_
