#include "src/iosched/resource_policy.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace libra::iosched {

ResourcePolicy::ResourcePolicy(sim::EventLoop& loop, IoScheduler& scheduler,
                               CapacityModel& capacity, PolicyOptions options)
    : loop_(loop),
      scheduler_(scheduler),
      capacity_(capacity),
      options_(options),
      audit_log_(options.audit_capacity) {
  assert(options_.interval > 0);
}

ResourcePolicy::~ResourcePolicy() { Stop(); }

void ResourcePolicy::SetReservation(TenantId tenant, Reservation r) {
#ifndef NDEBUG
  for (int a = kFirstAppRequest; a < kNumAppRequests; ++a) {
    assert(r.rps[a] >= 0.0);
  }
#endif
  assert(r.rps[static_cast<int>(AppRequest::kNone)] == 0.0);
  reservations_[tenant] = r;
}

Reservation ResourcePolicy::GetReservation(TenantId tenant) const {
  const auto it = reservations_.find(tenant);
  return it == reservations_.end() ? Reservation{} : it->second;
}

void ResourcePolicy::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  last_roll_time_ = loop_.Now();
  last_total_vops_ = scheduler_.tracker().total_vops();
  // Provision immediately from fallback prices, then on every interval.
  RunIntervalStep();
  auto reschedule = [this](auto&& self) -> void {
    pending_event_ = loop_.ScheduleAfter(options_.interval, [this, self] {
      if (!running_) {
        return;
      }
      RunIntervalStep();
      self(self);
    });
  };
  reschedule(reschedule);
}

void ResourcePolicy::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_event_ != 0) {
    loop_.Cancel(pending_event_);
    pending_event_ = 0;
  }
}

double ResourcePolicy::ObjectSizePrice(TenantId tenant, AppRequest app) const {
  const CostModel& model = scheduler_.cost_model();
  ssd::IoType type = ssd::IoType::kRead;
  switch (app) {
    case AppRequest::kGet:
    case AppRequest::kScan:
      type = ssd::IoType::kRead;
      break;
    case AppRequest::kPut:
      type = ssd::IoType::kWrite;
      break;
    case AppRequest::kNone:
      break;  // unattributed classes are never priced; kRead is inert
  }
  double mean = scheduler_.tracker().MeanRequestSize(tenant, app);
  if (mean <= 0.0) {
    mean = 1024.0;  // nothing observed yet: price a 1KB object
  }
  // VOPs for one object IO of the mean size, per normalized request.
  const uint32_t size = static_cast<uint32_t>(std::max(1.0, mean));
  return model.Cost(type, size) / NormalizedRequests(size);
}

double ResourcePolicy::PriceOf(TenantId tenant, AppRequest app) const {
  const double object_price = ObjectSizePrice(tenant, app);
  if (options_.mode == ProfileMode::kObjectSizeOnly) {
    return object_price;
  }
  AppRequestProfile p = scheduler_.tracker().Profile(tenant, app, object_price);
  // Re-replication catch-up is membership-event work, not steady-state
  // per-request amplification like FLUSH/COMPACT: its VOPs are charged to
  // the tenant's allocation as they happen, but baking them into the
  // per-request price would overbook the node for intervals after every
  // recovery and scale down the surviving tenants' allocations.
  p.indirect[static_cast<size_t>(InternalOp::kReplicate)] = 0.0;
  return p.total();
}

AppRequestProfile ResourcePolicy::ProfileOf(TenantId tenant,
                                            AppRequest app) const {
  return scheduler_.tracker().Profile(tenant, app,
                                      ObjectSizePrice(tenant, app));
}

void ResourcePolicy::RunIntervalStep() {
  ResourceTracker& tracker = scheduler_.tracker();

  // Feed the live capacity monitor with the interval's achieved VOP/s.
  const SimTime now = loop_.Now();
  const double elapsed_secs =
      now > last_roll_time_ ? ToSeconds(now - last_roll_time_) : 0.0;
  if (elapsed_secs > 0.0) {
    const double vops = tracker.total_vops();
    capacity_.ObserveThroughput((vops - last_total_vops_) / elapsed_secs);
    last_total_vops_ = vops;
    last_roll_time_ = now;
  }

  tracker.Roll();

  // Price every reservation under the current profiles: the reserved rate
  // of every application request class times its per-class VOP price.
  std::map<TenantId, double> required;
  double total = 0.0;
  for (const auto& [tenant, res] : reservations_) {
    double r = 0.0;
    for (int a = kFirstAppRequest; a < kNumAppRequests; ++a) {
      if (res.rps[a] > 0.0) {
        r += res.rps[a] * PriceOf(tenant, static_cast<AppRequest>(a));
      }
    }
    required[tenant] = r;
    total += r;
  }

  // Overbooking: scale every allocation proportionally into the floor and
  // notify the higher-level policy.
  double scale = 1.0;
  const double cap = capacity_.provisionable();
  const bool overbooked = total > cap && total > 0.0;
  if (overbooked) {
    scale = cap / total;
    if (overflow_cb_) {
      overflow_cb_(OverflowEvent{now, total, cap, scale});
    }
  }
  for (const auto& [tenant, r] : required) {
    scheduler_.SetAllocation(tenant, r * scale);
  }

  // SLA conformance: did each tenant achieve its priced reservation over the
  // interval that just ended? Demand-gated — an idle tenant below its
  // reservation is not a violation, a backlogged one is. Demand is measured
  // over the interval (busy time), not sampled at its end: the guarantee is
  // conditional on offered load, and one in-flight request at the sampling
  // instant must not turn a tenant-side load dip into a violation.
  std::map<TenantId, std::pair<double, bool>> achieved;
  if (elapsed_secs > 0.0) {
    for (const auto& [tenant, res] : reservations_) {
      const double vops_now = tracker.Stats(tenant).vops;
      double& last = last_tenant_vops_[tenant];
      const double rate = (vops_now - last) / elapsed_secs;
      last = vops_now;
      const double busy_secs = ToSeconds(scheduler_.ConsumeDemandTime(tenant));
      const bool demand_pending =
          busy_secs >= options_.sla_demand_fraction * elapsed_secs;
      const bool violated =
          sla_.RecordInterval(tenant, now, required[tenant], rate,
                              demand_pending, options_.sla_tolerance);
      achieved[tenant] = {rate, violated};
    }
  }

  // Audit trail: everything this step read and decided, per tenant.
  if (options_.audit_capacity > 0) {
    obs::AuditRecord rec;
    rec.time_ns = now;
    rec.total_required_vops = total;
    rec.capacity_floor_vops = cap;
    rec.scale = scale;
    rec.overbooked = overbooked;
    rec.tenants.reserve(reservations_.size());
    for (const auto& [tenant, res] : reservations_) {
      obs::AuditTenantEntry e;
      e.tenant = tenant;
      for (int a = kFirstAppRequest; a < kNumAppRequests; ++a) {
        const AppRequest app = static_cast<AppRequest>(a);
        const AppRequestProfile p = ProfileOf(tenant, app);
        e.reserved_rps[a] = res.rps[a];
        e.profile_direct[a] = p.direct;
        e.profile_flush[a] = p.indirect[static_cast<int>(InternalOp::kFlush)];
        e.profile_compact[a] =
            p.indirect[static_cast<int>(InternalOp::kCompact)];
        e.price[a] = PriceOf(tenant, app);
      }
      if (const auto cit = compaction_policies_.find(tenant);
          cit != compaction_policies_.end()) {
        e.compaction_policy = cit->second;
      }
      e.required_vops = required[tenant];
      e.granted_vops = required[tenant] * scale;
      const auto ach = achieved.find(tenant);
      if (ach != achieved.end()) {
        e.achieved_vops = ach->second.first;
        e.sla_violated = ach->second.second;
      }
      rec.tenants.push_back(e);
    }
    audit_log_.Append(std::move(rec));
  }
}

}  // namespace libra::iosched
