file(REMOVE_RECURSE
  "liblibra_fs.a"
)
