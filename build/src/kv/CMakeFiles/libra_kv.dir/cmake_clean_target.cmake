file(REMOVE_RECURSE
  "liblibra_kv.a"
)
