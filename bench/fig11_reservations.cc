// Figure 11: achieving app-request reservations, with and without
// app-request resource-profile tracking.
//
// Eight tenants: three read-heavy (90:10, ~4KB GETs / 16KB PUTs), two
// mixed (50:50, 64KB GETs / 16KB PUTs), three write-heavy (10:90, 128KB
// GETs and PUTs); log-normal sizes, sigma 1KB. Phases:
//   phase 0 (profiling): equal shares, work-conserving; profiles build.
//   phase 1: reservations sized to split the provisionable floor evenly
//            across tenants at their amplified cost (the paper's setup).
//   phase 2: read-heavy reservations -50%, write-heavy +50%.
// With full profile tracking Libra reprovisions the write-heavy tenants'
// amplified FLUSH/COMPACT cost and meets the raised reservation; with
// object-size-only pricing ("no profile") the allocation misses the
// secondary IO and the write-heavy tenants fall short.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/iosched/capacity.h"
#include "src/kv/node_stats.h"
#include "src/metrics/meter.h"

namespace libra::bench {
namespace {

using iosched::AppRequest;
using iosched::ProfileMode;
using iosched::Reservation;
using iosched::TenantId;

struct Group {
  const char* name;
  int first_tenant;
  int count;
  double get_fraction;
  double get_kb;
  double put_kb;
  // Scale applied to the group's reservation in phase 2.
  double phase2_scale;
};

constexpr Group kGroups[] = {
    {"read-heavy", 0, 3, 0.9, 4, 16, 0.5},
    {"mixed", 3, 2, 0.5, 64, 16, 1.0},
    {"write-heavy", 5, 3, 0.1, 128, 128, 1.5},
};

struct PhaseResult {
  double get_rate = 0.0;  // normalized kGET/s per tenant (group mean)
  double put_rate = 0.0;
  double get_res = 0.0;   // reservation at that phase
  double put_res = 0.0;
};

// Normalized GET:PUT demand ratio of a group.
double NormalizedRatio(const Group& g) {
  return (g.get_fraction * g.get_kb) / ((1.0 - g.get_fraction) * g.put_kb);
}

// One full simulation per profile mode; modes are independent, so main()
// fans them across --jobs workers. Everything side-effecting (tables,
// stats-json sections) is returned and emitted serially by the caller, in
// mode order — the output is byte-identical to a serial run.
struct ModeResult {
  std::vector<std::vector<PhaseResult>> groups;
  std::string stats_name;
  std::string stats_json;
};

ModeResult RunMode(const BenchArgs& args, ProfileMode mode) {
  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  opt.policy_options.mode = mode;
  // Trace only the profile-tracking mode: one --trace-json file per run.
  if (mode == ProfileMode::kFull) {
    ApplyTraceFlags(args, opt);
  }
  kv::StorageNode node(loop, opt);

  std::vector<std::unique_ptr<workload::KvTenantWorkload>> workloads;
  std::vector<workload::KvTenantWorkload*> preloads;
  for (const Group& g : kGroups) {
    for (int i = 0; i < g.count; ++i) {
      const TenantId t = static_cast<TenantId>(g.first_tenant + i);
      (void)node.AddTenant(t, Reservation{});
      workload::KvWorkloadSpec spec;
      spec.get_fraction = g.get_fraction;
      spec.get_size = {g.get_kb * 1024.0, 1024.0};
      spec.put_size = {g.put_kb * 1024.0, 1024.0};
      spec.live_bytes_target = args.full ? 32ULL * kMiB : 12ULL * kMiB;
      spec.workers = 8;
      workloads.push_back(std::make_unique<workload::KvTenantWorkload>(
          loop, node, t, spec, 1000 + t));
      preloads.push_back(workloads.back().get());
    }
  }
  RunPreloads(loop, preloads);

  const SimDuration phase = args.full ? 100 * kSecond : 50 * kSecond;
  const SimTime t0 = loop.Now();
  const SimTime t1 = t0 + phase;      // reservations set
  const SimTime t2 = t1 + phase;      // reservations shifted
  const SimTime t_end = t2 + phase;

  node.Start();

  // Measure the node's achievable VOP throughput for this tenant mix over
  // the tail of the profiling phase; reservations are sized to divide it
  // evenly (the paper's setup: reservations "evenly divide the underlying
  // IO resources given their full (amplified) IO cost"), so they bind.
  double probe_vops = 0.0;
  double achievable_vops_rate = 0.0;
  loop.ScheduleAt(t1 - 10 * kSecond,
                  [&] { probe_vops = node.tracker().total_vops(); });
  loop.ScheduleAt(t1 - kMillisecond, [&] {
    achievable_vops_rate =
        (node.tracker().total_vops() - probe_vops) / ToSeconds(10 * kSecond);
  });

  // Phase transitions: reservations computed from live profiles so that
  // each tenant's VOP allocation is 1/8 of the provisionable floor.
  std::vector<Reservation> base_res(8);
  auto set_reservations = [&](double rh_scale, double wh_scale) {
    for (const Group& g : kGroups) {
      const double scale = g.first_tenant == 0   ? rh_scale
                           : g.first_tenant == 5 ? wh_scale
                                                 : 1.0;
      for (int i = 0; i < g.count; ++i) {
        const TenantId t = static_cast<TenantId>(g.first_tenant + i);
        const double price_get =
            node.policy().ProfileOf(t, AppRequest::kGet).total();
        const double price_put =
            node.policy().ProfileOf(t, AppRequest::kPut).total();
        // Reservations sit at the edge of the achievable capacity (the
        // paper's Fig. 11 shows achieved ~= reserved for the mixed and
        // write-heavy groups): an even 1/8 split plus the slack work
        // conservation was already delivering.
        const double target = 1.1 * achievable_vops_rate / 8.0;
        const double ratio = NormalizedRatio(g);
        const double v_put = target / (ratio * price_get + price_put);
        Reservation r{ratio * v_put * scale, v_put * scale};
        base_res[t] = Reservation{ratio * v_put, v_put};
        node.UpdateReservation(t, r);
      }
    }
  };
  loop.ScheduleAt(t1, [&] { set_reservations(1.0, 1.0); });
  loop.ScheduleAt(t2, [&] { set_reservations(0.5, 1.5); });

  // Phase boundary snapshots of normalized request totals.
  struct Snap {
    double gets[8], puts[8];
  };
  Snap s1{}, s2{}, s3{};
  auto snap = [&](Snap* out) {
    for (TenantId t = 0; t < 8; ++t) {
      out->gets[t] = node.tracker().NormalizedRequestsTotal(t, AppRequest::kGet);
      out->puts[t] = node.tracker().NormalizedRequestsTotal(t, AppRequest::kPut);
    }
  };
  loop.ScheduleAt(t1, [&] { snap(&s1); });
  loop.ScheduleAt(t2, [&] { snap(&s2); });
  loop.ScheduleAt(t_end, [&] { snap(&s3); });

  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      wl->Start(group, t_end);
    }
    // The started policy keeps a timer pending forever: bound the run,
    // stop it, then drain the finite remainder.
    loop.RunUntil(t_end + kSecond);
    node.Stop();
    loop.Run();
  }

  ModeResult result;
  // Full-stack observability snapshot for --stats-json, taken while the
  // node (and its per-tenant histograms / audit log) is still alive; the
  // caller registers it (serially) once the mode finishes.
  result.stats_name = mode == ProfileMode::kFull ? "node_snapshot_full_profile"
                                                 : "node_snapshot_object_size";
  result.stats_json = kv::NodeStatsToJson(node.Snapshot());
  // Export the trace while the node (which owns the collector) is alive.
  if (mode == ProfileMode::kFull && TraceRequested(args)) {
    WriteTraceJson(args, {{node.scheduler().spans(), 0, "fig11_full_profile"}});
  }

  // Fold into per-group phase means.
  const double secs = ToSeconds(phase);
  for (const Group& g : kGroups) {
    std::vector<PhaseResult> phases(2);
    for (int i = 0; i < g.count; ++i) {
      const TenantId t = static_cast<TenantId>(g.first_tenant + i);
      phases[0].get_rate += (s2.gets[t] - s1.gets[t]) / secs / g.count;
      phases[0].put_rate += (s2.puts[t] - s1.puts[t]) / secs / g.count;
      phases[1].get_rate += (s3.gets[t] - s2.gets[t]) / secs / g.count;
      phases[1].put_rate += (s3.puts[t] - s2.puts[t]) / secs / g.count;
      phases[0].get_res += base_res[t].get_rps / g.count;
      phases[0].put_res += base_res[t].put_rps / g.count;
    }
    const double scale = g.first_tenant == 0 ? 0.5 : g.first_tenant == 5 ? 1.5 : 1.0;
    phases[1].get_res = phases[0].get_res * scale;
    phases[1].put_res = phases[0].put_res * scale;
    result.groups.push_back(phases);
  }
  return result;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);

  using libra::iosched::ProfileMode;
  const std::pair<ProfileMode, const char*> modes[] = {
      {ProfileMode::kFull, "Libra (profile tracking)"},
      {ProfileMode::kObjectSizeOnly, "No profile (object-size pricing)"}};

  // The two profile modes are independent simulations: run them across
  // --jobs workers, then emit in the fixed mode order. --sim-threads is
  // honored as a sweep width too — this figure is single-node, so its
  // parallelism is mode-level (one worker per simulation), not the
  // cluster demos' per-node epoch engine; output is identical either way.
  TableFor(libra::ssd::Intel320Profile());  // warm before the pool starts
  SweepRunner runner(std::max(args.jobs, args.sim_threads));
  const std::vector<ModeResult> mode_results =
      runner.Map<ModeResult>(std::size(modes), [&](size_t i) {
        return RunMode(args, modes[i].first);
      });

  for (size_t mi = 0; mi < std::size(modes); ++mi) {
    const auto& [mode, label] = modes[mi];
    (void)mode;
    const std::vector<std::vector<PhaseResult>>& results =
        mode_results[mi].groups;
    AddStatsSection(args, mode_results[mi].stats_name,
                    mode_results[mi].stats_json);
    Section(args, std::string("Figure 11: ") + label);
    libra::metrics::Table out({"group", "phase", "GET_kreq/s", "GET_res",
                               "GET_ratio", "GET_met", "PUT_kreq/s",
                               "PUT_res", "PUT_ratio", "PUT_met"});
    // A reservation is "met" within a 5% SLA band.
    const auto met = [](double achieved, double reserved) {
      return achieved >= 0.95 * reserved ? "yes" : "NO";
    };
    for (size_t gi = 0; gi < results.size(); ++gi) {
      for (int p = 0; p < 2; ++p) {
        const PhaseResult& r = results[gi][p];
        out.AddRow({kGroups[gi].name, p == 0 ? "even" : "shifted",
                    libra::metrics::FormatDouble(r.get_rate / 1000.0, 2),
                    libra::metrics::FormatDouble(r.get_res / 1000.0, 2),
                    libra::metrics::FormatDouble(r.get_rate / r.get_res, 2),
                    met(r.get_rate, r.get_res),
                    libra::metrics::FormatDouble(r.put_rate / 1000.0, 2),
                    libra::metrics::FormatDouble(r.put_res / 1000.0, 2),
                    libra::metrics::FormatDouble(r.put_rate / r.put_res, 2),
                    met(r.put_rate, r.put_res)});
      }
    }
    Emit(args, out);
  }
  std::printf(
      "paper signature: with tracking, achieved/reserved ratios are uniform "
      "across groups (everyone absorbs the same small trim when the node is "
      "booked to its edge); without tracking, the write-heavy tenants' "
      "raised reservation is violated (~0.92-0.93) while the fairly-priced "
      "mixed tenants over-serve at ~1.4x -- the secondary-IO blind spot.\n");
  return 0;
}
