// Discrete-event SSD device model.
//
// An IO op flows through three resources whose contention produces the
// paper's non-linear performance (§3.3, Fig. 3) and interference (§3.2,
// Fig. 4):
//
//   controller  — single firmware pipeline; per-op + per-page cost. Binds
//                 throughput for small ops (the IOPS ceiling).
//   dies        — num_dies parallel NAND units. Reads go to the dies their
//                 stripes live on; writes go where the FTL's append points
//                 place them. Programs are much longer than reads, and a die
//                 switching between read and write service pays a penalty —
//                 together the source of read/write interference. GC work
//                 (valid-page relocation + erase) also occupies dies.
//   bus         — shared host link (SATA); serializes data transfer and
//                 binds throughput for large ops (the bandwidth ceiling).
//
// Timing uses resource reservation: at submit, the op's occupancy of each
// resource is computed against per-resource "free-at" clocks and a single
// completion event is scheduled. This keeps the simulator at O(dies) work
// and one event per IO, so a 400-second experiment replays in seconds.
//
// The device does not enforce a queue depth; the Libra scheduler dispatches
// at most kSsdQueueDepth (32) concurrent ops, matching the paper's setup.

#ifndef LIBRA_SRC_SSD_DEVICE_H_
#define LIBRA_SRC_SSD_DEVICE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/small_fn.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/ftl.h"
#include "src/ssd/io_types.h"
#include "src/ssd/profile.h"

namespace libra::ssd {

// The paper runs all experiments at SSD queue depth 32.
inline constexpr int kSsdQueueDepth = 32;

struct DeviceOptions {
  // Ablation switches (DESIGN.md §5): disable to show which mechanism
  // produces which evaluation artifact.
  bool enable_gc = true;
  bool enable_rw_switch_penalty = true;
  bool enable_seq_detection = true;

  // Fault injection (DESIGN.md §12). Probability that a read op hits a
  // latent media error whose ECC/checksum failure forces a re-read of the
  // affected stripe (the fallback always succeeds; the cost is the extra
  // die occupancy). The RNG is drawn only when the rate is non-zero so a
  // zero-rate device stays bit-identical to one built before this knob
  // existed.
  double latent_read_error_rate = 0.0;
  uint64_t fault_seed = 0x9E3779B97F4A7C15ULL;
};

struct DeviceStats {
  uint64_t reads_completed = 0;
  uint64_t writes_completed = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t gc_pages_moved = 0;
  uint64_t blocks_erased = 0;
  double write_amp = 1.0;
  // Time-weighted average of in-flight ops since device construction.
  double avg_queue_depth = 0.0;
  // Fault-injection counters.
  uint64_t gc_stalls_injected = 0;
  uint64_t latent_read_errors = 0;
};

class SsdDevice {
 public:
  // Inline-storage callback: completions are pooled in the device (see
  // pending_ below), so submitting an IO performs no heap allocation.
  using CompletionFn = sim::SmallFn;

  SsdDevice(sim::EventLoop& loop, DeviceProfile profile,
            DeviceOptions options = {});

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // Submits an IO; `done` runs (via the event loop) when it completes.
  void Submit(const IoRequest& req, CompletionFn done);

  // Awaitable convenience used by calibration and tests; the scheduler uses
  // the callback form.
  sim::Task<void> SubmitAwait(IoRequest req);

  // Marks a logical extent as dead (filesystem TRIM on delete).
  void Trim(uint64_t offset, uint32_t size);

  // Populates the FTL mapping for [0, bytes) without consuming simulated
  // time — preconditioning before measurement, as one would precondition a
  // physical SSD before benchmarking it.
  void Prefill(uint64_t bytes);

  // Fault injection: occupies every die for `stall` starting from its
  // current free-at clock, modeling a firmware-initiated GC burst that
  // host IO must wait behind.
  void InjectGcStall(SimDuration stall);

  int inflight() const { return inflight_; }
  const DeviceProfile& profile() const { return profile_; }
  DeviceStats stats() const;

 private:
  struct PageSpan {
    uint64_t first_page;
    uint32_t npages;
  };
  PageSpan SpanOf(const IoRequest& req) const;

  // Returns true (and records the stream) when `req` continues one of the
  // recently seen access streams.
  bool DetectSequential(const IoRequest& req);

  // Occupies a die for `busy` starting no earlier than `earliest`; applies
  // the read/write switch penalty. Returns the finish time.
  SimTime OccupyDie(int die, IoType type, SimDuration busy, SimTime earliest);

  SimDuration GcPageCost() const;

  // In-flight completion records, recycled through a free list. The
  // completion event captures only {this, index}, which fits the event
  // loop's inline callback storage; the record itself holds the caller's
  // callback and the fields the completion path needs. Live records are
  // bounded by the in-flight IO count (the scheduler's queue depth).
  struct PendingIo {
    CompletionFn done;
    IoType type = IoType::kRead;
    uint32_t size = 0;
    uint32_t next_free = 0;
  };
  uint32_t AllocPending();
  void CompleteIo(uint32_t index);

  sim::EventLoop& loop_;
  DeviceProfile profile_;
  DeviceOptions options_;
  Ftl ftl_;

  SimTime ctrl_free_at_ = 0;
  SimTime bus_free_at_ = 0;
  std::vector<SimTime> die_free_at_;
  std::vector<IoType> die_last_type_;

  // Ring of recent stream end-offsets for sequentiality detection.
  static constexpr int kMaxStreams = 16;
  std::array<uint64_t, kMaxStreams> stream_ends_{};
  int stream_cursor_ = 0;

  // Advances the queue-depth time integral to now, then applies `delta`.
  void UpdateInflight(int delta);

  std::vector<PendingIo> pending_;
  uint32_t pending_free_ = kNilPending;
  static constexpr uint32_t kNilPending = 0xFFFFFFFFu;

  int inflight_ = 0;
  // Queue-depth integral: sum of inflight * dt since construction, for the
  // time-weighted average depth reported in stats().
  SimTime qd_start_time_ = 0;
  SimTime qd_last_change_ = 0;
  double qd_integral_ = 0.0;
  uint64_t reads_completed_ = 0;
  uint64_t writes_completed_ = 0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;

  // Fault-injection state. fault_rng_ is advanced only when
  // latent_read_error_rate > 0 (see DeviceOptions).
  uint64_t fault_rng_;
  uint64_t gc_stalls_injected_ = 0;
  uint64_t latent_read_errors_ = 0;
  double NextFaultUniform();
};

}  // namespace libra::ssd

#endif  // LIBRA_SRC_SSD_DEVICE_H_
