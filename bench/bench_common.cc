#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/obs/json.h"

#include "src/common/rng.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"
#include "src/workload/workload.h"

namespace libra::bench {
namespace {

// --stats-json capture: sections accumulate as (name, raw JSON document)
// pairs and are written as one file when the process exits, so every bench
// gets the flag without changing its main().
struct StatsCapture {
  std::string path;
  std::string current_section = "output";
  std::vector<std::pair<std::string, std::string>> sections;
};

StatsCapture* g_stats = nullptr;

void WriteStatsFile() {
  if (g_stats == nullptr || g_stats->path.empty()) {
    return;
  }
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("sections");
  w.BeginArray();
  for (const auto& [name, json] : g_stats->sections) {
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("data");
    w.Raw(json);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  if (std::FILE* f = std::fopen(g_stats->path.c_str(), "w"); f != nullptr) {
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "stats-json: cannot write %s\n",
                 g_stats->path.c_str());
  }
}

}  // namespace

BenchArgs ParseCommonFlags(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      args.stats_json = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      args.jobs = std::atoi(argv[i] + 7);
      if (args.jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        args.jobs = hw > 0 ? static_cast<int>(hw) : 1;
      }
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      args.nodes = std::max(1, std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      args.trace_json = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--sim-threads=", 14) == 0) {
      args.sim_threads = std::atoi(argv[i] + 14);
      if (args.sim_threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        args.sim_threads = hw > 0 ? static_cast<int>(hw) : 1;
      }
    } else if (std::strncmp(argv[i], "--rpc-latency-us=", 17) == 0) {
      args.rpc_latency =
          static_cast<SimDuration>(std::max(0, std::atoi(argv[i] + 17))) *
          kMicrosecond;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      const char* v = argv[i] + 15;
      if (std::strncmp(v, "1/", 2) == 0) {  // accept both "N" and "1/N"
        v += 2;
      }
      args.trace_sample = static_cast<uint32_t>(std::max(1, std::atoi(v)));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "flags: --full (paper-size grids)  --csv (CSV output)  "
          "--stats-json=PATH (JSON stats snapshot)  "
          "--jobs=N (parallel sweep workers; 0 = all cores)  "
          "--nodes=N (cluster size, multi-node benches)  "
          "--trace-json=PATH (Chrome/Perfetto span export)  "
          "--trace-sample=1/N (trace 1 of every N root requests)  "
          "--sim-threads=N (parallel sim engine workers; 0 = all cores)  "
          "--rpc-latency-us=N (cross-node RPC latency; selects the parallel "
          "engine when > 0)\n");
    }
  }
  if (!args.stats_json.empty() && g_stats == nullptr) {
    g_stats = new StatsCapture();
    g_stats->path = args.stats_json;
    std::atexit(WriteStatsFile);
  }
  return args;
}

void WriteTraceJson(const BenchArgs& args,
                    const std::vector<obs::SpanExportGroup>& groups) {
  if (args.trace_json.empty()) {
    return;
  }
  const std::string json = obs::SpansToChromeTraceJson(groups);
  if (std::FILE* f = std::fopen(args.trace_json.c_str(), "w"); f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "trace-json: cannot write %s\n",
                 args.trace_json.c_str());
  }
}

const ssd::CalibrationTable& TableFor(const ssd::DeviceProfile& profile) {
  // The lock covers lookup and (cold) calibration; map nodes are stable, so
  // returned references stay valid across later insertions.
  static std::mutex mu;
  static std::map<std::string, ssd::CalibrationTable>* cache =
      new std::map<std::string, ssd::CalibrationTable>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(profile.name);
  if (it == cache->end()) {
    ssd::CalibrationOptions opt;
    opt.warmup = 300 * kMillisecond;
    opt.measure = 1 * kSecond;
    it = cache->emplace(profile.name, ssd::Calibrate(profile, opt)).first;
  }
  return it->second;
}

void SweepRunner::ForEach(size_t count,
                          const std::function<void(size_t)>& fn) const {
  if (jobs_ <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) {
          first_error = std::current_exception();
        }
      }
    }
  };
  const size_t nthreads =
      std::min<size_t>(static_cast<size_t>(jobs_), count);
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (size_t t = 0; t < nthreads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

void Emit(const BenchArgs& args, const metrics::Table& table) {
  std::fputs(args.csv ? table.ToCsv().c_str() : table.ToText().c_str(),
             stdout);
  std::fputc('\n', stdout);
  if (g_stats != nullptr) {
    g_stats->sections.emplace_back(g_stats->current_section, table.ToJson());
  }
}

void Section(const BenchArgs& args, const std::string& title) {
  if (!args.csv) {
    std::printf("== %s ==\n", title.c_str());
  }
  if (g_stats != nullptr) {
    g_stats->current_section = title;
  }
}

void AddStatsSection(const BenchArgs& args, const std::string& name,
                     std::string json) {
  (void)args;
  if (g_stats != nullptr) {
    g_stats->sections.emplace_back(name, std::move(json));
  }
}

std::vector<uint32_t> SweepSizesKb(bool full) {
  if (full) {
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
  }
  return {1, 4, 16, 64, 256};
}

RawCellResult RunRawCell(const ssd::DeviceProfile& profile,
                         const RawCellSpec& spec) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, profile);
  const uint64_t working_set =
      std::min<uint64_t>(1ULL * kGiB, profile.capacity_bytes / 2);
  device.Prefill(working_set);
  iosched::IoScheduler scheduler(
      loop, device,
      iosched::MakeCostModel(spec.cost_model, TableFor(profile)));
  // VOP accounting for the result always uses the exact model, regardless
  // of the model under test (Fig. 9's "VOP allocation accuracy" compares
  // true consumption).
  iosched::ExactCostModel exact(TableFor(profile));

  RawCellResult result;
  result.tenant_vops.assign(spec.num_tenants, 0.0);
  result.tenant_exact_vops.assign(spec.num_tenants, 0.0);
  result.tenant_iops.assign(spec.num_tenants, 0.0);
  result.tenant_bytes.assign(spec.num_tenants, 0.0);
  result.tenant_is_reader.assign(spec.num_tenants, false);

  std::vector<std::unique_ptr<workload::RawIoWorkload>> workloads;
  const SimTime end_time = spec.warmup + spec.measure;
  for (int t = 0; t < spec.num_tenants; ++t) {
    scheduler.SetAllocation(t, 1000.0);  // equal allocations
    const bool first_half = t < spec.num_tenants / 2;
    const double my_size = first_half ? spec.size_a_bytes : spec.size_b_bytes;
    workload::RawIoSpec w;
    switch (spec.mode) {
      case CellMode::kMixed:
        w.read_fraction = spec.read_fraction;
        w.read_size = {spec.size_a_bytes, spec.sigma_bytes, 1024, 1ULL * kMiB};
        w.write_size = {spec.size_b_bytes, spec.sigma_bytes, 1024, 1ULL * kMiB};
        result.tenant_is_reader[t] = spec.read_fraction >= 0.5;
        break;
      case CellMode::kReadWrite:
        w.read_fraction = first_half ? 1.0 : 0.0;
        w.read_size = {my_size, spec.sigma_bytes, 1024, 1ULL * kMiB};
        w.write_size = {my_size, spec.sigma_bytes, 1024, 1ULL * kMiB};
        result.tenant_is_reader[t] = first_half;
        break;
      case CellMode::kReadRead:
        w.read_fraction = 1.0;
        w.read_size = {my_size, spec.sigma_bytes, 1024, 1ULL * kMiB};
        result.tenant_is_reader[t] = true;
        break;
      case CellMode::kWriteWrite:
        w.read_fraction = 0.0;
        w.write_size = {my_size, spec.sigma_bytes, 1024, 1ULL * kMiB};
        result.tenant_is_reader[t] = false;
        break;
    }
    w.workers = spec.workers_per_tenant;
    w.working_set_bytes = working_set;
    workloads.push_back(std::make_unique<workload::RawIoWorkload>(
        loop, scheduler, static_cast<iosched::TenantId>(t), w,
        spec.seed + static_cast<uint64_t>(t) * 7919));
  }

  std::vector<iosched::TenantIoStats> at_warmup(spec.num_tenants);
  {
    sim::TaskGroup group(loop);
    for (auto& w : workloads) {
      w->Start(group, end_time);
    }
    loop.ScheduleAt(spec.warmup, [&] {
      for (int t = 0; t < spec.num_tenants; ++t) {
        at_warmup[t] = scheduler.tracker().Stats(t);
      }
    });
    loop.Run();
  }

  const double secs = ToSeconds(spec.measure);
  for (int t = 0; t < spec.num_tenants; ++t) {
    const auto& s = scheduler.tracker().Stats(t);
    const double r_ops =
        static_cast<double>(s.read_ops - at_warmup[t].read_ops);
    const double r_bytes =
        static_cast<double>(s.read_bytes - at_warmup[t].read_bytes);
    const double w_ops =
        static_cast<double>(s.write_ops - at_warmup[t].write_ops);
    const double w_bytes =
        static_cast<double>(s.write_bytes - at_warmup[t].write_bytes);
    result.tenant_iops[t] = (r_ops + w_ops) / secs;
    result.tenant_bytes[t] = (r_bytes + w_bytes) / secs;
    result.tenant_vops[t] = (s.vops - at_warmup[t].vops) / secs;
    // Re-price physical IO with the exact model (per-chunk mean size): the
    // true VOP throughput, regardless of the model under test.
    double exact_vops = 0.0;
    if (r_ops > 0) {
      exact_vops += r_ops * exact.Cost(ssd::IoType::kRead,
                                       static_cast<uint32_t>(r_bytes / r_ops));
    }
    if (w_ops > 0) {
      exact_vops += w_ops * exact.Cost(ssd::IoType::kWrite,
                                       static_cast<uint32_t>(w_bytes / w_ops));
    }
    result.tenant_exact_vops[t] = exact_vops / secs;
  }
  for (double v : result.tenant_exact_vops) {
    result.total_vops_per_sec += v;
  }
  return result;
}

}  // namespace libra::bench
