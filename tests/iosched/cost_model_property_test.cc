// Parameterized property sweeps over the cost models: invariants that must
// hold for every (model, op type, size) combination.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/iosched/cost_model.h"

namespace libra::iosched {
namespace {

ssd::CalibrationTable PropertyTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

using ModelTypeParam = std::tuple<std::string, ssd::IoType>;

class CostModelProperty : public ::testing::TestWithParam<ModelTypeParam> {
 protected:
  CostModelProperty()
      : table_(PropertyTable()),
        model_(MakeCostModel(std::get<0>(GetParam()), table_)),
        type_(std::get<1>(GetParam())) {}

  ssd::CalibrationTable table_;
  std::unique_ptr<CostModel> model_;
  ssd::IoType type_;
};

TEST_P(CostModelProperty, CostIsPositiveEverywhere) {
  for (uint32_t size = 256; size <= 1024 * 1024; size *= 2) {
    EXPECT_GT(model_->Cost(type_, size), 0.0) << size;
  }
}

TEST_P(CostModelProperty, CostIsMonotoneInSize) {
  double prev = 0.0;
  for (uint32_t size = 1024; size <= 512 * 1024; size += 4096) {
    const double c = model_->Cost(type_, size);
    EXPECT_GE(c, prev * 0.999) << "size " << size;  // tiny numeric slack
    prev = c;
  }
}

TEST_P(CostModelProperty, MaxVopsIsTheSharedNormalizer) {
  EXPECT_NEAR(model_->max_vops(), table_.max_iops(), 1e-6);
}

TEST_P(CostModelProperty, CostBoundedByPhysicalExtremes) {
  // No op can cost less than ~1/10 of a 1KB op or more than 100x the exact
  // 256KB price — sanity envelope across all models.
  ExactCostModel exact(table_);
  const double lo = 0.1 * exact.Cost(type_, 1024);
  const double hi = 100.0 * exact.Cost(type_, 256 * 1024);
  for (uint32_t kb : ssd::kSweepSizesKb) {
    const double c = model_->Cost(type_, kb * 1024);
    EXPECT_GE(c, lo) << kb;
    EXPECT_LE(c, hi) << kb;
  }
}

TEST_P(CostModelProperty, DeterministicEvaluation) {
  for (uint32_t kb : ssd::kSweepSizesKb) {
    EXPECT_DOUBLE_EQ(model_->Cost(type_, kb * 1024),
                     model_->Cost(type_, kb * 1024));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothTypes, CostModelProperty,
    ::testing::Combine(::testing::Values("exact", "fitted", "constant",
                                         "linear", "fixed"),
                       ::testing::Values(ssd::IoType::kRead,
                                         ssd::IoType::kWrite)),
    [](const ::testing::TestParamInfo<ModelTypeParam>& info) {
      return std::get<0>(info.param) + "_" +
             std::string(ssd::IoTypeName(std::get<1>(info.param)));
    });

// --- exact-model-specific sweep: pure-workload VOP-rate invariance ---

class ExactModelSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ExactModelSizeSweep, PureWorkloadVopRateIsSizeInvariant) {
  // cost(s) * iops(s) == max_iops at every calibrated point: a backlogged
  // pure workload consumes the same VOP/s regardless of op size (§4.3).
  const ssd::CalibrationTable table = PropertyTable();
  ExactCostModel model(table);
  const uint32_t kb = GetParam();
  const double read_rate =
      model.Cost(ssd::IoType::kRead, kb * 1024) * table.RandReadIops(kb * 1024);
  const double write_rate = model.Cost(ssd::IoType::kWrite, kb * 1024) *
                            table.RandWriteIops(kb * 1024);
  EXPECT_NEAR(read_rate, table.max_iops(), table.max_iops() * 1e-9);
  EXPECT_NEAR(write_rate, table.max_iops(), table.max_iops() * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CalibratedSizes, ExactModelSizeSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 64u,
                                           128u, 256u));

}  // namespace
}  // namespace libra::iosched
