// Workload generators for the evaluation harnesses.
//
// RawIoWorkload drives the Libra scheduler directly with backlogged
// low-level reads/writes (paper §4.2/§6.2 experiments: Figs. 4, 5, 7, 9).
// KvTenantWorkload drives the full storage node with GET/PUT mixes and
// log-normal request sizes (Figs. 2, 10, 11, 12). Both are closed-loop:
// a fixed number of workers each keep one request outstanding, matching the
// paper's "backlogged demand specified by a bounded number of concurrent IO
// request workers".

#ifndef LIBRA_SRC_WORKLOAD_WORKLOAD_H_
#define LIBRA_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/scheduler.h"
#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace libra::workload {

// Request-size distribution: log-normal with byte mean/sigma; sigma 0 means
// a fixed size.
struct SizeSpec {
  double mean_bytes = 4096.0;
  double sigma_bytes = 0.0;
  uint64_t min_bytes = 1;
  uint64_t max_bytes = 1ULL * kMiB;
};

// --- raw IO (below the persistence engine) ---

struct RawIoSpec {
  double read_fraction = 0.5;   // per-op Bernoulli
  SizeSpec read_size;
  SizeSpec write_size;
  int workers = 4;
  uint64_t working_set_bytes = 1ULL * kGiB;
};

class RawIoWorkload {
 public:
  RawIoWorkload(sim::EventLoop& loop, iosched::IoScheduler& scheduler,
                iosched::TenantId tenant, RawIoSpec spec, uint64_t seed);

  // Spawns `spec.workers` backlogged workers into `group`, running until
  // `end_time`.
  void Start(sim::TaskGroup& group, SimTime end_time);

  uint64_t ops_completed() const { return ops_completed_; }

 private:
  sim::Task<void> Worker(SimTime end_time);

  sim::EventLoop& loop_;
  iosched::IoScheduler& scheduler_;
  iosched::TenantId tenant_;
  RawIoSpec spec_;
  Rng rng_;
  LogNormalSize read_dist_;
  LogNormalSize write_dist_;
  uint64_t ops_completed_ = 0;
};

// --- application-level KV (through the storage node) ---

struct KvWorkloadSpec {
  double get_fraction = 0.5;
  // Fraction of all requests that are range SCANs, carved off before the
  // GET/PUT split (so get_fraction then divides the remaining point ops).
  // 0 (the default) draws no extra randomness, keeping the historical
  // GET/PUT request stream byte-for-byte.
  double scan_fraction = 0.0;
  // Keys returned per SCAN (the limit): each scan starts at a uniformly
  // drawn GET-range key and walks forward through the keyspace.
  int scan_span = 16;
  SizeSpec get_size;  // object sizes in the GET key range
  SizeSpec put_size;  // sizes written by PUTs
  // Fraction of GETs that probe keys inside the GET key range that were
  // never written (read misses). Miss keys sort between two live keys, so
  // they survive SSTable range pruning and exercise the bloom-filter path.
  // 0 (the default) draws no extra randomness, keeping the historical
  // GET/PUT request stream byte-for-byte.
  double get_absent_fraction = 0.0;
  // The preloaded object population is sized to hold ~this much live data.
  uint64_t live_bytes_target = 64ULL * kMiB;
  // Zipf skew for key popularity; 0 = uniform (the paper's default).
  double zipf_theta = 0.0;
  // Paper Fig. 2 (last workload) and Figs. 11/12: GETs read a pre-existing,
  // never-overwritten key range so GET object sizes are controlled by
  // get_size rather than by PUT churn.
  bool disjoint_get_range = true;
  int workers = 4;
  // Key namespace prefix: two workload harnesses driving the same tenant
  // with different prefixes maintain disjoint object populations.
  std::string key_prefix;
};

class KvTenantWorkload {
 public:
  KvTenantWorkload(sim::EventLoop& loop, kv::StorageNode& node,
                   iosched::TenantId tenant, KvWorkloadSpec spec,
                   uint64_t seed);

  // Populates the tenant's key ranges (runs to completion on the loop).
  sim::Task<void> Preload();

  // Spawns the closed-loop workers until `end_time`.
  void Start(sim::TaskGroup& group, SimTime end_time);

  // Live-swappable workload mix (Fig. 12's demand swap at t=200s). Key
  // ranges and preloaded objects are unchanged; only the mix and sizes of
  // subsequent requests follow the new spec.
  void SwapMix(const KvWorkloadSpec& spec);

  uint64_t gets_done() const { return gets_done_; }
  uint64_t puts_done() const { return puts_done_; }
  uint64_t scans_done() const { return scans_done_; }
  // Live entries returned across all completed scans.
  uint64_t scan_keys_returned() const { return scan_keys_returned_; }
  iosched::TenantId tenant() const { return tenant_; }

 private:
  sim::Task<void> Worker(SimTime end_time);

  std::string GetKey(uint64_t index) const;
  std::string PutKey(uint64_t index) const;

  sim::EventLoop& loop_;
  kv::StorageNode& node_;
  iosched::TenantId tenant_;
  KvWorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<LogNormalSize> get_dist_;
  std::unique_ptr<LogNormalSize> put_dist_;
  std::unique_ptr<ZipfGenerator> zipf_;
  uint64_t get_keys_ = 0;
  uint64_t put_keys_ = 0;
  uint64_t gets_done_ = 0;
  uint64_t puts_done_ = 0;
  uint64_t scans_done_ = 0;
  uint64_t scan_keys_returned_ = 0;
};

// Builds a value of `size` bytes with deterministic, key-derived contents
// (so correctness checks can recompute expectations).
std::string MakeValue(std::string_view key, uint64_t size);

}  // namespace libra::workload

#endif  // LIBRA_SRC_WORKLOAD_WORKLOAD_H_
