// Figure 12: adaptation to shifting tenant demand. The Fig. 11 tenant set
// runs with aligned reservations; at the second phase boundary the
// read-heavy and write-heavy tenants swap *workloads* (reservations
// unchanged — misaligned, so Libra overbooks and penalizes all tenants
// proportionally, violating the mixed tenants); at the third boundary the
// reservations swap too, realigning provisioning with demand.
//
// The bottom table tracks the per-request cost profiles (direct / FLUSH /
// COMPACT components of a normalized PUT) for one read-heavy and one
// write-heavy tenant, showing the tracker capturing the swap.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/iosched/capacity.h"

namespace libra::bench {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;
using iosched::Reservation;
using iosched::TenantId;

struct GroupSpec {
  const char* name;
  int first_tenant;
  int count;
  double get_fraction;
  double get_kb;
  double put_kb;
};

constexpr GroupSpec kRh{"read-heavy", 0, 3, 0.9, 4, 16};
constexpr GroupSpec kMix{"mixed", 3, 2, 0.5, 64, 16};
constexpr GroupSpec kWh{"write-heavy", 5, 3, 0.1, 128, 128};

double NormalizedRatio(const GroupSpec& g) {
  return (g.get_fraction * g.get_kb) / ((1.0 - g.get_fraction) * g.put_kb);
}

workload::KvWorkloadSpec MakeSpec(const BenchArgs& args, const GroupSpec& g) {
  workload::KvWorkloadSpec spec;
  spec.get_fraction = g.get_fraction;
  spec.get_size = {g.get_kb * 1024.0, 1024.0};
  spec.put_size = {g.put_kb * 1024.0, 1024.0};
  spec.live_bytes_target = args.full ? 24ULL * kMiB : 10ULL * kMiB;
  spec.workers = 4;
  return spec;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra;
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);

  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  kv::StorageNode node(loop, opt);

  // Every read-heavy and write-heavy tenant gets TWO workload harnesses —
  // its own mix and the one it will swap to — with key-prefix-disjoint
  // object populations, so post-swap traffic reads objects of the right
  // sizes.
  std::vector<std::unique_ptr<workload::KvTenantWorkload>> workloads;  // active phase 1
  std::vector<std::unique_ptr<workload::KvTenantWorkload>> swapped;    // active after t2
  std::vector<workload::KvTenantWorkload*> preloads;
  for (const GroupSpec* g : {&kRh, &kMix, &kWh}) {
    for (int i = 0; i < g->count; ++i) {
      const TenantId t = static_cast<TenantId>(g->first_tenant + i);
      (void)node.AddTenant(t, Reservation{});
      workloads.push_back(std::make_unique<workload::KvTenantWorkload>(
          loop, node, t, MakeSpec(args, *g), 2000 + t));
      preloads.push_back(workloads.back().get());
      if (g == &kRh || g == &kWh) {
        const GroupSpec* other = g == &kRh ? &kWh : &kRh;
        workload::KvWorkloadSpec alt = MakeSpec(args, *other);
        alt.key_prefix = "swap_";  // disjoint object population
        swapped.push_back(std::make_unique<workload::KvTenantWorkload>(
            loop, node, t, alt, 3000 + t));
        preloads.push_back(swapped.back().get());
      }
    }
  }
  RunPreloads(loop, preloads);

  const SimDuration phase = args.full ? 100 * kSecond : 40 * kSecond;
  const SimTime t0 = loop.Now();
  const SimTime t1 = t0 + phase;          // aligned reservations set
  const SimTime t2 = t1 + phase;          // workload swap (misaligned)
  const SimTime t3 = t2 + phase;          // reservation swap (realigned)
  const SimTime t_end = t3 + phase;

  node.Start();

  auto group_of = [&](TenantId t) -> const GroupSpec& {
    if (t < 3) {
      return kRh;
    }
    if (t < 5) {
      return kMix;
    }
    return kWh;
  };
  std::vector<Reservation> res(8);
  loop.ScheduleAt(t1, [&] {
    for (TenantId t = 0; t < 8; ++t) {
      const GroupSpec& g = group_of(t);
      const double price_get = node.policy().ProfileOf(t, AppRequest::kGet).total();
      const double price_put = node.policy().ProfileOf(t, AppRequest::kPut).total();
      const double target = node.capacity().provisionable() / 8.0;
      const double ratio = NormalizedRatio(g);
      const double v_put = target / (ratio * price_get + price_put);
      res[t] = Reservation{ratio * v_put, v_put};
      node.UpdateReservation(t, res[t]);
    }
  });
  // Demand swap at t2: the read-heavy and write-heavy tenants' phase-1
  // harnesses stop (their end time is t2) and their counterpart-mix
  // harnesses start; reservations stay put (now misaligned).
  loop.ScheduleAt(t3, [&] {
    // Reservation swap: realign with the new demand.
    for (int i = 0; i < 3; ++i) {
      const Reservation rh = res[i];
      node.UpdateReservation(static_cast<TenantId>(i), res[5 + i]);
      node.UpdateReservation(static_cast<TenantId>(5 + i), rh);
    }
  });

  // Per-phase normalized request totals + sampled PUT cost profiles.
  struct Snap {
    double gets[8], puts[8];
  };
  std::vector<Snap> snaps(4);
  auto snap = [&](int idx) {
    for (TenantId t = 0; t < 8; ++t) {
      snaps[idx].gets[t] =
          node.tracker().NormalizedRequestsTotal(t, AppRequest::kGet);
      snaps[idx].puts[t] =
          node.tracker().NormalizedRequestsTotal(t, AppRequest::kPut);
    }
  };
  loop.ScheduleAt(t1, [&] { snap(0); });
  loop.ScheduleAt(t2, [&] { snap(1); });
  loop.ScheduleAt(t3, [&] { snap(2); });
  loop.ScheduleAt(t_end, [&] { snap(3); });

  libra::metrics::Table profile_ts({"time_s", "rh_PUT_direct", "rh_FLUSH",
                                    "rh_COMPACT", "wh_PUT_direct", "wh_FLUSH",
                                    "wh_COMPACT"});
  const SimDuration sample_every = phase / 4;
  for (SimTime ts = t1; ts <= t_end; ts += sample_every) {
    loop.ScheduleAt(ts, [&, ts] {
      const auto rh = node.policy().ProfileOf(0, AppRequest::kPut);
      const auto wh = node.policy().ProfileOf(5, AppRequest::kPut);
      profile_ts.AddNumericRow(
          libra::metrics::FormatDouble(ToSeconds(ts - t0), 0),
          {rh.direct, rh.indirect[static_cast<int>(InternalOp::kFlush)],
           rh.indirect[static_cast<int>(InternalOp::kCompact)], wh.direct,
           wh.indirect[static_cast<int>(InternalOp::kFlush)],
           wh.indirect[static_cast<int>(InternalOp::kCompact)]},
          3);
    });
  }

  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      // The mixed tenants run throughout; rh/wh phase-1 harnesses stop at
      // the swap boundary.
      const bool is_mixed = wl->tenant() >= 3 && wl->tenant() < 5;
      wl->Start(group, is_mixed ? t_end : t2);
    }
    loop.ScheduleAt(t2, [&] {
      for (auto& wl : swapped) {
        wl->Start(group, t_end);
      }
    });
    // The started policy keeps a timer pending forever: bound the run,
    // stop it, then drain the finite remainder.
    loop.RunUntil(t_end + kSecond);
    node.Stop();
    loop.Run();
  }

  Section(args, "Figure 12 (top): per-group normalized request rates");
  libra::metrics::Table out({"group", "phase", "GET_kreq/s", "PUT_kreq/s"});
  const char* phase_names[] = {"aligned", "demand-swapped", "realigned"};
  for (const GroupSpec* g : {&kRh, &kMix, &kWh}) {
    for (int p = 0; p < 3; ++p) {
      double get_rate = 0.0;
      double put_rate = 0.0;
      for (int i = 0; i < g->count; ++i) {
        const TenantId t = static_cast<TenantId>(g->first_tenant + i);
        get_rate += (snaps[p + 1].gets[t] - snaps[p].gets[t]) / g->count;
        put_rate += (snaps[p + 1].puts[t] - snaps[p].puts[t]) / g->count;
      }
      out.AddRow({g->name, phase_names[p],
                  libra::metrics::FormatDouble(
                      get_rate / ToSeconds(phase) / 1000.0, 2),
                  libra::metrics::FormatDouble(
                      put_rate / ToSeconds(phase) / 1000.0, 2)});
    }
  }
  Emit(args, out);

  Section(args, "Figure 12 (bottom): normalized PUT cost profiles (VOP/req)");
  Emit(args, profile_ts);
  std::printf(
      "paper: after the demand swap the misaligned reservations overbook "
      "the node (mixed tenants penalized); the reservation swap at the "
      "next boundary realigns and restores all groups. The cost profiles "
      "track the swap: the new write-heavy tenants' PUT components drop "
      "as their frequent large writes amortize FLUSH/COMPACT.\n");
  return 0;
}
