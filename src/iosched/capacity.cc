#include "src/iosched/capacity.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"

namespace libra::iosched {
namespace {

struct ProbeCell {
  double read_frac;
  uint32_t read_kb;
  uint32_t write_kb;
  double sigma_bytes = 0.0;
};

sim::Task<void> ProbeWorker(sim::EventLoop& loop, IoScheduler& sched,
                            TenantId tenant, ProbeCell cell, uint64_t ws,
                            Rng& rng, SimTime end_time) {
  const LogNormalSize read_dist(cell.read_kb * 1024.0, cell.sigma_bytes, 1024,
                                1024 * 1024);
  const LogNormalSize write_dist(cell.write_kb * 1024.0, cell.sigma_bytes,
                                 1024, 1024 * 1024);
  while (loop.Now() < end_time) {
    const bool is_read = rng.Bernoulli(cell.read_frac);
    const uint32_t size = static_cast<uint32_t>(
        is_read ? read_dist.Sample(rng) : write_dist.Sample(rng));
    const uint64_t slots = std::max<uint64_t>(1, ws / size);
    const uint64_t offset = rng.NextU64(slots) * size;
    IoTag tag{tenant, is_read ? AppRequest::kGet : AppRequest::kPut,
              InternalOp::kNone};
    if (is_read) {
      co_await sched.Read(tag, offset, size);
    } else {
      co_await sched.Write(tag, offset, size);
    }
  }
}

double RunCell(const ssd::DeviceProfile& profile,
               const ssd::CalibrationTable& table, const ProbeCell& cell,
               const FloorProbeOptions& options) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, profile);
  const uint64_t ws = std::min<uint64_t>(1ULL * kGiB, profile.capacity_bytes / 2);
  device.Prefill(ws);
  IoScheduler sched(loop, device, std::make_unique<ExactCostModel>(table));

  Rng rng(options.seed);
  const SimTime end_time = options.warmup + options.measure;
  double vops_at_warmup = 0.0;
  {
    sim::TaskGroup group(loop);
    for (int t = 0; t < options.num_tenants; ++t) {
      sched.SetAllocation(t, 1000.0);  // equal allocations
      for (int w = 0; w < options.workers_per_tenant; ++w) {
        group.Spawn(ProbeWorker(loop, sched, static_cast<TenantId>(t), cell,
                                ws, rng, end_time));
      }
    }
    loop.ScheduleAt(options.warmup, [&] {
      vops_at_warmup = sched.tracker().total_vops();
    });
    loop.Run();
  }
  // Measure VOPs consumed in the measurement window (tail completions after
  // end_time are a negligible +queue_depth ops).
  return (sched.tracker().total_vops() - vops_at_warmup) /
         ToSeconds(options.measure);
}

}  // namespace

double ProbeInterferenceFloor(const ssd::DeviceProfile& profile,
                              const ssd::CalibrationTable& table,
                              const FloorProbeOptions& options) {
  std::vector<double> fracs;
  std::vector<uint32_t> sizes_kb;
  if (options.full_grid) {
    fracs = {0.99, 0.75, 0.5, 0.25, 0.01};
    sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  } else {
    fracs = {0.75, 0.5, 0.25};
    sizes_kb = {1, 4, 16, 64, 256};
  }
  double floor = 1e30;
  for (double f : fracs) {
    for (uint32_t r : sizes_kb) {
      for (uint32_t w : sizes_kb) {
        floor = std::min(floor, RunCell(profile, table, {f, r, w}, options));
      }
    }
    // Variable IOP sizes consistently degrade throughput (paper Fig. 4
    // bottom row); probe the high-variance regime too.
    for (double sigma : {32768.0, 262144.0}) {
      floor = std::min(floor,
                       RunCell(profile, table, {f, 4, 4, sigma}, options));
      floor = std::min(floor,
                       RunCell(profile, table, {f, 1, 16, sigma}, options));
    }
  }
  return floor;
}

}  // namespace libra::iosched
