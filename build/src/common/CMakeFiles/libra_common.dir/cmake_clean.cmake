file(REMOVE_RECURSE
  "CMakeFiles/libra_common.dir/rng.cc.o"
  "CMakeFiles/libra_common.dir/rng.cc.o.d"
  "CMakeFiles/libra_common.dir/stats.cc.o"
  "CMakeFiles/libra_common.dir/stats.cc.o.d"
  "CMakeFiles/libra_common.dir/status.cc.o"
  "CMakeFiles/libra_common.dir/status.cc.o.d"
  "liblibra_common.a"
  "liblibra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
