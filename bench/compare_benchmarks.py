#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
  bench/compare_benchmarks.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Benchmarks are matched by name; only names present in BOTH files are
compared (new benchmarks in the candidate and retired ones in the baseline
are reported but never fail the gate). A benchmark regresses when its
candidate real_time exceeds baseline real_time by more than --threshold
(default 20%). Exit status: 0 = no regressions, 1 = at least one, 2 = bad
input.

The committed BENCH_micro.json at the repo root is the baseline; refresh it
with bench/run_benchmarks.sh after an intentional perf change. CI's
bench-smoke job runs this with a loose threshold — short-min-time runs on
shared runners are noisy, so the gate there catches order-of-magnitude
cliffs, not percent-level drift.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: real_time_ns} for every benchmark entry in the file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetition runs).
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        real_time = entry.get("real_time")
        if name is None or real_time is None:
            continue
        # Normalize to nanoseconds so files with different time_unit compare.
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            sys.exit(f"error: {path}: unknown time_unit {unit!r} for {name}")
        out[name] = real_time * scale
    if not out:
        sys.exit(f"error: {path}: no benchmark entries found")
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Fail when candidate benchmarks regress vs a baseline.")
    parser.add_argument("baseline", help="baseline google-benchmark JSON")
    parser.add_argument("candidate", help="candidate google-benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed fractional real_time increase (default 0.20 = +20%%)")
    args = parser.parse_args()
    if args.threshold < 0:
        sys.exit("error: --threshold must be >= 0")

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)
    shared = sorted(base.keys() & cand.keys())
    if not shared:
        sys.exit("error: no benchmark names in common")

    for name in sorted(base.keys() - cand.keys()):
        print(f"  [only in baseline]  {name}")
    for name in sorted(cand.keys() - base.keys()):
        print(f"  [only in candidate] {name}")

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  delta")
    for name in shared:
        b, c = base[name], cand[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  REGRESSION"
        print(f"{name:<{width}}  {b:>10.1f}ns  {c:>10.1f}ns  "
              f"{delta:+7.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: {len(shared)} benchmarks within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
