#include <string>

#include "src/cluster/cluster.h"
#include "src/kv/node_stats.h"
#include "src/obs/json.h"

namespace libra::cluster {

namespace {

const char* KindName(obs::RebalanceRecord::Kind kind) {
  switch (kind) {
    case obs::RebalanceRecord::Kind::kSplit:
      return "split";
    case obs::RebalanceRecord::Kind::kMigration:
      return "migration";
  }
  return "unknown";
}

}  // namespace

std::string ClusterStatsToJson(const ClusterStats& stats) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("time_ns");
  w.Int(stats.time_ns);

  w.Key("nodes");
  w.BeginArray();
  for (const kv::NodeStats& node : stats.nodes) {
    w.Raw(kv::NodeStatsToJson(node));
  }
  w.EndArray();

  w.Key("tenants");
  w.BeginArray();
  for (const ClusterStats::TenantEntry& t : stats.tenants) {
    w.BeginObject();
    w.Key("tenant");
    w.Uint(t.tenant);
    w.Key("global_get_rps");
    w.Double(t.global.get_rps);
    w.Key("global_put_rps");
    w.Double(t.global.put_rps);
    w.Key("global_scan_rps");
    w.Double(t.global.scan_rps);
    w.Key("compaction");
    w.String(t.compaction == lsm::CompactionPolicy::kSizeTiered ? "tiered"
                                                                : "leveled");
    w.Key("slot_homes");
    w.BeginArray();
    for (const int node : t.slot_homes) {
      w.Int(node);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("rebalances");
  w.BeginArray();
  for (const obs::RebalanceRecord& r : stats.rebalances) {
    w.BeginObject();
    w.Key("kind");
    w.String(KindName(r.kind));
    w.Key("time_ns");
    w.Int(r.time_ns);
    w.Key("tenant");
    w.Uint(r.tenant);
    if (r.kind == obs::RebalanceRecord::Kind::kSplit) {
      w.Key("nodes");
      w.Int(r.nodes);
    } else {
      w.Key("slot");
      w.Int(r.slot);
      w.Key("from_node");
      w.Int(r.from_node);
      w.Key("to_node");
      w.Int(r.to_node);
      w.Key("keys_moved");
      w.Uint(r.keys_moved);
    }
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

}  // namespace libra::cluster
