#include "src/kv/storage_node.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/workload/workload.h"

namespace libra::kv {
namespace {

ssd::CalibrationTable NodeTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

NodeOptions TestOptions(bool cache = false) {
  NodeOptions opt;
  opt.calibration = NodeTable();
  opt.enable_cache = cache;
  opt.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.prefill_bytes = 64 * kMiB;
  return opt;
}

struct NodeRig {
  sim::EventLoop loop;
  StorageNode node;

  explicit NodeRig(bool cache = false) : node(loop, TestOptions(cache)) {}

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

TEST(StorageNodeTest, AddTenantAndRoundTrip) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {1000.0, 1000.0}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.node.Put(1, "k", "v")).ok());
    auto r = co_await rig.node.Get(1, "k");
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), "v");
  }());
}

TEST(StorageNodeTest, DuplicateTenantRejected) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {}).ok());
  EXPECT_EQ(rig.node.AddTenant(1, {}).code(), StatusCode::kAlreadyExists);
}

TEST(StorageNodeTest, UnknownTenantRejected) {
  NodeRig rig;
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_EQ((co_await rig.node.Put(9, "k", "v")).code(),
              StatusCode::kNotFound);
    auto r = co_await rig.node.Get(9, "k");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }());
}

TEST(StorageNodeTest, UpdateReservationValidates) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {100.0, 100.0}).ok());
  // Unknown tenants and malformed rates are rejected with the reason.
  EXPECT_EQ(rig.node.UpdateReservation(9, {10.0, 10.0}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(rig.node.UpdateReservation(1, {-1.0, 10.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rig.node.UpdateReservation(1, {10.0, -1.0}).code(),
            StatusCode::kInvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(rig.node.UpdateReservation(1, {nan, 0.0}).code(),
            StatusCode::kInvalidArgument);
  // A failed update leaves the previous reservation installed.
  EXPECT_EQ(rig.node.policy().GetReservation(1).get_rps, 100.0);
  // Zero is legal (an existing tenant downgraded to best-effort).
  EXPECT_TRUE(rig.node.UpdateReservation(1, {}).ok());
  EXPECT_EQ(rig.node.policy().GetReservation(1).get_rps, 0.0);
  // And valid updates land.
  EXPECT_TRUE(rig.node.UpdateReservation(1, {250.0, 125.0}).ok());
  EXPECT_EQ(rig.node.policy().GetReservation(1).put_rps, 125.0);
}

TEST(StorageNodeTest, AddTenantValidatesReservation) {
  NodeRig rig;
  EXPECT_EQ(rig.node.AddTenant(1, {-5.0, 0.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(rig.node.HasTenant(1));
  EXPECT_TRUE(rig.node.AddTenant(1, {}).ok());
  EXPECT_TRUE(rig.node.HasTenant(1));
  EXPECT_EQ(rig.node.tenants(), std::vector<iosched::TenantId>{1});
}

TEST(StorageNodeTest, TenantsAreIsolatedNamespaces) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {}).ok());
  ASSERT_TRUE(rig.node.AddTenant(2, {}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.node.Put(1, "shared-key", "tenant1");
    co_await rig.node.Put(2, "shared-key", "tenant2");
    auto r1 = co_await rig.node.Get(1, "shared-key");
    auto r2 = co_await rig.node.Get(2, "shared-key");
    EXPECT_EQ(r1.value(), "tenant1");
    EXPECT_EQ(r2.value(), "tenant2");
  }());
}

TEST(StorageNodeTest, DeleteRemovesKey) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.node.Put(1, "k", "v");
    EXPECT_TRUE((co_await rig.node.Delete(1, "k")).ok());
    auto r = co_await rig.node.Get(1, "k");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }());
}

TEST(StorageNodeTest, AppRequestsRecordedNormalized) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.node.Put(1, "k", std::string(4096, 'v'));  // 4 normalized
    co_await rig.node.Get(1, "k");                          // 4 normalized
  }());
  EXPECT_NEAR(rig.node.tracker().NormalizedRequestsTotal(
                  1, iosched::AppRequest::kPut),
              4.0, 1e-9);
  EXPECT_NEAR(rig.node.tracker().NormalizedRequestsTotal(
                  1, iosched::AppRequest::kGet),
              4.0, 1e-9);
}

TEST(StorageNodeTest, CacheHitConsumesNoIo) {
  NodeRig rig(/*cache=*/true);
  ASSERT_TRUE(rig.node.AddTenant(1, {}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await rig.node.Put(1, "k", std::string(1024, 'v'));
    const uint64_t reads_before = rig.node.tracker().Stats(1).read_ops;
    auto r = co_await rig.node.Get(1, "k");  // write-through: cache hit
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(rig.node.tracker().Stats(1).read_ops, reads_before);
  }());
  EXPECT_GT(rig.node.cache()->hits(), 0u);
}

// Fills the tenant's partition past the 256KB write buffer so early keys
// live in SSTables (memtable GETs never suspend, so coalescing and table
// IO only show up against flushed data), then waits for background work.
sim::Task<void> PreloadFlushed(StorageNode* node, int n) {
  for (int i = 0; i < n; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", i);
    co_await node->Put(1, key, std::string(1024, 'v'));
  }
  co_await node->partition(1)->WaitIdle();
}

TEST(StorageNodeTest, ReadCoalescingSharesOneLookupAcrossDuplicateGets) {
  sim::EventLoop loop;
  NodeOptions opt = TestOptions();
  opt.enable_read_coalescing = true;
  StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {}).ok());
  sim::Detach(PreloadFlushed(&node, 300));
  loop.Run();
  // Warm the table indexes so burst and reference lookups cost the same.
  auto get0 = [&]() -> sim::Task<void> {
    auto r = co_await node.Get(1, "key00000000");
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value().size(), 1024u);
  };
  sim::Detach(get0());
  loop.Run();

  const auto& tr = node.tracker();
  const uint64_t reads_before = tr.Stats(1).read_ops;
  const double norm_before =
      tr.NormalizedRequestsTotal(1, iosched::AppRequest::kGet);
  for (int i = 0; i < 4; ++i) {
    sim::Detach(get0());
  }
  loop.Run();
  // Three of the four rode the leader's in-flight lookup.
  EXPECT_EQ(node.coalesced_gets(), 3u);
  const uint64_t burst_reads = tr.Stats(1).read_ops - reads_before;
  // Billing is per request even when the IO is shared: all four GETs are
  // recorded as served app requests.
  EXPECT_NEAR(tr.NormalizedRequestsTotal(1, iosched::AppRequest::kGet) -
                  norm_before,
              4.0, 1e-9);
  // The whole burst cost exactly one lookup's device reads.
  const uint64_t single_before = tr.Stats(1).read_ops;
  sim::Detach(get0());
  loop.Run();
  EXPECT_EQ(burst_reads, tr.Stats(1).read_ops - single_before);
}

TEST(StorageNodeTest, ReadCoalescingPropagatesNotFoundToFollowers) {
  sim::EventLoop loop;
  NodeOptions opt = TestOptions();
  opt.enable_read_coalescing = true;
  StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {}).ok());
  sim::Detach(PreloadFlushed(&node, 300));
  loop.Run();
  // An in-range never-written key: a memtable tombstone would answer
  // without IO, but this lookup must probe tables (real IO, a real
  // coalescing window), and every follower sees the same NotFound.
  int not_found = 0;
  auto miss = [&]() -> sim::Task<void> {
    auto r = co_await node.Get(1, "key00000010x");
    if (r.status().code() == StatusCode::kNotFound) {
      ++not_found;
    }
  };
  for (int i = 0; i < 3; ++i) {
    sim::Detach(miss());
  }
  loop.Run();
  EXPECT_EQ(not_found, 3);
  EXPECT_EQ(node.coalesced_gets(), 2u);
}

TEST(StorageNodeTest, ReadCoalescingOffEveryGetPaysItsOwnIo) {
  sim::EventLoop loop;
  StorageNode node(loop, TestOptions());  // coalescing defaults off
  ASSERT_TRUE(node.AddTenant(1, {}).ok());
  sim::Detach(PreloadFlushed(&node, 300));
  loop.Run();
  auto get0 = [&]() -> sim::Task<void> {
    auto r = co_await node.Get(1, "key00000000");
    EXPECT_TRUE(r.status().ok());
  };
  sim::Detach(get0());  // warm indexes
  loop.Run();
  const uint64_t single_before = node.tracker().Stats(1).read_ops;
  sim::Detach(get0());
  loop.Run();
  const uint64_t single_reads =
      node.tracker().Stats(1).read_ops - single_before;
  ASSERT_GT(single_reads, 0u);
  const uint64_t burst_before = node.tracker().Stats(1).read_ops;
  for (int i = 0; i < 4; ++i) {
    sim::Detach(get0());
  }
  loop.Run();
  EXPECT_EQ(node.coalesced_gets(), 0u);
  EXPECT_EQ(node.tracker().Stats(1).read_ops - burst_before,
            4 * single_reads);
}

TEST(StorageNodeTest, PolicyProvisionsFromReservations) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {1000.0, 0.0}).ok());
  ASSERT_TRUE(rig.node.AddTenant(2, {0.0, 1000.0}).ok());
  rig.node.Start();
  rig.loop.RunUntil(2 * kSecond);
  rig.node.Stop();
  // PUT-reserved tenant gets a larger VOP allocation (writes cost more).
  EXPECT_GT(rig.node.scheduler().Allocation(2),
            rig.node.scheduler().Allocation(1));
  EXPECT_GT(rig.node.scheduler().Allocation(1), 0.0);
  rig.loop.Run();
}

TEST(StorageNodeTest, WorkloadDrivesThroughput) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {2000.0, 2000.0}).ok());
  workload::KvWorkloadSpec spec;
  spec.get_fraction = 0.5;
  spec.get_size = {4096.0, 0.0};
  spec.put_size = {4096.0, 0.0};
  spec.live_bytes_target = 4 * kMiB;
  spec.workers = 4;
  workload::KvTenantWorkload wl(rig.loop, rig.node, 1, spec, 99);
  rig.RunTask([&]() -> sim::Task<void> { co_await wl.Preload(); }());
  rig.node.Start();
  {
    sim::TaskGroup group(rig.loop);
    const SimTime end = rig.loop.Now() + 2 * kSecond;
    wl.Start(group, end);
    // The started policy keeps a timer pending forever: bound the run,
    // stop the policy, then drain the finite remainder.
    rig.loop.RunUntil(end + kSecond);
    rig.node.Stop();
    rig.loop.Run();
  }
  EXPECT_GT(wl.gets_done(), 100u);
  EXPECT_GT(wl.puts_done(), 100u);
}

}  // namespace
}  // namespace libra::kv
