# Empty compiler generated dependencies file for libra_lsm.
# This may be replaced when dependencies are built.
