file(REMOVE_RECURSE
  "liblibra_iosched.a"
)
