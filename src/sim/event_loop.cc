#include "src/sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace libra::sim {

uint32_t EventLoop::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.Reset();
  s.live = false;
  // Generation bump invalidates any EventId still referring to this slot.
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, Callback cb) {
  assert(cb);
  if (when < now_) {
    when = now_;
  }
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.live = true;
  const uint32_t gen = s.gen;
  heap_.push_back(HeapEntry{when, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_events_;
  return MakeId(slot, gen);
}

void EventLoop::Cancel(EventId id) {
  if (id == 0) {
    return;
  }
  const uint32_t slot = static_cast<uint32_t>(id & 0xFFFFFFFFu) - 1;
  if (slot >= slots_.size()) {
    return;
  }
  Slot& s = slots_[slot];
  if (!s.live || s.gen != static_cast<uint32_t>(id >> 32)) {
    return;  // already fired, already cancelled, or a stale id
  }
  s.live = false;
  s.cb.Reset();  // release captures eagerly; the heap entry dies lazily
  --live_events_;
  ++dead_entries_;
  CompactIfWorthwhile();
}

void EventLoop::CompactIfWorthwhile() {
  // Lazy cancellation leaves dead entries in the heap until they surface.
  // A workload that schedules far-future timeouts and cancels them (timer
  // wheels) would otherwise grow the heap without bound; once dead entries
  // are the majority, rebuild. Amortized O(1) per cancel.
  if (heap_.size() < 64 || dead_entries_ * 2 < heap_.size()) {
    return;
  }
  auto dead = [this](const HeapEntry& e) {
    if (slots_[e.slot].live) {
      return false;
    }
    FreeSlot(e.slot);
    return true;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end());
  dead_entries_ = 0;
}

bool EventLoop::SkimCancelled() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    // A slot is freed only when its (unique) heap entry is removed, so the
    // generations always agree here.
    assert(slots_[top.slot].gen == top.gen);
    if (slots_[top.slot].live) {
      return true;
    }
    FreeSlot(top.slot);
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    --dead_entries_;
  }
  return false;
}

EventLoop::Callback EventLoop::TakeTop() {
  std::pop_heap(heap_.begin(), heap_.end());
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  assert(e.when >= now_);
  now_ = e.when;
  // Move the callback out before freeing: the callback may schedule new
  // events and grow slots_, invalidating references.
  Callback cb = std::move(slots_[e.slot].cb);
  FreeSlot(e.slot);
  --live_events_;
  return cb;
}

uint64_t EventLoop::Run() {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!stopped_ && SkimCancelled()) {
    Callback cb = TakeTop();
    cb();
    ++dispatched;
  }
  return dispatched;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!stopped_) {
    if (!SkimCancelled() || heap_.front().when > deadline) {
      break;
    }
    Callback cb = TakeTop();
    cb();
    ++dispatched;
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
  return dispatched;
}

uint64_t EventLoop::RunBefore(SimTime horizon) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!stopped_) {
    if (!SkimCancelled() || heap_.front().when >= horizon) {
      break;
    }
    Callback cb = TakeTop();
    cb();
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::AdvanceTo(SimTime t) {
  if (t <= now_) {
    return;
  }
  assert(!SkimCancelled() || heap_.front().when >= t);
  now_ = t;
}

std::optional<SimTime> EventLoop::NextEventTime() {
  if (!SkimCancelled()) {
    return std::nullopt;
  }
  return heap_.front().when;
}

bool EventLoop::RunOne() {
  if (!SkimCancelled()) {
    return false;
  }
  Callback cb = TakeTop();
  cb();
  return true;
}

}  // namespace libra::sim
