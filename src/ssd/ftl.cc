#include "src/ssd/ftl.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace libra::ssd {

Ftl::Ftl(const DeviceProfile& profile)
    : profile_(profile), logical_pages_(profile.logical_pages()) {
  const uint64_t phys_pages = profile.total_pages();
  total_blocks_ = static_cast<uint32_t>(phys_pages / profile.pages_per_block);
  blocks_per_die_ = total_blocks_ / profile.num_dies;
  assert(blocks_per_die_ > static_cast<uint32_t>(profile.gc_high_watermark_blocks + 2));
  total_blocks_ = blocks_per_die_ * profile.num_dies;  // drop remainder

  page_map_.assign(logical_pages_, kUnmapped);
  rev_map_.assign(static_cast<size_t>(total_blocks_) * profile.pages_per_block,
                  kUnmapped);
  block_valid_.assign(total_blocks_, 0);
  block_state_.assign(total_blocks_, BlockState::kFree);

  // Spare blocks per die beyond what live data needs; GC can never push the
  // free count above this, so clamp the watermarks accordingly.
  const uint64_t live_blocks_per_die =
      (logical_pages_ / profile.pages_per_block + profile.num_dies - 1) /
      profile.num_dies;
  const int spare = static_cast<int>(
      static_cast<int64_t>(blocks_per_die_) -
      static_cast<int64_t>(live_blocks_per_die));
  assert(spare >= 2 && "device needs at least 2 spare blocks per die");
  low_watermark_ = std::clamp(profile.gc_low_watermark_blocks, 1, spare / 2);
  high_watermark_ =
      std::clamp(profile.gc_high_watermark_blocks, low_watermark_ + 1,
                 std::max(low_watermark_ + 1, 2 * spare / 3));

  dies_.resize(profile.num_dies);
  for (int d = 0; d < profile.num_dies; ++d) {
    auto& die = dies_[d];
    die.free_blocks.reserve(blocks_per_die_);
    // Push in reverse so pop_back allocates low block indices first.
    for (uint32_t b = blocks_per_die_; b > 0; --b) {
      die.free_blocks.push_back(static_cast<uint32_t>(d) * blocks_per_die_ + b - 1);
    }
  }
}

int Ftl::free_blocks(int die) const {
  return static_cast<int>(dies_[die].free_blocks.size());
}

void Ftl::InvalidatePpn(uint32_t ppn) {
  const uint32_t block = ppn / profile_.pages_per_block;
  assert(block_valid_[block] > 0);
  --block_valid_[block];
  rev_map_[ppn] = kUnmapped;
}

void Ftl::EnsureActiveBlock(int die_idx) {
  Die& die = dies_[die_idx];
  if (die.active_block != kUnmapped &&
      die.active_slot < profile_.pages_per_block) {
    return;
  }
  if (die.active_block != kUnmapped) {
    block_state_[die.active_block] = BlockState::kUsed;
  }
  if (die.free_blocks.empty()) {
    // Emergency path: erase a fully-stale block in place (requires no
    // relocation). Reachable only under extreme space pressure between GC
    // passes.
    const uint32_t die_idx = static_cast<uint32_t>(&die - dies_.data());
    const uint32_t first = die_idx * blocks_per_die_;
    for (uint32_t b = first; b < first + blocks_per_die_; ++b) {
      if (block_state_[b] == BlockState::kUsed && block_valid_[b] == 0) {
        block_state_[b] = BlockState::kFree;
        die.free_blocks.push_back(b);
        ++blocks_erased_;
        break;
      }
    }
  }
  assert(!die.free_blocks.empty() && "FTL out of space: watermarks misconfigured");
  die.active_block = die.free_blocks.back();
  die.free_blocks.pop_back();
  block_state_[die.active_block] = BlockState::kActive;
  die.active_slot = 0;
}

void Ftl::WritePageToDie(int die_idx, uint64_t lpn) {
  // Invalidate the previous location, if any.
  const uint32_t old_ppn = page_map_[lpn];
  if (old_ppn != kUnmapped) {
    InvalidatePpn(old_ppn);
  }
  EnsureActiveBlock(die_idx);
  Die& die = dies_[die_idx];
  const uint32_t ppn =
      die.active_block * profile_.pages_per_block + die.active_slot;
  ++die.active_slot;
  page_map_[lpn] = ppn;
  rev_map_[ppn] = static_cast<uint32_t>(lpn);
  ++block_valid_[die.active_block];
}

void Ftl::RelocatePage(int die_idx, uint64_t lpn) { WritePageToDie(die_idx, lpn); }

void Ftl::CollectGarbage(int die_idx, std::vector<GcWork>& out) {
  Die& die = dies_[die_idx];
  if (static_cast<int>(die.free_blocks.size()) > low_watermark_) {
    return;
  }
  GcWork work;
  work.die = die_idx;
  // Bound the per-write GC burst: real FTLs incrementally reclaim rather
  // than stalling one host write arbitrarily long.
  int victims_left = 2 * high_watermark_;
  while (static_cast<int>(die.free_blocks.size()) < high_watermark_ &&
         victims_left-- > 0) {
    // Greedy victim: the die's used (sealed) block with the fewest valid
    // pages. Full-of-valid blocks yield nothing and are never picked.
    const uint32_t first = static_cast<uint32_t>(die_idx) * blocks_per_die_;
    uint32_t victim = kUnmapped;
    uint16_t best_valid = profile_.pages_per_block;
    for (uint32_t b = first; b < first + blocks_per_die_; ++b) {
      if (block_state_[b] != BlockState::kUsed) {
        continue;
      }
      if (block_valid_[b] < best_valid) {
        best_valid = block_valid_[b];
        victim = b;
        if (best_valid == 0) {
          break;
        }
      }
    }
    if (victim == kUnmapped) {
      break;  // nothing reclaimable; device is genuinely full of valid data
    }
    // Relocate valid pages to the die's append point.
    const uint32_t base = victim * profile_.pages_per_block;
    for (uint32_t s = 0; s < profile_.pages_per_block; ++s) {
      const uint32_t lpn = rev_map_[base + s];
      if (lpn != kUnmapped) {
        RelocatePage(die_idx, lpn);
        ++work.pages_moved;
        ++gc_pages_moved_;
      }
    }
    assert(block_valid_[victim] == 0);
    block_state_[victim] = BlockState::kFree;
    die.free_blocks.push_back(victim);
    ++work.erases;
    ++blocks_erased_;
  }
  if (work.pages_moved > 0 || work.erases > 0) {
    out.push_back(work);
  }
}

FtlWriteResult Ftl::Write(uint64_t first_lpn, uint32_t npages,
                          const std::vector<int>* die_preference) {
  assert(npages > 0);
  FtlWriteResult result;

  // Chunked placement: D dies get contiguous runs of pages, at least one
  // stripe per die so command latency is amortized per chunk. Die choice
  // follows the caller's availability preference (firmware programs ready
  // dies first), but dies short on free space are pushed to the back:
  // pages never migrate across dies, so a space-oblivious policy would
  // slowly overfill some dies until GC had nothing reclaimable there.
  const int num_dies = profile_.num_dies;
  const uint64_t stripes =
      (npages + profile_.stripe_pages - 1) / profile_.stripe_pages;
  const int d_used = static_cast<int>(
      std::min<uint64_t>(stripes, static_cast<uint64_t>(num_dies)));
  const uint32_t base_chunk = npages / d_used;
  const uint32_t remainder = npages % d_used;

  // Space needed per die this write (upper bound), plus one block of slack.
  const uint64_t needed_pages =
      base_chunk + 1 + profile_.pages_per_block;
  // Sort key: (space-starved?, preference position or inverse free space,
  // rotation tie-break), die index.
  std::vector<std::pair<std::tuple<int, uint64_t, int>, int>> ranked;
  ranked.reserve(num_dies);
  for (int d = 0; d < num_dies; ++d) {
    const Die& die = dies_[d];
    uint64_t free_pages = die.free_blocks.size() * profile_.pages_per_block;
    if (die.active_block != kUnmapped) {
      free_pages += profile_.pages_per_block - die.active_slot;
    }
    const int starved = free_pages < needed_pages ? 1 : 0;
    const int rot = (d - next_die_ + num_dies) % num_dies;
    uint64_t primary;
    if (die_preference != nullptr) {
      uint64_t pos = static_cast<uint64_t>(num_dies);
      for (int i = 0; i < num_dies; ++i) {
        if ((*die_preference)[i] == d) {
          pos = static_cast<uint64_t>(i);
          break;
        }
      }
      primary = pos;
    } else {
      primary = UINT64_MAX - free_pages;  // most-free first
    }
    ranked.emplace_back(std::make_tuple(starved, primary, rot), d);
  }
  std::sort(ranked.begin(), ranked.end());

  uint64_t lpn = first_lpn % logical_pages_;
  for (int i = 0; i < d_used; ++i) {
    const int die_idx = ranked[i].second;
    const uint32_t chunk = base_chunk + (static_cast<uint32_t>(i) < remainder ? 1 : 0);
    if (chunk == 0) {
      continue;
    }
    // Reclaim ahead of the chunk so relocation always has room.
    CollectGarbage(die_idx, result.gc);
    for (uint32_t p = 0; p < chunk; ++p) {
      WritePageToDie(die_idx, lpn);
      lpn = (lpn + 1) % logical_pages_;
    }
    host_pages_written_ += chunk;
    result.placements.push_back(DiePlacement{die_idx, chunk});
  }
  next_die_ = (next_die_ + 1) % num_dies;
  return result;
}

void Ftl::Trim(uint64_t first_lpn, uint32_t npages) {
  uint64_t lpn = first_lpn % logical_pages_;
  for (uint32_t p = 0; p < npages; ++p) {
    const uint32_t ppn = page_map_[lpn];
    if (ppn != kUnmapped) {
      InvalidatePpn(ppn);
      page_map_[lpn] = kUnmapped;
    }
    lpn = (lpn + 1) % logical_pages_;
  }
}

double Ftl::write_amp() const {
  if (host_pages_written_ == 0) {
    return 1.0;
  }
  return static_cast<double>(host_pages_written_ + gc_pages_moved_) /
         static_cast<double>(host_pages_written_);
}

}  // namespace libra::ssd
