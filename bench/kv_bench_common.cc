#include "bench/kv_bench_common.h"

namespace libra::bench {

kv::NodeOptions PrototypeNodeOptions() {
  kv::NodeOptions opt;
  opt.device_profile = ssd::Intel320Profile();
  opt.calibration = TableFor(opt.device_profile);
  opt.cost_model = "exact";
  opt.enable_cache = false;
  opt.prefill_bytes = 0;  // the LSM preload populates the FTL
  return opt;
}

void ApplyTraceFlags(const BenchArgs& args, kv::NodeOptions& options,
                     size_t span_capacity, uint64_t id_seed) {
  if (!TraceRequested(args)) {
    return;
  }
  options.scheduler_options.span_capacity = span_capacity;
  options.scheduler_options.span_sample_every = args.trace_sample;
  options.scheduler_options.span_id_seed = id_seed;
}

void RunPreloads(sim::EventLoop& loop,
                 std::vector<workload::KvTenantWorkload*> workloads) {
  sim::TaskGroup group(loop);
  for (auto* wl : workloads) {
    group.Spawn(wl->Preload());
  }
  loop.Run();
}

void SimRig::AtTime(SimTime when, std::function<void()> fn) {
  if (multi) {
    multi->ScheduleBarrierAt(when, std::move(fn));
  } else {
    serial->ScheduleAt(when, [fn = std::move(fn)] { fn(); });
  }
}

SimRig MakeSimRig(const BenchArgs& args, int nodes) {
  SimRig rig;
  if (args.sim_threads <= 1 && args.rpc_latency <= 0) {
    rig.serial = std::make_unique<sim::EventLoop>();
    return rig;
  }
  rig.rpc_latency =
      args.rpc_latency > 0 ? args.rpc_latency : 50 * kMicrosecond;
  sim::MultiLoopOptions mopt;
  mopt.threads = args.sim_threads;
  mopt.lookahead = rig.rpc_latency;
  rig.multi = std::make_unique<sim::MultiLoop>(nodes + 1, mopt);
  return rig;
}

std::unique_ptr<cluster::Cluster> MakeCluster(SimRig& rig,
                                              cluster::ClusterOptions options) {
  if (rig.multi) {
    options.rpc_latency = rig.rpc_latency;
    return std::make_unique<cluster::Cluster>(*rig.multi, options);
  }
  return std::make_unique<cluster::Cluster>(*rig.serial, options);
}

void RunPreloads(SimRig& rig,
                 std::vector<workload::KvTenantWorkload*> workloads) {
  sim::TaskGroup group(rig.client());
  for (auto* wl : workloads) {
    group.Spawn(wl->Preload());
  }
  rig.Run();
}

}  // namespace libra::bench
