// Figure 9: how cost-model accuracy translates into allocation accuracy.
// For each cost model and each tenant mix (read-read, write-write,
// read-write) over the Fig. 7 size grid:
//   - IOP insulation MMR: min/max ratio of physical throughput ratios
//     (x_t = achieved/expected) — reflects how well the model captures true
//     IOP cost. Paper: only exact/fitted exceed 0.9 median; linear ~0.83;
//     constant and fixed trail badly.
//   - VOP allocation MMR: min/max ratio of exact-model VOP consumption —
//     reflects scheduler accounting fidelity. Paper: >0.94 for everything
//     but constant, confirming insulation failures come from cost-model
//     error, not the scheduler.

#include <cstdio>

#include "bench/bench_common.h"

namespace libra::bench {
namespace {

struct MixSpec {
  std::string name;
  CellMode mode;
};

void RunModel(const BenchArgs& args, const ssd::DeviceProfile& profile,
              const std::string& model, metrics::Table& iop_table,
              metrics::Table& vop_table) {
  const auto& table = TableFor(profile);
  const auto sizes = SweepSizesKb(args.full);
  const MixSpec mixes[] = {
      {"read-read", CellMode::kReadRead},
      {"write-write", CellMode::kWriteWrite},
      {"read-write", CellMode::kReadWrite},
  };
  // All (mix, size a, size b) cells of this model run across --jobs
  // workers; MMR folding happens serially below, in sweep order.
  const size_t per_mix = sizes.size() * sizes.size();
  SweepRunner runner(args.jobs);
  const std::vector<RawCellResult> cells = runner.Map<RawCellResult>(
      std::size(mixes) * per_mix, [&](size_t i) {
        RawCellSpec cell;
        cell.mode = mixes[i / per_mix].mode;
        cell.cost_model = model;
        const size_t c = i % per_mix;
        cell.size_a_bytes =
            static_cast<double>(sizes[c / sizes.size()]) * 1024.0;
        cell.size_b_bytes =
            static_cast<double>(sizes[c % sizes.size()]) * 1024.0;
        return RunRawCell(profile, cell);
      });

  size_t cell_idx = 0;
  for (const MixSpec& mix : mixes) {
    SampleSet iop_mmr;
    SampleSet vop_mmr;
    for (uint32_t a : sizes) {
      for (uint32_t b : sizes) {
        const RawCellResult& res = cells[cell_idx++];

        std::vector<double> iop_ratios;
        for (size_t t = 0; t < res.tenant_iops.size(); ++t) {
          const bool first_half = t < res.tenant_iops.size() / 2;
          const double size = (first_half ? a : b) * 1024.0;
          const bool is_read = res.tenant_is_reader[t];
          const double iso = is_read ? table.RandReadIops(
                                           static_cast<uint32_t>(size))
                                     : table.RandWriteIops(
                                           static_cast<uint32_t>(size));
          const double expected =
              iso / static_cast<double>(res.tenant_iops.size());
          iop_ratios.push_back((res.tenant_bytes[t] / size) / expected);
        }
        iop_mmr.Add(MinMaxRatio(iop_ratios));
        vop_mmr.Add(MinMaxRatio(res.tenant_exact_vops));
      }
    }
    iop_table.AddNumericRow(
        model + " " + mix.name,
        {iop_mmr.Median(), iop_mmr.Min(), iop_mmr.Max()}, 3);
    vop_table.AddNumericRow(
        model + " " + mix.name,
        {vop_mmr.Median(), vop_mmr.Min(), vop_mmr.Max()}, 3);
  }
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();

  libra::metrics::Table iop_table(
      {"model+mix", "median_mmr", "min_mmr", "max_mmr"});
  libra::metrics::Table vop_table(
      {"model+mix", "median_mmr", "min_mmr", "max_mmr"});
  for (const char* model : {"exact", "fitted", "linear", "constant", "fixed"}) {
    RunModel(args, profile, model, iop_table, vop_table);
  }
  Section(args, "Figure 9 (top): IOP insulation accuracy (MMR)");
  Emit(args, iop_table);
  Section(args, "Figure 9 (bottom): VOP allocation accuracy (MMR)");
  Emit(args, vop_table);
  std::printf(
      "paper: exact/fitted median IOP-insulation MMR > 0.9; linear ~0.83; "
      "constant > 0.5; fixed skews at >16KB.\nVOP allocation MMR: exact/"
      "fitted > 0.98, linear/fixed > 0.94, constant < 0.9.\n");
  return 0;
}
