# Empty dependencies file for dynamic_reservations.
# This may be replaced when dependencies are built.
