// Figure 10: VOP throughput of the LevelDB-like prototype under
// application-level workloads.
//  (a) pure GET and pure PUT workloads across request sizes;
//  (b) mixed GET:PUT ratios over a (GET size x PUT size) grid, log-normal
//      sizes with sigma 4K;
//  (c) the distribution per ratio and the provisionable-floor analysis:
//      the fraction of achievable throughput covered by the VOP floor.

#include <algorithm>
#include <cstdio>

#include "bench/kv_bench_common.h"
#include "src/iosched/capacity.h"

namespace libra::bench {
namespace {

double RunKvCell(const BenchArgs& args, double get_fraction, double get_kb,
                 double put_kb, double sigma) {
  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  kv::StorageNode node(loop, opt);
  const iosched::TenantId tenant = 1;
  (void)node.AddTenant(tenant, {1000.0, 1000.0});

  workload::KvWorkloadSpec spec;
  spec.get_fraction = get_fraction;
  spec.get_size = {get_kb * 1024.0, sigma};
  spec.put_size = {put_kb * 1024.0, sigma};
  spec.live_bytes_target = args.full ? 32ULL * kMiB : 10ULL * kMiB;
  spec.disjoint_get_range = true;
  // Enough closed-loop workers to saturate the device queue even though a
  // GET costs two serial IOs (index block, then data block).
  spec.workers = 32;
  workload::KvTenantWorkload wl(loop, node, tenant, spec, 31);
  RunPreloads(loop, {&wl});

  const SimDuration warmup = 2 * kSecond;
  const SimDuration measure = args.full ? 6 * kSecond : 2 * kSecond;
  double vops_at_warm = 0.0;
  double vops_at_end = 0.0;
  {
    sim::TaskGroup group(loop);
    const SimTime start = loop.Now();
    wl.Start(group, start + warmup + measure);
    loop.ScheduleAt(start + warmup,
                    [&] { vops_at_warm = node.tracker().total_vops(); });
    // Snapshot exactly at window end: the post-deadline drain (background
    // compactions finishing) must not count against a fixed denominator.
    loop.ScheduleAt(start + warmup + measure,
                    [&] { vops_at_end = node.tracker().total_vops(); });
    loop.Run();
  }
  return (vops_at_end - vops_at_warm) / ToSeconds(measure);
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  using libra::SampleSet;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const double floor_kvops = libra::iosched::kIntel320VopFloor / 1000.0;

  // All cells — (a)'s pure sweeps and (b)'s ratio grids — are independent
  // sims: fan them across --jobs workers, then emit serially in order.
  const auto sizes = SweepSizesKb(args.full);
  const double ratios[] = {0.75, 0.50, 0.25, 0.01};
  const char* names[] = {"75:25", "50:50", "25:75", "1:99"};
  const size_t n_pure = 2 * sizes.size();             // (GET, PUT) per size
  const size_t per_ratio = sizes.size() * sizes.size();
  TableFor(libra::ssd::Intel320Profile());  // warm before the pool starts
  SweepRunner runner(args.jobs);
  const std::vector<double> cells = runner.Map<double>(
      n_pure + std::size(ratios) * per_ratio, [&](size_t i) {
        if (i < n_pure) {
          const uint32_t kb = sizes[i / 2];
          const bool get = (i % 2) == 0;
          return RunKvCell(args, get ? 1.0 : 0.0, kb, kb, 0.0);
        }
        const size_t j = i - n_pure;
        const size_t c = j % per_ratio;
        return RunKvCell(args, ratios[j / per_ratio],
                         sizes[c % sizes.size()], sizes[c / sizes.size()],
                         4096.0);
      });

  // (a) pure workloads.
  Section(args, "Figure 10a: pure GET / pure PUT VOP throughput (kVOP/s)");
  {
    libra::metrics::Table out({"size_kb", "pure_GET", "pure_PUT"});
    for (size_t s = 0; s < sizes.size(); ++s) {
      out.AddNumericRow(std::to_string(sizes[s]),
                        {cells[2 * s] / 1000.0, cells[2 * s + 1] / 1000.0},
                        1);
    }
    Emit(args, out);
  }

  // (b) mixed ratios over the size grid; (c) distributions.
  SampleSet all;
  libra::metrics::Table cdf({"GET:PUT", "min", "p25", "p50", "p80", "max",
                             "floor_over_p80"});
  for (size_t i = 0; i < std::size(ratios); ++i) {
    Section(args, std::string("Figure 10b: ") + names[i] +
                      " GET:PUT, sigma 4K (kVOP/s)");
    std::vector<std::string> header = {"put\\get_kb"};
    for (uint32_t g : sizes) {
      header.push_back(std::to_string(g));
    }
    libra::metrics::Table map(header);
    SampleSet set;
    for (size_t pi = 0; pi < sizes.size(); ++pi) {
      std::vector<double> row;
      for (size_t gi = 0; gi < sizes.size(); ++gi) {
        const double v = cells[n_pure + i * per_ratio + pi * sizes.size() + gi];
        row.push_back(v / 1000.0);
        set.Add(v / 1000.0);
        all.Add(v / 1000.0);
      }
      map.AddNumericRow(std::to_string(sizes[pi]), row, 1);
    }
    Emit(args, map);
    cdf.AddNumericRow(names[i],
                      {set.Min(), set.Percentile(0.25), set.Median(),
                       set.Percentile(0.80), set.Max(),
                       floor_kvops / set.Percentile(0.80)},
                      2);
  }
  Section(args, "Figure 10c: per-ratio VOP throughput distribution (kVOP/s)");
  Emit(args, cdf);
  std::printf(
      "VOP floor %.1f kVOP/s; over all ratio cells: p80 %.1f kVOP/s -> "
      "floor covers %.0f%% of the 80th percentile (paper: >= 69%%).\n",
      floor_kvops, all.Percentile(0.80),
      100.0 * floor_kvops / all.Percentile(0.80));
  return 0;
}
