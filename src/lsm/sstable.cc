#include "src/lsm/sstable.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <tuple>

namespace libra::lsm {

SstableBuilder::SstableBuilder(fs::SimFs& fs, fs::FileId file,
                               SstableOptions options)
    : fs_(fs), file_(file), options_(options) {}

void SstableBuilder::Add(std::string_view key, SequenceNumber seq,
                         ValueType type, std::string_view value) {
  assert(!finished_);
  if (num_entries_ == 0) {
    smallest_ = std::string(key);
  }
  largest_ = std::string(key);
  EncodeRecord(&block_, key, seq, type, value);
  last_key_in_block_ = std::string(key);
  ++num_entries_;
  if (block_.size() >= options_.block_bytes) {
    FlushBlock();
  }
}

void SstableBuilder::FlushBlock() {
  if (block_.empty()) {
    return;
  }
  index_.push_back(IndexEntry{last_key_in_block_, buffer_.size(),
                              static_cast<uint32_t>(block_.size())});
  buffer_ += block_;
  block_.clear();
}

sim::Task<Status> SstableBuilder::Finish(const iosched::IoTag& tag) {
  assert(!finished_);
  finished_ = true;
  FlushBlock();
  // Append the index block and footer.
  const uint64_t index_offset = buffer_.size();
  std::string index_block;
  for (const IndexEntry& e : index_) {
    PutLengthPrefixed(&index_block, e.last_key);
    PutFixed64(&index_block, e.offset);
    PutFixed32(&index_block, e.size);
  }
  buffer_ += index_block;
  PutFixed64(&buffer_, index_offset);
  PutFixed64(&buffer_, index_block.size());

  // Stream to disk in sequential chunks.
  uint64_t written = 0;
  while (written < buffer_.size()) {
    const uint64_t len = std::min<uint64_t>(options_.write_chunk_bytes,
                                            buffer_.size() - written);
    Status s = co_await fs_.Append(
        file_, tag, std::string_view(buffer_.data() + written, len));
    if (!s.ok()) {
      co_return s;
    }
    written += len;
  }
  co_return Status::Ok();
}

TableIndexCache::IndexRef TableIndexCache::Get(uint64_t table) {
  const auto it = map_.find(table);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->index;
}

void TableIndexCache::Insert(uint64_t table, IndexRef index, uint64_t bytes) {
  Erase(table);  // replace semantics (concurrent loaders may both insert)
  lru_.push_front(Entry{table, std::move(index), bytes});
  map_[table] = lru_.begin();
  resident_bytes_ += bytes;
  if (capacity_bytes_ == 0) {
    return;  // unbounded
  }
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    map_.erase(victim.table);
    lru_.pop_back();
    ++evictions_;
  }
}

void TableIndexCache::Erase(uint64_t table) {
  const auto it = map_.find(table);
  if (it == map_.end()) {
    return;
  }
  resident_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

SstableReader::SstableReader(fs::SimFs& fs, fs::FileId file,
                             SstableOptions options, TableIndexCache* cache,
                             uint64_t cache_key)
    : fs_(fs),
      file_(file),
      options_(options),
      cache_(cache),
      cache_key_(cache_key) {}

sim::Task<StatusOr<TableIndexCache::IndexRef>> SstableReader::LoadIndex(
    const iosched::IoTag& tag) {
  if (cache_ != nullptr) {
    if (TableIndexCache::IndexRef hit = cache_->Get(cache_key_);
        hit != nullptr) {
      co_return hit;
    }
  } else if (resident_ != nullptr) {
    co_return resident_;
  }
  const uint64_t size = fs_.SizeOf(file_);
  if (size < 16) {
    co_return Status::DataLoss("table too small");
  }
  if (!footer_cached_) {
    std::string footer;
    Status fs_status = co_await fs_.ReadAt(file_, tag, size - 16, 16, &footer);
    if (!fs_status.ok()) {
      co_return fs_status;
    }
    index_offset_ = GetFixed64(footer, 0);
    index_size_ = GetFixed64(footer, 8);
    if (index_offset_ + index_size_ + 16 != size) {
      co_return Status::DataLoss("bad footer");
    }
    footer_cached_ = true;
  }
  const uint64_t index_offset = index_offset_;
  const uint64_t index_size = index_size_;
  Status s;
  // Index read padded to at least a 4KB block — the "at least one (4KB)
  // index block read per file" of §3.1.
  std::string index_block;
  const uint64_t data_end = index_offset + index_size;
  const uint64_t read_size =
      std::max<uint64_t>(index_size, std::min<uint64_t>(4096, data_end));
  const uint64_t read_off = data_end - read_size;
  s = co_await fs_.ReadAt(file_, tag, read_off, read_size, &index_block);
  if (!s.ok()) {
    co_return s;
  }
  // The index proper is the tail of the padded read minus nothing: locate it.
  const uint64_t skip = index_offset - read_off;
  std::string_view data(index_block.data() + skip, index_size);
  auto index = std::make_shared<TableIndexCache::Index>();
  size_t off = 0;
  while (off < data.size()) {
    std::string_view key;
    if (!GetLengthPrefixed(data, &off, &key) || off + 12 > data.size()) {
      co_return Status::DataLoss("bad index entry");
    }
    const uint64_t block_off = GetFixed64(data, off);
    const uint32_t block_size = GetFixed32(data, off + 8);
    off += 12;
    index->emplace_back(std::string(key), block_off, block_size);
  }
  TableIndexCache::IndexRef ref = std::move(index);
  if (cache_ != nullptr) {
    cache_->Insert(cache_key_, ref, index_size);
  } else {
    resident_ = ref;
  }
  co_return ref;
}

sim::Task<SstableReader::GetResult> SstableReader::Get(
    const iosched::IoTag& tag, std::string_view key,
    SequenceNumber snapshot) {
  GetResult result;
  StatusOr<TableIndexCache::IndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    result.status = loaded.status();
    co_return result;
  }
  const TableIndexCache::Index& index = **loaded;  // ref pins past eviction
  // First block whose last key >= lookup key.
  const auto it = std::lower_bound(
      index.begin(), index.end(), key,
      [](const auto& entry, std::string_view k) {
        return std::string_view(std::get<0>(entry)) < k;
      });
  if (it == index.end()) {
    co_return result;  // key larger than everything in the table
  }
  std::string block;
  result.status = co_await fs_.ReadAt(file_, tag, std::get<1>(*it),
                                      std::get<2>(*it), &block);
  if (!result.status.ok()) {
    co_return result;
  }
  // Scan the block for the newest visible entry (records are in internal
  // order: the first match with seq <= snapshot wins).
  size_t off = 0;
  Record rec;
  while (off < block.size() && DecodeRecord(block, &off, &rec)) {
    if (rec.key == key && rec.seq <= snapshot) {
      result.found = true;
      if (rec.type == ValueType::kDelete) {
        result.deleted = true;
      } else {
        result.value = std::string(rec.value);
      }
      co_return result;
    }
    if (rec.key > key) {
      break;
    }
  }
  co_return result;
}

sim::Task<Status> SstableReader::RangeCursor::SkipTo(std::string_view start,
                                                     bool bounded) {
  valid_ = false;
  while (true) {
    while (offset_ < block_.size()) {
      if (!DecodeRecord(block_, &offset_, &record_)) {
        co_return Status::DataLoss("bad data block");
      }
      if (!bounded || record_.key >= start) {
        valid_ = true;
        co_return Status::Ok();
      }
    }
    if (next_block_ >= index_->size()) {
      co_return Status::Ok();  // clean end of table, cursor invalid
    }
    const auto& entry = (*index_)[next_block_];
    Status s = co_await fs_.ReadAt(file_, tag_, std::get<1>(entry),
                                   std::get<2>(entry), &block_);
    if (!s.ok()) {
      co_return s;
    }
    offset_ = 0;
    ++next_block_;
  }
}

sim::Task<Status> SstableReader::RangeCursor::Next() {
  return SkipTo({}, /*bounded=*/false);
}

sim::Task<StatusOr<std::unique_ptr<SstableReader::RangeCursor>>>
SstableReader::Seek(const iosched::IoTag& tag, std::string_view start) {
  StatusOr<TableIndexCache::IndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    co_return loaded.status();
  }
  std::unique_ptr<RangeCursor> cursor(
      new RangeCursor(fs_, file_, tag, *loaded));
  // Records before the first block whose last key >= start all compare
  // below the seek key; start loading there.
  const TableIndexCache::Index& index = **loaded;
  const auto it = std::lower_bound(
      index.begin(), index.end(), start,
      [](const auto& entry, std::string_view k) {
        return std::string_view(std::get<0>(entry)) < k;
      });
  cursor->next_block_ = static_cast<size_t>(it - index.begin());
  if (Status s = co_await cursor->SkipTo(start, /*bounded=*/true); !s.ok()) {
    co_return s;
  }
  co_return cursor;
}

sim::Task<Status> SstableReader::ScanAll(
    const iosched::IoTag& tag,
    const std::function<void(const Record&)>& fn) {
  StatusOr<TableIndexCache::IndexRef> loaded = co_await LoadIndex(tag);
  if (!loaded.ok()) {
    co_return loaded.status();
  }
  const TableIndexCache::Index& index = **loaded;
  if (index.empty()) {
    co_return Status::Ok();
  }
  Status s;
  const uint64_t data_end =
      std::get<1>(index.back()) + std::get<2>(index.back());
  std::string data;
  uint64_t pos = 0;
  while (pos < data_end) {
    const uint64_t len =
        std::min<uint64_t>(options_.write_chunk_bytes, data_end - pos);
    std::string chunk;
    s = co_await fs_.ReadAt(file_, tag, pos, len, &chunk);
    if (!s.ok()) {
      co_return s;
    }
    data += chunk;
    pos += len;
  }
  // Records never span blocks and blocks are contiguous, so a single
  // linear decode covers the whole data section.
  size_t off = 0;
  Record rec;
  while (off < data.size() && DecodeRecord(data, &off, &rec)) {
    fn(rec);
  }
  co_return Status::Ok();
}

}  // namespace libra::lsm
