#include "src/lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/rng.h"
#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

LsmOptions SmallOptions() {
  LsmOptions opt;
  opt.write_buffer_bytes = 64 * 1024;  // tiny buffers: fast flush/compact
  opt.max_bytes_level1 = 256 * 1024;
  opt.target_file_bytes = 64 * 1024;
  return opt;
}

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

TEST(LsmDbTest, PutGetRoundTrip) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await db.Put("hello", "world")).ok());
    auto r = co_await db.Get("hello");
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.value, "world");
  }());
}

TEST(LsmDbTest, GetMissingIsNotFound) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await db.Get("ghost");
    EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  }());
}

TEST(LsmDbTest, OverwriteReturnsLatest) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await db.Put("k", "v1");
    co_await db.Put("k", "v2");
    auto r = co_await db.Get("k");
    EXPECT_EQ(r.value, "v2");
  }());
}

TEST(LsmDbTest, DeleteHidesKey) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await db.Put("k", "v");
    co_await db.Delete("k");
    auto r = co_await db.Get("k");
    EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  }());
}

TEST(LsmDbTest, FlushMovesDataToL0AndDataSurvives) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    // Enough data to overflow the 64KB write buffer several times.
    for (int i = 0; i < 200; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();
    // All keys remain readable from tables.
    for (int i = 0; i < 200; i += 13) {
      auto r = co_await db.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value.size(), 1024u) << i;
    }
  }());
  EXPECT_GT(db.stats().flushes, 0u);
}

TEST(LsmDbTest, CompactionReducesL0AndPreservesData) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 400; ++i) {
        co_await db.Put(Key(i), std::string(512, 'a' + round));
      }
    }
    co_await db.WaitIdle();
    EXPECT_LT(db.NumFilesAtLevel(0), 5);
    for (int i = 0; i < 400; i += 37) {
      auto r = co_await db.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value, std::string(512, 'a' + 3)) << i;
    }
  }());
  EXPECT_GT(db.stats().compactions, 0u);
  EXPECT_GT(db.NumFilesAtLevel(1), 0);
}

TEST(LsmDbTest, DeletedKeysStayDeletedThroughCompaction) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 300; ++i) {
      co_await db.Put(Key(i), std::string(512, 'v'));
    }
    for (int i = 0; i < 300; i += 2) {
      co_await db.Delete(Key(i));
    }
    // Churn to force flushes + compactions over the tombstones.
    for (int i = 300; i < 600; ++i) {
      co_await db.Put(Key(i), std::string(512, 'w'));
    }
    co_await db.WaitIdle();
    for (int i = 0; i < 300; i += 50) {
      auto even = co_await db.Get(Key(i));
      EXPECT_EQ(even.status.code(), StatusCode::kNotFound) << i;
      auto odd = co_await db.Get(Key(i + 1));
      EXPECT_TRUE(odd.status.ok()) << i + 1;
    }
  }());
}

TEST(LsmDbTest, RandomizedAgainstReferenceMap) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  std::map<std::string, std::string> reference;
  Rng rng(404);
  rig.RunTask([&]() -> sim::Task<void> {
    for (int op = 0; op < 3000; ++op) {
      EXPECT_EQ(db.DebugCheckInvariants(), "") << "op " << op;
      const std::string key = Key(static_cast<int>(rng.NextU64(500)));
      const double dice = rng.NextDouble();
      if (dice < 0.55) {
        const std::string value =
            "v" + std::to_string(op) + std::string(rng.NextU64(900), 'x');
        co_await db.Put(key, value);
        reference[key] = value;
      } else if (dice < 0.7) {
        co_await db.Delete(key);
        reference.erase(key);
      } else {
        auto r = co_await db.Get(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(r.status.code(), StatusCode::kNotFound) << key;
        } else {
          EXPECT_TRUE(r.status.ok()) << key;
          EXPECT_EQ(r.value, it->second) << key;
        }
      }
    }
    co_await db.WaitIdle();
    // Full verification sweep.
    for (const auto& [key, value] : reference) {
      auto r = co_await db.Get(key);
      EXPECT_TRUE(r.status.ok()) << key;
      EXPECT_EQ(r.value, value) << key;
    }
  }());
}

TEST(LsmDbTest, ConcurrentWritersAllLand) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  auto writer = [&](int base) -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          (co_await db.Put(Key(base + i), std::string(256, 'c'))).ok());
    }
  };
  for (int w = 0; w < 8; ++w) {
    sim::Detach(writer(w * 100));
  }
  rig.loop.Run();
  rig.RunTask([&]() -> sim::Task<void> {
    co_await db.WaitIdle();
    for (int w = 0; w < 8; ++w) {
      for (int i = 0; i < 50; i += 10) {
        auto r = co_await db.Get(Key(w * 100 + i));
        EXPECT_TRUE(r.status.ok()) << w << "/" << i;
      }
    }
  }());
}

TEST(LsmDbTest, WalRecoveryRestoresMemtable) {
  LsmRig rig;
  {
    LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
    ASSERT_TRUE(db.Open().ok());
    rig.RunTask([&]() -> sim::Task<void> {
      co_await db.Put("durable", "yes");
      co_await db.WaitIdle();
    }());
    // "Crash": destroy the DB without flushing the memtable. The WAL file
    // remains in SimFs.
  }
  LsmDb db2(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db2.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await db2.Get("durable");
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.value, "yes");
  }());
}

TEST(LsmDbTest, FlushAndCompactIoTaggedAsInternal) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 300; ++i) {
        co_await db.Put(Key(i), std::string(512, 'z'));
        // The serving layer records app-request execution (the node does
        // this in production; tests stand in for it).
        rig.sched.tracker().RecordAppRequest(1, iosched::AppRequest::kPut, 512);
      }
    }
    co_await db.WaitIdle();
  }());
  rig.sched.tracker().Roll();
  const auto put_profile =
      rig.sched.tracker().Profile(1, iosched::AppRequest::kPut);
  // Direct PUT cost plus attributed FLUSH and COMPACT components.
  EXPECT_GT(put_profile.direct, 0.0);
  EXPECT_GT(put_profile.indirect[static_cast<int>(iosched::InternalOp::kFlush)],
            0.0);
  EXPECT_GT(
      put_profile.indirect[static_cast<int>(iosched::InternalOp::kCompact)],
      0.0);
}

LsmOptions GroupCommitOptions() {
  LsmOptions opt = SmallOptions();
  opt.wal_group_commit = true;
  return opt;
}

TEST(LsmDbTest, GroupCommitConcurrentPutsSurviveCrashRecovery) {
  LsmRig rig;
  constexpr int kWriters = 16;
  {
    LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", GroupCommitOptions());
    ASSERT_TRUE(db.Open().ok());
    auto writer = [&](int i) -> sim::Task<void> {
      EXPECT_TRUE((co_await db.Put(Key(i), "v" + std::to_string(i))).ok());
    };
    for (int i = 0; i < kWriters; ++i) {
      sim::Detach(writer(i));
    }
    rig.loop.Run();
    const LsmStats stats = db.stats();
    EXPECT_EQ(stats.wal_appends, static_cast<uint64_t>(kWriters));
    EXPECT_EQ(stats.wal_batched_records, static_cast<uint64_t>(kWriters));
    EXPECT_LT(stats.wal_batches, static_cast<uint64_t>(kWriters));
    EXPECT_GE(stats.wal_max_batch_records, 2u);
    // "Crash" with everything still in the memtable: recovery must come
    // from the group-committed WAL alone.
  }
  LsmDb db2(rig.loop, rig.fs, rig.sched, 1, "t1", GroupCommitOptions());
  ASSERT_TRUE(db2.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < kWriters; ++i) {
      auto r = co_await db2.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value, "v" + std::to_string(i)) << i;
    }
  }());
}

TEST(LsmDbTest, GroupCommitReducesWalDeviceWrites) {
  // Same 16 concurrent PUTs against two DBs that differ only in the
  // group-commit knob. Values are small enough that nothing flushes, so
  // every device write IOP is WAL traffic. Device IOPs are the lifecycle
  // stats' op count (a batch is one op, billed to its leader); the
  // tracker's write_ops counts per-contributor slices and stays 16 either
  // way — that is the cost-attribution invariant, not the IOP count.
  auto run = [](bool batched) -> uint64_t {
    LsmRig rig;
    LsmOptions opt = batched ? GroupCommitOptions() : SmallOptions();
    LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
    EXPECT_TRUE(db.Open().ok());
    auto writer = [&](int i) -> sim::Task<void> {
      co_await db.Put(Key(i), std::string(64, 'v'));
    };
    for (int i = 0; i < 16; ++i) {
      sim::Detach(writer(i));
    }
    rig.loop.Run();
    EXPECT_EQ(db.stats().flushes, 0u);
    EXPECT_EQ(rig.sched.tracker().Stats(1).write_ops, 16u);
    const iosched::TenantLifecycleStats* lc = rig.sched.lifecycle(1);
    EXPECT_NE(lc, nullptr);
    const obs::IoClassStats* cls =
        lc->of(iosched::AppRequest::kPut, iosched::InternalOp::kNone);
    EXPECT_NE(cls, nullptr);
    return cls->ops;
  };
  const uint64_t unbatched_ops = run(false);
  const uint64_t batched_ops = run(true);
  EXPECT_EQ(unbatched_ops, 16u);  // one synced WAL IOP per PUT
  // ISSUE acceptance: >= 1.5x fewer WAL device IOPs under concurrency (in
  // practice the 16 writers collapse into 2 batches).
  EXPECT_GE(static_cast<double>(unbatched_ops),
            1.5 * static_cast<double>(batched_ops));
}

TEST(LsmDbTest, GroupCommitSplitCostLandsOnDirectPutClass) {
  // Cost conservation: the batched WAL IOP's cost is split back onto the
  // contributors' (tenant, PUT, direct) class — it does not leak onto GET
  // or internal-op classes, and the shared-IO rollup sees the slices.
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", GroupCommitOptions());
  ASSERT_TRUE(db.Open().ok());
  auto writer = [&](int i) -> sim::Task<void> {
    co_await db.Put(Key(i), std::string(64, 'v'));
  };
  for (int i = 0; i < 8; ++i) {
    sim::Detach(writer(i));
  }
  rig.loop.Run();
  ASSERT_EQ(db.stats().flushes, 0u);
  const auto& tr = rig.sched.tracker();
  EXPECT_GT(tr.shared_io_shares(), 0u);
  const double put_direct = tr.VopsBy(1, iosched::AppRequest::kPut,
                                      iosched::InternalOp::kNone,
                                      ssd::IoType::kWrite);
  EXPECT_GT(put_direct, 0.0);
  // All write VOPs the tenant consumed are on that one class.
  EXPECT_DOUBLE_EQ(put_direct, tr.Stats(1).vops);
  EXPECT_EQ(tr.VopsBy(1, iosched::AppRequest::kPut,
                      iosched::InternalOp::kFlush, ssd::IoType::kWrite),
            0.0);
  EXPECT_EQ(tr.VopsBy(1, iosched::AppRequest::kGet, iosched::InternalOp::kNone,
                      ssd::IoType::kRead),
            0.0);
}

TEST(LsmDbTest, GroupCommitHeavyChurnKeepsInvariantsAndData) {
  // Group commit under flush/compaction churn: concurrent writers push
  // enough data through tiny buffers to force background work while
  // batches form.
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", GroupCommitOptions());
  ASSERT_TRUE(db.Open().ok());
  auto writer = [&](int base) -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          (co_await db.Put(Key(base + i), std::string(512, 'g'))).ok());
    }
  };
  for (int w = 0; w < 8; ++w) {
    sim::Detach(writer(w * 100));
  }
  rig.loop.Run();
  rig.RunTask([&]() -> sim::Task<void> {
    co_await db.WaitIdle();
    for (int w = 0; w < 8; ++w) {
      for (int i = 0; i < 50; i += 7) {
        auto r = co_await db.Get(Key(w * 100 + i));
        EXPECT_TRUE(r.status.ok()) << w << "/" << i;
      }
    }
  }());
  EXPECT_EQ(db.DebugCheckInvariants(), "");
  EXPECT_GT(db.stats().flushes, 0u);
  EXPECT_GT(db.stats().wal_batches, 0u);
  EXPECT_EQ(db.stats().wal_batched_records, db.stats().wal_appends);
}

TEST(LsmDbTest, UniformPutsWidenGetLookups) {
  // Paper §3.1/Fig. 2: uniform-keyspace PUT churn increases the number of
  // eligible files a GET must probe.
  LsmRig rig;
  LsmOptions opt = SmallOptions();
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  Rng rng(7);
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 2000; ++i) {
      co_await db.Put(Key(static_cast<int>(rng.NextU64(5000))),
                      std::string(512, 'u'));
    }
    // Probe GETs while files are spread over levels.
    const uint64_t probes_before = db.stats().tables_probed;
    const uint64_t gets_before = db.stats().gets;
    for (int i = 0; i < 100; ++i) {
      co_await db.Get(Key(static_cast<int>(rng.NextU64(5000))));
    }
    const double per_get =
        static_cast<double>(db.stats().tables_probed - probes_before) /
        static_cast<double>(db.stats().gets - gets_before);
    EXPECT_GT(per_get, 1.0);  // more than one file probed per GET on average
    co_await db.WaitIdle();
  }());
}

// --- range scans (merge-iterator across memtable + SSTables) ---

TEST(LsmDbTest, ScanMergesMemtableAndTables) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    // Flushed generation...
    for (int i = 0; i < 200; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();
    // ...plus fresh memtable entries interleaved into the same range.
    for (int i = 200; i < 220; ++i) {
      co_await db.Put(Key(i), "mem");
    }
    auto r = co_await db.Scan(Key(190), Key(210), 0);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.entries.size(), 20u);
    for (size_t i = 0; i < r.entries.size() && i < 20; ++i) {
      EXPECT_EQ(r.entries[i].first, Key(190 + static_cast<int>(i)));
      EXPECT_EQ(r.entries[i].second,
                190 + static_cast<int>(i) < 200 ? std::string(1024, 'v')
                                                : std::string("mem"));
    }
  }());
  EXPECT_GT(db.stats().scans, 0u);
  EXPECT_EQ(db.stats().scan_keys, 20u);
}

TEST(LsmDbTest, ScanTombstoneShadowsLowerLevel) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();  // values now live in flushed tables
    // Tombstones land in the memtable, above the flushed values.
    for (int i = 100; i < 110; ++i) {
      co_await db.Delete(Key(i));
    }
    auto r = co_await db.Scan(Key(95), Key(115), 0);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.entries.size(), 10u);  // 95..99 and 110..114
    for (const auto& [k, v] : r.entries) {
      EXPECT_TRUE(k < Key(100) || k >= Key(110)) << k;
    }
  }());
}

TEST(LsmDbTest, ScanDuplicateKeysAcrossLevelsNewestWins) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    // Three generations of the same key range, separated by flushes, so the
    // same user keys exist in multiple tables (and the memtable).
    for (int gen = 0; gen < 3; ++gen) {
      for (int i = 0; i < 100; ++i) {
        co_await db.Put(Key(i), "gen" + std::to_string(gen) +
                                    std::string(512, 'x'));
      }
      if (gen < 2) {
        co_await db.WaitIdle();
      }
    }
    auto r = co_await db.Scan(Key(0), Key(100), 0);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.entries.size(), 100u);  // each key exactly once
    for (const auto& [k, v] : r.entries) {
      EXPECT_EQ(v.substr(0, 4), "gen2") << k;
    }
    co_await db.WaitIdle();
  }());
}

TEST(LsmDbTest, ScanEmptyRange) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await db.Put(Key(i), "v");
    }
    // Range entirely above the population.
    auto high = co_await db.Scan(Key(1000), Key(2000), 0);
    EXPECT_TRUE(high.status.ok());
    EXPECT_TRUE(high.entries.empty());
    // Degenerate [x, x) range.
    auto empty = co_await db.Scan(Key(10), Key(10), 0);
    EXPECT_TRUE(empty.status.ok());
    EXPECT_TRUE(empty.entries.empty());
  }());
}

TEST(LsmDbTest, ScanLimitTruncatesMidSstable) {
  LsmRig rig;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", SmallOptions());
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 300; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();
    auto r = co_await db.Scan(Key(0), std::string(), 7);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.entries.size(), 7u);
    for (size_t i = 0; i < r.entries.size(); ++i) {
      EXPECT_EQ(r.entries[i].first, Key(static_cast<int>(i)));
    }
    // A truncated scan reads only the blocks it touched, not the full
    // range: its byte footprint stays well under the whole population.
    EXPECT_LT(db.stats().scan_bytes, 300u * 1024u / 2);
  }());
}

// --- size-tiered compaction policy ---

TEST(LsmDbTest, SizeTieredCompactionPreservesDataAndInvariants) {
  LsmRig rig;
  LsmOptions opt = SmallOptions();
  opt.compaction_policy = CompactionPolicy::kSizeTiered;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 400; ++i) {
        co_await db.Put(Key(i), std::string(512, 'a' + round));
      }
    }
    co_await db.WaitIdle();
    for (int i = 0; i < 400; i += 37) {
      auto r = co_await db.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value, std::string(512, 'a' + 3)) << i;
    }
    auto scan = co_await db.Scan(Key(0), std::string(), 0);
    EXPECT_TRUE(scan.status.ok());
    EXPECT_EQ(scan.entries.size(), 400u);
  }());
  EXPECT_GT(db.stats().compactions, 0u);
  EXPECT_EQ(db.DebugCheckInvariants(), "");
}

TEST(LsmDbTest, SizeTieredRandomizedAgainstReferenceMap) {
  LsmRig rig;
  LsmOptions opt = SmallOptions();
  opt.compaction_policy = CompactionPolicy::kSizeTiered;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  std::map<std::string, std::string> reference;
  Rng rng(42);
  rig.RunTask([&]() -> sim::Task<void> {
    for (int op = 0; op < 2000; ++op) {
      const std::string key = Key(static_cast<int>(rng.NextU64(300)));
      if (rng.NextU64(100) < 25 && reference.count(key)) {
        co_await db.Delete(key);
        reference.erase(key);
      } else {
        const std::string value =
            "v" + std::to_string(op) + std::string(rng.NextU64(700), 'z');
        co_await db.Put(key, value);
        reference[key] = value;
      }
    }
    co_await db.WaitIdle();
    // Point lookups match the reference...
    for (int i = 0; i < 300; ++i) {
      auto r = co_await db.Get(Key(i));
      const auto it = reference.find(Key(i));
      if (it == reference.end()) {
        EXPECT_EQ(r.status.code(), StatusCode::kNotFound) << Key(i);
      } else {
        EXPECT_TRUE(r.status.ok()) << Key(i);
        EXPECT_EQ(r.value, it->second) << Key(i);
      }
    }
    // ...and a full scan reproduces it exactly, in order.
    auto scan = co_await db.Scan(std::string(), std::string(), 0);
    EXPECT_TRUE(scan.status.ok());
    EXPECT_EQ(scan.entries.size(), reference.size());
    auto rit = reference.begin();
    for (const auto& [k, v] : scan.entries) {
      if (rit == reference.end()) {
        break;
      }
      EXPECT_EQ(k, rit->first);
      EXPECT_EQ(v, rit->second);
      ++rit;
    }
  }());
  EXPECT_EQ(db.DebugCheckInvariants(), "");
}

}  // namespace
}  // namespace libra::lsm
