// Batching demo: before/after view of the request-path batching layer.
//
// Two paired experiments, each run once with batching off (the paper's
// defaults) and once with it on:
//   1. WAL group commit — three tenants of closed-loop PUT writers on one
//      node. Reported per mode: WAL device IOPs per normalized PUT (the
//      paper's PUT profile is one synced WAL IOP per request; group commit
//      amortizes it), sustained normalized PUT/s at the capacity floor, and
//      simulated events per completed op (the simulator-cost win).
//   2. Read coalescing — a hot-key MultiGet workload on a small cluster.
//      Batching groups each MultiGet's same-slot keys through one routing
//      gate and collapses duplicate in-flight GETs into one LSM lookup
//      (singleflight); a bounded table cache replaces the grow-forever
//      resident index blocks.
// Both experiments are single-loop simulations, so output is identical for
// any --jobs value.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/metrics/table.h"
#include "src/workload/workload.h"

namespace libra::bench {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;
using iosched::TenantId;

constexpr TenantId kPutTenants[] = {1, 2, 3};

// --- experiment 1: WAL group commit under a PUT-heavy multi-writer load ---

struct PutRunResult {
  double puts = 0.0;            // normalized PUTs in the measure window
  double puts_per_sec = 0.0;    // sustained normalized PUT/s
  uint64_t wal_iops = 0;        // device WAL writes in the window
  double wal_iops_per_put = 0.0;
  uint64_t ops_done = 0;        // app requests completed (whole run)
  uint64_t events = 0;          // loop events dispatched (whole run)
  double events_per_op = 0.0;
  uint64_t batches = 0;         // leader-issued WAL device appends
  uint64_t batched_records = 0; // records that rode them
  uint64_t max_batch = 0;
};

PutRunResult RunPutHeavy(const BenchArgs& args, bool batching) {
  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  if (batching) {
    opt.lsm_options.wal_group_commit = true;
  }
  kv::StorageNode node(loop, opt);
  for (TenantId t : kPutTenants) {
    (void)node.AddTenant(t, {100.0, 1500.0});
  }

  std::vector<std::unique_ptr<workload::KvTenantWorkload>> wls;
  std::vector<workload::KvTenantWorkload*> raw;
  for (TenantId t : kPutTenants) {
    workload::KvWorkloadSpec spec;
    spec.get_fraction = 0.0;  // pure writers: every request syncs the WAL
    spec.put_size = {1024.0, 0.0};
    spec.live_bytes_target = (args.full ? 8ULL : 4ULL) * kMiB;
    spec.workers = 16;
    wls.push_back(std::make_unique<workload::KvTenantWorkload>(
        loop, node, t, spec, 700 + t));
    raw.push_back(wls.back().get());
  }
  RunPreloads(loop, raw);

  const SimDuration warmup = 2 * kSecond;
  const SimDuration measure = (args.full ? 8 : 4) * kSecond;
  double puts0 = 0.0, puts1 = 0.0;
  uint64_t wal0 = 0, wal1 = 0;
  // WAL appends are the only direct (tenant, PUT, kNone) IO, so that
  // lifecycle class counts device WAL writes; under group commit a batched
  // append completes as one op attributed to its leader.
  const auto wal_ops = [&] {
    uint64_t ops = 0;
    for (TenantId t : kPutTenants) {
      if (const iosched::TenantLifecycleStats* lc = node.scheduler().lifecycle(t)) {
        if (const obs::IoClassStats* c =
                lc->of(AppRequest::kPut, InternalOp::kNone)) {
          ops += c->ops;
        }
      }
    }
    return ops;
  };
  const auto norm_puts = [&] {
    double s = 0.0;
    for (TenantId t : kPutTenants) {
      s += node.tracker().NormalizedRequestsTotal(t, AppRequest::kPut);
    }
    return s;
  };

  PutRunResult r;
  {
    sim::TaskGroup group(loop);
    const SimTime start = loop.Now();
    node.Start();
    for (auto& wl : wls) {
      wl->Start(group, start + warmup + measure);
    }
    loop.ScheduleAt(start + warmup, [&] {
      puts0 = norm_puts();
      wal0 = wal_ops();
    });
    loop.ScheduleAt(start + warmup + measure, [&] {
      puts1 = norm_puts();
      wal1 = wal_ops();
    });
    // The started policy keeps its timer pending forever: bound the run,
    // stop, then drain the in-flight work.
    r.events = loop.RunUntil(start + warmup + measure + kSecond);
    node.Stop();
    r.events += loop.Run();
  }

  r.puts = puts1 - puts0;
  r.puts_per_sec = r.puts / ToSeconds(measure);
  r.wal_iops = wal1 - wal0;
  r.wal_iops_per_put = r.puts > 0.0 ? r.wal_iops / r.puts : 0.0;
  for (auto& wl : wls) {
    r.ops_done += wl->puts_done() + wl->gets_done();
  }
  r.events_per_op =
      r.ops_done > 0 ? static_cast<double>(r.events) / r.ops_done : 0.0;
  for (TenantId t : kPutTenants) {
    const lsm::LsmStats s = node.partition(t)->stats();
    r.batches += s.wal_batches;
    r.batched_records += s.wal_batched_records;
    r.max_batch = std::max(r.max_batch, s.wal_max_batch_records);
  }
  return r;
}

// --- experiment 2: hot-key MultiGet on a small cluster ---

struct GetRunResult {
  uint64_t keys_issued = 0;
  uint64_t errors = 0;
  uint64_t groups = 0;          // slot groups routed (batched mode)
  uint64_t coalesced = 0;       // GETs that rode another's lookup
  uint64_t events = 0;
  double events_per_key = 0.0;
  uint64_t cache_hits = 0;      // bounded table cache (batched mode)
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
};

std::string HotKey(uint64_t i) { return "hot:" + std::to_string(i); }

// 8KB objects so the population overflows the 4MB write buffers and the
// hot keys are served from SSTables — memtable hits would need no IO and
// leave nothing for singleflight or the table cache to do.
sim::Task<void> PreloadHotKeys(cluster::TenantHandle h, int n,
                               uint64_t* errors) {
  for (int i = 0; i < n; ++i) {
    const std::string key = HotKey(i);
    const Status s = co_await h.Put(key, workload::MakeValue(key, 8192));
    if (!s.ok()) {
      ++*errors;
    }
  }
}

// One closed-loop reader: `rounds` MultiGets of `fan` keys drawn Zipf-hot
// from [0, nkeys) — duplicates within and across concurrent rounds are what
// singleflight collapses.
sim::Task<void> HotReader(cluster::TenantHandle h, int rounds, int fan,
                          int nkeys, uint64_t seed, uint64_t* keys_issued,
                          uint64_t* errors) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::string> keys;
    keys.reserve(fan);
    for (int k = 0; k < fan; ++k) {
      // Square the uniform sample: a cheap deterministic hot-spot skew.
      const double u = rng.NextDouble();
      keys.push_back(HotKey(static_cast<uint64_t>(u * u * nkeys)));
    }
    *keys_issued += keys.size();
    const std::vector<Result<std::string>> out = co_await h.MultiGet(keys);
    for (const Result<std::string>& r : out) {
      if (!r.ok()) {
        ++*errors;
      }
    }
  }
}

GetRunResult RunHotReads(const BenchArgs& args, bool batching) {
  sim::EventLoop loop;
  cluster::ClusterOptions copt;
  copt.num_nodes = 2;
  copt.node_options = PrototypeNodeOptions();
  if (batching) {
    copt.batch_multiget = true;
    copt.node_options.enable_read_coalescing = true;
    copt.node_options.lsm_options.table_cache_bytes = 64 * kKiB;
  }
  cluster::Cluster cl(loop, copt);
  const Result<cluster::TenantHandle> admitted =
      cl.AddTenant(7, cluster::GlobalReservation{3000.0, 500.0});
  GetRunResult r;
  if (!admitted.ok()) {
    std::fprintf(stderr, "AddTenant: %s\n",
                 admitted.status().message().c_str());
    r.errors = 1;
    return r;
  }
  const cluster::TenantHandle handle = admitted.value();

  const int nkeys = 2048;
  {
    sim::TaskGroup group(loop);
    group.Spawn(PreloadHotKeys(handle, nkeys, &r.errors));
    loop.Run();
  }

  // The readers run a fixed number of rounds (no deadline), so the cluster
  // policies stay un-started: allocations come from the admission-time even
  // split and the loop drains when the last round lands.
  const int readers = 16;
  const int rounds = args.full ? 64 : 32;
  const int fan = 8;
  {
    sim::TaskGroup group(loop);
    for (int w = 0; w < readers; ++w) {
      group.Spawn(HotReader(handle, rounds, fan, nkeys, 900 + w,
                            &r.keys_issued, &r.errors));
    }
    r.events = loop.Run();
  }

  r.groups = cl.multiget_groups();
  for (int n = 0; n < cl.num_nodes(); ++n) {
    r.coalesced += cl.node(n).coalesced_gets();
    for (TenantId t : cl.node(n).tenants()) {
      const lsm::LsmStats s = cl.node(n).partition(t)->stats();
      r.cache_hits += s.table_cache_hits;
      r.cache_misses += s.table_cache_misses;
      r.cache_evictions += s.table_cache_evictions;
    }
  }
  r.events_per_key = r.keys_issued > 0
                         ? static_cast<double>(r.events) / r.keys_issued
                         : 0.0;
  return r;
}

int RunDemo(const BenchArgs& args) {
  Section(args, "WAL group commit: PUT-heavy multi-writer (3 tenants x 16)");
  const PutRunResult off = RunPutHeavy(args, /*batching=*/false);
  const PutRunResult on = RunPutHeavy(args, /*batching=*/true);
  {
    metrics::Table t({"mode", "PUT/s", "WAL_IOPs", "WAL_IOPs/PUT",
                      "events/op", "batches", "rec/batch_max"});
    t.AddRow({"off", metrics::FormatDouble(off.puts_per_sec, 0),
              std::to_string(off.wal_iops),
              metrics::FormatDouble(off.wal_iops_per_put, 3),
              metrics::FormatDouble(off.events_per_op, 1),
              std::to_string(off.batches), std::to_string(off.max_batch)});
    t.AddRow({"on", metrics::FormatDouble(on.puts_per_sec, 0),
              std::to_string(on.wal_iops),
              metrics::FormatDouble(on.wal_iops_per_put, 3),
              metrics::FormatDouble(on.events_per_op, 1),
              std::to_string(on.batches), std::to_string(on.max_batch)});
    Emit(args, t);
  }
  const double iop_reduction =
      on.wal_iops_per_put > 0.0 ? off.wal_iops_per_put / on.wal_iops_per_put
                                : 0.0;
  const double tput_gain =
      off.puts_per_sec > 0.0 ? on.puts_per_sec / off.puts_per_sec : 0.0;
  const double event_cut =
      off.events_per_op > 0.0
          ? 100.0 * (1.0 - on.events_per_op / off.events_per_op)
          : 0.0;
  std::printf(
      "group commit: %.2fx fewer WAL device IOPs per PUT, %.2fx throughput "
      "at the floor, %.0f%% fewer events per op\n",
      iop_reduction, tput_gain, event_cut);

  Section(args, "Read coalescing: hot-key MultiGet (2 nodes, 16 readers)");
  const GetRunResult roff = RunHotReads(args, /*batching=*/false);
  const GetRunResult ron = RunHotReads(args, /*batching=*/true);
  {
    metrics::Table t({"mode", "keys", "slot_groups", "coalesced", "events/key",
                      "tcache_hit", "tcache_miss", "tcache_evict"});
    t.AddRow({"off", std::to_string(roff.keys_issued),
              std::to_string(roff.groups), std::to_string(roff.coalesced),
              metrics::FormatDouble(roff.events_per_key, 1),
              std::to_string(roff.cache_hits),
              std::to_string(roff.cache_misses),
              std::to_string(roff.cache_evictions)});
    t.AddRow({"on", std::to_string(ron.keys_issued),
              std::to_string(ron.groups), std::to_string(ron.coalesced),
              metrics::FormatDouble(ron.events_per_key, 1),
              std::to_string(ron.cache_hits), std::to_string(ron.cache_misses),
              std::to_string(ron.cache_evictions)});
    Emit(args, t);
  }
  const double hit_rate =
      ron.cache_hits + ron.cache_misses > 0
          ? 100.0 * ron.cache_hits / (ron.cache_hits + ron.cache_misses)
          : 0.0;
  std::printf(
      "coalescing: %llu duplicate GETs rode a shared lookup, %llu MultiGet "
      "slot groups, events per key %.1f -> %.1f, bounded table cache %.0f%% "
      "hit rate\n",
      static_cast<unsigned long long>(ron.coalesced),
      static_cast<unsigned long long>(ron.groups), roff.events_per_key,
      ron.events_per_key, hit_rate);

  if (off.puts <= 0.0 || on.puts <= 0.0 || roff.errors + ron.errors > 0) {
    std::fprintf(stderr, "FAIL: a run made no progress or returned errors\n");
    return 1;
  }
  if (iop_reduction < 1.5) {
    std::fprintf(stderr,
                 "FAIL: WAL IOP reduction %.2fx below the 1.5x target\n",
                 iop_reduction);
    return 1;
  }
  std::printf("batching contract held: >= 1.5x fewer WAL IOPs per PUT with "
              "identical results.\n");
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  return libra::bench::RunDemo(args);
}
