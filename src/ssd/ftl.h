// Flash translation layer: page-mapped, log-structured, with greedy garbage
// collection — the mechanism behind the paper's observation (§3.2) that
// small random writes incur a heavy read-merge-write penalty while large
// sequential writes stay cheap.
//
// Physical blocks are partitioned evenly across dies; each die maintains its
// own append point (active block) and free-block pool. Host writes are
// chunked round-robin across dies. When a die's free pool drops below the
// low watermark, greedy GC relocates the valid pages of minimum-valid
// victim blocks and erases them until the high watermark is restored.
//
// The FTL itself is time-free: it reports *work* (placements, pages moved,
// erases); SsdDevice converts work into die-busy time.

#ifndef LIBRA_SRC_SSD_FTL_H_
#define LIBRA_SRC_SSD_FTL_H_

#include <cstdint>
#include <vector>

#include "src/ssd/profile.h"

namespace libra::ssd {

// Host-write pages assigned to one die.
struct DiePlacement {
  int die = 0;
  uint32_t pages = 0;
};

// Garbage-collection work performed on one die as a side effect of a write.
struct GcWork {
  int die = 0;
  uint32_t pages_moved = 0;
  uint32_t erases = 0;
};

struct FtlWriteResult {
  std::vector<DiePlacement> placements;
  std::vector<GcWork> gc;
};

class Ftl {
 public:
  explicit Ftl(const DeviceProfile& profile);

  // Records a host write of `npages` logical pages starting at `first_lpn`
  // (wrapped modulo the logical page count). Returns the per-die placement
  // and any GC work triggered.
  //
  // `die_preference` (optional, a permutation of die indices) ranks dies by
  // desirability — the device passes dies ordered by earliest availability,
  // modeling firmware that programs whichever die is ready. Dies short on
  // free space are deprioritized regardless of preference so the per-die
  // partitions stay balanced.
  FtlWriteResult Write(uint64_t first_lpn, uint32_t npages,
                       const std::vector<int>* die_preference = nullptr);

  // Invalidates mapped pages in [first_lpn, first_lpn + npages) — the
  // filesystem's TRIM on file deletion. Without this, deleted LSM data files
  // would count as live and GC would thrash.
  void Trim(uint64_t first_lpn, uint32_t npages);

  // Write amplification since construction: (host + relocated) / host pages.
  double write_amp() const;

  uint64_t host_pages_written() const { return host_pages_written_; }
  uint64_t gc_pages_moved() const { return gc_pages_moved_; }
  uint64_t blocks_erased() const { return blocks_erased_; }
  uint64_t logical_pages() const { return logical_pages_; }

  // Free blocks currently available on `die` (testing / introspection).
  int free_blocks(int die) const;

 private:
  static constexpr uint32_t kUnmapped = UINT32_MAX;

  struct Die {
    std::vector<uint32_t> free_blocks;  // block indices (die-global space)
    uint32_t active_block = kUnmapped;
    uint32_t active_slot = 0;  // next free page slot within active block
  };

  // Writes one logical page to `die`, updating maps. Returns false if the
  // die is out of space even after GC (callers should never see this with
  // sane watermarks).
  void WritePageToDie(int die_idx, uint64_t lpn);

  // Relocates one valid page during GC (same die, bypasses watermark checks).
  void RelocatePage(int die_idx, uint64_t lpn);

  // Ensures the die has an active block with a free slot.
  void EnsureActiveBlock(int die_idx);

  // Runs GC on a die until the high watermark is met; records work in `out`.
  void CollectGarbage(int die_idx, std::vector<GcWork>& out);

  void InvalidatePpn(uint32_t ppn);

  int DieOfBlock(uint32_t block) const {
    return static_cast<int>(block / blocks_per_die_);
  }

  const DeviceProfile& profile_;
  uint64_t logical_pages_;
  uint32_t total_blocks_;
  uint32_t blocks_per_die_;
  // Effective GC watermarks: the profile's values clamped to the spare
  // blocks actually available per die, so tightly-provisioned devices make
  // steady forward progress instead of chasing an unreachable target.
  int low_watermark_ = 1;
  int high_watermark_ = 2;

  enum class BlockState : uint8_t { kFree, kActive, kUsed };

  std::vector<uint32_t> page_map_;     // lpn -> ppn (kUnmapped if unwritten)
  std::vector<uint32_t> rev_map_;      // ppn -> lpn (kUnmapped if stale/free)
  std::vector<uint16_t> block_valid_;  // valid page count per block
  std::vector<BlockState> block_state_;
  std::vector<Die> dies_;
  int next_die_ = 0;  // round-robin cursor for chunked placement

  uint64_t host_pages_written_ = 0;
  uint64_t gc_pages_moved_ = 0;
  uint64_t blocks_erased_ = 0;
};

}  // namespace libra::ssd

#endif  // LIBRA_SRC_SSD_FTL_H_
