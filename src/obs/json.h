// Minimal JSON support for the observability layer: an append-only writer
// used to emit stats snapshots, and a small recursive-descent parser used
// by schema-validating tests and tooling. No third-party dependency — the
// container bakes in only the C++ toolchain.
//
// The writer is deliberately low-level (callers manage {}/[] nesting with
// the scope helpers); the snapshot emitters are the only intended users.
// Doubles are rendered with %.17g (round-trippable); NaN/Inf — which JSON
// cannot represent — are emitted as null, and the parser accepts null for
// numbers as NaN, so "all percentiles finite" checks detect them.

#ifndef LIBRA_SRC_OBS_JSON_H_
#define LIBRA_SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace libra::obs {

// --- writing ---

class JsonWriter {
 public:
  // Value positions: call exactly one per element/field slot.
  void BeginObject() { Prefix(); out_ += '{'; first_ = true; }
  void EndObject() { out_ += '}'; first_ = false; }
  void BeginArray() { Prefix(); out_ += '['; first_ = true; }
  void EndArray() { out_ += ']'; first_ = false; }

  // Field key inside an object; follow with exactly one value.
  void Key(std::string_view key);

  void String(std::string_view v);
  void Int(int64_t v);
  void Uint(uint64_t v);
  void Double(double v);
  void Bool(bool v);
  void Null();

  // Splices pre-rendered JSON into a value slot (trusted input).
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  // Comma separation between sibling values.
  void Prefix() {
    if (!first_) {
      out_ += ',';
    }
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
};

// Escapes a string per RFC 8259 (quotes, backslash, control chars).
std::string JsonEscape(std::string_view s);

// --- parsing ---

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }

  // Object member access; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document. Returns false (and sets *error when
// non-null) on malformed input or trailing garbage.
bool JsonParse(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

// --- canonical exports ---

class LatencyHistogram;

// Histogram summary as a JSON object:
//   {"count":N,"min_ns":N,"max_ns":N,"mean_ns":F,
//    "p50":N,"p90":N,"p99":N,"p999":N,
//    "buckets":[[lower_bound,width,count],...]}   (non-empty buckets only)
// `include_buckets` false drops the buckets array (compact summaries).
std::string HistogramToJson(const LatencyHistogram& h,
                            bool include_buckets = true);

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_JSON_H_
