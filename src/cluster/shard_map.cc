#include "src/cluster/shard_map.h"

#include <algorithm>
#include <cassert>

namespace libra::cluster {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over the key bytes, then mixed; byte-wise, so no platform
// endianness leaks into placement.
uint64_t HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return Mix64(h);
}

uint64_t OverrideKey(uint32_t tenant, int slot) {
  return (static_cast<uint64_t>(tenant) << 32) |
         static_cast<uint32_t>(slot);
}

}  // namespace

ShardMap::ShardMap(ShardMapOptions options) : options_(options) {
  assert(options_.num_nodes > 0);
  assert(options_.shards_per_tenant > 0);
  assert(options_.vnodes_per_node > 0);
  ring_.reserve(static_cast<size_t>(options_.num_nodes) *
                static_cast<size_t>(options_.vnodes_per_node));
  for (int n = 0; n < options_.num_nodes; ++n) {
    for (int v = 0; v < options_.vnodes_per_node; ++v) {
      const uint64_t point =
          Mix64(options_.seed ^ (static_cast<uint64_t>(n) * 0x9e3779b1ULL) ^
                (static_cast<uint64_t>(v) << 32));
      ring_.push_back(RingPoint{point, n});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::SlotOfKey(std::string_view key) const {
  return static_cast<int>(HashKey(key) %
                          static_cast<uint64_t>(options_.shards_per_tenant));
}

size_t ShardMap::RingIndex(uint64_t point) const {
  // First ring point at or after `point`, wrapping to the smallest.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const RingPoint& rp, uint64_t p) { return rp.point < p; });
  return it == ring_.end() ? 0 : static_cast<size_t>(it - ring_.begin());
}

int ShardMap::RingLookup(uint64_t point) const {
  return ring_[RingIndex(point)].node;
}

uint64_t ShardMap::SlotPoint(uint32_t tenant, int slot) const {
  return Mix64(options_.seed ^
               (static_cast<uint64_t>(tenant) * 0x85ebca6bULL) ^
               (static_cast<uint64_t>(slot) * 0xc2b2ae35ULL));
}

int ShardMap::HomeOf(uint32_t tenant, int slot) const {
  assert(slot >= 0 && slot < options_.shards_per_tenant);
  if (const auto it = overrides_.find(OverrideKey(tenant, slot));
      it != overrides_.end()) {
    return it->second;
  }
  return RingLookup(SlotPoint(tenant, slot));
}

std::vector<int> ShardMap::ReplicasOf(uint32_t tenant, int slot) const {
  const int rf = replication_factor();
  std::vector<int> out;
  out.reserve(rf);
  out.push_back(HomeOf(tenant, slot));
  if (rf <= 1) {
    return out;
  }
  // Followers: walk the ring from the slot's own position, collecting the
  // next distinct nodes. The leader's natural home is the first point on
  // that walk, so with no override the walk yields leader + successors.
  size_t idx = RingIndex(SlotPoint(tenant, slot));
  for (size_t steps = 0;
       steps < ring_.size() && static_cast<int>(out.size()) < rf; ++steps) {
    const int node = ring_[idx].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
    idx = (idx + 1) % ring_.size();
  }
  return out;
}

int ShardMap::NodeOfKey(uint32_t tenant, std::string_view key) const {
  return HomeOf(tenant, SlotOfKey(key));
}

std::vector<int> ShardMap::Assignment(uint32_t tenant) const {
  std::vector<int> out(options_.shards_per_tenant);
  for (int s = 0; s < options_.shards_per_tenant; ++s) {
    out[s] = HomeOf(tenant, s);
  }
  return out;
}

std::vector<int> ShardMap::SlotsPerNode(uint32_t tenant) const {
  std::vector<int> out(options_.num_nodes, 0);
  if (replication_factor() <= 1) {
    for (int s = 0; s < options_.shards_per_tenant; ++s) {
      ++out[HomeOf(tenant, s)];
    }
    return out;
  }
  for (int s = 0; s < options_.shards_per_tenant; ++s) {
    for (const int node : ReplicasOf(tenant, s)) {
      ++out[node];
    }
  }
  return out;
}

void ShardMap::Rehome(uint32_t tenant, int slot, int node) {
  assert(slot >= 0 && slot < options_.shards_per_tenant);
  assert(node >= 0 && node < options_.num_nodes);
  overrides_[OverrideKey(tenant, slot)] = node;
}

}  // namespace libra::cluster
