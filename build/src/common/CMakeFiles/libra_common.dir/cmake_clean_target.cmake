file(REMOVE_RECURSE
  "liblibra_common.a"
)
