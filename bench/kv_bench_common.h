// Shared setup for the prototype (KV-node) benches: Figs. 2, 10, 11, 12.

#ifndef LIBRA_BENCH_KV_BENCH_COMMON_H_
#define LIBRA_BENCH_KV_BENCH_COMMON_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::bench {

// Node configured like the paper's prototype: Intel 320, exact cost model,
// no object cache, 4MB write buffers.
kv::NodeOptions PrototypeNodeOptions();

// Runs `preloads` to completion on `loop` (sequentially).
void RunPreloads(sim::EventLoop& loop,
                 std::vector<workload::KvTenantWorkload*> workloads);

}  // namespace libra::bench

#endif  // LIBRA_BENCH_KV_BENCH_COMMON_H_
