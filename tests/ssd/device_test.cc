#include "src/ssd/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/profile.h"

namespace libra::ssd {
namespace {

DeviceProfile TestProfile() {
  DeviceProfile p = Intel320Profile();
  p.capacity_bytes = 256ULL * kMiB;
  return p;
}

TEST(SsdDeviceTest, CompletionTakesPositiveTime) {
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  SimTime completed_at = -1;
  dev.Submit({IoType::kRead, 0, 4096}, [&] { completed_at = loop.Now(); });
  EXPECT_EQ(dev.inflight(), 1);
  loop.Run();
  EXPECT_GT(completed_at, 0);
  EXPECT_EQ(dev.inflight(), 0);
}

TEST(SsdDeviceTest, LargerOpsTakeLonger) {
  auto latency_of = [](uint32_t size) {
    sim::EventLoop loop;
    SsdDevice dev(loop, TestProfile());
    SimTime done = 0;
    dev.Submit({IoType::kRead, 0, size}, [&] { done = loop.Now(); });
    loop.Run();
    return done;
  };
  EXPECT_LT(latency_of(4096), latency_of(256 * 1024));
}

TEST(SsdDeviceTest, WritesSlowerThanReadsAtSmallSizes) {
  auto latency_of = [](IoType type) {
    sim::EventLoop loop;
    SsdDevice dev(loop, TestProfile());
    SimTime done = 0;
    dev.Submit({type, 0, 4096}, [&] { done = loop.Now(); });
    loop.Run();
    return done;
  };
  EXPECT_GT(latency_of(IoType::kWrite), latency_of(IoType::kRead));
}

TEST(SsdDeviceTest, StatsCountOpsAndBytes) {
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  dev.Submit({IoType::kRead, 0, 8192}, [] {});
  dev.Submit({IoType::kWrite, 65536, 4096}, [] {});
  loop.Run();
  const DeviceStats s = dev.stats();
  EXPECT_EQ(s.reads_completed, 1u);
  EXPECT_EQ(s.writes_completed, 1u);
  EXPECT_EQ(s.read_bytes, 8192u);
  EXPECT_EQ(s.write_bytes, 4096u);
}

TEST(SsdDeviceTest, ParallelSmallReadsOverlap) {
  // 8 concurrent 4K reads to distinct stripes should take far less than 8x
  // a single read (die parallelism).
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  SimTime single = 0;
  dev.Submit({IoType::kRead, 0, 4096}, [&] { single = loop.Now(); });
  loop.Run();

  sim::EventLoop loop2;
  SsdDevice dev2(loop2, TestProfile());
  SimTime last = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    dev2.Submit({IoType::kRead, i * 16 * 1024, 4096},
                [&] { last = loop2.Now(); });
  }
  loop2.Run();
  EXPECT_LT(last, 3 * single);
}

TEST(SsdDeviceTest, SameDieReadsSerialize) {
  // Reads hitting the same stripe queue on one die.
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    dev.Submit({IoType::kRead, 0, 4096},
               [&] { completions.push_back(loop.Now()); });
  }
  loop.Run();
  ASSERT_EQ(completions.size(), 4u);
  // Strictly increasing completion times: the die is a serial resource.
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GT(completions[i], completions[i - 1]);
  }
  // Total time ~4x the single-op die time, not ~1x.
  EXPECT_GT(completions.back(), completions.front() * 2);
}

TEST(SsdDeviceTest, RwSwitchPenaltyIncreasesMixedLatency) {
  // Alternate whole-array reads (256KB touches every die) with writes, so
  // the writes cannot dodge read-busy dies and must pay the switch cost.
  auto run_mixed = [](bool penalty_on) {
    sim::EventLoop loop;
    DeviceOptions opt;
    opt.enable_rw_switch_penalty = penalty_on;
    SsdDevice dev(loop, TestProfile(), opt);
    SimTime last = 0;
    for (int i = 0; i < 16; ++i) {
      const IoType t = (i % 2 == 0) ? IoType::kRead : IoType::kWrite;
      dev.Submit({t, static_cast<uint64_t>(i) * 256 * 1024, 256 * 1024},
                 [&] { last = loop.Now(); });
    }
    loop.Run();
    return last;
  };
  EXPECT_GT(run_mixed(true), run_mixed(false));
}

TEST(SsdDeviceTest, GcAblationSpeedsUpOverwriteChurn) {
  auto run_churn = [](bool gc_on) {
    sim::EventLoop loop;
    DeviceProfile p = TestProfile();
    p.capacity_bytes = 64ULL * kMiB;
    DeviceOptions opt;
    opt.enable_gc = gc_on;
    SsdDevice dev(loop, p, opt);
    dev.Prefill(p.capacity_bytes / 2);
    Rng rng(5);
    SimTime last = 0;
    auto worker = [&]() -> sim::Task<void> {
      for (int i = 0; i < 400; ++i) {
        const uint64_t slot = rng.NextU64(p.capacity_bytes / 2 / 4096);
        co_await dev.SubmitAwait({IoType::kWrite, slot * 4096, 4096});
        last = loop.Now();
      }
    };
    {
      sim::TaskGroup group(loop);
      for (int w = 0; w < 8; ++w) {
        group.Spawn(worker());
      }
      loop.Run();
    }
    return last;
  };
  EXPECT_GE(run_churn(true), run_churn(false));
}

TEST(SsdDeviceTest, SubmitAwaitResumesAfterCompletion) {
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  bool done = false;
  auto t = [&]() -> sim::Task<void> {
    co_await dev.SubmitAwait({IoType::kRead, 0, 4096});
    done = true;
    EXPECT_GT(loop.Now(), 0);
  };
  sim::Detach(t());
  EXPECT_FALSE(done);
  loop.Run();
  EXPECT_TRUE(done);
}

TEST(SsdDeviceTest, TrimDoesNotAdvanceTime) {
  sim::EventLoop loop;
  SsdDevice dev(loop, TestProfile());
  dev.Prefill(16 * kMiB);
  dev.Trim(0, 1 * kMiB);
  EXPECT_EQ(loop.Now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(SsdDeviceTest, SequentialReadsBenefitFromDetection) {
  auto run = [](bool seq_pattern) {
    sim::EventLoop loop;
    SsdDevice dev(loop, TestProfile());
    Rng rng(3);
    SimTime last = 0;
    uint64_t cursor = 0;
    auto worker = [&]() -> sim::Task<void> {
      for (int i = 0; i < 200; ++i) {
        uint64_t off;
        if (seq_pattern) {
          off = cursor;
          cursor += 64 * 1024;
        } else {
          off = rng.NextU64(1024) * 64 * 1024;
        }
        co_await dev.SubmitAwait({IoType::kRead, off, 64 * 1024});
        last = loop.Now();
      }
    };
    sim::Detach(worker());
    loop.Run();
    return last;
  };
  // A single-stream sequential scan completes no slower than random access
  // of the same volume (readahead discount).
  EXPECT_LE(run(true), run(false));
}

}  // namespace
}  // namespace libra::ssd
