#include "src/obs/conformance.h"

#include <algorithm>
#include <cmath>

namespace libra::obs {

AttributionMatrix Diff(const AttributionMatrix& later,
                       const AttributionMatrix& earlier) {
  AttributionMatrix out;
  for (int a = 0; a < kAttrApps; ++a) {
    for (int i = 0; i < kAttrInternal; ++i) {
      out.vops[a][i] = later.vops[a][i] - earlier.vops[a][i];
    }
    out.norm_requests[a] = later.norm_requests[a] - earlier.norm_requests[a];
  }
  out.total_vops = later.total_vops - earlier.total_vops;
  return out;
}

ConformanceReport CompareAttribution(const AttributionMatrix& observed,
                                     const DeclaredAttribution& declared,
                                     double min_declared) {
  ConformanceReport rep;
  if (!declared.declared) {
    return rep;
  }
  for (int a = 0; a < kAttrApps; ++a) {
    if (observed.norm_requests[a] <= 0.0) {
      // No traffic of this class observed: q̂ is undefined, not divergent.
      continue;
    }
    for (int i = 0; i < kAttrInternal; ++i) {
      const double obs_q = observed.Q(a, i);
      const double dec_q = declared.q[a][i];
      if (obs_q < min_declared && dec_q < min_declared) {
        continue;  // both negligible
      }
      const double rel =
          std::abs(obs_q - dec_q) / std::max(dec_q, min_declared);
      if (rel > rep.divergence) {
        rep.divergence = rel;
        rep.worst_app = a;
        rep.worst_internal = i;
        rep.worst_observed = obs_q;
        rep.worst_declared = dec_q;
      }
    }
  }
  return rep;
}

}  // namespace libra::obs
