#include "src/metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace libra::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddNumericRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(row));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 < row.size()) {
        out += "  ";
      }
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') {
      out.pop_back();
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) {
      rule += "  ";
    }
  }
  out += rule + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  // RFC 4180: quote any field containing a comma, quote, CR, or LF, and
  // double embedded quotes.
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') {
        out += "\"\"";
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  };
  auto render = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      if (c + 1 < row.size()) {
        out += ',';
      }
    }
    out += '\n';
    return out;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) {
    out += render(row);
  }
  return out;
}

std::string Table::ToJson() const {
  obs::JsonWriter w;
  w.BeginArray();
  for (const auto& row : rows_) {
    w.BeginObject();
    for (size_t c = 0; c < header_.size(); ++c) {
      w.Key(header_[c]);
      w.String(c < row.size() ? row[c] : "");
    }
    w.EndObject();
  }
  w.EndArray();
  return w.Take();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace libra::metrics
