// Low-level IO vocabulary shared between the SSD simulator and the Libra
// scheduler.

#ifndef LIBRA_SRC_SSD_IO_TYPES_H_
#define LIBRA_SRC_SSD_IO_TYPES_H_

#include <cstdint>
#include <string_view>

namespace libra::ssd {

enum class IoType : uint8_t {
  kRead = 0,
  kWrite = 1,
};

inline std::string_view IoTypeName(IoType t) {
  return t == IoType::kRead ? "read" : "write";
}

// A single IO operation as seen by the device: a byte-addressed extent plus
// the operation type. The simulator works internally in pages; arbitrary
// byte offsets/sizes are rounded up to touched pages (sub-page writes pay a
// full page program, like real flash).
struct IoRequest {
  IoType type = IoType::kRead;
  uint64_t offset = 0;  // logical byte address
  uint32_t size = 0;    // bytes, > 0
};

}  // namespace libra::ssd

#endif  // LIBRA_SRC_SSD_IO_TYPES_H_
