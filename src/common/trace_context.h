// Causal trace context: the identity a traced request carries through every
// layer (TenantHandle -> Cluster -> StorageNode -> lsm -> IoScheduler ->
// device).
//
// A context is two 64-bit ids: the trace (one application request and all
// IO causally downstream of it) and the span (one timed operation within
// the trace). It is a 16-byte POD, copied by value everywhere — including
// into coroutine frames, WAL batch manifests, and memtable entries — so
// propagation never allocates and the TaskGroup by-value rule (DESIGN.md
// §5) applies to it unchanged. A zero trace id means "not traced": every
// layer's recording code is a single branch on valid() when tracing is
// off, which is what keeps the disabled-path overhead within budget.
//
// This lives in common (below obs and iosched) so both the span collector
// (obs) and the IO tagging vocabulary (iosched) can embed it.

#ifndef LIBRA_SRC_COMMON_TRACE_CONTEXT_H_
#define LIBRA_SRC_COMMON_TRACE_CONTEXT_H_

#include <cstdint>

namespace libra {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = untraced
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id;
  }
};

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_TRACE_CONTEXT_H_
