// Parameterized scheduler properties: proportional sharing must hold for
// arbitrary allocation ratios and op-size pairings, and VOP insulation for
// every read/write tenant pairing on the size grid.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::iosched {
namespace {

ssd::CalibrationTable SchedTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

// Runs two backlogged tenants with the given allocations/op shapes and
// returns their consumed-VOP ratio (tenant 0 / tenant 1).
double TwoTenantVopRatio(double alloc0, double alloc1, ssd::IoType type0,
                         uint32_t size0, ssd::IoType type1, uint32_t size1) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(512 * kMiB);
  IoScheduler sched(loop, device,
                    std::make_unique<ExactCostModel>(SchedTable()));
  sched.SetAllocation(0, alloc0);
  sched.SetAllocation(1, alloc1);
  Rng rng(71);
  auto worker = [&](TenantId t, ssd::IoType type, uint32_t size,
                    SimTime end) -> sim::Task<void> {
    while (loop.Now() < end) {
      const uint64_t slots = (512 * kMiB) / size;
      const uint64_t off = rng.NextU64(slots) * size;
      IoTag tag{t, AppRequest::kGet, InternalOp::kNone};
      if (type == ssd::IoType::kRead) {
        co_await sched.Read(tag, off, size);
      } else {
        co_await sched.Write(tag, off, size);
      }
    }
  };
  {
    sim::TaskGroup group(loop);
    const SimTime end = 2 * kSecond;
    for (int w = 0; w < 16; ++w) {
      group.Spawn(worker(0, type0, size0, end));
      group.Spawn(worker(1, type1, size1, end));
    }
    loop.Run();
  }
  return sched.tracker().Stats(0).vops / sched.tracker().Stats(1).vops;
}

// --- proportionality over allocation ratios ---

class ProportionalShares : public ::testing::TestWithParam<double> {};

TEST_P(ProportionalShares, VopSplitFollowsAllocationRatio) {
  const double ratio = GetParam();
  const double measured = TwoTenantVopRatio(1000.0 * ratio, 1000.0,
                                            ssd::IoType::kRead, 8192,
                                            ssd::IoType::kRead, 8192);
  EXPECT_NEAR(measured / ratio, 1.0, 0.15) << "target ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, ProportionalShares,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 5.0, 8.0));

// --- insulation across op-shape pairings ---

using ShapeParam = std::tuple<uint32_t, uint32_t>;  // (read KB, write KB)

class EqualShareInsulation : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(EqualShareInsulation, EqualAllocationsGiveEqualVops) {
  const auto [read_kb, write_kb] = GetParam();
  const double ratio =
      TwoTenantVopRatio(1000.0, 1000.0, ssd::IoType::kRead, read_kb * 1024,
                        ssd::IoType::kWrite, write_kb * 1024);
  // A reader and a writer with equal VOP allocations and wildly different
  // op sizes should consume VOPs ~1:1 (the Fig. 7 property).
  EXPECT_NEAR(ratio, 1.0, 0.2) << read_kb << "KB reads vs " << write_kb
                               << "KB writes";
}

INSTANTIATE_TEST_SUITE_P(
    SizePairs, EqualShareInsulation,
    ::testing::Combine(::testing::Values(1u, 16u, 128u),
                       ::testing::Values(1u, 16u, 128u)),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "k_w" +
             std::to_string(std::get<1>(info.param)) + "k";
    });

}  // namespace
}  // namespace libra::iosched
