// The filtered, cached GET path end-to-end: bloom filters written at flush
// and compaction, negative probes skipping index+data reads, block-cache
// hits costing zero device IO, eviction re-reads re-charged as VOPs, and
// bit-for-bit VOP conservation with filters + cache on under both
// compaction policies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kv/storage_node.h"
#include "src/lsm/db.h"
#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

LsmOptions SmallOptions() {
  LsmOptions opt;
  opt.write_buffer_bytes = 64 * 1024;
  opt.max_bytes_level1 = 256 * 1024;
  opt.target_file_bytes = 64 * 1024;
  return opt;
}

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

// Filters are written by flushes AND compactions: after churn that compacts
// everything out of L0, absent-key GETs still probe per-table filters — the
// compaction-output tables carry them too.
TEST(ReadPathTest, FilterRoundTripThroughFlushAndCompaction) {
  LsmRig rig;
  LsmOptions opt = SmallOptions();
  opt.bloom_bits_per_key = 10;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 400; ++i) {
        co_await db.Put(Key(i), std::string(512, 'a' + round));
      }
    }
    co_await db.WaitIdle();
    // Present keys: filters never drop a real key.
    for (int i = 0; i < 400; i += 37) {
      auto r = co_await db.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value, std::string(512, 'a' + 3)) << i;
    }
  }());
  ASSERT_GT(db.stats().compactions, 0u);
  ASSERT_GT(db.NumFilesAtLevel(1), 0);
  const LsmStats mid = db.stats();
  EXPECT_GT(mid.bloom_probes, 0u);
  EXPECT_GT(mid.filter_block_reads, 0u);
  // Absent keys INSIDE the table key range (out-of-range keys are skipped
  // by the smallest/largest check before any filter probe): every probed
  // table — flush- or compaction-built — answers definitely-not via its
  // filter.
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      auto r = co_await db.Get(Key(2 * i) + "x");
      EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
    }
  }());
  const LsmStats after = db.stats();
  EXPECT_GT(after.bloom_negatives, mid.bloom_negatives);
  // A negative probe skips the table entirely: no index or data reads
  // beyond what the present-key lookups already did.
  EXPECT_EQ(after.index_block_reads, mid.index_block_reads);
  EXPECT_EQ(after.data_block_reads, mid.data_block_reads);
}

// Once a table's filter is resident, an absent-key GET costs zero device
// reads — the negative probe answers from memory.
TEST(ReadPathTest, NegativeProbeCostsZeroDeviceReadsWhenFilterResident) {
  LsmRig rig;
  LsmOptions opt = SmallOptions();
  opt.bloom_bits_per_key = 10;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();
    // Warm each table's footer + filter: in-range absent keys force a
    // probe of every table whose range covers them.
    for (int i = 0; i < 10; ++i) {
      auto r = co_await db.Get(Key(15 * i) + "x");
      EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
    }
  }());
  const LsmStats warm = db.stats();
  ASSERT_GT(warm.bloom_negatives, 0u);
  const auto before = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    // Same absent keys again: the resident filters answer without IO.
    for (int i = 0; i < 10; ++i) {
      auto r = co_await db.Get(Key(15 * i) + "x");
      EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
    }
  }());
  const auto after = rig.sched.tracker().Stats(1);
  EXPECT_EQ(after.read_ops, before.read_ops);
  EXPECT_EQ(after.vops, before.vops);
  EXPECT_GT(db.stats().bloom_negatives, warm.bloom_negatives);
}

// Data-block cache hits cost zero device IO and zero VOPs; after eviction
// the re-read is charged again — repricing, not free-riding.
TEST(ReadPathTest, EvictionRereadIsRecharged) {
  LsmRig rig;
  // Roomy cache first: the second GET of the same key is a pure cache hit.
  LsmOptions opt = SmallOptions();
  opt.block_cache_bytes = 4 * kMiB;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await db.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db.WaitIdle();
    auto r = co_await db.Get(Key(7));
    EXPECT_TRUE(r.status.ok());
  }());
  const auto warm = rig.sched.tracker().Stats(1);
  rig.RunTask([&]() -> sim::Task<void> {
    auto r = co_await db.Get(Key(7));
    EXPECT_TRUE(r.status.ok());
  }());
  const auto hit = rig.sched.tracker().Stats(1);
  EXPECT_EQ(hit.read_ops, warm.read_ops);  // zero device IO on a hit
  EXPECT_EQ(hit.vops, warm.vops);
  EXPECT_GT(db.stats().data_cache_hits, 0u);

  // Tiny cache: every block insert evicts the previous one, so the same
  // repeated GET re-reads — and is re-charged — every time.
  LsmOptions tiny = SmallOptions();
  tiny.block_cache_bytes = 1;
  LsmDb db2(rig.loop, rig.fs, rig.sched, 2, "t2", tiny);
  ASSERT_TRUE(db2.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await db2.Put(Key(i), std::string(1024, 'v'));
    }
    co_await db2.WaitIdle();
    auto r = co_await db2.Get(Key(7));
    EXPECT_TRUE(r.status.ok());
  }());
  const auto base2 = rig.sched.tracker().Stats(2);
  rig.RunTask([&]() -> sim::Task<void> {
    // Alternate between far-apart keys so each GET's index + data blocks
    // evict the other's.
    for (int i = 0; i < 4; ++i) {
      auto a = co_await db2.Get(Key(7));
      EXPECT_TRUE(a.status.ok());
      auto b = co_await db2.Get(Key(180));
      EXPECT_TRUE(b.status.ok());
    }
  }());
  const auto thrash = rig.sched.tracker().Stats(2);
  EXPECT_GT(thrash.read_ops, base2.read_ops);
  EXPECT_GT(thrash.vops, base2.vops);
  EXPECT_GT(db2.stats().bcache_evictions, 0u);
  // The evicted-and-reloaded reads are visible in the read-path counters.
  EXPECT_GT(db2.stats().data_block_reads, 2u);
}

ssd::CalibrationTable NodeTable() { return testing::RigTable(); }

sim::Task<void> MixedChurn(kv::StorageNode* node, iosched::TenantId tenant,
                           int n) {
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE((co_await node->Put(tenant, "k" + std::to_string(i % 40),
                                    std::string(700, 'a' + (i % 26))))
                    .ok());
    if (i % 3 == 0) {
      const auto r = co_await node->Scan(tenant, "k", std::string(), 8);
      EXPECT_TRUE(r.status.ok());
      EXPECT_GT(r.entries.size(), 0u);
    }
    if (i % 5 == 0) {
      (void)co_await node->Get(tenant, "k" + std::to_string(i % 40));
    }
    if (i % 7 == 0) {
      // In-range absent keys exercise the negative-probe path in the mix.
      const auto r =
          co_await node->Get(tenant, "k" + std::to_string(i % 40) + "_absent");
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    }
  }
}

// With filters AND the node-shared block cache on, span-attributed VOPs
// still reproduce the tracker's per-tenant totals exactly — for GETs and
// SCANs, under both compaction policies.
TEST(ReadPathTest, VopConservationWithFiltersAndCacheUnderBothPolicies) {
  sim::EventLoop loop;
  kv::NodeOptions opt;
  opt.calibration = NodeTable();
  opt.lsm_options.write_buffer_bytes = 32 * 1024;
  opt.lsm_options.target_file_bytes = 32 * 1024;
  opt.lsm_options.l0_compaction_trigger = 2;
  opt.lsm_options.max_bytes_level1 = 64 * 1024;
  opt.lsm_options.bloom_bits_per_key = 10;
  opt.lsm_options.block_cache_bytes = 256 * 1024;
  opt.prefill_bytes = 64 * kMiB;
  opt.scheduler_options.span_capacity = 1 << 14;
  kv::StorageNode node(loop, opt);
  ASSERT_TRUE(
      node.AddTenant(1, {500.0, 500.0, 200.0}, {}, CompactionPolicy::kLeveled)
          .ok());
  ASSERT_TRUE(node.AddTenant(2, {500.0, 500.0, 200.0}, {},
                             CompactionPolicy::kSizeTiered)
                  .ok());
  sim::Detach([](sim::EventLoop& l, kv::StorageNode& n) -> sim::Task<void> {
    sim::TaskGroup group(l);
    group.Spawn(MixedChurn(&n, 1, 400));
    group.Spawn(MixedChurn(&n, 2, 400));
    co_await group.Join();
    co_await n.partition(1)->WaitIdle();
    co_await n.partition(2)->WaitIdle();
  }(loop, node));
  loop.Run();

  ASSERT_NE(node.block_cache(), nullptr);
  EXPECT_GT(node.block_cache()->hits(), 0u);
  for (iosched::TenantId t : {iosched::TenantId{1}, iosched::TenantId{2}}) {
    const LsmStats s = node.partition(t)->stats();
    EXPECT_GT(s.bloom_probes, 0u) << "tenant " << t;
    EXPECT_GT(s.bloom_negatives, 0u) << "tenant " << t;
    EXPECT_GT(s.scans, 0u) << "tenant " << t;
    const obs::AttributionMatrix* m =
        node.scheduler().spans()->attribution().Of(t);
    ASSERT_NE(m, nullptr);
    // Bit-for-bit: filter and cache-fill IO rides the caller's IoTag, so
    // the per-class attribution still sums to exactly the admitted VOPs.
    EXPECT_EQ(m->total_vops, node.tracker().Stats(t).vops) << "tenant " << t;
    EXPECT_GT(
        m->norm_requests[static_cast<int>(iosched::AppRequest::kScan)], 0.0)
        << "tenant " << t;
  }
  EXPECT_GT(node.partition(2)->stats().compactions, 0u);
}

// The node-shared cache is ONE budget across tenants with per-tenant
// accounting, and per-tenant LSM stats expose each tenant's share.
TEST(ReadPathTest, NodeSharedCachePerTenantAccounting) {
  sim::EventLoop loop;
  kv::NodeOptions opt;
  opt.calibration = NodeTable();
  opt.lsm_options.write_buffer_bytes = 32 * 1024;
  opt.lsm_options.block_cache_bytes = 1 * kMiB;
  opt.prefill_bytes = 64 * kMiB;
  kv::StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {500.0, 500.0}).ok());
  ASSERT_TRUE(node.AddTenant(2, {500.0, 500.0}).ok());
  sim::Detach([](kv::StorageNode& n) -> sim::Task<void> {
    for (iosched::TenantId t : {iosched::TenantId{1}, iosched::TenantId{2}}) {
      for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE((co_await n.Put(t, Key(i), std::string(1024, 'v'))).ok());
      }
      co_await n.partition(t)->WaitIdle();
      for (int i = 0; i < 100; i += 10) {
        (void)co_await n.Get(t, Key(i));
        (void)co_await n.Get(t, Key(i));  // repeat: data-cache hit
      }
    }
  }(node));
  loop.Run();

  ASSERT_NE(node.block_cache(), nullptr);
  uint64_t per_tenant_hits = 0;
  for (iosched::TenantId t : {iosched::TenantId{1}, iosched::TenantId{2}}) {
    const LsmStats s = node.partition(t)->stats();
    EXPECT_GT(s.data_cache_hits, 0u) << "tenant " << t;
    EXPECT_EQ(s.bcache_capacity_bytes, 1u * kMiB);
    per_tenant_hits += s.bcache_index_hits + s.bcache_filter_hits +
                       s.bcache_data_hits;
  }
  // Per-tenant counters partition the shared cache's global tallies.
  EXPECT_EQ(per_tenant_hits, node.block_cache()->hits());
}

}  // namespace
}  // namespace libra::lsm
