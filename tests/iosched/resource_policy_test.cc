#include "src/iosched/resource_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/ssd/calibration.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::iosched {
namespace {

ssd::CalibrationTable TestTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1030};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

struct PolicyRig {
  sim::EventLoop loop;
  ssd::SsdDevice device{loop, ssd::Intel320Profile()};
  IoScheduler sched{loop, device,
                    std::make_unique<ExactCostModel>(TestTable())};
  CapacityModel capacity{19000.0};
  ResourcePolicy policy{loop, sched, capacity};
};

TEST(ResourcePolicyTest, FallbackPricingProvisionsFromCostModel) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {1000.0, 0.0});  // 1000 GET/s, no PUTs
  rig.policy.RunIntervalStep();
  // No observations: a normalized GET is priced as a 1KB read = 1 VOP.
  EXPECT_NEAR(rig.sched.Allocation(1), 1000.0, 1.0);
}

TEST(ResourcePolicyTest, WritesPricedHigherThanReads) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {1000.0, 0.0});
  rig.policy.SetReservation(2, {0.0, 1000.0});
  rig.policy.RunIntervalStep();
  EXPECT_GT(rig.sched.Allocation(2), 2.0 * rig.sched.Allocation(1));
}

TEST(ResourcePolicyTest, TrackedProfileOverridesFallback) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {100.0, 0.0});
  // Observed: GETs cost 5 VOPs per normalized request (amplified lookups).
  for (int i = 0; i < 50; ++i) {
    rig.sched.tracker().RecordAppRequest(1, AppRequest::kGet, 1024);
    rig.sched.tracker().RecordIo({1, AppRequest::kGet, InternalOp::kNone},
                                 ssd::IoType::kRead, 1024, 5.0);
  }
  rig.policy.RunIntervalStep();
  EXPECT_NEAR(rig.sched.Allocation(1), 500.0, 5.0);
}

TEST(ResourcePolicyTest, IndirectCostsIncludedInAllocation) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {0.0, 100.0});
  ResourceTracker& tr = rig.sched.tracker();
  // 100 PUTs at 2 VOPs direct, plus one FLUSH of 100 VOPs.
  for (int i = 0; i < 100; ++i) {
    tr.RecordAppRequest(1, AppRequest::kPut, 1024);
    tr.RecordIo({1, AppRequest::kPut, InternalOp::kNone}, ssd::IoType::kWrite,
                1024, 2.0);
  }
  tr.RecordTrigger(1, AppRequest::kPut, InternalOp::kFlush);
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kFlush}, ssd::IoType::kWrite,
              256 * 1024, 100.0);
  tr.RecordInternalOpDone(1, InternalOp::kFlush);
  rig.policy.RunIntervalStep();
  // profile = 2 + 100*(1/100) = 3 VOPs per normalized PUT.
  EXPECT_NEAR(rig.sched.Allocation(1), 300.0, 3.0);
}

TEST(ResourcePolicyTest, ObjectSizeOnlyModeIgnoresSecondaryIo) {
  PolicyRig rig;
  PolicyOptions opt;
  opt.mode = ProfileMode::kObjectSizeOnly;
  ResourcePolicy no_profile(rig.loop, rig.sched, rig.capacity, opt);
  no_profile.SetReservation(1, {0.0, 100.0});
  ResourceTracker& tr = rig.sched.tracker();
  for (int i = 0; i < 100; ++i) {
    tr.RecordAppRequest(1, AppRequest::kPut, 1024);
    tr.RecordIo({1, AppRequest::kPut, InternalOp::kNone}, ssd::IoType::kWrite,
                1024, 2.0);
  }
  tr.RecordTrigger(1, AppRequest::kPut, InternalOp::kFlush);
  tr.RecordIo({1, AppRequest::kPut, InternalOp::kFlush}, ssd::IoType::kWrite,
              256 * 1024, 100.0);
  tr.RecordInternalOpDone(1, InternalOp::kFlush);
  no_profile.RunIntervalStep();
  // Object-size pricing: a 1KB PUT is priced as a 1KB write (~2.8 VOPs by
  // the cost model) regardless of the observed amplification.
  const double write_1kb =
      rig.sched.cost_model().Cost(ssd::IoType::kWrite, 1024);
  EXPECT_NEAR(rig.sched.Allocation(1), 100.0 * write_1kb, 5.0);
}

TEST(ResourcePolicyTest, OverbookingScalesDownProportionallyAndNotifies) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {15000.0, 0.0});  // ~15k VOPs
  rig.policy.SetReservation(2, {15000.0, 0.0});  // ~15k VOPs; total > 19k cap
  int events = 0;
  OverflowEvent last;
  rig.policy.SetOverflowCallback([&](const OverflowEvent& ev) {
    ++events;
    last = ev;
  });
  rig.policy.RunIntervalStep();
  EXPECT_EQ(events, 1);
  EXPECT_NEAR(last.scale, 19000.0 / 30000.0, 0.01);
  EXPECT_NEAR(rig.sched.Allocation(1), 15000.0 * last.scale, 20.0);
  EXPECT_NEAR(rig.sched.Allocation(1), rig.sched.Allocation(2), 1e-6);
  // Allocations sum to the floor.
  EXPECT_NEAR(rig.sched.Allocation(1) + rig.sched.Allocation(2), 19000.0, 1.0);
}

TEST(ResourcePolicyTest, UnderbookedNoOverflowEvent) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {1000.0, 0.0});
  int events = 0;
  rig.policy.SetOverflowCallback([&](const OverflowEvent&) { ++events; });
  rig.policy.RunIntervalStep();
  EXPECT_EQ(events, 0);
}

TEST(ResourcePolicyTest, PeriodicStepRunsOnInterval) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {1000.0, 0.0});
  rig.policy.Start();
  // Change the observed cost at t=2.5s; by t=5s the allocation reflects it.
  rig.loop.ScheduleAt(2500 * kMillisecond, [&] {
    for (int i = 0; i < 100; ++i) {
      rig.sched.tracker().RecordAppRequest(1, AppRequest::kGet, 1024);
      rig.sched.tracker().RecordIo({1, AppRequest::kGet, InternalOp::kNone},
                                   ssd::IoType::kRead, 1024, 4.0);
    }
  });
  rig.loop.RunUntil(5 * kSecond);
  rig.policy.Stop();
  EXPECT_GT(rig.sched.Allocation(1), 1500.0);
  rig.loop.Run();  // drain cancelled timers
}

TEST(ResourcePolicyTest, CapacityMonitorObservesThroughput) {
  PolicyRig rig;
  rig.policy.SetReservation(1, {100.0, 0.0});
  rig.policy.Start();
  // Simulate 10k VOP/s of tracked consumption between intervals.
  for (int s = 0; s < 4; ++s) {
    rig.loop.ScheduleAt((s + 1) * kSecond - 1, [&] {
      rig.sched.tracker().RecordIo({1, AppRequest::kGet, InternalOp::kNone},
                                   ssd::IoType::kRead, 1024, 10000.0);
    });
  }
  rig.loop.RunUntil(4500 * kMillisecond);
  rig.policy.Stop();
  EXPECT_GT(rig.capacity.current_estimate(), 5000.0);
  EXPECT_TRUE(rig.capacity.below_floor());
  rig.loop.Run();
}

TEST(CapacityModelTest, FloorAndMonitorBasics) {
  CapacityModel cap(18000.0);
  EXPECT_DOUBLE_EQ(cap.provisionable(), 18000.0);
  EXPECT_FALSE(cap.below_floor());  // no observations yet
  cap.ObserveThroughput(25000.0);
  EXPECT_FALSE(cap.below_floor());
  for (int i = 0; i < 20; ++i) {
    cap.ObserveThroughput(12000.0);
  }
  EXPECT_TRUE(cap.below_floor());
  EXPECT_NEAR(cap.current_estimate(), 12000.0, 500.0);
}

}  // namespace
}  // namespace libra::iosched
