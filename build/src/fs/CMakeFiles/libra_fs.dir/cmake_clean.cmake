file(REMOVE_RECURSE
  "CMakeFiles/libra_fs.dir/sim_fs.cc.o"
  "CMakeFiles/libra_fs.dir/sim_fs.cc.o.d"
  "liblibra_fs.a"
  "liblibra_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
