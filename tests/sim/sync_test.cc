#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace libra::sim {
namespace {

TEST(SleepTest, AdvancesVirtualTime) {
  EventLoop loop;
  SimTime woke_at = -1;
  auto sleeper = [&]() -> Task<void> {
    co_await SleepFor(loop, 123);
    woke_at = loop.Now();
  };
  Detach(sleeper());
  loop.Run();
  EXPECT_EQ(woke_at, 123);
}

TEST(SleepTest, ZeroOrNegativeIsImmediate) {
  EventLoop loop;
  int count = 0;
  auto sleeper = [&]() -> Task<void> {
    co_await SleepFor(loop, 0);
    co_await SleepFor(loop, -5);
    ++count;
  };
  Detach(sleeper());
  EXPECT_EQ(count, 1);  // never suspended
}

TEST(OneShotTest, WaitThenSet) {
  EventLoop loop;
  OneShot<int> shot(loop);
  int got = 0;
  auto waiter = [&]() -> Task<void> { got = co_await shot.Wait(); };
  Detach(waiter());
  EXPECT_EQ(got, 0);
  shot.Set(7);
  loop.Run();
  EXPECT_EQ(got, 7);
}

TEST(OneShotTest, SetThenWaitIsImmediate) {
  EventLoop loop;
  OneShot<std::string> shot(loop);
  shot.Set("ready");
  std::string got;
  auto waiter = [&]() -> Task<void> { got = co_await shot.Wait(); };
  Detach(waiter());
  EXPECT_EQ(got, "ready");  // no suspension needed
}

TEST(MutexTest, UncontendedLockIsImmediate) {
  EventLoop loop;
  Mutex mu(loop);
  bool done = false;
  auto t = [&]() -> Task<void> {
    co_await mu.Lock();
    EXPECT_TRUE(mu.locked());
    mu.Unlock();
    done = true;
  };
  Detach(t());
  EXPECT_TRUE(done);
  EXPECT_FALSE(mu.locked());
}

TEST(MutexTest, MutualExclusionAndFifoHandoff) {
  EventLoop loop;
  Mutex mu(loop);
  std::vector<int> order;
  int in_critical = 0;
  auto t = [&](int id) -> Task<void> {
    co_await mu.Lock();
    EXPECT_EQ(in_critical, 0);
    ++in_critical;
    co_await SleepFor(loop, 10);
    --in_critical;
    order.push_back(id);
    mu.Unlock();
  };
  for (int i = 0; i < 4; ++i) {
    Detach(t(i));
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MutexTest, TryLockRespectsState) {
  EventLoop loop;
  Mutex mu(loop);
  EXPECT_TRUE(mu.TryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitUntilNotified) {
  EventLoop loop;
  Mutex mu(loop);
  CondVar cv(loop);
  bool flag = false;
  bool observed = false;

  auto consumer = [&]() -> Task<void> {
    co_await mu.Lock();
    while (!flag) {
      co_await cv.Wait(mu);
    }
    observed = true;
    mu.Unlock();
  };
  auto producer = [&]() -> Task<void> {
    co_await SleepFor(loop, 50);
    co_await mu.Lock();
    flag = true;
    cv.NotifyOne();
    mu.Unlock();
  };
  Detach(consumer());
  Detach(producer());
  loop.Run();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  EventLoop loop;
  Mutex mu(loop);
  CondVar cv(loop);
  bool go = false;
  int woke = 0;
  auto waiter = [&]() -> Task<void> {
    co_await mu.Lock();
    while (!go) {
      co_await cv.Wait(mu);
    }
    ++woke;
    mu.Unlock();
  };
  for (int i = 0; i < 5; ++i) {
    Detach(waiter());
  }
  auto kicker = [&]() -> Task<void> {
    co_await SleepFor(loop, 10);
    co_await mu.Lock();
    go = true;
    cv.NotifyAll();
    mu.Unlock();
  };
  Detach(kicker());
  loop.Run();
  EXPECT_EQ(woke, 5);
}

TEST(CondVarTest, NotifyWithNoWaitersIsNoop) {
  EventLoop loop;
  CondVar cv(loop);
  cv.NotifyOne();
  cv.NotifyAll();
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  EventLoop loop;
  Semaphore sem(loop, 2);
  int active = 0;
  int peak = 0;
  auto worker = [&]() -> Task<void> {
    co_await sem.Acquire();
    ++active;
    peak = std::max(peak, active);
    co_await SleepFor(loop, 10);
    --active;
    sem.Release();
  };
  for (int i = 0; i < 8; ++i) {
    Detach(worker());
  }
  loop.Run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, TryAcquireDoesNotBlock) {
  EventLoop loop;
  Semaphore sem(loop, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
}

TEST(SemaphoreTest, ReleaseHandsPermitToWaiterFifo) {
  EventLoop loop;
  Semaphore sem(loop, 0);
  std::vector<int> order;
  auto worker = [&](int id) -> Task<void> {
    co_await sem.Acquire();
    order.push_back(id);
    sem.Release();
  };
  for (int i = 0; i < 3; ++i) {
    Detach(worker(i));
  }
  sem.Release();  // prime one permit; it should cascade through all waiters
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(IntegrationTest, ProducerConsumerPipeline) {
  EventLoop loop;
  Mutex mu(loop);
  CondVar cv(loop);
  std::vector<int> queue;
  std::vector<int> consumed;
  bool closed = false;

  auto producer = [&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await SleepFor(loop, 3);
      co_await mu.Lock();
      queue.push_back(i);
      cv.NotifyOne();
      mu.Unlock();
    }
    co_await mu.Lock();
    closed = true;
    cv.NotifyAll();
    mu.Unlock();
  };
  auto consumer = [&]() -> Task<void> {
    while (true) {
      co_await mu.Lock();
      while (queue.empty() && !closed) {
        co_await cv.Wait(mu);
      }
      if (queue.empty() && closed) {
        mu.Unlock();
        co_return;
      }
      consumed.push_back(queue.front());
      queue.erase(queue.begin());
      mu.Unlock();
    }
  };
  Detach(producer());
  Detach(consumer());
  loop.Run();
  ASSERT_EQ(consumed.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(consumed[i], i);
  }
}

}  // namespace
}  // namespace libra::sim
