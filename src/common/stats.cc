#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace libra {

void RunningStat::Observe(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::CdfAt(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::CdfPoints(
    size_t num_points) const {
  std::vector<std::pair<double, double>> points;
  if (samples_.empty() || num_points == 0) {
    return points;
  }
  EnsureSorted();
  points.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    const double p = num_points == 1
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(num_points - 1);
    points.emplace_back(Percentile(p), p);
  }
  return points;
}

double MinMaxRatio(const std::vector<double>& ratios) {
  if (ratios.empty()) {
    return 1.0;
  }
  double lo = ratios.front();
  double hi = ratios.front();
  for (double r : ratios) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (hi <= 0.0) {
    return 0.0;
  }
  return lo / hi;
}

}  // namespace libra
