#include "src/obs/json.h"

#include "src/obs/histogram.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace libra::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Key(std::string_view key) {
  Prefix();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  first_ = true;  // the upcoming value needs no comma
}

void JsonWriter::String(std::string_view v) {
  Prefix();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
}

void JsonWriter::Int(int64_t v) {
  Prefix();
  out_ += std::to_string(v);
}

void JsonWriter::Uint(uint64_t v) {
  Prefix();
  out_ += std::to_string(v);
}

void JsonWriter::Double(double v) {
  Prefix();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Bool(bool v) {
  Prefix();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  Prefix();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  Prefix();
  out_ += json;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 128) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = ParseObject(out);
        break;
      case '[':
        ok = ParseArray(out);
        break;
      case '"':
        out->type = JsonValue::Type::kString;
        ok = ParseString(&out->string_value);
        break;
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        ok = Literal("true") || Fail("bad literal");
        break;
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        ok = Literal("false") || Fail("bad literal");
        break;
      case 'n':
        // null parses as a NaN-valued null; numeric schema checks that
        // require finite values will reject it.
        out->type = JsonValue::Type::kNull;
        out->number = std::numeric_limits<double>::quiet_NaN();
        ok = Literal("null") || Fail("bad literal");
        break;
      default:
        ok = ParseNumber(out);
    }
    --depth_;
    return ok;
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      if (!ParseValue(&out->object[key])) {
        return false;
      }
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      out->array.emplace_back();
      if (!ParseValue(&out->array.back())) {
        return false;
      }
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs pass through as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      digits();
    }
    if (!any) {
      return Fail("expected value");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonParse(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

std::string HistogramToJson(const LatencyHistogram& h, bool include_buckets) {
  JsonWriter w;
  w.BeginObject();
  w.Key("count");
  w.Uint(h.count());
  w.Key("min_ns");
  w.Uint(h.min());
  w.Key("max_ns");
  w.Uint(h.max());
  w.Key("mean_ns");
  w.Double(h.mean());
  w.Key("p50");
  w.Uint(h.Percentile(0.50));
  w.Key("p90");
  w.Uint(h.Percentile(0.90));
  w.Key("p99");
  w.Uint(h.Percentile(0.99));
  w.Key("p999");
  w.Uint(h.Percentile(0.999));
  if (include_buckets) {
    w.Key("buckets");
    w.BeginArray();
    h.ForEachBucket([&w](uint64_t lo, uint64_t width, uint64_t count) {
      w.BeginArray();
      w.Uint(lo);
      w.Uint(width);
      w.Uint(count);
      w.EndArray();
    });
    w.EndArray();
  }
  w.EndObject();
  return w.Take();
}

}  // namespace libra::obs
