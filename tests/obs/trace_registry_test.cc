#include <gtest/gtest.h>

#include <cstdint>

#include "src/obs/audit.h"
#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace libra::obs {
namespace {

TraceEvent MakeEvent(int64_t t, TraceEventType type) {
  TraceEvent ev;
  ev.time_ns = t;
  ev.type = type;
  ev.tenant = 3;
  ev.app = 1;       // GET
  ev.internal = 0;  // direct
  ev.is_write = 0;
  ev.offset = 4096;
  ev.size = 1024;
  return ev;
}

TEST(TraceRingTest, KeepsNewestWhenFull) {
  TraceRing ring(4);
  for (int64_t i = 0; i < 10; ++i) {
    ring.Record(MakeEvent(i, TraceEventType::kSubmit));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time_ns, static_cast<int64_t>(6 + i));
  }
}

TEST(TraceRingTest, PartiallyFilled) {
  TraceRing ring(8);
  ring.Record(MakeEvent(1, TraceEventType::kSubmit));
  ring.Record(MakeEvent(2, TraceEventType::kDispatch));
  EXPECT_EQ(ring.size(), 2u);
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time_ns, 1);
  EXPECT_EQ(events[1].time_ns, 2);
}

TEST(TraceRingTest, DumpJsonlIsValidJsonPerLine) {
  TraceRing ring(4);
  TraceEvent done = MakeEvent(42, TraceEventType::kComplete);
  done.chunks = 2;
  done.queue_wait_ns = 100;
  done.service_ns = 200;
  ring.Record(MakeEvent(40, TraceEventType::kSubmit));
  ring.Record(MakeEvent(41, TraceEventType::kDispatch));
  ring.Record(done);
  const std::string dump = ring.DumpJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < dump.size()) {
    size_t end = dump.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonParse(dump.substr(start, end - start), &v, &err)) << err;
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.Find("tenant")->number, 3.0);
    EXPECT_EQ(v.Find("app")->string_value, "GET");
    EXPECT_EQ(v.Find("io")->string_value, "R");
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);
  // The complete event carries the lifecycle spans.
  JsonValue last;
  const size_t last_start = dump.rfind('\n', dump.size() - 2) + 1;
  ASSERT_TRUE(JsonParse(
      dump.substr(last_start, dump.size() - 1 - last_start), &last, nullptr));
  EXPECT_EQ(last.Find("ev")->string_value, "complete");
  EXPECT_EQ(last.Find("queue_wait_ns")->number, 100.0);
  EXPECT_EQ(last.Find("service_ns")->number, 200.0);
  EXPECT_EQ(last.Find("chunks")->number, 2.0);
}

TEST(MetricsRegistryTest, FindOrCreateAndStableRefs) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("ops", {1, 1, 0});
  c.Add();
  c.Add(2.5);
  // Same key returns the same object; different key a different one.
  EXPECT_EQ(&reg.GetCounter("ops", {1, 1, 0}), &c);
  EXPECT_NE(&reg.GetCounter("ops", {2, 1, 0}), &c);
  EXPECT_DOUBLE_EQ(reg.GetCounter("ops", {1, 1, 0}).value(), 3.5);

  Gauge& g = reg.GetGauge("depth");
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("depth").value(), 7.0);

  LatencyHistogram& h = reg.GetHistogram("lat", {1, 2, 0});
  h.Record(100);
  EXPECT_EQ(reg.GetHistogram("lat", {1, 2, 0}).count(), 1u);

  // Find does not create.
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_NE(reg.FindCounter("ops", {1, 1, 0}), nullptr);
  EXPECT_EQ(reg.FindHistogram("lat", {9, 9, 9}), nullptr);
  EXPECT_EQ(reg.num_series(), 4u);

  int histograms_seen = 0;
  reg.ForEachHistogram([&](const std::string& name, const SeriesKey& key,
                           const LatencyHistogram& hist) {
    EXPECT_EQ(name, "lat");
    EXPECT_EQ(key.tenant, 1u);
    EXPECT_EQ(hist.count(), 1u);
    ++histograms_seen;
  });
  EXPECT_EQ(histograms_seen, 1);
}

TEST(ProvisioningAuditLogTest, BoundedRetention) {
  ProvisioningAuditLog log(/*max_records=*/3);
  for (int i = 0; i < 7; ++i) {
    AuditRecord rec;
    rec.time_ns = i;
    log.Append(std::move(rec));
  }
  EXPECT_EQ(log.total_appended(), 7u);
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records().front().time_ns, 4);
  EXPECT_EQ(log.back().time_ns, 6);
}

}  // namespace
}  // namespace libra::obs
