#include "src/kv/cache.h"

namespace libra::kv {

std::optional<std::string> LruCache::Get(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Put(const std::string& key, std::string value) {
  const size_t entry_bytes = key.size() + value.size();
  if (entry_bytes > capacity_) {
    Erase(key);  // do not admit; drop any stale cached version
    return;
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    used_ -= it->second->key.size() + it->second->value.size();
    it->second->value = std::move(value);
    used_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value)});
    map_[key] = lru_.begin();
    used_ += entry_bytes;
  }
  EvictToFit();
}

void LruCache::Erase(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  used_ -= it->second->key.size() + it->second->value.size();
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::EvictToFit() {
  while (used_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.key.size() + victim.value.size();
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace libra::kv
