# Empty dependencies file for fig03_ssd_curves.
# This may be replaced when dependencies are built.
