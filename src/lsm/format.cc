#include "src/lsm/format.h"

#include <array>
#include <cassert>
#include <cstring>

namespace libra::lsm {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

uint32_t GetFixed32(std::string_view src, size_t offset) {
  assert(offset + 4 <= src.size());
  const auto* p = reinterpret_cast<const unsigned char*>(src.data() + offset);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetFixed64(std::string_view src, size_t offset) {
  return static_cast<uint64_t>(GetFixed32(src, offset)) |
         (static_cast<uint64_t>(GetFixed32(src, offset + 4)) << 32);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view src, size_t* offset,
                       std::string_view* out) {
  if (*offset + 4 > src.size()) {
    return false;
  }
  const uint32_t len = GetFixed32(src, *offset);
  *offset += 4;
  if (*offset + len > src.size()) {
    return false;
  }
  *out = src.substr(*offset, len);
  *offset += len;
  return true;
}

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, letting the software loop
// fold 8 input bytes per iteration instead of 1.
struct CrcTables {
  uint32_t t[8][256];
};

CrcTables MakeCrcTables() {
  CrcTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82F63B78u & (~(crc & 1) + 1));
    }
    tables.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const CrcTables kCrcTables = MakeCrcTables();

uint32_t LoadLe32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  // All supported targets are little-endian; GetFixed32 makes the same
  // assumption via explicit byte math, this one lets the compiler emit a
  // single load.
  return v;
}

}  // namespace

namespace internal {

uint32_t Crc32Software(std::string_view data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  const auto& t = kCrcTables.t;
  uint32_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__)

__attribute__((target("sse4.2"))) uint32_t Crc32Hardware(
    std::string_view data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint64_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = __builtin_ia32_crc32di(crc, v);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  if (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    crc32 = __builtin_ia32_crc32si(crc32, v);
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32 ^ 0xFFFFFFFFu;
}

bool HasHardwareCrc32() { return __builtin_cpu_supports("sse4.2"); }

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)

uint32_t Crc32Hardware(std::string_view data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = __builtin_aarch64_crc32cx(crc, v);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __builtin_aarch64_crc32cb(crc, *p++);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool HasHardwareCrc32() { return true; }

#else

uint32_t Crc32Hardware(std::string_view data) { return Crc32Software(data); }
bool HasHardwareCrc32() { return false; }

#endif

}  // namespace internal

namespace {

// Resolved once at startup; both implementations produce identical values
// (pinned by the golden-vector test on whichever paths the host has).
const bool kUseHardwareCrc = internal::HasHardwareCrc32();

}  // namespace

uint32_t Crc32(std::string_view data) {
  return kUseHardwareCrc ? internal::Crc32Hardware(data)
                         : internal::Crc32Software(data);
}

namespace {

// FNV-1a over the key bytes, folded to 32 bits. Pure function of the bytes —
// no per-process seed — so filters built on one host probe identically on any
// other, and identically across --sim-threads settings.
uint32_t BloomHash(std::string_view key) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace

void BloomFilterBuild(const std::vector<std::string>& keys,
                      uint32_t bits_per_key, std::string* dst) {
  if (bits_per_key == 0) {
    return;
  }
  // k ~= bits_per_key * ln(2) probes minimizes the false-positive rate.
  uint32_t k = bits_per_key * 69 / 100;
  if (k < 1) {
    k = 1;
  }
  if (k > 30) {
    k = 30;
  }
  size_t bits = keys.size() * static_cast<size_t>(bits_per_key);
  // Tiny tables would have a high false-positive rate for no byte savings.
  if (bits < 64) {
    bits = 64;
  }
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t start = dst->size();
  dst->resize(start + bytes, 0);
  dst->push_back(static_cast<char>(k));
  char* array = dst->data() + start;
  for (const std::string& key : keys) {
    // Double hashing: k probe positions from one hash (Kirsch-Mitzenmacher).
    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (uint32_t j = 0; j < k; ++j) {
      const uint32_t bit = h % bits;
      array[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
}

bool BloomFilterMayContain(std::string_view filter, std::string_view key) {
  if (filter.size() < 2) {
    return true;
  }
  const size_t bits = (filter.size() - 1) * 8;
  const uint32_t k = static_cast<unsigned char>(filter.back());
  if (k > 30) {
    // Reserved for future encodings; treat as a match rather than wrongly
    // excluding keys behind a format we do not understand.
    return true;
  }
  const auto* array = reinterpret_cast<const unsigned char*>(filter.data());
  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t bit = h % bits;
    if ((array[bit / 8] & (1 << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

int CompareInternalKey(std::string_view a_user, SequenceNumber a_seq,
                       std::string_view b_user, SequenceNumber b_seq) {
  const int c = a_user.compare(b_user);
  if (c != 0) {
    return c;
  }
  // Higher sequence numbers sort first (descending).
  if (a_seq > b_seq) {
    return -1;
  }
  if (a_seq < b_seq) {
    return 1;
  }
  return 0;
}

void EncodeRecord(std::string* dst, std::string_view key, SequenceNumber seq,
                  ValueType type, std::string_view value) {
  PutLengthPrefixed(dst, key);
  PutFixed64(dst, seq);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixed(dst, value);
}

bool DecodeRecord(std::string_view src, size_t* offset, Record* out) {
  if (!GetLengthPrefixed(src, offset, &out->key)) {
    return false;
  }
  if (*offset + 9 > src.size()) {
    return false;
  }
  out->seq = GetFixed64(src, *offset);
  *offset += 8;
  out->type = static_cast<ValueType>(src[*offset]);
  *offset += 1;
  return GetLengthPrefixed(src, offset, &out->value);
}

}  // namespace libra::lsm
