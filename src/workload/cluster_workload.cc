#include "src/workload/cluster_workload.h"

#include <algorithm>
#include <cstdio>

namespace libra::workload {

namespace {

LogNormalSize MakeDist(const SizeSpec& s) {
  return LogNormalSize(s.mean_bytes, s.sigma_bytes, s.min_bytes, s.max_bytes);
}

}  // namespace

ClusterTenantWorkload::ClusterTenantWorkload(sim::EventLoop& loop,
                                             cluster::TenantHandle handle,
                                             KvWorkloadSpec spec,
                                             uint64_t seed)
    : loop_(loop), handle_(handle), spec_(spec), seed_(seed), rng_(seed) {
  get_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.get_size));
  put_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.put_size));
  put_keys_ = std::max<uint64_t>(
      16, spec_.live_bytes_target /
              static_cast<uint64_t>(std::max(1.0, spec_.put_size.mean_bytes)));
  get_keys_ =
      spec_.disjoint_get_range
          ? std::max<uint64_t>(
                16, spec_.live_bytes_target /
                        static_cast<uint64_t>(
                            std::max(1.0, spec_.get_size.mean_bytes)))
          : put_keys_;
  if (spec_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(std::max(get_keys_, put_keys_),
                                            spec_.zipf_theta);
  }
}

std::string ClusterTenantWorkload::GetKey(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf),
                spec_.disjoint_get_range ? "g%010llu" : "p%010llu",
                static_cast<unsigned long long>(index));
  return spec_.key_prefix + buf;
}

std::string ClusterTenantWorkload::PutKey(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "p%010llu",
                static_cast<unsigned long long>(index));
  return spec_.key_prefix + buf;
}

uint64_t ClusterTenantWorkload::GetObjectSize(uint64_t index) const {
  // A pure function of (seed, index): correctness checks recompute the
  // exact preloaded object without replaying the workload's RNG stream.
  Rng rng(seed_ ^ (index * 0x9E3779B97F4A7C15ULL) ^ 0xC1057E12ULL);
  return get_dist_->Sample(rng);
}

sim::Task<void> ClusterTenantWorkload::Preload() {
  for (uint64_t i = 0; i < put_keys_; ++i) {
    const std::string key = PutKey(i);
    co_await handle_.Put(key, MakeValue(key, put_dist_->Sample(rng_)));
  }
  if (spec_.disjoint_get_range) {
    for (uint64_t i = 0; i < get_keys_; ++i) {
      const std::string key = GetKey(i);
      co_await handle_.Put(key, MakeValue(key, GetObjectSize(i)));
    }
  }
}

void ClusterTenantWorkload::Start(sim::TaskGroup& group, SimTime end_time) {
  for (int w = 0; w < spec_.workers; ++w) {
    group.Spawn(Worker(end_time));
  }
}

void ClusterTenantWorkload::CountError(const Status& s) {
  if (s.code() == StatusCode::kUnavailable) {
    ++unavailable_errors_;
  } else if (s.code() == StatusCode::kDeadlineExceeded) {
    ++deadline_errors_;
  }
}

sim::Task<void> ClusterTenantWorkload::Worker(SimTime end_time) {
  while (loop_.Now() < end_time) {
    // scan_fraction > 0 short-circuits before the Bernoulli so the default
    // mix draws exactly the historical GET/PUT RNG stream.
    if (spec_.scan_fraction > 0.0 && rng_.Bernoulli(spec_.scan_fraction)) {
      const uint64_t idx = rng_.NextU64(get_keys_);
      const Result<cluster::ScanEntries> r = co_await handle_.Scan(
          GetKey(idx), std::string(),
          static_cast<size_t>(std::max(1, spec_.scan_span)));
      if (r.ok()) {
        scan_keys_returned_ += r.value().size();
      } else {
        ++scan_errors_;
        CountError(r.status());
      }
      ++scans_done_;
    } else if (rng_.Bernoulli(spec_.get_fraction)) {
      const uint64_t idx = zipf_ != nullptr ? zipf_->Sample(rng_) % get_keys_
                                            : rng_.NextU64(get_keys_);
      std::string key = GetKey(idx);
      // Same short-circuit contract as scan_fraction: at the default 0 no
      // Bernoulli is drawn. "#" sorts above the digit tail, so the miss key
      // lands between two live keys — in range for table pruning, absent
      // from every filter.
      if (spec_.get_absent_fraction > 0.0 &&
          rng_.Bernoulli(spec_.get_absent_fraction)) {
        key.push_back('#');
      }
      const Result<std::string> r = co_await handle_.Get(key);
      if (!r.ok() && r.status().code() != StatusCode::kNotFound) {
        ++get_errors_;
        CountError(r.status());
      }
      ++gets_done_;
    } else {
      const uint64_t idx = zipf_ != nullptr ? zipf_->Sample(rng_) % put_keys_
                                            : rng_.NextU64(put_keys_);
      const std::string key = PutKey(idx);
      const Status s = co_await handle_.Put(
          key, MakeValue(key, put_dist_->Sample(rng_)));
      if (!s.ok()) {
        ++put_errors_;
        CountError(s);
      }
      ++puts_done_;
    }
  }
}

}  // namespace libra::workload
