// Crash/recovery tests for the replicated cluster layer: RF>1 replica
// placement, write fan-out and read failover across a node crash, WAL
// replay plus VOP-priced catch-up on restart, TenantHandle retry/backoff
// semantics, reservation mass conservation across membership changes, and
// FaultInjector determinism.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/fault_injector.h"
#include "src/cluster/global_provisioner.h"
#include "src/sim/sync.h"

namespace libra::cluster {
namespace {

using iosched::Reservation;
using iosched::TenantId;

ssd::CalibrationTable TestTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

ClusterOptions TestOptions(int nodes = 4, int rf = 2) {
  ClusterOptions opt;
  opt.num_nodes = nodes;
  opt.replication_factor = rf;
  opt.node_options.calibration = TestTable();
  opt.node_options.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.node_options.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.node_options.prefill_bytes = 64 * kMiB;
  return opt;
}

struct ClusterRig {
  sim::EventLoop loop;
  Cluster cl;

  explicit ClusterRig(ClusterOptions opt) : cl(loop, std::move(opt)) {}

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

std::string Key(int i) { return "k" + std::to_string(i); }
std::string Val(int i) { return "v" + std::to_string(i); }

// Sum of `tenant`'s local reservations across currently-alive nodes. Dead
// nodes are excluded: their policies keep the stale pre-crash share, which
// is exactly the mass the re-split must have moved onto the survivors.
Reservation SumAliveReservations(Cluster& cl, TenantId tenant) {
  Reservation sum;
  for (int n = 0; n < cl.num_nodes(); ++n) {
    if (!cl.NodeAlive(n)) {
      continue;
    }
    const Reservation r = cl.node(n).policy().GetReservation(tenant);
    EXPECT_GE(r.get_rps, 0.0);
    EXPECT_GE(r.put_rps, 0.0);
    sum.get_rps += r.get_rps;
    sum.put_rps += r.put_rps;
  }
  return sum;
}

void ExpectSumMatchesGlobal(Cluster& cl, TenantId tenant,
                            const GlobalReservation& global) {
  const Reservation sum = SumAliveReservations(cl, tenant);
  EXPECT_NEAR(sum.get_rps, global.get_rps, 1e-6) << "tenant " << tenant;
  EXPECT_NEAR(sum.put_rps, global.put_rps, 1e-6) << "tenant " << tenant;
}

TEST(ReplicationTest, ReplicaSetsAreDistinctAndLeaderFirst) {
  ClusterRig rig(TestOptions(4, 2));
  EXPECT_TRUE(rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).ok());
  const ShardMap& map = rig.cl.shard_map();
  EXPECT_EQ(map.replication_factor(), 2);
  for (int slot = 0; slot < map.shards_per_tenant(); ++slot) {
    const std::vector<int> replicas = map.ReplicasOf(1, slot);
    EXPECT_EQ(replicas.size(), 2u) << "slot " << slot;
    EXPECT_EQ(replicas[0], map.HomeOf(1, slot)) << "slot " << slot;
    EXPECT_NE(replicas[0], replicas[1]) << "slot " << slot;
    for (int r : replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 4);
    }
  }
}

TEST(ReplicationTest, ReplicationFactorClampsToClusterSize) {
  ClusterRig rig(TestOptions(2, 5));
  EXPECT_TRUE(rig.cl.AddTenant(1, GlobalReservation{}).ok());
  EXPECT_EQ(rig.cl.shard_map().replication_factor(), 2);
  const std::vector<int> replicas = rig.cl.shard_map().ReplicasOf(1, 0);
  EXPECT_EQ(replicas.size(), 2u);
}

TEST(ReplicationTest, AckedWritesSurviveLeaderCrash) {
  ClusterRig rig(TestOptions(4, 2));
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE((co_await tenant.Put(Key(i), Val(i))).ok()) << i;
    }
    // Crash the leader of k0's slot — reads of k0 must fail over.
    const int victim = rig.cl.shard_map().NodeOfKey(1, Key(0));
    EXPECT_TRUE(rig.cl.CrashNode(victim).ok());
    EXPECT_FALSE(rig.cl.NodeAlive(victim));
    // Every acked write stays readable: each slot has a live replica.
    for (int i = 0; i < 64; ++i) {
      const Result<std::string> r = co_await tenant.Get(Key(i));
      EXPECT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
      EXPECT_EQ(r.value(), Val(i));
    }
    // Writes keep landing while the node is down (acked by survivors).
    for (int i = 64; i < 96; ++i) {
      EXPECT_TRUE((co_await tenant.Put(Key(i), Val(i))).ok()) << i;
    }
    for (int i = 64; i < 96; ++i) {
      const Result<std::string> r = co_await tenant.Get(Key(i));
      EXPECT_TRUE(r.ok()) << Key(i);
      EXPECT_EQ(r.value(), Val(i));
    }

    const ClusterStats stats = rig.cl.Snapshot();
    EXPECT_FALSE(stats.nodes[victim].replication.alive);
    uint64_t fanout = 0;
    uint64_t failover = 0;
    int leader_slots = 0;
    int follower_slots = 0;
    for (const kv::NodeStats& n : stats.nodes) {
      EXPECT_TRUE(n.replication.enabled);
      fanout += n.replication.fanout_puts;
      failover += n.replication.failover_gets;
      leader_slots += n.replication.leader_slots;
      follower_slots += n.replication.follower_slots;
    }
    EXPECT_GT(fanout, 0u);    // RF=2: every put forwarded once
    EXPECT_GT(failover, 0u);  // k0's reads were served by a follower
    EXPECT_EQ(leader_slots, rig.cl.shard_map().shards_per_tenant());
    EXPECT_EQ(follower_slots, rig.cl.shard_map().shards_per_tenant());
  }());
}

TEST(RecoveryTest, RestartReplaysWalAndCatchesUp) {
  ClusterRig rig(TestOptions(4, 2));
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{500.0, 500.0}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE((co_await tenant.Put(Key(i), Val(i))).ok());
    }
    const int victim = rig.cl.shard_map().NodeOfKey(1, Key(0));
    EXPECT_TRUE(rig.cl.CrashNode(victim).ok());
    // Writes the victim misses entirely — catch-up must copy these in.
    for (int i = 100; i < 132; ++i) {
      EXPECT_TRUE((co_await tenant.Put(Key(i), Val(i))).ok());
    }
    const Status rs = co_await rig.cl.RestartNode(victim);
    EXPECT_TRUE(rs.ok()) << rs.ToString();
    EXPECT_TRUE(rig.cl.NodeAlive(victim));
    EXPECT_FALSE(rig.cl.NodeSyncing(victim));

    // The victim's own copy now holds writes it missed while down: read
    // directly from the node (bypassing cluster failover) for every missed
    // key whose replica set includes the victim.
    int checked = 0;
    for (int i = 100; i < 132; ++i) {
      const int slot = rig.cl.shard_map().SlotOfKey(Key(i));
      const std::vector<int> replicas = rig.cl.shard_map().ReplicasOf(1, slot);
      bool hosts = false;
      for (int r : replicas) {
        hosts |= (r == victim);
      }
      if (!hosts) {
        continue;
      }
      const Result<std::string> r =
          co_await rig.cl.node(victim).Get(1, Key(i));
      EXPECT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
      EXPECT_EQ(r.value(), Val(i));
      ++checked;
    }
    EXPECT_GT(checked, 0);

    // And the cluster as a whole lost nothing.
    for (int i = 0; i < 32; ++i) {
      const Result<std::string> r = co_await tenant.Get(Key(i));
      EXPECT_TRUE(r.ok()) << Key(i);
      EXPECT_EQ(r.value(), Val(i));
    }

    const ClusterStats stats = rig.cl.Snapshot();
    const kv::NodeStats& vs = stats.nodes[victim];
    EXPECT_EQ(vs.recovery.crashes, 1u);
    EXPECT_EQ(vs.recovery.restarts, 1u);
    // Pre-crash writes were memtable-resident: they came back via WAL
    // replay, and the replay is visible in the recovery section.
    EXPECT_GT(vs.recovery.wal_files_replayed, 0u);
    EXPECT_GT(vs.recovery.replay_records, 0u);
    EXPECT_GT(vs.recovery.replay_bytes, 0u);
    // Catch-up copied the missed keys in, priced as kReplicate VOPs.
    EXPECT_GT(vs.replication.catchup_keys, 0u);
    EXPECT_GT(vs.replication.catchup_bytes, 0u);
    EXPECT_EQ(vs.replication.catchup_lag_slots, 0);
    EXPECT_GT(vs.recovery.rereplication_vops, 0.0);
  }());
}

TEST(RecoveryTest, Rf1RestartRecoversTheWalTail) {
  // Single node, no replicas: the only thing that survives a crash is the
  // WAL. Memtable-resident writes must all come back on restart.
  ClusterRig rig(TestOptions(1, 1));
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE((co_await tenant.Put(Key(i), Val(i))).ok());
    }
    EXPECT_TRUE(rig.cl.CrashNode(0).ok());
    // No replica, no retry: requests fail fast with kUnavailable.
    const Result<std::string> down = co_await tenant.Get(Key(0));
    EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ((co_await tenant.Put("x", "y")).code(),
              StatusCode::kUnavailable);

    const Status rs = co_await rig.cl.RestartNode(0);
    EXPECT_TRUE(rs.ok()) << rs.ToString();
    for (int i = 0; i < 16; ++i) {
      const Result<std::string> r = co_await tenant.Get(Key(i));
      EXPECT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
      EXPECT_EQ(r.value(), Val(i));
    }
    const kv::NodeStats stats = rig.cl.node(0).Snapshot();
    EXPECT_EQ(stats.recovery.crashes, 1u);
    EXPECT_EQ(stats.recovery.restarts, 1u);
    EXPECT_EQ(stats.recovery.replay_records, 16u);
    EXPECT_GT(stats.recovery.replay_bytes, 0u);
  }());
}

TEST(RecoveryTest, CrashingACrashedNodeFails) {
  ClusterRig rig(TestOptions(2, 1));
  EXPECT_TRUE(rig.cl.AddTenant(1, GlobalReservation{}).ok());
  EXPECT_TRUE(rig.cl.CrashNode(1).ok());
  EXPECT_EQ(rig.cl.CrashNode(1).code(), StatusCode::kFailedPrecondition);
  rig.RunTask([&]() -> sim::Task<void> {
    const Status first = co_await rig.cl.RestartNode(1);
    EXPECT_TRUE(first.ok()) << first.ToString();
    const Status again = co_await rig.cl.RestartNode(1);
    EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  }());
}

TEST(RetryTest, BackoffRidesThroughCrashAndRestart) {
  ClusterOptions opt = TestOptions(1, 1);
  opt.retry.max_retries = 20;
  opt.retry.initial_backoff = 1 * kMillisecond;
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  FaultInjector inj(rig.loop, rig.cl, FaultInjectorOptions{});
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await tenant.Put(Key(0), Val(0))).ok());
    const SimTime crash_at = rig.loop.Now() + 1 * kMillisecond;
    const SimTime restart_at = rig.loop.Now() + 60 * kMillisecond;
    inj.ScheduleCrash(0, crash_at);
    inj.ScheduleRestart(0, restart_at);
    co_await sim::SleepFor(rig.loop, 5 * kMillisecond);
    EXPECT_FALSE(rig.cl.NodeAlive(0));
    // The read arrives while the node is down; exponential backoff keeps
    // it alive until the scheduled restart brings the node back.
    const Result<std::string> r = co_await tenant.Get(Key(0));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), Val(0));
    EXPECT_GE(rig.loop.Now(), restart_at);
  }());
  EXPECT_EQ(inj.crashes_injected(), 1u);
  EXPECT_EQ(inj.restarts_injected(), 1u);
}

TEST(RetryTest, DeadlineExceededInsteadOfHanging) {
  ClusterOptions opt = TestOptions(1, 1);
  opt.retry.max_retries = 1 << 20;  // deadline, not the count, must stop it
  opt.retry.initial_backoff = 1 * kMillisecond;
  opt.retry.deadline = 20 * kMillisecond;
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  EXPECT_TRUE(rig.cl.CrashNode(0).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    const SimTime start = rig.loop.Now();
    const Result<std::string> r = co_await tenant.Get(Key(0));
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
    const SimDuration elapsed = rig.loop.Now() - start;
    EXPECT_GE(elapsed, opt.retry.deadline);
    EXPECT_LE(elapsed, opt.retry.deadline + 10 * kMillisecond);

    const SimTime put_start = rig.loop.Now();
    EXPECT_EQ((co_await tenant.Put(Key(0), "new")).code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_LE(rig.loop.Now() - put_start,
              opt.retry.deadline + 10 * kMillisecond);
  }());
}

TEST(RetryTest, ExhaustionSurfacesTheLastUnderlyingError) {
  ClusterOptions opt = TestOptions(1, 1);
  opt.retry.max_retries = 3;
  opt.retry.initial_backoff = 1 * kMillisecond;
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  EXPECT_TRUE(rig.cl.CrashNode(0).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    const SimTime start = rig.loop.Now();
    const Result<std::string> r = co_await tenant.Get(Key(0));
    // Not kDeadlineExceeded: with no deadline set, running out of retries
    // surfaces what the last attempt actually saw.
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
        << r.status().ToString();
    // Three backoffs happened: 1 + 2 + 4 ms.
    EXPECT_GE(rig.loop.Now() - start, 7 * kMillisecond);
  }());
}

TEST(RetryTest, NonRetryableErrorsAreNotRetried) {
  ClusterOptions opt = TestOptions(1, 1);
  opt.retry.max_retries = 10;
  opt.retry.initial_backoff = 10 * kMillisecond;
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  rig.RunTask([&]() -> sim::Task<void> {
    const SimTime start = rig.loop.Now();
    const Result<std::string> r = co_await tenant.Get("never-written");
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    // A kNotFound is a real answer: no backoff sleeps were taken.
    EXPECT_LT(rig.loop.Now() - start, 10 * kMillisecond);
  }());
}

TEST(MembershipTest, ReservationMassConservedAcrossCrashAndRestart) {
  ClusterRig rig(TestOptions(4, 2));
  const GlobalReservation g1{400.0, 200.0};
  const GlobalReservation g2{300.0, 100.0};
  EXPECT_TRUE(rig.cl.AddTenant(1, g1).ok());
  EXPECT_TRUE(rig.cl.AddTenant(2, g2).ok());
  ExpectSumMatchesGlobal(rig.cl, 1, g1);
  ExpectSumMatchesGlobal(rig.cl, 2, g2);

  // Crash: the dead node's share must move to survivors, exactly.
  EXPECT_TRUE(rig.cl.CrashNode(2).ok());
  ExpectSumMatchesGlobal(rig.cl, 1, g1);
  ExpectSumMatchesGlobal(rig.cl, 2, g2);

  // Restart: the node re-enters the split; the sum is still exact.
  rig.RunTask([&]() -> sim::Task<void> {
    const Status s = co_await rig.cl.RestartNode(2);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }());
  for (int n = 0; n < 4; ++n) {
    EXPECT_TRUE(rig.cl.NodeAlive(n));
  }
  ExpectSumMatchesGlobal(rig.cl, 1, g1);
  ExpectSumMatchesGlobal(rig.cl, 2, g2);
}

TEST(MembershipTest, ProvisionerKeepsExactSumWhileNodeIsDown) {
  ClusterRig rig(TestOptions(4, 2));
  const GlobalReservation g1{600.0, 300.0};
  EXPECT_TRUE(rig.cl.AddTenant(1, g1).ok());
  EXPECT_TRUE(rig.cl.CrashNode(1).ok());
  GlobalProvisioner& prov = rig.cl.provisioner();
  // Demand-driven re-splits while a node is down must never route
  // reservation mass back onto it or strand any on the survivors.
  for (int i = 0; i < 3; ++i) {
    rig.loop.RunUntil(rig.loop.Now() + kSecond);
    prov.RunIntervalStep();
    ExpectSumMatchesGlobal(rig.cl, 1, g1);
    EXPECT_FALSE(rig.cl.NodeAlive(1));
  }
  rig.RunTask([&]() -> sim::Task<void> {
    const Status s = co_await rig.cl.RestartNode(1);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }());
  prov.RunIntervalStep();
  ExpectSumMatchesGlobal(rig.cl, 1, g1);
}

TEST(FaultInjectorTest, SameSeedMakesIdenticalDecisions) {
  ClusterRig rig(TestOptions(2, 1));
  FaultInjectorOptions fo;
  fo.seed = 42;
  fo.rpc_drop_rate = 0.3;
  fo.rpc_delay_rate = 0.4;
  FaultInjector a(rig.loop, rig.cl, fo);
  FaultInjector b(rig.loop, rig.cl, fo);
  for (int i = 0; i < 512; ++i) {
    const RpcFault fa = a.OnRpc(1, i % 2);
    const RpcFault fb = b.OnRpc(1, i % 2);
    EXPECT_EQ(fa.drop, fb.drop) << i;
    EXPECT_EQ(fa.delay, fb.delay) << i;
  }
  EXPECT_EQ(a.rpcs_dropped(), b.rpcs_dropped());
  EXPECT_EQ(a.rpcs_delayed(), b.rpcs_delayed());
  EXPECT_GT(a.rpcs_dropped(), 0u);
  EXPECT_GT(a.rpcs_delayed(), 0u);
}

TEST(FaultInjectorTest, DroppedRpcsSurfaceUnavailable) {
  ClusterOptions opt = TestOptions(2, 1);
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  FaultInjectorOptions fo;
  fo.rpc_drop_rate = 1.0;  // every routed call is eaten by the network
  FaultInjector inj(rig.loop, rig.cl, fo);
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_EQ((co_await tenant.Put(Key(0), Val(0))).code(),
              StatusCode::kUnavailable);
    const Result<std::string> r = co_await tenant.Get(Key(0));
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }());
  EXPECT_GT(inj.rpcs_dropped(), 0u);
}

TEST(FaultInjectorTest, DelayedRpcsStillSucceed) {
  ClusterOptions opt = TestOptions(2, 1);
  ClusterRig rig(opt);
  TenantHandle tenant =
      rig.cl.AddTenant(1, GlobalReservation{100.0, 100.0}).value();
  FaultInjectorOptions fo;
  fo.rpc_delay_rate = 1.0;
  fo.rpc_delay_min = 1 * kMillisecond;
  fo.rpc_delay_max = 2 * kMillisecond;
  FaultInjector inj(rig.loop, rig.cl, fo);
  rig.RunTask([&]() -> sim::Task<void> {
    const SimTime start = rig.loop.Now();
    EXPECT_TRUE((co_await tenant.Put(Key(0), Val(0))).ok());
    EXPECT_GE(rig.loop.Now() - start, fo.rpc_delay_min);
    const Result<std::string> r = co_await tenant.Get(Key(0));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value(), Val(0));
  }());
  EXPECT_GT(inj.rpcs_delayed(), 0u);
  EXPECT_EQ(inj.rpcs_dropped(), 0u);
}

}  // namespace
}  // namespace libra::cluster
