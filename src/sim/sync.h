// Coroutine-aware synchronization for the virtual-time runtime: sleeping,
// one-shot completions (how the IO scheduler hands results back to suspended
// tenant tasks), mutexes, condition variables, semaphores, and task groups.
//
// Everything here is single-threaded: "concurrency" is coroutine
// interleaving on one EventLoop, so no atomics are involved. Waiters are
// resumed via EventLoop::Post to bound stack depth and keep resume order
// FIFO and deterministic.

#ifndef LIBRA_SRC_SIM_SYNC_H_
#define LIBRA_SRC_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "src/common/units.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace libra::sim {

// --- Sleeping -------------------------------------------------------------

class SleepAwaiter {
 public:
  SleepAwaiter(EventLoop& loop, SimDuration delay)
      : loop_(loop), delay_(delay) {}

  bool await_ready() const noexcept { return delay_ <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    loop_.ScheduleAfter(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  EventLoop& loop_;
  SimDuration delay_;
};

inline SleepAwaiter SleepFor(EventLoop& loop, SimDuration delay) {
  return SleepAwaiter(loop, delay);
}

inline SleepAwaiter SleepUntil(EventLoop& loop, SimTime when) {
  return SleepAwaiter(loop, when - loop.Now());
}

// Reschedules the current coroutine behind already-pending same-instant
// events (cooperative yield).
class YieldAwaiter {
 public:
  explicit YieldAwaiter(EventLoop& loop) : loop_(loop) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    loop_.Post([h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  EventLoop& loop_;
};

inline YieldAwaiter Yield(EventLoop& loop) { return YieldAwaiter(loop); }

// --- One-shot completion ---------------------------------------------------

// Single-producer, single-consumer, single-use rendezvous. The IO scheduler
// resolves a tenant's suspended IO task by calling Set(); the tenant task
// co_awaits Wait(). Set-before-wait and wait-before-set are both supported.
template <typename T>
class OneShot {
 public:
  explicit OneShot(EventLoop& loop) : loop_(&loop) {}

  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  void Set(T value) {
    assert(!value_.has_value() && "OneShot set twice");
    value_.emplace(std::move(value));
    if (waiter_) {
      auto h = std::exchange(waiter_, {});
      loop_->Post([h] { h.resume(); });
    }
  }

  bool ready() const { return value_.has_value(); }

  struct Awaiter {
    OneShot* self;
    bool await_ready() const noexcept { return self->value_.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!self->waiter_ && "OneShot awaited twice");
      self->waiter_ = h;
    }
    T await_resume() { return std::move(*self->value_); }
  };

  Awaiter Wait() { return Awaiter{this}; }

 private:
  EventLoop* loop_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
};

// --- Mutex ------------------------------------------------------------------

// FIFO coroutine mutex. Usage:
//   co_await mu.Lock();
//   ... critical section ...
//   mu.Unlock();
class Mutex {
 public:
  explicit Mutex(EventLoop& loop) : loop_(&loop) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  struct LockAwaiter {
    Mutex* mu;
    bool await_ready() const noexcept {
      if (!mu->locked_) {
        mu->locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mu->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  LockAwaiter Lock() { return LockAwaiter{this}; }

  // Non-blocking acquire.
  bool TryLock() {
    if (locked_) {
      return false;
    }
    locked_ = true;
    return true;
  }

  void Unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    // Hand the lock directly to the next waiter (it stays locked).
    auto h = waiters_.front();
    waiters_.pop_front();
    loop_->Post([h] { h.resume(); });
  }

  bool locked() const { return locked_; }

 private:
  friend class CondVar;

  EventLoop* loop_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII-ish helper for coroutine scopes that can use it linearly.
class MutexGuard {
 public:
  explicit MutexGuard(Mutex& mu) : mu_(&mu) {}
  MutexGuard(MutexGuard&& o) noexcept : mu_(std::exchange(o.mu_, nullptr)) {}
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;
  ~MutexGuard() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    }
  }

 private:
  Mutex* mu_;
};

// --- Condition variable ------------------------------------------------------

class CondVar {
 public:
  explicit CondVar(EventLoop& loop) : loop_(&loop) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits for a notification, then re-acquires
  // `mu` before returning. Spurious wakeups do not occur, but callers should
  // still re-check their predicate in a loop (another task may have consumed
  // the state between notify and re-acquisition).
  Task<void> Wait(Mutex& mu) {
    mu.Unlock();
    co_await WaitAwaiter{this};
    co_await mu.Lock();
  }

  void NotifyOne() {
    if (waiters_.empty()) {
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    loop_->Post([h] { h.resume(); });
  }

  void NotifyAll() {
    while (!waiters_.empty()) {
      NotifyOne();
    }
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct WaitAwaiter {
    CondVar* cv;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      cv->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  EventLoop* loop_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// --- Semaphore ---------------------------------------------------------------

// Counting semaphore; models bounded resources such as the SSD queue depth.
class Semaphore {
 public:
  Semaphore(EventLoop& loop, int64_t initial) : loop_(&loop), count_(initial) {
    assert(initial >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct AcquireAwaiter {
    Semaphore* sem;
    bool await_ready() const noexcept {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }

  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the next waiter.
      auto h = waiters_.front();
      waiters_.pop_front();
      loop_->Post([h] { h.resume(); });
      return;
    }
    ++count_;
  }

  int64_t available() const { return count_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  EventLoop* loop_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// --- Task group ----------------------------------------------------------------

// Spawns detached child tasks and lets a parent await their collective
// completion — the workload harness pattern: spawn N tenant workers, run the
// clock, join.
class TaskGroup {
 public:
  explicit TaskGroup(EventLoop& loop) : loop_(&loop) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { assert(pending_ == 0 && "TaskGroup destroyed with live tasks"); }

  void Spawn(Task<void> task) {
    ++pending_;
    Detach(Wrap(this, std::move(task)));
  }

  // Resolves once all tasks spawned so far have finished.
  Task<void> Join() {
    while (pending_ > 0) {
      co_await JoinAwaiter{this};
    }
  }

  size_t pending() const { return pending_; }

 private:
  static Task<void> Wrap(TaskGroup* group, Task<void> task) {
    co_await std::move(task);
    group->OnTaskDone();
  }

  void OnTaskDone() {
    assert(pending_ > 0);
    --pending_;
    if (pending_ == 0 && joiner_) {
      auto h = std::exchange(joiner_, {});
      loop_->Post([h] { h.resume(); });
    }
  }

  struct JoinAwaiter {
    TaskGroup* group;
    bool await_ready() const noexcept { return group->pending_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!group->joiner_ && "TaskGroup supports one joiner");
      group->joiner_ = h;
    }
    void await_resume() const noexcept {}
  };

  EventLoop* loop_;
  size_t pending_ = 0;
  std::coroutine_handle<> joiner_;
};

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_SYNC_H_
