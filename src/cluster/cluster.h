// Multi-node cluster layer: the tier above Libra's per-node enforcement.
//
// The paper positions Libra as the bottom half of a two-tier system (§1,
// Fig. 1): a system-wide policy such as Pisces partitions each tenant's
// global reservation into per-node local reservations, and Libra makes each
// node's share achievable. Cluster is that tier: it owns N StorageNodes on
// one EventLoop, shards each tenant's keyspace across nodes by consistent
// hashing (ShardMap), and runs a GlobalProvisioner that periodically
// re-splits every tenant's global app-request reservation in proportion to
// observed per-node demand, with hysteresis, node-level admission control,
// and shard migration off persistently overbooked nodes.
//
// Clients do not address nodes or carry raw TenantIds through call sites:
// AddTenant returns a TenantHandle whose Get/Put/Delete/MultiGet/Scan
// coroutines route each key (or key range) to the node homing its shard,
// suspending while that shard is mid-migration. Reservations are per
// app-request class (GET/PUT/SCAN), and each tenant declares its LSM
// compaction policy at admission — the cluster installs it on every node
// hosting one of the tenant's shards.

#ifndef LIBRA_SRC_CLUSTER_CLUSTER_H_
#define LIBRA_SRC_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/shard_map.h"
#include "src/common/status.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/resource_policy.h"
#include "src/kv/node_stats.h"
#include "src/kv/storage_node.h"
#include "src/obs/audit.h"
#include "src/obs/conformance.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"
#include "src/sim/multi_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace libra::cluster {

class Cluster;
class GlobalProvisioner;

// A tenant's system-wide reservation in normalized (1KB) requests per
// second — the quantity the provisioner splits into per-node
// iosched::Reservations. One rate per app-request class (GET/PUT/SCAN).
using GlobalReservation = iosched::Reservation;

// A cluster-level range-scan result: live (key, value) pairs in key order.
using ScanEntries = std::vector<std::pair<std::string, std::string>>;

struct GlobalProvisionerOptions {
  SimDuration interval = 1 * kSecond;
  // EWMA weight for per-(tenant, node) demand smoothing.
  double demand_alpha = 0.3;
  // A new split is applied only when some node's share of the global
  // reservation moves by more than this fraction of the global rate —
  // the anti-thrash hysteresis band.
  double hysteresis = 0.05;
  // Every hosting node keeps at least this fraction of the global
  // reservation, so a shard that goes quiet can still ramp back up.
  double min_share = 0.02;
  // Consecutive overbooked provisioning intervals on one node before a
  // shard migration fires; <= 0 disables automatic migration.
  int overbook_intervals_before_migration = 3;
};

// Client-side retry policy applied by TenantHandle when a routed request
// fails with kUnavailable (node crashed, no live replica, dropped RPC).
// Retries re-route, so a request issued while a node is down succeeds once
// failover or recovery makes a replica reachable. The defaults disable
// retry entirely (one attempt, no sleeps) — the pre-replication behavior.
struct RetryPolicy {
  int max_retries = 0;  // additional attempts after the first
  SimDuration initial_backoff = 1 * kMillisecond;
  double backoff_multiplier = 2.0;
  // Per-request wall budget across all attempts; 0 = unbounded. When the
  // budget runs out the request fails with kDeadlineExceeded (it never
  // hangs); before that, exhausting max_retries surfaces the last
  // underlying error.
  SimDuration deadline = 0;
};

// Per-RPC fault decision, consulted on every routed node call when an
// injector is installed (FaultInjector implements this): the call may be
// delayed, and/or dropped — a drop surfaces as kUnavailable to the router,
// exercising the same failover/retry machinery as a crashed node.
struct RpcFault {
  bool drop = false;
  SimDuration delay = 0;
};

class RpcFaultInjector {
 public:
  virtual ~RpcFaultInjector() = default;
  virtual RpcFault OnRpc(iosched::TenantId tenant, int node) = 0;
};

struct ClusterOptions {
  int num_nodes = 4;
  int shards_per_tenant = 8;
  int vnodes_per_node = 64;
  uint64_t placement_seed = 0x11b7a5eed;
  // Replicas per shard slot (leader + rf-1 ring followers on distinct
  // nodes; see ShardMap::ReplicasOf). At RF>1 writes fan out to every live
  // replica (acked when at least one replica acked), reads fail over to
  // followers when the leader is down, and a restarted node catches up via
  // a VOP-priced copy stream from a surviving replica. 1 = unreplicated.
  int replication_factor = 1;
  RetryPolicy retry;
  kv::NodeOptions node_options;  // every node is configured identically
  GlobalProvisionerOptions provisioner;
  // Admission control: a tenant is admitted only if, on every node hosting
  // its shards, already-provisioned VOP demand plus the tenant's share
  // stays within this fraction of the node's capacity floor. Demand is
  // priced at the cost model's normalized-request price times the headroom
  // factor (a stand-in for unobserved amplification at admission time).
  double admission_utilization = 0.95;
  double admission_headroom = 1.0;
  // Disables the admission check entirely (AddTenant/UpdateGlobalReservation
  // always admit). The check walks every admitted tenant per hosting node,
  // which is O(tenants^2) across a mega-scale setup phase; consolidation
  // experiments that only study steady-state scheduling turn it off.
  bool admission_enabled = true;
  // One-way cross-node RPC latency. 0 (default) keeps the historical
  // instantaneous-RPC behavior and is required with the single-EventLoop
  // constructor; the parallel (MultiLoop) constructor requires it positive
  // and >= the engine's lookahead, since it bounds every cross-node message
  // delay the conservative synchronization relies on.
  SimDuration rpc_latency = 0;
  // Group MultiGet fan-out by shard slot: same-slot keys share one routing
  // gate (one AwaitRoutable instead of one per key) and are issued to the
  // home node as one batch whose lookups still proceed concurrently. Off by
  // default (per-key routing, the pre-batching behavior).
  bool batch_multiget = false;
};

// Client surface for one tenant: routes requests to the node homing each
// key's shard. Cheap to copy; valid while the Cluster lives. A
// default-constructed handle is inert (valid() == false) so
// Result<TenantHandle> has a well-defined error payload.
class TenantHandle {
 public:
  TenantHandle() = default;

  bool valid() const { return cluster_ != nullptr; }
  iosched::TenantId tenant() const { return tenant_; }

  sim::Task<Status> Put(const std::string& key, const std::string& value);
  sim::Task<Status> Delete(const std::string& key);
  sim::Task<Result<std::string>> Get(const std::string& key);
  // Issues all lookups concurrently; results are in `keys` order.
  sim::Task<std::vector<Result<std::string>>> MultiGet(
      const std::vector<std::string>& keys);
  // Range scan over [start, end) — empty `end` = to the end of the keyspace
  // — returning at most `limit` live entries (0 = no limit) in key order.
  // Keys hash to shard slots, so a contiguous range spans every slot: the
  // scan routes each slot to its serving node (leader when up), fans out
  // one node-level SCAN per distinct node, and merges the per-node runs.
  // IO is charged to the SCAN class on every node touched.
  sim::Task<Result<ScanEntries>> Scan(const std::string& start,
                                      const std::string& end, size_t limit);

 private:
  friend class Cluster;
  TenantHandle(Cluster* cluster, iosched::TenantId tenant)
      : cluster_(cluster), tenant_(tenant) {}

  Cluster* cluster_ = nullptr;
  iosched::TenantId tenant_ = iosched::kInvalidTenant;
};

// Cluster-wide observability snapshot (rendered by ClusterStatsToJson).
struct ClusterStats {
  int64_t time_ns = 0;
  std::vector<kv::NodeStats> nodes;
  struct TenantEntry {
    iosched::TenantId tenant = iosched::kInvalidTenant;
    GlobalReservation global;
    lsm::CompactionPolicy compaction = lsm::CompactionPolicy::kLeveled;
    std::vector<int> slot_homes;  // node per slot
  };
  std::vector<TenantEntry> tenants;
  std::vector<obs::RebalanceRecord> rebalances;
};

std::string ClusterStatsToJson(const ClusterStats& stats);

class Cluster {
 public:
  // Serial cluster: every node shares `loop` and cross-node calls are
  // direct (options.rpc_latency must be 0) — the historical engine.
  Cluster(sim::EventLoop& loop, ClusterOptions options);

  // Parallel cluster: `engine` must have options.num_nodes + 1 loops — loop
  // 0 runs clients, routing, the provisioner, and fault schedules; loop
  // i + 1 runs node i. Every cross-node interaction becomes a MultiLoop
  // message with options.rpc_latency as the request/response leg, so
  // options.rpc_latency must be positive and >= engine.lookahead(). Output
  // is byte-identical across engine thread counts.
  Cluster(sim::MultiLoop& engine, ClusterOptions options);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Admits a tenant with a global reservation and registers it (with its
  // initial even split) on every node hosting one of its shards. Fails with
  // kAlreadyExists (duplicate), kInvalidArgument (malformed reservation) or
  // kResourceExhausted (admission control: some hosting node cannot absorb
  // the tenant's share; the message names the node and the shortfall).
  // `compaction` is the tenant's LSM compaction policy, installed on every
  // node that ever hosts one of its partitions (including nodes it migrates
  // onto later).
  // `declared` is the attribution profile the tenant claims (forwarded to
  // every StorageNode::AddTenant, so each hosting node's conformance
  // monitor verifies its observed q̂ against it).
  Result<TenantHandle> AddTenant(
      iosched::TenantId tenant, GlobalReservation reservation,
      lsm::CompactionPolicy compaction = lsm::CompactionPolicy::kLeveled,
      obs::DeclaredAttribution declared = {});

  // Replaces a tenant's global reservation, subject to the same admission
  // check against the other tenants' current provisioned demand.
  Status UpdateGlobalReservation(iosched::TenantId tenant,
                                 GlobalReservation reservation);

  // Handle for an already-admitted tenant (kNotFound otherwise).
  Result<TenantHandle> Handle(iosched::TenantId tenant);

  // Starts/stops every node's resource policy and the global provisioner.
  void Start();
  void Stop();

  // Drains (tenant, slot) on its current home and re-homes it on `to_node`:
  // new requests to the shard suspend, in-flight ones finish, live keys are
  // copied over and tombstoned at the source, then the map flips and gated
  // requests proceed. Key-preserving by construction; the copy IO is
  // charged to the tenant (unattributed class, so request profiles stay
  // clean).
  sim::Task<Status> MigrateShard(iosched::TenantId tenant, int slot,
                                 int to_node);

  // --- crash fault injection & recovery ---

  // Crashes node `node` at the current instant: its policy stops, its
  // partitions are killed (in-flight requests there fail kUnavailable), and
  // every tenant's reservation is immediately re-split over the surviving
  // hosting nodes (exact-sum: no reservation mass is stranded on the dead
  // node). Requests routed to the node fail over to live replicas (RF>1)
  // or fail kUnavailable until RestartNode (RF=1).
  Status CrashNode(int node);

  // Restarts a crashed node: WAL replay restores its unflushed writes,
  // reservations re-split to include it again, and (RF>1) a catch-up copy
  // stream re-replicates each of its slots from a surviving replica,
  // priced as InternalOp::kReplicate VOPs on both ends. Slots being caught
  // up gate briefly (requests suspend, as during migration) so concurrent
  // writes cannot be shadowed by older copied-in values. At RF=1 there is
  // no surviving replica: flushed data is lost for good, only the WAL tail
  // comes back.
  sim::Task<Status> RestartNode(int node);

  bool NodeAlive(int node) const { return node_state_[node].alive; }
  bool NodeSyncing(int node) const { return node_state_[node].syncing; }

  // Installs (or clears, with nullptr) the per-RPC fault hook. Not owned.
  void SetRpcFaultInjector(RpcFaultInjector* injector) {
    rpc_faults_ = injector;
  }

  // Synchronous GC pause on one node's device, routed through the node's
  // own loop in parallel mode (FaultInjector::InjectGcStall forwards here).
  void InjectGcStall(int node, SimDuration stall);

  // --- introspection ---

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  kv::StorageNode& node(int i) { return *nodes_[i]; }
  const ShardMap& shard_map() const { return shard_map_; }
  // Parallel-engine introspection. In parallel mode, reading node state
  // (node(i), Snapshot, GlobalNormalizedTotal) is only safe while the
  // engine is quiesced: before RunUntil/Run, after it returns, or inside a
  // MultiLoop barrier hook.
  bool parallel() const { return multi_ != nullptr; }
  sim::MultiLoop* multi_loop() { return multi_; }
  SimDuration lookahead() const {
    return multi_ != nullptr ? multi_->lookahead() : 0;
  }
  // Coordinator-side collector for client-request and migration spans in
  // parallel mode (nullptr in serial mode, where those spans land in the
  // home node's collector, and when tracing is off).
  const obs::SpanCollector* client_spans() const {
    return client_spans_.get();
  }
  GlobalProvisioner& provisioner() { return *provisioner_; }
  const obs::RebalanceLog& rebalance_log() const { return rebalance_log_; }
  GlobalReservation global_reservation(iosched::TenantId tenant) const;
  std::vector<iosched::TenantId> tenants() const;

  // Cumulative normalized requests served for `tenant` across all nodes
  // (evaluation harnesses take deltas for global achieved rates).
  double GlobalNormalizedTotal(iosched::TenantId tenant,
                               iosched::AppRequest app) const;

  // Batched-MultiGet accounting (0 unless options.batch_multiget): slot
  // groups routed and the keys they carried.
  uint64_t multiget_groups() const { return multiget_groups_; }
  uint64_t multiget_grouped_keys() const { return multiget_grouped_keys_; }

  ClusterStats Snapshot() const;

 private:
  friend class GlobalProvisioner;
  friend class TenantHandle;

  // Per-(tenant, slot) routing state. inflight gates migration draining;
  // migrating gates new requests.
  struct ShardState {
    bool migrating = false;
    int inflight = 0;
  };

  static uint64_t ShardKey(iosched::TenantId tenant, int slot) {
    return (static_cast<uint64_t>(tenant) << 32) | static_cast<uint32_t>(slot);
  }
  ShardState& Shard(iosched::TenantId tenant, int slot) {
    return shards_[ShardKey(tenant, slot)];
  }

  // --- request routing (TenantHandle forwards here) ---
  sim::Task<Status> Put(iosched::TenantId tenant, std::string key,
                        std::string value);
  sim::Task<Status> Delete(iosched::TenantId tenant, std::string key);
  sim::Task<Result<std::string>> Get(iosched::TenantId tenant,
                                     std::string key);
  sim::Task<Result<ScanEntries>> Scan(iosched::TenantId tenant,
                                      std::string start, std::string end,
                                      size_t limit);

  // Suspends while (tenant, slot) is migrating, then returns its home node.
  sim::Task<int> AwaitRoutable(iosched::TenantId tenant, int slot);

  // Batched MultiGet: routes one slot's key group through a single gate,
  // then fans the lookups out concurrently on the home node, writing each
  // result to its original position in the caller's output vector.
  // `keys` pairs are (output index, key), by value: the coroutine frame
  // must own them across suspension.
  sim::Task<void> MultiGetSlotGroup(
      iosched::TenantId tenant, int slot,
      std::vector<std::pair<size_t, std::string>> keys,
      std::vector<Result<std::string>>* out);

  // One node's leg of a cluster scan: issues the node-level SCAN (with its
  // own client span and RPC fault handling) and filters the returned run to
  // the slots this node serves for the scan, writing into `out`. Spawned
  // per distinct serving node; parameters by value (TaskGroup lifetime).
  sim::Task<void> ScanNodeGroup(iosched::TenantId tenant, int node,
                                std::vector<int> slots, std::string start,
                                std::string end, size_t limit,
                                lsm::LsmDb::ScanResult* out);

  // Replica write fan-out helpers (TaskGroup-spawned: parameters by value,
  // the frames outlive the caller's loop variables).
  sim::Task<void> PutReplica(int node, iosched::TenantId tenant,
                             std::string key, std::string value,
                             TraceContext ctx, Status* out);
  sim::Task<void> DeleteReplica(int node, iosched::TenantId tenant,
                                std::string key, TraceContext ctx,
                                Status* out);

  // --- cross-node seam ---
  //
  // Every interaction with a StorageNode funnels through these. Serial
  // mode: a direct call on the shared loop, byte-identical to the
  // historical inlined paths. Parallel mode: a MultiLoop message carrying
  // the arguments to the node's loop (request leg `request_delay`, response
  // leg rpc_latency), where a detached server coroutine performs the
  // operation; the reply message completes a OneShot on the coordinator
  // loop. `request_delay` lets an injected RPC delay replace the request
  // leg (which is why FaultInjector delays must stay >= the lookahead).

  int NodeLoopIndex(int node) const { return node + 1; }

  sim::Task<Status> NodePut(int node, iosched::TenantId tenant,
                            std::string key, std::string value,
                            TraceContext ctx, SimDuration request_delay);
  sim::Task<Status> NodeDelete(int node, iosched::TenantId tenant,
                               std::string key, TraceContext ctx,
                               SimDuration request_delay);
  sim::Task<Result<std::string>> NodeGet(int node, iosched::TenantId tenant,
                                         std::string key, TraceContext ctx,
                                         SimDuration request_delay);
  sim::Task<void> PutServer(int node, iosched::TenantId tenant,
                            std::string key, std::string value,
                            TraceContext ctx, sim::OneShot<Status>* done);
  sim::Task<void> DeleteServer(int node, iosched::TenantId tenant,
                               std::string key, TraceContext ctx,
                               sim::OneShot<Status>* done);
  sim::Task<void> GetServer(int node, iosched::TenantId tenant,
                            std::string key, TraceContext ctx,
                            sim::OneShot<Result<std::string>>* done);

  // Batched slot-group lookup: one message carries the whole key group; the
  // node fans the lookups out concurrently on its own loop and replies with
  // the results in key order.
  sim::Task<std::vector<Result<std::string>>> NodeMultiGet(
      int node, iosched::TenantId tenant, std::vector<std::string> keys,
      TraceContext ctx);
  sim::Task<void> MultiGetServer(
      int node, iosched::TenantId tenant, std::vector<std::string> keys,
      TraceContext ctx,
      sim::OneShot<std::vector<Result<std::string>>>* done);

  // Node-level range scan (StorageNode::Scan behind the seam): one request
  // message per node touched; the reply carries the node's whole run.
  sim::Task<lsm::LsmDb::ScanResult> NodeScan(int node,
                                             iosched::TenantId tenant,
                                             std::string start,
                                             std::string end, size_t limit,
                                             TraceContext ctx,
                                             SimDuration request_delay);
  sim::Task<void> ScanServer(int node, iosched::TenantId tenant,
                             std::string start, std::string end, size_t limit,
                             TraceContext ctx,
                             sim::OneShot<lsm::LsmDb::ScanResult>* done);

  // Copy-stream primitives shared by migration and catch-up. ScanSlots
  // reads every live key whose shard slot is in `slots`, in user-key order;
  // `missing_msg` is the kInternal message when the partition is absent.
  sim::Task<Result<std::vector<std::pair<std::string, std::string>>>>
  NodeScanSlots(int node, iosched::TenantId tenant, std::vector<int> slots,
                iosched::IoTag tag, const char* missing_msg);
  sim::Task<void> ScanSlotsServer(
      int node, iosched::TenantId tenant, std::vector<int> slots,
      iosched::IoTag tag, const char* missing_msg,
      sim::OneShot<Result<std::vector<std::pair<std::string, std::string>>>>*
          done);

  // Applies `puts` then `deletes` sequentially on the node's partition,
  // stopping at the first error; counts cover the successful prefix.
  struct ApplyResult {
    Status status;
    uint64_t puts_applied = 0;
    uint64_t put_key_bytes = 0;
    uint64_t put_value_bytes = 0;
    uint64_t deletes_applied = 0;
  };
  sim::Task<ApplyResult> NodeApplyOps(
      int node, iosched::TenantId tenant,
      std::vector<std::pair<std::string, std::string>> puts,
      std::vector<std::string> deletes, TraceContext ctx,
      iosched::InternalOp op, const char* missing_msg);
  sim::Task<void> ApplyOpsServer(
      int node, iosched::TenantId tenant,
      std::vector<std::pair<std::string, std::string>> puts,
      std::vector<std::string> deletes, TraceContext ctx,
      iosched::InternalOp op, const char* missing_msg,
      sim::OneShot<ApplyResult>* done);

  // One-way control-plane seams (no reply; the node-side closure performs
  // the membership/registration checks so no node state is read
  // cross-thread).
  Status NodeEnsureTenant(int node, iosched::TenantId tenant);
  // Serial mode propagates the node's status; parallel mode is
  // fire-and-forget (the shares were validated at admission) and returns
  // Ok.
  Status NodeInstallReservation(int node, iosched::TenantId tenant,
                                iosched::Reservation share);
  Status NodeZeroReservation(int node, iosched::TenantId tenant);
  void NodeRecordReplTrigger(int node, iosched::TenantId tenant);
  void NodeRecordReplDone(int node, iosched::TenantId tenant);
  void NodeCrash(int node);
  sim::Task<Status> NodeRestart(int node);
  sim::Task<void> RestartServer(int node, sim::OneShot<Status>* done);

  // Re-splits every tenant's global reservation over the currently-alive
  // hosting nodes (no admission check: lost capacity must not strand
  // reservation mass).
  Status ResplitForMembership();

  // RF>1 catch-up after RestartNode: re-replicates every slot `node` hosts
  // from a surviving replica (see RestartNode).
  sim::Task<Status> CatchUpNode(int node);
  sim::Task<Status> CatchUpTenant(iosched::TenantId tenant, int node);

  // The tenant's declared compaction policy (kLeveled when unknown — e.g.
  // a migration target registering the tenant before admission finishes).
  lsm::CompactionPolicy CompactionOf(iosched::TenantId tenant) const;

  // The tenant's declared attribution profile (empty when unknown).
  obs::DeclaredAttribution DeclaredOf(iosched::TenantId tenant) const;

  // VOP price of one normalized (1KB) request at admission time.
  double AdmissionPrice(iosched::AppRequest app) const;
  // Priced VOP demand of a local reservation share.
  double PricedVops(const iosched::Reservation& r) const;
  // Even initial split of `global` for `tenant`: per-node reservations
  // proportional to hosted slot counts, summing exactly to `global`.
  std::map<int, iosched::Reservation> EvenSplit(
      iosched::TenantId tenant, const GlobalReservation& global) const;
  // Admission check: can `tenant` place `split` on top of the currently
  // provisioned demand of every other tenant?
  Status CheckAdmission(iosched::TenantId tenant,
                        const std::map<int, iosched::Reservation>& split) const;
  // Installs a split on the nodes (registering the tenant where missing)
  // and remembers it as the tenant's current split.
  Status ApplySplit(iosched::TenantId tenant,
                    const std::map<int, iosched::Reservation>& split);

  // Shared constructor tail: node creation (on per-node loops when
  // `engine` is set), span-id namespacing, provisioner.
  void Init(sim::MultiLoop* engine);

  sim::EventLoop& loop_;
  sim::MultiLoop* multi_ = nullptr;
  ClusterOptions options_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<kv::StorageNode>> nodes_;
  std::unique_ptr<GlobalProvisioner> provisioner_;

  struct TenantState {
    GlobalReservation global;
    // The tenant's declared LSM compaction policy, passed to every
    // StorageNode::AddTenant the control-plane seams issue for it.
    lsm::CompactionPolicy compaction = lsm::CompactionPolicy::kLeveled;
    // Declared attribution profile, likewise forwarded on every install.
    obs::DeclaredAttribution declared;
    // Current per-node split (what the nodes' policies were last told).
    std::map<int, iosched::Reservation> split;
  };
  std::map<iosched::TenantId, TenantState> tenants_;
  std::map<uint64_t, ShardState> shards_;

  // Per-node liveness (indexed like nodes_).
  struct NodeState {
    bool alive = true;
    bool syncing = false;  // restarted; catch-up copy streams still running
  };
  std::vector<NodeState> node_state_;
  // Per-node replication traffic counters (indexed like nodes_).
  struct ReplTelemetry {
    uint64_t fanout_puts = 0;
    uint64_t fanout_bytes = 0;
    uint64_t failover_gets = 0;
    uint64_t catchup_keys = 0;
    uint64_t catchup_bytes = 0;
    int catchup_lag_slots = 0;
  };
  std::vector<ReplTelemetry> repl_;
  RpcFaultInjector* rpc_faults_ = nullptr;
  // Parallel mode only: client-request and migration spans are recorded
  // here (coordinator loop) instead of the home node's collector, so no
  // collector is ever touched from two threads. Ids are namespaced with
  // seed num_nodes + 1 (nodes use 1..num_nodes).
  std::unique_ptr<obs::SpanCollector> client_spans_;
  obs::RebalanceLog rebalance_log_;
  int active_migrations_ = 0;  // MigrateShard calls currently draining/copying
  uint64_t multiget_groups_ = 0;
  uint64_t multiget_grouped_keys_ = 0;
};

}  // namespace libra::cluster

#endif  // LIBRA_SRC_CLUSTER_CLUSTER_H_
