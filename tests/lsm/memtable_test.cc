#include "src/lsm/memtable.h"

#include <gtest/gtest.h>

namespace libra::lsm {
namespace {

TEST(MemTableTest, PutThenGet) {
  MemTable mt;
  mt.Put("key", 1, "value");
  const auto r = mt.Get("key");
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.deleted);
  EXPECT_EQ(r.value, "value");
}

TEST(MemTableTest, MissingKeyNotFound) {
  MemTable mt;
  mt.Put("key", 1, "value");
  EXPECT_FALSE(mt.Get("other").found);
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mt;
  mt.Put("key", 1, "v1");
  mt.Put("key", 2, "v2");
  mt.Put("key", 3, "v3");
  EXPECT_EQ(mt.Get("key").value, "v3");
}

TEST(MemTableTest, SnapshotSeesOlderVersion) {
  MemTable mt;
  mt.Put("key", 1, "v1");
  mt.Put("key", 5, "v5");
  EXPECT_EQ(mt.Get("key", 4).value, "v1");
  EXPECT_EQ(mt.Get("key", 5).value, "v5");
  EXPECT_FALSE(mt.Get("key", 0).found);
}

TEST(MemTableTest, DeleteLeavesTombstone) {
  MemTable mt;
  mt.Put("key", 1, "value");
  mt.Delete("key", 2);
  const auto r = mt.Get("key");
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.deleted);
  // The old version is still visible at the old snapshot.
  EXPECT_EQ(mt.Get("key", 1).value, "value");
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mt;
  EXPECT_EQ(mt.ApproximateMemoryUsage(), 0u);
  mt.Put("key", 1, std::string(1000, 'v'));
  EXPECT_GT(mt.ApproximateMemoryUsage(), 1000u);
}

TEST(MemTableTest, IterationInInternalOrder) {
  MemTable mt;
  mt.Put("b", 2, "b2");
  mt.Put("a", 1, "a1");
  mt.Put("b", 5, "b5");
  mt.Put("c", 3, "c3");
  MemTable::Iterator it(&mt);
  it.SeekToFirst();
  std::vector<std::pair<std::string, SequenceNumber>> seen;
  for (; it.Valid(); it.Next()) {
    seen.emplace_back(it.entry().key, it.entry().seq);
  }
  // Keys ascending; within "b", seq descending.
  const std::vector<std::pair<std::string, SequenceNumber>> expected = {
      {"a", 1}, {"b", 5}, {"b", 2}, {"c", 3}};
  EXPECT_EQ(seen, expected);
}

TEST(MemTableTest, PrefixKeysDistinct) {
  MemTable mt;
  mt.Put("ab", 1, "x");
  mt.Put("abc", 2, "y");
  EXPECT_EQ(mt.Get("ab").value, "x");
  EXPECT_EQ(mt.Get("abc").value, "y");
  EXPECT_FALSE(mt.Get("a").found);
}

}  // namespace
}  // namespace libra::lsm
