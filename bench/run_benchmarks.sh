#!/usr/bin/env bash
# Builds the microbenchmarks in Release mode and writes the results as
# google-benchmark JSON to BENCH_micro.json at the repository root.
#
# Usage:
#   bench/run_benchmarks.sh            # full run (default min_time)
#   BENCH_MIN_TIME=0.05s bench/run_benchmarks.sh   # quick smoke run
#   BENCH_OUT=path.json bench/run_benchmarks.sh    # alternate output path
#   BENCH_BUILD_DIR=dir bench/run_benchmarks.sh    # alternate build tree
#                                                  # (default: build-bench/)
#
# BENCH_MIN_TIME is passed to --benchmark_min_time verbatim; older
# google-benchmark versions want a plain double ("0.05"), newer ones also
# accept a duration suffix ("0.05s").
#
# Compare two runs (e.g. before/after a perf change) with
# bench/compare_benchmarks.py, which fails above a fractional real_time
# threshold; the committed BENCH_micro.json is the reference baseline.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BENCH_BUILD_DIR:-${REPO_ROOT}/build-bench}"
OUT="${BENCH_OUT:-${REPO_ROOT}/BENCH_micro.json}"
MIN_TIME="${BENCH_MIN_TIME:-}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" --target micro_benchmarks -j"$(nproc)"

ARGS=(--benchmark_format=json --benchmark_out="${OUT}" --benchmark_out_format=json)
if [[ -n "${MIN_TIME}" ]]; then
  ARGS+=(--benchmark_min_time="${MIN_TIME}")
fi

"${BUILD_DIR}/bench/micro_benchmarks" "${ARGS[@]}"
echo "wrote ${OUT}"
