file(REMOVE_RECURSE
  "CMakeFiles/libra_ssd.dir/calibration.cc.o"
  "CMakeFiles/libra_ssd.dir/calibration.cc.o.d"
  "CMakeFiles/libra_ssd.dir/device.cc.o"
  "CMakeFiles/libra_ssd.dir/device.cc.o.d"
  "CMakeFiles/libra_ssd.dir/ftl.cc.o"
  "CMakeFiles/libra_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/libra_ssd.dir/profile.cc.o"
  "CMakeFiles/libra_ssd.dir/profile.cc.o.d"
  "liblibra_ssd.a"
  "liblibra_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
