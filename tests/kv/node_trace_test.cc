// Node-level tracing and monitoring: request spans (including coalesced-GET
// followers), full-stack VOP conservation through WAL group commit, flush
// and compaction fan-in, attribution-conformance verdicts, SLA tracking,
// and the stats-JSON surface for all of it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kv/node_stats.h"
#include "src/kv/storage_node.h"
#include "src/obs/json.h"
#include "src/obs/span.h"
#include "src/workload/workload.h"

namespace libra::kv {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;
using iosched::TenantId;

ssd::CalibrationTable NodeTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050,
                      1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000,
                       610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

NodeOptions TraceOptions() {
  NodeOptions opt;
  opt.calibration = NodeTable();
  opt.lsm_options.write_buffer_bytes = 32 * 1024;
  opt.lsm_options.target_file_bytes = 32 * 1024;
  opt.lsm_options.l0_compaction_trigger = 2;
  opt.lsm_options.max_bytes_level1 = 64 * 1024;
  opt.lsm_options.wal_group_commit = true;  // WAL shares in the mix
  opt.prefill_bytes = 64 * kMiB;
  opt.scheduler_options.span_capacity = 1 << 14;
  return opt;
}

struct NodeRig {
  sim::EventLoop loop;
  StorageNode node;

  explicit NodeRig(NodeOptions opt = TraceOptions()) : node(loop, opt) {}

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

std::string Val(int i) { return std::string(700, 'a' + (i % 26)); }

// TaskGroup-spawned coroutines are free functions with by-value params
// (DESIGN.md §4): a GET that expects success, used by the coalescing test.
sim::Task<void> GetExpectOk(StorageNode* node, TenantId tenant,
                            std::string key) {
  const auto r = co_await node->Get(tenant, key);
  EXPECT_TRUE(r.status().ok());
}

// Two concurrent writers plus a reader: churn that flushes, compacts, and
// group-commits WAL batches across both tenants.
sim::Task<void> Churn(StorageNode* node, TenantId tenant, int n) {
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        (co_await node->Put(tenant, "k" + std::to_string(i % 30), Val(i)))
            .ok());
    if (i % 4 == 0) {
      (void)co_await node->Get(tenant, "k" + std::to_string(i % 30));
    }
  }
}

TEST(NodeTraceTest, RequestSpansRecordedPerAppRequest) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.node.Put(1, "k", "v")).ok());
    (void)co_await rig.node.Get(1, "k");
  }());

  int puts = 0, gets = 0;
  for (const obs::SpanRecord& s : rig.node.scheduler().spans()->Spans()) {
    if (s.kind != obs::SpanKind::kRequest) {
      continue;
    }
    if (s.app == static_cast<uint8_t>(AppRequest::kPut)) {
      ++puts;
    } else if (s.app == static_cast<uint8_t>(AppRequest::kGet)) {
      ++gets;
    }
    EXPECT_EQ(s.tenant, 1u);
    EXPECT_GE(s.end_ns, s.start_ns);
  }
  EXPECT_EQ(puts, 1);
  EXPECT_EQ(gets, 1);
}

TEST(NodeTraceTest, CoalescedFollowerSpanLinksLeader) {
  NodeOptions opt = TraceOptions();
  opt.enable_read_coalescing = true;
  NodeRig rig(opt);
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.node.Put(1, "hot", std::string(4096, 'x'))).ok());
    // Overflow the write buffer so "hot" is served from an SSTable — a
    // memtable hit completes without suspending and leaves nothing to ride.
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(
          (co_await rig.node.Put(1, "fill" + std::to_string(i), Val(i))).ok());
    }
    co_await rig.node.partition(1)->WaitIdle();
    // Two concurrent GETs of the same key: the second rides the first.
    sim::TaskGroup group(rig.loop);
    for (int i = 0; i < 2; ++i) {
      group.Spawn(GetExpectOk(&rig.node, 1, "hot"));
    }
    co_await group.Join();
  }());

  ASSERT_GT(rig.node.coalesced_gets(), 0u);
  int followers = 0;
  for (const obs::SpanRecord& s : rig.node.scheduler().spans()->Spans()) {
    if (s.kind == obs::SpanKind::kCoalescedGet) {
      ++followers;
      EXPECT_GT(s.links.total, 0u) << "follower span must link its leader";
    }
  }
  EXPECT_GT(followers, 0);
}

// Full-stack conservation: after churn that exercises WAL group commit
// (shared IOPs), flushes and multi-table compactions, the span-attributed
// VOP total still reproduces the ResourceTracker's per-tenant sum exactly.
TEST(NodeTraceTest, AttributionConservesVopsThroughFullStack) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
  ASSERT_TRUE(rig.node.AddTenant(2, {500.0, 500.0}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    sim::TaskGroup group(rig.loop);
    group.Spawn(Churn(&rig.node, 1, 150));
    group.Spawn(Churn(&rig.node, 2, 150));
    co_await group.Join();
    co_await rig.node.partition(1)->WaitIdle();
    co_await rig.node.partition(2)->WaitIdle();
  }());

  // The churn must actually have exercised the background paths.
  EXPECT_GT(rig.node.partition(1)->stats().compactions, 0u);
  EXPECT_GT(rig.node.partition(1)->stats().wal_batches, 0u);
  for (TenantId t : {TenantId{1}, TenantId{2}}) {
    const obs::AttributionMatrix* m =
        rig.node.scheduler().spans()->attribution().Of(t);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->total_vops, rig.node.tracker().Stats(t).vops)
        << "tenant " << t;
    // And the request denominators are populated.
    EXPECT_GT(m->norm_requests[static_cast<int>(AppRequest::kPut)], 0.0);
    EXPECT_GT(m->norm_requests[static_cast<int>(AppRequest::kGet)], 0.0);
  }
}

// SCANs carry their own attribution column, and the per-class matrix still
// conserves VOPs bit-for-bit against the tracker under both compaction
// policies. A scan-mixed churn, one tenant per policy.
sim::Task<void> ScanChurn(StorageNode* node, TenantId tenant, int n) {
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        (co_await node->Put(tenant, "k" + std::to_string(i % 40), Val(i)))
            .ok());
    if (i % 3 == 0) {
      const auto r = co_await node->Scan(tenant, "k", std::string(), 8);
      EXPECT_TRUE(r.status.ok());
      EXPECT_GT(r.entries.size(), 0u);
    }
    if (i % 5 == 0) {
      (void)co_await node->Get(tenant, "k" + std::to_string(i % 40));
    }
  }
}

TEST(NodeTraceTest, ScanAttributionConservesVopsUnderBothPolicies) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0, 200.0}, {},
                                 lsm::CompactionPolicy::kLeveled)
                  .ok());
  ASSERT_TRUE(rig.node.AddTenant(2, {500.0, 500.0, 200.0}, {},
                                 lsm::CompactionPolicy::kSizeTiered)
                  .ok());
  rig.RunTask([&]() -> sim::Task<void> {
    sim::TaskGroup group(rig.loop);
    group.Spawn(ScanChurn(&rig.node, 1, 400));
    group.Spawn(ScanChurn(&rig.node, 2, 400));
    co_await group.Join();
    co_await rig.node.partition(1)->WaitIdle();
    co_await rig.node.partition(2)->WaitIdle();
  }());

  EXPECT_GT(rig.node.partition(1)->stats().scans, 0u);
  EXPECT_GT(rig.node.partition(2)->stats().scans, 0u);
  // The size-tiered tenant's churn must actually have exercised its picker.
  EXPECT_GT(rig.node.partition(2)->stats().compactions, 0u);
  for (TenantId t : {TenantId{1}, TenantId{2}}) {
    const obs::AttributionMatrix* m =
        rig.node.scheduler().spans()->attribution().Of(t);
    ASSERT_NE(m, nullptr);
    // Bit-for-bit conservation: per-class attribution sums to exactly the
    // tracker's admitted VOPs, scans included.
    EXPECT_EQ(m->total_vops, rig.node.tracker().Stats(t).vops)
        << "tenant " << t;
    EXPECT_GT(m->norm_requests[static_cast<int>(AppRequest::kScan)], 0.0)
        << "tenant " << t;
    EXPECT_GT(m->norm_requests[static_cast<int>(AppRequest::kGet)], 0.0);
    EXPECT_GT(m->norm_requests[static_cast<int>(AppRequest::kPut)], 0.0);
  }
}

// Conformance verdicts: a profile measured from an identical run conforms;
// one that hides write amplification is flagged.
TEST(NodeTraceTest, ConformanceVerdictsInSnapshot) {
  // Calibration: measure tenant 1's q̂ with no declaration.
  obs::DeclaredAttribution honest;
  {
    NodeRig rig;
    ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
    rig.RunTask([&]() -> sim::Task<void> {
      co_await Churn(&rig.node, 1, 150);
      co_await rig.node.partition(1)->WaitIdle();
    }());
    const obs::AttributionMatrix* m =
        rig.node.scheduler().spans()->attribution().Of(1);
    ASSERT_NE(m, nullptr);
    honest.declared = true;
    for (int a = 0; a < obs::kAttrApps; ++a) {
      for (int i = 0; i < obs::kAttrInternal; ++i) {
        honest.at(a, i) = m->Q(a, i);
      }
    }
  }
  obs::DeclaredAttribution lying = honest;
  lying.at(static_cast<int>(AppRequest::kPut),
           static_cast<int>(InternalOp::kFlush)) = 0.0;
  lying.at(static_cast<int>(AppRequest::kPut),
           static_cast<int>(InternalOp::kCompact)) = 0.0;

  // Identical run, profiles declared: tenant 1 honest, tenant 2 lying gets
  // the honest tenant's actual workload too (same churn, same seed).
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}, honest).ok());
  ASSERT_TRUE(rig.node.AddTenant(2, {500.0, 500.0}, lying).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    sim::TaskGroup group(rig.loop);
    group.Spawn(Churn(&rig.node, 1, 150));
    group.Spawn(Churn(&rig.node, 2, 150));
    co_await group.Join();
    co_await rig.node.partition(1)->WaitIdle();
    co_await rig.node.partition(2)->WaitIdle();
  }());

  const NodeStats stats = rig.node.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 2u);
  const TenantSnapshot& t1 = stats.tenants[0];
  const TenantSnapshot& t2 = stats.tenants[1];
  EXPECT_TRUE(t1.attribution.observed);
  EXPECT_TRUE(t1.attribution.declared.declared);
  EXPECT_TRUE(t1.attribution.conformant)
      << "divergence " << t1.attribution.report.divergence;
  EXPECT_FALSE(t2.attribution.conformant);
  EXPECT_GT(t2.attribution.report.divergence,
            t1.attribution.report.divergence);
}

TEST(NodeTraceTest, SlaTrackedOncePolicyRuns) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
  rig.node.Start();
  sim::Detach(Churn(&rig.node, 1, 2000));
  // The policy's interval timer re-arms forever: bound the run past a few
  // 1s provisioning intervals, then stop and drain.
  rig.loop.RunUntil(3 * kSecond + 500 * kMillisecond);
  rig.node.Stop();
  rig.loop.Run();

  const NodeStats stats = rig.node.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_TRUE(stats.tenants[0].sla.tracked);
  EXPECT_GT(stats.tenants[0].sla.sla.intervals, 0u);
  // Audit entries past the first carry the achieved rate.
  ASSERT_GT(stats.audit.size(), 1u);
  bool any_achieved = false;
  for (const obs::AuditRecord& rec : stats.audit) {
    for (const obs::AuditTenantEntry& e : rec.tenants) {
      if (e.achieved_vops > 0.0) {
        any_achieved = true;
      }
    }
  }
  EXPECT_TRUE(any_achieved);
}

TEST(NodeTraceTest, StatsJsonCarriesTracingSections) {
  NodeRig rig;
  ASSERT_TRUE(rig.node.AddTenant(1, {500.0, 500.0}).ok());
  rig.RunTask([&]() -> sim::Task<void> {
    co_await Churn(&rig.node, 1, 50);
    co_await rig.node.partition(1)->WaitIdle();
  }());

  const std::string json = NodeStatsToJson(rig.node.Snapshot());
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::JsonParse(json, &doc, &err)) << err;

  const obs::JsonValue* spans = doc.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_TRUE(spans->Find("enabled")->bool_value);
  EXPECT_GT(spans->Find("recorded")->number, 0.0);
  const obs::JsonValue* ring = doc.Find("trace_ring");
  ASSERT_NE(ring, nullptr);
  EXPECT_FALSE(ring->Find("enabled")->bool_value);
  ASSERT_NE(ring->Find("dropped"), nullptr);

  const obs::JsonValue* tenants = doc.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->array.size(), 1u);
  const obs::JsonValue& t = tenants->array[0];
  const obs::JsonValue* attr = t.Find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_TRUE(attr->Find("observed")->bool_value);
  ASSERT_NE(attr->Find("q"), nullptr);
  // GET/PUT/SCAN x kAttrInternal internals (direct, FLUSH, COMPACT, REPL).
  EXPECT_EQ(attr->Find("q")->array.size(),
            static_cast<size_t>(obs::kAttrApps - 1) *
                static_cast<size_t>(obs::kAttrInternal));
  const obs::JsonValue* sla = t.Find("sla");
  ASSERT_NE(sla, nullptr);
  ASSERT_NE(sla->Find("violation_rate"), nullptr);
}

}  // namespace
}  // namespace libra::kv
