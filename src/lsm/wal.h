// Write-ahead log (paper §3.1): every PUT/DELETE is appended and synced
// before it is acknowledged, charging the tenant's direct PUT IO. The log
// is size-limited; when it fills, the memtable it protects is sealed and
// FLUSHed, and the log is deleted.
//
// Record frame: [payload_len u32][crc u32][payload], payload being the
// standard record encoding. Recovery replays records until truncation or a
// CRC mismatch (a torn tail write).
//
// Group commit (off by default — the paper's prototype syncs one IOP per
// PUT): appends that arrive while a sync is in flight queue up; the first
// queued writer becomes the batch leader and issues one shared device
// append for the whole queue (bounded by bytes/records), acknowledging
// every member when it lands. Records stay individually CRC-framed, so a
// batch torn mid-write replays as an intact prefix — acknowledged records
// are always replayable because acks only happen after the batch is
// durable. The shared append carries a per-record cost manifest so each
// rider is charged its byte-proportional share of the merged IOP.

#ifndef LIBRA_SRC_LSM_WAL_H_
#define LIBRA_SRC_LSM_WAL_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/lsm/format.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace libra::lsm {

struct WalOptions {
  bool group_commit = false;  // leader/follower sync batching
  // Batch bounds. A batch always accepts its first record even when that
  // record alone exceeds the byte cap.
  uint32_t group_max_bytes = 256 * 1024;
  uint32_t group_max_records = 64;
};

// Group-commit counters, owned by the caller (LsmDb) so they survive WAL
// rotation at memtable seal.
struct WalCounters {
  uint64_t appends = 0;          // records appended (any path)
  uint64_t batches = 0;          // device appends issued by leaders
  uint64_t batched_records = 0;  // records that rode those batches
  uint64_t max_batch_records = 0;
};

class WriteAheadLog {
 public:
  WriteAheadLog(fs::SimFs& fs, std::string filename, WalOptions options = {},
                WalCounters* counters = nullptr);

  // Creates (or truncates) the log file.
  Status Open();

  // Appends one record and waits until it is durable. Concurrent appends
  // from different client tasks are safe; with group commit they coalesce
  // into shared device writes, otherwise their IO overlaps.
  sim::Task<Status> Append(const iosched::IoTag& tag, std::string_view key,
                           SequenceNumber seq, ValueType type,
                           std::string_view value);

  // Replays all intact records in file order. Stops at corruption (torn
  // tail) without error — that is the crash-recovery contract.
  Status Replay(const std::function<void(const Record&)>& fn) const;

  // Deletes the log file (after a successful FLUSH).
  Status Remove();

  // Resolves once no batched append is in flight. A group-commit leader
  // suspended in its batch loop still touches the queue when the shared
  // write lands, so a rotated log must be drained before it is destroyed.
  sim::Task<void> WaitIdle();

  uint64_t SizeBytes() const;
  const std::string& filename() const { return filename_; }

 private:
  // One queued record awaiting a group commit.
  struct Pending {
    std::string frame;
    iosched::IoTag tag;
    sim::OneShot<Status>* done;
  };

  // Group-commit path: enqueue the frame; lead the batch loop if no sync
  // is in flight, else wait to be committed by the current leader.
  sim::Task<Status> AppendBatched(iosched::IoTag tag, std::string frame);

  struct IdleAwaiter {
    WriteAheadLog* wal;
    bool await_ready() const noexcept { return wal->inflight_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!wal->idle_waiter_ && "one WaitIdle waiter at a time");
      wal->idle_waiter_ = h;
    }
    void await_resume() const noexcept {}
  };

  fs::SimFs& fs_;
  std::string filename_;
  WalOptions options_;
  WalCounters* counters_;  // may be nullptr
  fs::FileId file_ = fs::kInvalidFile;
  std::deque<Pending> pending_;
  bool sync_inflight_ = false;
  int inflight_ = 0;  // batched appends between enqueue and ack
  std::coroutine_handle<> idle_waiter_;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_WAL_H_
