file(REMOVE_RECURSE
  "CMakeFiles/libra_metrics.dir/meter.cc.o"
  "CMakeFiles/libra_metrics.dir/meter.cc.o.d"
  "CMakeFiles/libra_metrics.dir/table.cc.o"
  "CMakeFiles/libra_metrics.dir/table.cc.o.d"
  "liblibra_metrics.a"
  "liblibra_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
