// Skiplist used by the memtable: ordered insertion and lookup in O(log n)
// expected time. Header-only template, deterministic given its seed.
//
// Single-threaded by construction (the coroutine runtime interleaves
// cooperatively and memtable operations never suspend), so no atomics.

#ifndef LIBRA_SRC_LSM_SKIPLIST_H_
#define LIBRA_SRC_LSM_SKIPLIST_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace libra::lsm {

// Comparator returns <0/0/>0. Keys are stored by value.
template <typename Key, typename Comparator>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  explicit SkipList(Comparator cmp, uint64_t seed = 0xDEADBEEF)
      : cmp_(cmp), rng_state_(seed | 1), head_(NewNode(Key(), kMaxHeight)) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      n->~Node();
      ::operator delete(n);
      n = next;
    }
  }

  // Inserts `key`; duplicate keys (comparator == 0) are rejected (callers
  // make keys unique via the sequence number).
  bool Insert(const Key& key) {
    std::array<Node*, kMaxHeight> prev;
    Node* x = FindGreaterOrEqual(key, &prev);
    if (x != nullptr && cmp_(x->key, key) == 0) {
      return false;
    }
    const int height = RandomHeight();
    if (height > height_) {
      for (int i = height_; i < height; ++i) {
        prev[i] = head_;
      }
      height_ = height;
    }
    Node* node = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    ++size_;
    return true;
  }

  bool Contains(const Key& key) const {
    const Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && cmp_(x->key, key) == 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Forward iterator over keys in comparator order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    void SeekToFirst() { node_ = list_->head_->next[0]; }
    // Positions at the first key >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    int height;
    Node* next[1];  // over-allocated to `height`
  };

  static Node* NewNode(const Key& key, int height) {
    void* mem = ::operator new(sizeof(Node) + sizeof(Node*) * (height - 1));
    Node* n = new (mem) Node{key, height, {nullptr}};
    for (int i = 0; i < height; ++i) {
      n->next[i] = nullptr;
    }
    return n;
  }

  int RandomHeight() {
    // xorshift64*; P(height = h) = 4^-(h-1).
    int height = 1;
    while (height < kMaxHeight) {
      rng_state_ ^= rng_state_ >> 12;
      rng_state_ ^= rng_state_ << 25;
      rng_state_ ^= rng_state_ >> 27;
      if ((rng_state_ * 0x2545F4914F6CDD1DULL >> 62) != 0) {
        break;
      }
      ++height;
    }
    return height;
  }

  // First node >= key; fills prev[] with the rightmost nodes < key per
  // level when non-null.
  Node* FindGreaterOrEqual(const Key& key,
                           std::array<Node*, kMaxHeight>* prev) const {
    Node* x = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = x->next[level];
      if (next != nullptr && cmp_(next->key, key) < 0) {
        x = next;
        continue;
      }
      if (prev != nullptr) {
        (*prev)[level] = x;
      }
      if (level == 0) {
        return next;
      }
      --level;
    }
  }

  Comparator cmp_;
  uint64_t rng_state_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;

  friend class Iterator;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_SKIPLIST_H_
