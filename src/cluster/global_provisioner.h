// The cluster's Pisces-style global provisioner.
//
// Once per interval it measures each tenant's per-node demand (deltas of the
// nodes' normalized-request counters, EWMA-smoothed), re-splits the tenant's
// global reservation across its hosting nodes in proportion to that demand
// (never below a minimum share, always summing exactly to the global rate),
// and pushes the new local reservations to the nodes — but only when the
// split moved beyond a hysteresis band, so allocations do not thrash on
// demand noise. It also watches each node's provisioning audit log: a node
// whose local reservations stay overbooked for several consecutive
// intervals sheds load via Cluster::MigrateShard (the paper's
// partition-migration escape hatch, §4.1).

#ifndef LIBRA_SRC_CLUSTER_GLOBAL_PROVISIONER_H_
#define LIBRA_SRC_CLUSTER_GLOBAL_PROVISIONER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/ewma.h"
#include "src/common/units.h"
#include "src/sim/event_loop.h"

namespace libra::cluster {

class GlobalProvisioner {
 public:
  GlobalProvisioner(sim::EventLoop& loop, Cluster& cluster,
                    GlobalProvisionerOptions options);
  ~GlobalProvisioner();

  GlobalProvisioner(const GlobalProvisioner&) = delete;
  GlobalProvisioner& operator=(const GlobalProvisioner&) = delete;

  // Periodic re-splitting. Like ResourcePolicy, a started provisioner keeps
  // one timer pending; drive the loop with RunUntil/RunFor and Stop()
  // before a draining Run().
  void Start();
  void Stop();

  // One provisioning step immediately (also used by tests).
  void RunIntervalStep();

  // Splits applied (hysteresis-passing re-provisionings) and migrations
  // launched since construction.
  uint64_t splits_applied() const { return splits_applied_; }
  uint64_t migrations_started() const { return migrations_started_; }

  // Smoothed demand share of `node` within `tenant`'s global demand
  // (normalized requests; 0 when unobserved).
  double DemandShare(iosched::TenantId tenant, int node) const;

 private:
  struct NodeDemand {
    // Counter snapshots at the previous step and smoothed normalized
    // request rates on this node, one per app-request class (indexed by
    // AppRequest — the kNone slot stays zero).
    double last_total[iosched::kNumAppRequests] = {};
    Ewma rate[iosched::kNumAppRequests];
    explicit NodeDemand(double alpha) {
      for (Ewma& e : rate) {
        e = Ewma(alpha);
      }
    }
    // Smoothed all-class demand (normalized requests/s).
    double TotalRate() const {
      double sum = 0.0;
      for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests;
           ++a) {
        sum += rate[a].Value();
      }
      return sum;
    }
  };

  void UpdateDemand(iosched::TenantId tenant, int node_index);
  void ResplitTenant(iosched::TenantId tenant);
  void CheckOverbooking();

  sim::EventLoop& loop_;
  Cluster& cluster_;
  GlobalProvisionerOptions options_;
  // Demand state keyed by (tenant << 32 | node).
  std::map<uint64_t, NodeDemand> demand_;
  // Consecutive overbooked intervals per node.
  std::vector<int> overbooked_streak_;
  // Audit records already inspected per node (total_appended watermark).
  std::vector<uint64_t> audit_seen_;
  sim::EventLoop::EventId pending_event_ = 0;
  bool running_ = false;
  SimTime last_step_time_ = -1;  // demand deltas need the elapsed interval
  uint64_t splits_applied_ = 0;
  uint64_t migrations_started_ = 0;
};

}  // namespace libra::cluster

#endif  // LIBRA_SRC_CLUSTER_GLOBAL_PROVISIONER_H_
