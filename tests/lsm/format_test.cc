#include "src/lsm/format.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace libra::lsm {
namespace {

TEST(FormatTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, UINT32_MAX);
  EXPECT_EQ(buf.size(), 12u);
  EXPECT_EQ(GetFixed32(buf, 0), 0u);
  EXPECT_EQ(GetFixed32(buf, 4), 0xDEADBEEFu);
  EXPECT_EQ(GetFixed32(buf, 8), UINT32_MAX);
}

TEST(FormatTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(GetFixed64(buf, 0), 0x0123456789ABCDEFULL);
}

TEST(FormatTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  size_t off = 0;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &s));
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_FALSE(GetLengthPrefixed(buf, &off, &s));  // exhausted
}

TEST(FormatTest, LengthPrefixedRejectsTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  size_t off = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &off, &s));
}

TEST(FormatTest, Crc32KnownVector) {
  // CRC-32C ("Castagnoli") of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32(""), 0u);
}

// RFC 3720 (iSCSI) CRC32C test vectors plus short-tail cases, pinned on
// every implementation path the host has: the slice-by-8 software path
// always, and the hardware (SSE4.2 / ARMv8 CRC) path when supported —
// whichever the public Crc32 dispatches to must agree byte-for-byte.
TEST(FormatTest, Crc32GoldenVectorsOnAllPaths) {
  struct Vector {
    std::string data;
    uint32_t crc;
  };
  std::string ascending(32, '\0');
  std::string descending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    ascending[i] = static_cast<char>(i);
    descending[i] = static_cast<char>(31 - i);
  }
  const Vector vectors[] = {
      {"", 0x00000000u},
      {"a", 0xC1D04330u},
      {"123456789", 0xE3069283u},
      {std::string(32, '\0'), 0x8A9136AAu},
      {std::string(32, '\xff'), 0x62A8AB43u},
      {ascending, 0x46DD794Eu},
      {descending, 0x113FDB5Cu},
  };
  for (const Vector& v : vectors) {
    EXPECT_EQ(Crc32(v.data), v.crc) << "dispatch, len=" << v.data.size();
    EXPECT_EQ(internal::Crc32Software(v.data), v.crc)
        << "software, len=" << v.data.size();
    if (internal::HasHardwareCrc32()) {
      EXPECT_EQ(internal::Crc32Hardware(v.data), v.crc)
          << "hardware, len=" << v.data.size();
    }
  }
}

// Unaligned starts and every tail length 0..8 — exercises the 8-byte main
// loop plus the 4/2/1-byte tail handling of both implementations.
TEST(FormatTest, Crc32PathsAgreeOnArbitraryLengths) {
  std::string data(4096 + 9, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>((i * 131) ^ (i >> 3));
  }
  for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 63u, 64u, 4096u, 4105u}) {
    const std::string_view slice(data.data(), len);
    const uint32_t sw = internal::Crc32Software(slice);
    EXPECT_EQ(Crc32(slice), sw) << "len=" << len;
    if (internal::HasHardwareCrc32()) {
      EXPECT_EQ(internal::Crc32Hardware(slice), sw) << "len=" << len;
    }
  }
}

TEST(FormatTest, Crc32DetectsCorruption) {
  std::string a = "some payload";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(Crc32(a), Crc32(b));
}

TEST(FormatTest, InternalKeyOrdering) {
  // User key ascending.
  EXPECT_LT(CompareInternalKey("a", 5, "b", 5), 0);
  EXPECT_GT(CompareInternalKey("b", 5, "a", 5), 0);
  // Same key: higher sequence first.
  EXPECT_LT(CompareInternalKey("a", 9, "a", 5), 0);
  EXPECT_GT(CompareInternalKey("a", 1, "a", 5), 0);
  EXPECT_EQ(CompareInternalKey("a", 5, "a", 5), 0);
}

TEST(FormatTest, RecordRoundTrip) {
  std::string buf;
  EncodeRecord(&buf, "key1", 42, ValueType::kPut, "value1");
  EncodeRecord(&buf, "key2", 43, ValueType::kDelete, "");
  size_t off = 0;
  Record r;
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, "key1");
  EXPECT_EQ(r.value, "value1");
  EXPECT_EQ(r.seq, 42u);
  EXPECT_EQ(r.type, ValueType::kPut);
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, "key2");
  EXPECT_EQ(r.type, ValueType::kDelete);
  EXPECT_FALSE(DecodeRecord(buf, &off, &r));
}

TEST(FormatTest, RecordDecodeRejectsTruncation) {
  std::string buf;
  EncodeRecord(&buf, "key", 1, ValueType::kPut, "value");
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    size_t off = 0;
    Record r;
    EXPECT_FALSE(DecodeRecord(std::string_view(buf).substr(0, cut), &off, &r))
        << "cut at " << cut;
  }
}

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("key" + std::to_string(i * 37));
  }
  std::string filter;
  BloomFilterBuild(keys, 10, &filter);
  for (const std::string& k : keys) {
    EXPECT_TRUE(BloomFilterMayContain(filter, k)) << k;
  }
}

TEST(BloomFilterTest, EmptyKeySetStillWellFormed) {
  std::string filter;
  BloomFilterBuild({}, 10, &filter);
  // 64-bit minimum array plus the k byte.
  EXPECT_EQ(filter.size(), 9u);
  EXPECT_FALSE(BloomFilterMayContain(filter, "anything"));
}

TEST(BloomFilterTest, AppendsToExistingBuffer) {
  std::string buf = "prefix";
  BloomFilterBuild({"a", "b"}, 10, &buf);
  EXPECT_EQ(buf.substr(0, 6), "prefix");
  EXPECT_TRUE(BloomFilterMayContain(std::string_view(buf).substr(6), "a"));
}

TEST(BloomFilterTest, DegenerateFiltersAreConservative) {
  // Undecodable filters must say "maybe" — never drop a real key.
  EXPECT_TRUE(BloomFilterMayContain("", "k"));
  EXPECT_TRUE(BloomFilterMayContain("x", "k"));
  // Reserved k encodings (> 30) pass everything through.
  std::string reserved(10, '\0');
  reserved.back() = static_cast<char>(31);
  EXPECT_TRUE(BloomFilterMayContain(reserved, "k"));
}

TEST(BloomFilterTest, FalsePositiveRateNearTheoretical) {
  // At 10 bits/key the theoretical FPR is ~0.82%; require < 2x that
  // (deterministic: the hash is seedless, the key sets are fixed).
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back("member" + std::to_string(i));
  }
  std::string filter;
  BloomFilterBuild(keys, 10, &filter);
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (BloomFilterMayContain(filter, "absent" + std::to_string(i))) {
      ++false_positives;
    }
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 2 * 0.0082) << "fpr=" << fpr;
  EXPECT_GT(false_positives, 0);  // a bloom filter is not a perfect set
}

TEST(BloomFilterTest, BinaryKeysSupported) {
  const std::string k1("\x00\x01\xFF", 3);
  const std::string k2("\x00\x01\xFE", 3);
  std::string filter;
  BloomFilterBuild({k1}, 10, &filter);
  EXPECT_TRUE(BloomFilterMayContain(filter, k1));
  // Not guaranteed in general, but pinned here: sibling binary key misses.
  EXPECT_FALSE(BloomFilterMayContain(filter, k2));
}

TEST(FormatTest, BinaryKeysAndValuesSurvive) {
  std::string key("\x00\x01\xFF", 3);
  std::string value("\xDE\xAD\x00\xBE\xEF", 5);
  std::string buf;
  EncodeRecord(&buf, key, 7, ValueType::kPut, value);
  size_t off = 0;
  Record r;
  ASSERT_TRUE(DecodeRecord(buf, &off, &r));
  EXPECT_EQ(r.key, key);
  EXPECT_EQ(r.value, value);
}

}  // namespace
}  // namespace libra::lsm
