file(REMOVE_RECURSE
  "CMakeFiles/libra_iosched.dir/capacity.cc.o"
  "CMakeFiles/libra_iosched.dir/capacity.cc.o.d"
  "CMakeFiles/libra_iosched.dir/cost_model.cc.o"
  "CMakeFiles/libra_iosched.dir/cost_model.cc.o.d"
  "CMakeFiles/libra_iosched.dir/resource_policy.cc.o"
  "CMakeFiles/libra_iosched.dir/resource_policy.cc.o.d"
  "CMakeFiles/libra_iosched.dir/resource_tracker.cc.o"
  "CMakeFiles/libra_iosched.dir/resource_tracker.cc.o.d"
  "CMakeFiles/libra_iosched.dir/scheduler.cc.o"
  "CMakeFiles/libra_iosched.dir/scheduler.cc.o.d"
  "liblibra_iosched.a"
  "liblibra_iosched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_iosched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
