// Multi-node cluster demo: the paper's two-tier story end to end.
//
// --nodes storage nodes (default 4) behind the Cluster API. Three tenants
// with global app-request reservations and deliberately skewed demand —
// tenant 1's keys are Zipf-hot, so a couple of shard slots (and therefore
// nodes) carry most of its load. The global provisioner re-splits each
// tenant's reservation toward the observed per-node demand; the demo then
// checks the contract the cluster layer makes:
//   1. every tenant's achieved global throughput meets its global
//      reservation after convergence,
//   2. an over-booked AddTenant is rejected up front with a descriptive
//      status,
//   3. a shard migration under live traffic completes without losing a key.
// The demo is one deterministic virtual-time simulation, so its output is
// identical for any --jobs value — and, with --rpc-latency-us set, for any
// --sim-threads value on the parallel epoch-barrier engine.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/cluster/global_provisioner.h"
#include "src/metrics/table.h"
#include "src/workload/cluster_workload.h"

namespace libra::bench {
namespace {

using cluster::Cluster;
using cluster::GlobalReservation;
using iosched::AppRequest;
using iosched::TenantId;

struct TenantSpec {
  TenantId tenant;
  GlobalReservation global;  // normalized (1KB) requests/s, cluster-wide
  double get_fraction;
  double zipf_theta;  // > 0: hot keys concentrate demand on a few shards
};

constexpr TenantSpec kTenants[] = {
    {1, {1200.0, 250.0}, 0.8, 0.99},  // skewed reader
    {2, {800.0, 200.0}, 0.5, 0.0},    // uniform mixed
    {3, {400.0, 300.0}, 0.3, 0.0},    // uniform write-lean
};

sim::Task<void> PreloadAll(
    std::vector<std::unique_ptr<workload::ClusterTenantWorkload>>* workloads) {
  for (auto& wl : *workloads) {
    co_await wl->Preload();
  }
}

sim::Task<void> RunExplicitMigration(Cluster* cluster, TenantId tenant,
                                     int slot, int to_node, Status* out) {
  *out = co_await cluster->MigrateShard(tenant, slot, to_node);
}

// Re-reads every stable (GET-range) object of `slot` and compares it to the
// value the preload provably wrote (MakeValue over the per-index size).
sim::Task<void> VerifySlot(workload::ClusterTenantWorkload* wl,
                           const cluster::ShardMap* map, int slot,
                           uint64_t* checked, uint64_t* lost) {
  for (uint64_t i = 0; i < wl->get_keys(); ++i) {
    const std::string key = wl->GetKey(i);
    if (map->SlotOfKey(key) != slot) {
      continue;
    }
    const Result<std::string> r = co_await wl->handle().Get(key);
    ++*checked;
    if (!r.ok() ||
        r.value() != workload::MakeValue(key, wl->GetObjectSize(i))) {
      ++*lost;
    }
  }
}

int RunDemo(const BenchArgs& args) {
  SimRig rig = MakeSimRig(args, args.nodes);
  sim::EventLoop& loop = rig.client();
  cluster::ClusterOptions copt;
  copt.num_nodes = args.nodes;
  copt.node_options = PrototypeNodeOptions();
  copt.provisioner.interval = 1 * kSecond;
  // Request-path batching on: WAL group commit (with fair VOP cost
  // splitting), singleflight GETs, slot-grouped MultiGet, and a bounded
  // table cache. The figure binaries keep the paper-faithful defaults;
  // the demo runs the batched configuration end to end.
  copt.batch_multiget = true;
  copt.node_options.enable_read_coalescing = true;
  copt.node_options.lsm_options.wal_group_commit = true;
  copt.node_options.lsm_options.table_cache_bytes = 256 * kKiB;
  std::unique_ptr<Cluster> cl_holder = MakeCluster(rig, copt);
  Cluster& cl = *cl_holder;

  Section(args, "Cluster demo: admission");
  std::vector<cluster::TenantHandle> handles;
  for (const TenantSpec& spec : kTenants) {
    Result<cluster::TenantHandle> h = cl.AddTenant(spec.tenant, spec.global);
    if (!h.ok()) {
      std::fprintf(stderr, "AddTenant(%u): %s\n", spec.tenant,
                   h.status().message().c_str());
      return 1;
    }
    handles.push_back(h.value());
  }
  // A reservation no node set could absorb: admission control must refuse
  // it up front (and say which node ran out of capacity).
  const Result<cluster::TenantHandle> refused =
      cl.AddTenant(99, GlobalReservation{4.0e6, 4.0e6});
  if (refused.ok()) {
    std::fprintf(stderr, "overbooked AddTenant was wrongly admitted\n");
    return 1;
  }
  std::printf("overbooked AddTenant(99) rejected: %s\n",
              refused.status().message().c_str());

  std::vector<std::unique_ptr<workload::ClusterTenantWorkload>> workloads;
  for (size_t i = 0; i < std::size(kTenants); ++i) {
    const TenantSpec& spec = kTenants[i];
    workload::KvWorkloadSpec w;
    w.get_fraction = spec.get_fraction;
    w.get_size = {4096.0, 1024.0};
    w.put_size = {1024.0, 256.0};
    w.live_bytes_target = (args.full ? 8ULL : 4ULL) * kMiB;
    w.zipf_theta = spec.zipf_theta;
    w.workers = 8;
    workloads.push_back(std::make_unique<workload::ClusterTenantWorkload>(
        loop, handles[i], w, 2000 + spec.tenant));
  }
  {
    sim::TaskGroup group(loop);
    group.Spawn(PreloadAll(&workloads));
    rig.Run();
  }

  const SimTime t0 = loop.Now();
  const SimTime t_warm = t0 + (args.full ? 20 : 10) * kSecond;
  const SimTime t_mid = t_warm + (args.full ? 10 : 5) * kSecond;
  const SimTime t_end = t_mid + (args.full ? 30 : 15) * kSecond;

  cl.Start();

  // Achieved global rates over the post-convergence window [t_warm, t_end).
  constexpr size_t kN = std::size(kTenants);
  double gets0[kN]{}, puts0[kN]{}, gets1[kN]{}, puts1[kN]{};
  auto snap = [&](double* g, double* p) {
    for (size_t i = 0; i < kN; ++i) {
      g[i] = cl.GlobalNormalizedTotal(kTenants[i].tenant, AppRequest::kGet);
      p[i] = cl.GlobalNormalizedTotal(kTenants[i].tenant, AppRequest::kPut);
    }
  };
  // Mid-run tracker reads need quiesced node loops: barrier hooks in
  // parallel mode, plain events in serial mode.
  rig.AtTime(t_warm, [&] { snap(gets0, puts0); });
  rig.AtTime(t_end, [&] { snap(gets1, puts1); });

  // Mid-run shard migration under live traffic: move the skewed tenant's
  // slot 0 one node over. Gated requests suspend, nothing is lost.
  const int mig_slot = 0;
  const int mig_from = cl.shard_map().HomeOf(kTenants[0].tenant, mig_slot);
  const int mig_to = (mig_from + 1) % cl.num_nodes();
  Status mig_status = Status::Internal("migration never ran");
  loop.ScheduleAt(t_mid, [&] {
    sim::Detach(RunExplicitMigration(&cl, kTenants[0].tenant, mig_slot,
                                     mig_to, &mig_status));
  });

  {
    sim::TaskGroup group(loop);
    for (auto& wl : workloads) {
      wl->Start(group, t_end);
    }
    rig.RunUntil(t_end + kSecond);
    cl.Stop();
    rig.Run();
  }

  Section(args, "Cluster demo: global reservations");
  metrics::Table table({"tenant", "GET_res/s", "GET_ach/s", "PUT_res/s",
                        "PUT_ach/s", "met"});
  const double secs = ToSeconds(t_end - t_warm);
  bool all_met = true;
  for (size_t i = 0; i < kN; ++i) {
    const double get_rate = (gets1[i] - gets0[i]) / secs;
    const double put_rate = (puts1[i] - puts0[i]) / secs;
    const bool met = get_rate >= kTenants[i].global.get_rps &&
                     put_rate >= kTenants[i].global.put_rps;
    all_met = all_met && met;
    table.AddRow({std::to_string(kTenants[i].tenant),
                  metrics::FormatDouble(kTenants[i].global.get_rps, 0),
                  metrics::FormatDouble(get_rate, 0),
                  metrics::FormatDouble(kTenants[i].global.put_rps, 0),
                  metrics::FormatDouble(put_rate, 0), met ? "yes" : "NO"});
  }
  Emit(args, table);

  Section(args, "Cluster demo: rebalancing");
  const auto& prov = cl.provisioner();
  std::printf("splits applied: %llu, migrations started: %llu\n",
              static_cast<unsigned long long>(prov.splits_applied()),
              static_cast<unsigned long long>(prov.migrations_started()));
  if (!mig_status.ok()) {
    std::fprintf(stderr, "explicit migration failed: %s\n",
                 mig_status.message().c_str());
    return 1;
  }
  uint64_t keys_moved = 0;
  for (const auto& rec : cl.rebalance_log().records()) {
    if (rec.kind == obs::RebalanceRecord::Kind::kMigration &&
        rec.tenant == kTenants[0].tenant && rec.slot == mig_slot) {
      keys_moved = rec.keys_moved;
    }
  }
  std::printf("migrated tenant %u slot %d: node %d -> node %d (%llu keys)\n",
              kTenants[0].tenant, mig_slot, mig_from, mig_to,
              static_cast<unsigned long long>(keys_moved));

  // No key loss: every stable object of the migrated slot reads back with
  // the exact preloaded contents from its new home.
  uint64_t checked = 0;
  uint64_t lost = 0;
  {
    sim::TaskGroup group(loop);
    group.Spawn(VerifySlot(workloads[0].get(), &cl.shard_map(), mig_slot,
                           &checked, &lost));
    rig.Run();
  }
  std::printf("migration verification: %llu stable keys checked, %llu lost\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(lost));

  Section(args, "Cluster demo: request batching");
  uint64_t wal_appends = 0, wal_batches = 0, coalesced = 0;
  for (int n = 0; n < cl.num_nodes(); ++n) {
    coalesced += cl.node(n).coalesced_gets();
    for (const TenantId t : cl.node(n).tenants()) {
      const lsm::LsmStats ls = cl.node(n).partition(t)->stats();
      wal_appends += ls.wal_appends;
      wal_batches += ls.wal_batches;
    }
  }
  std::printf(
      "WAL records %llu in %llu device appends (%.2f rec/append), "
      "coalesced GETs %llu, MultiGet slot groups %llu\n",
      static_cast<unsigned long long>(wal_appends),
      static_cast<unsigned long long>(wal_batches),
      wal_batches > 0 ? static_cast<double>(wal_appends) / wal_batches : 0.0,
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(cl.multiget_groups()));

  AddStatsSection(args, "cluster_snapshot",
                  cluster::ClusterStatsToJson(cl.Snapshot()));

  if (lost > 0 || checked == 0) {
    std::fprintf(stderr, "FAIL: migration lost keys\n");
    return 1;
  }
  if (!all_met) {
    std::fprintf(stderr, "FAIL: some tenant missed its global reservation\n");
    return 1;
  }
  std::printf(
      "cluster contract held: reservations met globally, overbooked admission "
      "refused, migration lossless.\n");
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  const libra::bench::BenchArgs args =
      libra::bench::ParseCommonFlags(argc, argv);
  return libra::bench::RunDemo(args);
}
