// Single-threaded, virtual-time discrete-event loop.
//
// All Libra experiments run on simulated time: a 400-second reservation
// experiment (paper Fig. 12) replays in seconds of wall-clock time, and every
// run is deterministic given the workload seeds. The loop dispatches events
// in (time, insertion-order) order; callbacks run with the clock set to the
// event's timestamp.
//
// Hot-path design (every simulated IO chunk is at least one event here):
//  - Callbacks are SmallFn: captures up to 48 bytes live inline, so
//    scheduling performs no heap allocation.
//  - The heap orders 24-byte POD entries {when, seq, slot|gen}; the callback
//    itself sits in a slot table and is never moved by sift operations.
//  - Cancellation is lazy: Cancel() is O(1) — it clears the slot's live bit
//    (destroying the callback eagerly) and the dead heap entry is discarded
//    when it surfaces. Slot generations make stale EventIds harmless, and a
//    compaction pass bounds the number of dead entries, so repeated
//    schedule/cancel patterns (timeouts) cannot grow the heap without bound.

#ifndef LIBRA_SRC_SIM_EVENT_LOOP_H_
#define LIBRA_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/units.h"
#include "src/sim/small_fn.h"

namespace libra::sim {

class EventLoop {
 public:
  using Callback = SmallFn;
  using EventId = uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when` (clamped to now).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Callback cb);

  // Schedules `cb` to run `delay` after the current virtual time.
  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  // Schedules `cb` at the current virtual time, after already-queued events
  // for this instant.
  EventId Post(Callback cb) { return ScheduleAt(now_, std::move(cb)); }

  // Cancels a pending event in O(1). Cancelling an already-fired, already-
  // cancelled, or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs events until the queue drains (or Stop() is called). Returns the
  // number of events dispatched.
  uint64_t Run();

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if idle). Returns the number of events dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Runs events with timestamp strictly before `horizon` and leaves the
  // clock at the last dispatched event (an idle loop does not advance).
  // This is the epoch-step primitive of MultiLoop: the barrier advances
  // clocks explicitly with AdvanceTo, and the exclusive horizon is what
  // keeps an event scheduled exactly at a barrier timestamp in the epoch
  // the serial engine would run it in. Returns events dispatched.
  uint64_t RunBefore(SimTime horizon);

  // Advances the clock to `t` when it is behind (no-op otherwise). The
  // caller must guarantee no pending event is earlier than `t` — the epoch
  // barrier does, because `t` is the minimum next event time across loops.
  void AdvanceTo(SimTime t);

  // Timestamp of the next live event, or nullopt when idle.
  std::optional<SimTime> NextEventTime();

  // Convenience: RunUntil(Now() + d).
  uint64_t RunFor(SimDuration d) { return RunUntil(now_ + d); }

  // Dispatches a single event if one is pending. Returns false when idle.
  bool RunOne();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Live (scheduled, not yet fired or cancelled) events. Cancelled entries
  // still awaiting lazy removal from the heap are not counted.
  bool empty() const { return live_events_ == 0; }
  size_t pending_events() const { return live_events_; }

 private:
  // POD heap entry: sift operations move 24 bytes with no callback traffic.
  struct HeapEntry {
    SimTime when;
    uint64_t seq;  // tie-break: FIFO at equal timestamps
    uint32_t slot;
    uint32_t gen;

    // Min-heap via std::push_heap's max-heap comparator inversion.
    bool operator<(const HeapEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  struct Slot {
    Callback cb;
    uint32_t gen = 0;
    uint32_t next_free = kNilSlot;
    bool live = false;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    // slot+1 keeps 0 an always-invalid id.
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);

  // Pops cancelled entries off the heap top; returns false when no live
  // event remains. On true, heap_.front() is the next live event.
  bool SkimCancelled();

  // Pops heap_.front() (must be live) and returns its callback with the
  // slot freed; sets now_ to the event time.
  Callback TakeTop();

  // Rebuilds the heap without dead entries once they dominate it.
  void CompactIfWorthwhile();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  size_t live_events_ = 0;
  size_t dead_entries_ = 0;  // cancelled, still in heap_
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;
};

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_EVENT_LOOP_H_
