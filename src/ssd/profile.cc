#include "src/ssd/profile.h"

namespace libra::ssd {

DeviceProfile Intel320Profile() {
  DeviceProfile p;
  p.name = "intel320";
  // Defaults in the struct are the Intel 320 tuning (SATA II).
  return p;
}

DeviceProfile Samsung840Profile() {
  DeviceProfile p;
  p.name = "samsung840";
  p.num_dies = 12;
  p.ctrl_read_op_ns = 12 * kMicrosecond;
  p.ctrl_write_op_ns = 25 * kMicrosecond;
  p.die_read_latency_ns = 160 * kMicrosecond;
  p.die_write_latency_ns = 420 * kMicrosecond;
  p.die_read_bw = 110.0 * 1e6;
  p.die_write_bw = 45.0 * 1e6;
  p.bus_bw = 530.0 * 1e6;
  // Paper Fig. 7: the Samsung shows stronger interference for large writes.
  p.rw_switch_penalty_ns = 700 * kMicrosecond;
  p.erase_ns = 2500 * kMicrosecond;
  return p;
}

DeviceProfile OczVectorProfile() {
  DeviceProfile p;
  p.name = "oczvector";
  p.num_dies = 16;
  p.ctrl_read_op_ns = 14 * kMicrosecond;
  p.ctrl_write_op_ns = 28 * kMicrosecond;
  p.die_read_latency_ns = 230 * kMicrosecond;
  p.die_write_latency_ns = 520 * kMicrosecond;
  p.die_read_bw = 90.0 * 1e6;
  p.die_write_bw = 38.0 * 1e6;
  p.bus_bw = 520.0 * 1e6;
  // Paper Fig. 7: the OCZ parallelizes multi-tenant IO better than the
  // single-tenant baseline (milder switching cost, more dies).
  p.rw_switch_penalty_ns = 350 * kMicrosecond;
  p.erase_ns = 2200 * kMicrosecond;
  return p;
}

}  // namespace libra::ssd
