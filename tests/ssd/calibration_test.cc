#include "src/ssd/calibration.h"

#include <gtest/gtest.h>

#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::ssd {
namespace {

CalibrationOptions FastOptions() {
  CalibrationOptions opt;
  opt.warmup = 200 * kMillisecond;
  opt.measure = 500 * kMillisecond;
  opt.working_set_bytes = 256 * kMiB;
  return opt;
}

class CalibrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new CalibrationTable(Calibrate(Intel320Profile(), FastOptions()));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static CalibrationTable* table_;
};

CalibrationTable* CalibrationFixture::table_ = nullptr;

TEST_F(CalibrationFixture, IopsDecreaseWithSize) {
  const auto& t = *table_;
  for (size_t i = 1; i < t.sizes_kb.size(); ++i) {
    EXPECT_LE(t.rand_read_iops[i], t.rand_read_iops[i - 1] * 1.02)
        << "read size " << t.sizes_kb[i];
    EXPECT_LE(t.rand_write_iops[i], t.rand_write_iops[i - 1] * 1.02)
        << "write size " << t.sizes_kb[i];
  }
}

TEST_F(CalibrationFixture, ReadsFasterThanWrites) {
  const auto& t = *table_;
  for (size_t i = 0; i < t.sizes_kb.size(); ++i) {
    EXPECT_GT(t.rand_read_iops[i], t.rand_write_iops[i])
        << "size " << t.sizes_kb[i];
  }
}

TEST_F(CalibrationFixture, SmallWriteCostRatioNearPaper) {
  // Paper Fig. 6: a 1KB write costs ~3x a 1KB read.
  const auto& t = *table_;
  const double ratio = t.rand_read_iops[0] / t.rand_write_iops[0];
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST_F(CalibrationFixture, MaxIopsNearPaperIntelValue) {
  // Paper: interference-free max ~37.5 kop/s on the Intel 320.
  EXPECT_GT(table_->max_iops(), 30000.0);
  EXPECT_LT(table_->max_iops(), 45000.0);
}

TEST_F(CalibrationFixture, LargeOpsAreBandwidthBound) {
  // At 256KB, read bandwidth should approach the SATA II bus (~257 MB/s
  // effective) while IOPS collapse to ~1 kop/s — the paper's shifting
  // bottleneck (§3.3).
  const auto& t = *table_;
  const double iops_256k = t.rand_read_iops.back();
  const double bw = iops_256k * 256.0 * 1024.0;
  EXPECT_GT(bw, 200e6);
  EXPECT_LT(iops_256k, 1500.0);
}

TEST_F(CalibrationFixture, InterpolationMatchesEndpoints) {
  const auto& t = *table_;
  EXPECT_DOUBLE_EQ(t.RandReadIops(1024), t.rand_read_iops.front());
  EXPECT_DOUBLE_EQ(t.RandReadIops(256 * 1024), t.rand_read_iops.back());
  // Below/above the probed range clamps.
  EXPECT_DOUBLE_EQ(t.RandReadIops(512), t.rand_read_iops.front());
  EXPECT_DOUBLE_EQ(t.RandReadIops(1024 * 1024), t.rand_read_iops.back());
}

TEST_F(CalibrationFixture, InterpolationIsMonotoneBetweenPoints) {
  const auto& t = *table_;
  double prev = t.RandReadIops(1024);
  for (uint32_t s = 2048; s <= 256 * 1024; s += 1024) {
    const double cur = t.RandReadIops(s);
    EXPECT_LE(cur, prev * 1.02) << "size " << s;
    prev = cur;
  }
}

TEST(CalibrationTest, Sata3ProfilesAreFaster) {
  CalibrationOptions opt = FastOptions();
  const double intel_64k =
      MeasureIops(Intel320Profile(), IoType::kRead, 64 * 1024, false, opt);
  const double samsung_64k =
      MeasureIops(Samsung840Profile(), IoType::kRead, 64 * 1024, false, opt);
  EXPECT_GT(samsung_64k, intel_64k * 1.4);
}

}  // namespace
}  // namespace libra::ssd
