# Empty compiler generated dependencies file for capacity_probe.
# This may be replaced when dependencies are built.
