#include "src/lsm/db.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace libra::lsm {

using iosched::AppRequest;
using iosched::InternalOp;
using iosched::IoTag;

LsmDb::LsmDb(sim::EventLoop& loop, fs::SimFs& fs,
             iosched::IoScheduler& scheduler, iosched::TenantId tenant,
             std::string name_prefix, LsmOptions options)
    : loop_(loop),
      fs_(fs),
      scheduler_(scheduler),
      tenant_(tenant),
      prefix_(std::move(name_prefix)),
      options_(options),
      stall_mu_(loop),
      stall_cv_(loop) {
  assert(options_.num_levels >= 2);
  if (options_.shared_block_cache != nullptr) {
    cache_ = options_.shared_block_cache;
  } else if (options_.block_cache_bytes > 0) {
    owned_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes,
                                                /*cache_data=*/true);
    cache_ = owned_cache_.get();
  } else if (options_.table_cache_bytes > 0) {
    // Deprecated alias: index blocks only, byte-identical IO to the old
    // TableIndexCache.
    owned_cache_ = std::make_unique<BlockCache>(options_.table_cache_bytes,
                                                /*cache_data=*/false);
    cache_ = owned_cache_.get();
  }
  auto v = std::make_shared<Version>();
  v->levels.resize(options_.num_levels);
  current_ = v;
  compact_cursor_.assign(options_.num_levels, 0);
}

std::string LsmDb::TableName(uint64_t number) const {
  return prefix_ + "/sst_" + std::to_string(number);
}

std::string LsmDb::WalName(uint64_t number) const {
  return prefix_ + "/wal_" + std::to_string(number);
}

WalOptions LsmDb::MakeWalOptions() const {
  WalOptions w;
  w.group_commit = options_.wal_group_commit;
  w.group_max_bytes = options_.wal_group_max_bytes;
  w.group_max_records = options_.wal_group_max_records;
  return w;
}

uint64_t LsmDb::MaxBytesForLevel(int level) const {
  uint64_t max = options_.max_bytes_level1;
  for (int l = 1; l < level; ++l) {
    max *= 8;
  }
  return max;
}

Status LsmDb::Open() {
  mem_ = std::make_unique<MemTable>();
  // Boot-time recovery. There is no manifest (see header): sst_* files
  // left by a previous incarnation are orphans whose metadata died with
  // it and are deleted here; every surviving wal_* file is replayed in
  // file-number order, rebuilding acked-but-unflushed writes in the fresh
  // memtable. Flushed data does not survive a crash locally — a
  // replicated deployment restores it via the catch-up copy stream.
  const std::string wal_prefix = prefix_ + "/wal_";
  const std::string sst_prefix = prefix_ + "/sst_";
  std::vector<std::pair<uint64_t, std::string>> wals;
  uint64_t max_number = 0;
  for (const std::string& name : fs_.List()) {
    if (name.size() > wal_prefix.size() &&
        name.compare(0, wal_prefix.size(), wal_prefix) == 0) {
      const uint64_t num =
          std::strtoull(name.c_str() + wal_prefix.size(), nullptr, 10);
      max_number = std::max(max_number, num);
      wals.emplace_back(num, name);
    } else if (name.size() > sst_prefix.size() &&
               name.compare(0, sst_prefix.size(), sst_prefix) == 0) {
      const uint64_t num =
          std::strtoull(name.c_str() + sst_prefix.size(), nullptr, 10);
      max_number = std::max(max_number, num);
      fs_.Delete(name);
    }
  }
  std::sort(wals.begin(), wals.end());
  SequenceNumber max_seq = seq_;
  for (const auto& [num, name] : wals) {
    WriteAheadLog wal(fs_, name, MakeWalOptions(), &wal_counters_);
    if (Status s = wal.Open(); !s.ok()) {
      return s;
    }
    Status s = wal.Replay([&](const Record& rec) {
      if (rec.type == ValueType::kDelete) {
        mem_->Delete(rec.key, rec.seq);
      } else {
        mem_->Put(rec.key, rec.seq, rec.value);
      }
      max_seq = std::max(max_seq, rec.seq);
      ++recovered_records_;
      recovered_bytes_ += rec.key.size() + rec.value.size();
    });
    if (!s.ok()) {
      return s;
    }
    ++recovered_wal_files_;
    recovered_wals_.push_back(name);
  }
  seq_ = max_seq;
  // Number new files past every survivor: a pre-crash incarnation may have
  // created files this one never learns about until they collide.
  next_file_number_ = std::max(next_file_number_, max_number + 1);
  wal_ = std::make_unique<WriteAheadLog>(fs_, WalName(next_file_number_++),
                                         MakeWalOptions(), &wal_counters_);
  return wal_->Open();
}

bool LsmDb::WriteStalled() const {
  if (imm_ != nullptr &&
      mem_->ApproximateMemoryUsage() >= options_.write_buffer_bytes) {
    return true;  // both buffers full: wait for the flush
  }
  return static_cast<int>(current_->levels[0].size()) >=
         options_.l0_stop_writes;
}

Status LsmDb::SealMemtable() {
  assert(imm_ == nullptr);
  imm_ = std::move(mem_);
  imm_wal_ = std::move(wal_);
  if (!recovered_wals_.empty()) {
    // The sealed memtable absorbs the replayed records; once its flush
    // lands, the recovered WAL files are fully covered and can go.
    recovered_in_imm_ = true;
  }
  mem_ = std::make_unique<MemTable>();
  wal_ = std::make_unique<WriteAheadLog>(fs_, WalName(next_file_number_++),
                                         MakeWalOptions(), &wal_counters_);
  if (Status s = wal_->Open(); !s.ok()) {
    return s;
  }
  // Attribute the flush to the PUTs that filled the buffer (§4.1).
  scheduler_.tracker().RecordTrigger(tenant_, AppRequest::kPut,
                                     InternalOp::kFlush);
  if (!flush_running_) {
    flush_running_ = true;
    sim::Detach(FlushJob());
  }
  return Status::Ok();
}

sim::Task<Status> LsmDb::WriteInternal(std::string_view key,
                                       std::string_view value, ValueType type,
                                       TraceContext ctx, InternalOp op) {
  const OpGuard guard(this);
  if (dead_) {
    co_return Status::Unavailable("db killed");
  }
  // Backpressure: L0 overload or both write buffers full.
  if (WriteStalled()) {
    const SimTime stall_start = loop_.Now();
    ++stalls_;
    while (WriteStalled()) {
      co_await stall_mu_.Lock();
      if (!dead_ && WriteStalled()) {
        co_await stall_cv_.Wait(stall_mu_);
      }
      stall_mu_.Unlock();
      if (dead_) {
        co_return Status::Unavailable("db killed");
      }
    }
    stall_ns_ += static_cast<uint64_t>(loop_.Now() - stall_start);
  }

  const SequenceNumber seq = ++seq_;
  const IoTag tag{tenant_, AppRequest::kPut, op, ctx};
  Status s = co_await wal_->Append(tag, key, seq, type, value);
  if (dead_) {
    // The record may or may not be durable; the crash decides. Either way
    // this incarnation stops mutating state — replay arbitrates at boot.
    co_return Status::Unavailable("db killed");
  }
  if (!s.ok()) {
    co_return s;
  }
  // Insert after durability; ordering between concurrent writers is by
  // sequence number regardless of insertion order.
  if (type == ValueType::kDelete) {
    mem_->Delete(key, seq, ctx);
  } else {
    mem_->Put(key, seq, value, ctx);
  }
  ++puts_;
  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_bytes &&
      imm_ == nullptr) {
    s = SealMemtable();
  }
  co_return s;
}

sim::Task<Status> LsmDb::Put(std::string_view key, std::string_view value,
                             TraceContext ctx, InternalOp op) {
  return WriteInternal(key, value, ValueType::kPut, ctx, op);
}

sim::Task<Status> LsmDb::Delete(std::string_view key, TraceContext ctx,
                                InternalOp op) {
  return WriteInternal(key, "", ValueType::kDelete, ctx, op);
}

sim::Task<LsmDb::GetResult> LsmDb::Get(std::string_view key, TraceContext ctx) {
  const OpGuard guard(this);
  ++gets_;
  const SequenceNumber snapshot = seq_;
  const IoTag tag{tenant_, AppRequest::kGet, InternalOp::kNone, ctx};
  GetResult out;
  if (dead_) {
    out.status = Status::Unavailable("db killed");
    co_return out;
  }

  // Memtables first (no IO).
  for (const MemTable* mt : {mem_.get(), imm_.get()}) {
    if (mt == nullptr) {
      continue;
    }
    const MemTable::GetResult r = mt->Get(key, snapshot);
    if (r.found) {
      if (r.deleted) {
        out.status = Status::NotFound("deleted");
      } else {
        out.value = r.value;
      }
      co_return out;
    }
  }

  // Table lookups against an immutable version snapshot; the refs keep
  // files alive even if a compaction replaces them mid-read.
  const VersionRef version = current_;
  // Overlapping levels probe every covering file newest-first: L0 under
  // leveled, every tier under size-tiered (runs only leave a tier by
  // whole-tier merges, so run recency orders version recency globally).
  const int overlapping_levels =
      options_.compaction_policy == CompactionPolicy::kSizeTiered
          ? options_.num_levels
          : 1;
  for (int level = 0; level < overlapping_levels; ++level) {
    for (const TableRef& table : version->levels[level]) {
      if (key < table->smallest || key > table->largest) {
        continue;
      }
      ++tables_probed_;
      SstableReader::GetResult r =
          co_await table->reader->Get(tag, key, snapshot);
      if (dead_) {
        out.status = Status::Unavailable("db killed");
        co_return out;
      }
      if (!r.status.ok()) {
        out.status = r.status;
        co_return out;
      }
      if (r.found) {
        if (r.deleted) {
          out.status = Status::NotFound("deleted");
        } else {
          out.value = std::move(r.value);
        }
        co_return out;
      }
    }
  }
  // Leveled L1+: at most one file per level.
  for (int level = overlapping_levels; level < options_.num_levels; ++level) {
    const auto& files = version->levels[level];
    const auto it = std::lower_bound(
        files.begin(), files.end(), key,
        [](const TableRef& t, std::string_view k) { return t->largest < k; });
    if (it == files.end() || key < (*it)->smallest) {
      continue;
    }
    ++tables_probed_;
    SstableReader::GetResult r = co_await (*it)->reader->Get(tag, key, snapshot);
    if (dead_) {
      out.status = Status::Unavailable("db killed");
      co_return out;
    }
    if (!r.status.ok()) {
      out.status = r.status;
      co_return out;
    }
    if (r.found) {
      if (r.deleted) {
        out.status = Status::NotFound("deleted");
      } else {
        out.value = std::move(r.value);
      }
      co_return out;
    }
  }
  out.status = Status::NotFound("no entry");
  co_return out;
}

sim::Task<LsmDb::ScanResult> LsmDb::Scan(std::string_view start,
                                         std::string_view end, size_t limit,
                                         TraceContext ctx) {
  const OpGuard guard(this);
  ++scans_;
  ScanResult out;
  if (dead_) {
    out.status = Status::Unavailable("db killed");
    co_return out;
  }
  const SequenceNumber snapshot = seq_;
  const IoTag tag{tenant_, AppRequest::kScan, InternalOp::kNone, ctx};

  // Pin one consistent cut before any suspension: the version snapshot
  // plus the memtables' in-range entries (no IO).
  const VersionRef base = current_;
  std::vector<MemTable::Entry> mem_entries;
  for (const MemTable* mt : {mem_.get(), imm_.get()}) {
    if (mt == nullptr) {
      continue;
    }
    MemTable::Iterator it(mt);
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      const MemTable::Entry& e = it.entry();
      if (e.key < start || (!end.empty() && e.key >= end) ||
          e.seq > snapshot) {
        continue;
      }
      mem_entries.push_back(e);
    }
  }
  // The two memtables interleave: restore internal order across them.
  std::sort(mem_entries.begin(), mem_entries.end(),
            [](const MemTable::Entry& a, const MemTable::Entry& b) {
              return CompareInternalKey(a.key, a.seq, b.key, b.seq) < 0;
            });

  // One streaming cursor per table whose range overlaps [start, end); the
  // TableRef pins the file for the cursor's lifetime. Applies uniformly to
  // both compaction policies — leveled L1+ files are merely a disjoint
  // special case of "overlapping runs".
  struct TableSource {
    TableRef table;
    std::unique_ptr<SstableReader::RangeCursor> cursor;
  };
  std::vector<TableSource> tables;
  for (const std::vector<TableRef>& level : base->levels) {
    for (const TableRef& t : level) {
      if (t->largest < start || (!end.empty() && t->smallest >= end)) {
        continue;
      }
      auto seeked = co_await t->reader->Seek(tag, start);
      if (dead_) {
        out.status = Status::Unavailable("db killed");
        co_return out;
      }
      if (!seeked.ok()) {
        out.status = seeked.status();
        co_return out;
      }
      if ((*seeked)->Valid()) {
        tables.push_back(TableSource{t, std::move(*seeked)});
      }
    }
  }

  // K-way merge in internal-key order. The first surfacing of a user key
  // is its newest visible version — it wins, and (value or tombstone)
  // shadows every older version behind it.
  size_t mem_pos = 0;
  std::string last_user_key;
  bool have_last = false;
  while (limit == 0 || out.entries.size() < limit) {
    bool best_is_mem = false;
    int best = -1;
    std::string_view bkey;
    std::string_view bval;
    SequenceNumber bseq = 0;
    ValueType btype = ValueType::kPut;
    if (mem_pos < mem_entries.size()) {
      const MemTable::Entry& e = mem_entries[mem_pos];
      best_is_mem = true;
      bkey = e.key;
      bval = e.value;
      bseq = e.seq;
      btype = e.type;
    }
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!tables[i].cursor->Valid()) {
        continue;
      }
      const Record& r = tables[i].cursor->record();
      if ((!best_is_mem && best < 0) ||
          CompareInternalKey(r.key, r.seq, bkey, bseq) < 0) {
        best_is_mem = false;
        best = static_cast<int>(i);
        bkey = r.key;
        bval = r.value;
        bseq = r.seq;
        btype = r.type;
      }
    }
    if (!best_is_mem && best < 0) {
      break;  // every source exhausted
    }
    if (!end.empty() && bkey >= end) {
      break;  // the global minimum is past the range: so is everything else
    }
    // Versions newer than the snapshot neither emit nor shadow (skipping
    // them lets the older visible version surface next).
    if (bseq <= snapshot) {
      if (!(have_last && bkey == last_user_key)) {
        // Copy before advancing: the views die with the cursor's block.
        last_user_key = std::string(bkey);
        have_last = true;
        if (btype != ValueType::kDelete) {
          out.entries.emplace_back(std::string(bkey), std::string(bval));
          ++scan_keys_;
          scan_bytes_ += bkey.size() + bval.size();
        }
      }
    }
    if (best_is_mem) {
      ++mem_pos;
    } else {
      Status s = co_await tables[best].cursor->Next();
      if (dead_) {
        out.status = Status::Unavailable("db killed");
        co_return out;
      }
      if (!s.ok()) {
        out.status = s;
        co_return out;
      }
    }
  }
  co_return out;
}

sim::Task<StatusOr<LsmDb::TableRef>> LsmDb::BuildTable(
    const std::vector<MemTable::Entry>& entries, size_t begin, size_t end,
    const iosched::IoTag& tag) {
  assert(begin < end);
  auto handle = std::make_shared<TableHandle>();
  handle->fs = &fs_;
  handle->number = next_file_number_++;
  handle->name = TableName(handle->number);
  auto created = fs_.Create(handle->name);
  if (!created.ok()) {
    handle->fs = nullptr;  // nothing to clean up
    co_return created.status();
  }
  handle->file = *created;

  SstableOptions sst_opt;
  sst_opt.block_bytes = options_.block_bytes;
  sst_opt.write_chunk_bytes = options_.write_chunk_bytes;
  sst_opt.bloom_bits_per_key = options_.bloom_bits_per_key;
  SstableBuilder builder(fs_, handle->file, sst_opt);
  for (size_t i = begin; i < end; ++i) {
    const MemTable::Entry& e = entries[i];
    builder.Add(e.key, e.seq, e.type, e.value);
  }
  if (Status s = co_await builder.Finish(tag); !s.ok()) {
    co_return s;
  }
  handle->smallest = builder.smallest_key();
  handle->largest = builder.largest_key();
  handle->size_bytes = fs_.SizeOf(handle->file);
  // cache_ is null when no cache is configured: the legacy reader-resident
  // index (identical IO pattern to before the cache).
  handle->cache = cache_;
  handle->tenant = tenant_;
  handle->reader = std::make_unique<SstableReader>(
      fs_, handle->file, sst_opt, cache_, handle->number, tenant_,
      &read_counters_);
  co_return handle;
}

sim::Task<void> LsmDb::FlushJob() {
  while (imm_ != nullptr && !dead_) {
    const SimTime flush_start = loop_.Now();
    // Collect the sealed memtable in order, gathering the origin spans of
    // the requests whose bytes this flush persists.
    std::vector<MemTable::Entry> entries;
    entries.reserve(imm_->entries());
    obs::SpanLinkSet origins;
    MemTable::Iterator it(imm_.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      entries.push_back(it.entry());
      origins.Add(it.entry().origin);
    }
    // The flush gets its own span (new trace root when no writer was
    // traced); its device IO parents under it via the tag context.
    obs::SpanCollector* spans = scheduler_.spans();
    IoTag tag{tenant_, AppRequest::kPut, InternalOp::kFlush, {}};
    if (spans != nullptr) {
      tag.ctx = spans->MintAlways();
    }
    uint64_t built_bytes = 0;
    if (!entries.empty()) {
      auto built = co_await BuildTable(entries, 0, entries.size(), tag);
      if (dead_) {
        break;  // crash: drop the build (dtor reclaims it), keep the WAL
      }
      if (built.ok()) {
        flush_bytes_ += (*built)->size_bytes;
        built_bytes = (*built)->size_bytes;
        (*built)->lineage = tag.ctx;
        (*built)->origin_links = origins;
        // Install: newest L0 file goes to the front.
        auto next = std::make_shared<Version>(*current_);
        next->levels[0].insert(next->levels[0].begin(), *built);
        current_ = next;
      }
    }
    ++flushes_;
    flush_ns_ += static_cast<uint64_t>(loop_.Now() - flush_start);
    if (spans != nullptr) {
      obs::SpanRecord rec;
      rec.trace_id = tag.ctx.trace_id;
      rec.span_id = tag.ctx.span_id;
      rec.kind = obs::SpanKind::kFlush;
      rec.app = static_cast<uint8_t>(AppRequest::kPut);
      rec.internal = static_cast<uint8_t>(InternalOp::kFlush);
      rec.is_write = 1;
      rec.tenant = tenant_;
      rec.start_ns = flush_start;
      rec.end_ns = loop_.Now();
      rec.bytes = built_bytes;
      rec.links = origins;
      spans->Record(rec);
    }
    scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kFlush);
    imm_.reset();
    if (imm_wal_ != nullptr) {
      // A group-commit leader suspended in the rotated log's batch loop
      // still touches its queue when the shared write lands; drain any
      // in-flight appends before destroying the object under it.
      co_await imm_wal_->WaitIdle();
      if (dead_) {
        break;  // crash while draining: keep the log for replay
      }
      imm_wal_->Remove();
      imm_wal_.reset();
    }
    if (recovered_in_imm_) {
      // The flush that just landed persisted the replayed records; the
      // recovered WAL files are now fully covered.
      for (const std::string& name : recovered_wals_) {
        fs_.Delete(name);
      }
      recovered_wals_.clear();
      recovered_in_imm_ = false;
    }
    stall_cv_.NotifyAll();
    MaybeStartCompaction();
  }
  flush_running_ = false;
}

int LsmDb::PickCompactionLevel() const {
  double best_score = 1.0;
  int best_level = -1;
  if (options_.compaction_policy == CompactionPolicy::kSizeTiered) {
    // Fullest tier by run count; the bottom tier self-merges at the same
    // threshold. A single run never merges (nothing to reclaim).
    for (int tier = 0; tier < options_.num_levels; ++tier) {
      const size_t runs = current_->levels[tier].size();
      if (runs < 2) {
        continue;
      }
      const double score =
          static_cast<double>(runs) /
          static_cast<double>(options_.tier_compaction_trigger);
      if (score >= best_score) {
        best_score = score;
        best_level = tier;
      }
    }
    return best_level;
  }
  const double l0_score =
      static_cast<double>(current_->levels[0].size()) /
      static_cast<double>(options_.l0_compaction_trigger);
  if (l0_score >= best_score) {
    best_score = l0_score;
    best_level = 0;
  }
  for (int level = 1; level < options_.num_levels - 1; ++level) {
    uint64_t bytes = 0;
    for (const TableRef& t : current_->levels[level]) {
      bytes += t->size_bytes;
    }
    const double score = static_cast<double>(bytes) /
                         static_cast<double>(MaxBytesForLevel(level));
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  return best_level;
}

void LsmDb::MaybeStartCompaction() {
  if (compaction_running_ || PickCompactionLevel() < 0) {
    return;
  }
  compaction_running_ = true;
  sim::Detach(CompactionJob());
}

sim::Task<void> LsmDb::CompactionJob() {
  while (!dead_) {
    const int level = PickCompactionLevel();
    if (level < 0) {
      break;
    }
    if (options_.compaction_policy == CompactionPolicy::kSizeTiered) {
      co_await CompactTier(level);
    } else {
      co_await CompactLevel(level);
    }
  }
  compaction_running_ = false;
}

bool LsmDb::RangesOverlap(const TableHandle& t, std::string_view lo,
                          std::string_view hi) {
  return !(t.largest < lo || hi < t.smallest);
}

sim::Task<Status> LsmDb::CompactLevel(int level) {
  IoTag tag{tenant_, AppRequest::kPut, InternalOp::kCompact, {}};
  const SimTime compact_start = loop_.Now();
  scheduler_.tracker().RecordTrigger(tenant_, AppRequest::kPut,
                                     InternalOp::kCompact);
  const int out_level = level + 1;
  const bool bottom = out_level == options_.num_levels - 1;

  // Select inputs from the current version.
  const VersionRef base = current_;
  std::vector<TableRef> inputs;
  std::string lo;
  std::string hi;
  if (level == 0) {
    // All of L0 (their ranges overlap each other anyway).
    inputs = base->levels[0];
  } else {
    const auto& files = base->levels[level];
    if (files.empty()) {
      scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
      co_return Status::Ok();
    }
    compact_cursor_[level] %= files.size();
    inputs.push_back(files[compact_cursor_[level]]);
    compact_cursor_[level] = (compact_cursor_[level] + 1) % std::max<size_t>(files.size(), 1);
  }
  for (const TableRef& t : inputs) {
    if (lo.empty() || t->smallest < lo) {
      lo = t->smallest;
    }
    if (hi.empty() || hi < t->largest) {
      hi = t->largest;
    }
  }
  std::vector<TableRef> overlap;
  for (const TableRef& t : base->levels[out_level]) {
    if (RangesOverlap(*t, lo, hi)) {
      overlap.push_back(t);
    }
  }

  // Trace: the compaction span parents under the first input table's
  // lineage (the FLUSH/COMPACT that built it), links the other tables'
  // lineage spans plus a sample of the app-request origins riding them —
  // the fan-in edge set that lets a viewer walk COMPACT device IO back to
  // the PUTs whose bytes it rewrites.
  obs::SpanCollector* spans = scheduler_.spans();
  obs::SpanLinkSet fan_in;
  obs::SpanLinkSet origins;
  TraceContext compact_parent;
  if (spans != nullptr) {
    for (const std::vector<TableRef>* group : {&inputs, &overlap}) {
      for (const TableRef& t : *group) {
        if (!compact_parent.valid()) {
          compact_parent = t->lineage;
        } else {
          fan_in.Add(t->lineage);
        }
        origins.Merge(t->origin_links);
      }
    }
    tag.ctx = compact_parent.valid() ? spans->MintChild(compact_parent)
                                     : spans->MintAlways();
  }

  // Merge: read everything (sequential COMPACT reads), sort by internal
  // key, keep only the newest version of each user key.
  std::vector<MemTable::Entry> entries;
  auto collect = [&entries](const Record& rec) {
    entries.push_back(MemTable::Entry{std::string(rec.key),
                                      std::string(rec.value), rec.seq,
                                      rec.type, {}});
  };
  for (const std::vector<TableRef>* group : {&inputs, &overlap}) {
    for (const TableRef& t : *group) {
      Status s = co_await t->reader->ScanAll(tag, collect);
      if (dead_) {
        co_return Status::Unavailable("db killed");
      }
      if (!s.ok()) {
        scheduler_.tracker().RecordInternalOpDone(tenant_,
                                                  InternalOp::kCompact);
        co_return s;
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const MemTable::Entry& a, const MemTable::Entry& b) {
              return CompareInternalKey(a.key, a.seq, b.key, b.seq) < 0;
            });
  std::vector<MemTable::Entry> merged;
  merged.reserve(entries.size());
  std::string last_user_key;
  bool have_last = false;
  for (size_t i = 0; i < entries.size(); ++i) {
    // Compare against an explicit copy of the previous user key —
    // entries[i-1] may have been moved into `merged` (hollow string), and
    // at the bottom level a dropped tombstone must still shadow the older
    // versions behind it.
    if (have_last && entries[i].key == last_user_key) {
      continue;  // shadowed older version
    }
    last_user_key = entries[i].key;
    have_last = true;
    if (bottom && entries[i].type == ValueType::kDelete) {
      continue;  // tombstones die at the bottom level
    }
    merged.push_back(std::move(entries[i]));
  }

  // Write outputs split at the target file size.
  std::vector<TableRef> outputs;
  size_t begin = 0;
  uint64_t bytes = 0;
  for (size_t i = 0; i <= merged.size(); ++i) {
    const bool flush_now =
        i == merged.size()
            ? i > begin
            : bytes >= options_.target_file_bytes && i > begin;
    if (flush_now) {
      auto built = co_await BuildTable(merged, begin, i, tag);
      if (dead_) {
        co_return Status::Unavailable("db killed");  // outputs dtor-reclaimed
      }
      if (!built.ok()) {
        scheduler_.tracker().RecordInternalOpDone(tenant_,
                                                  InternalOp::kCompact);
        co_return built.status();
      }
      (*built)->lineage = tag.ctx;
      (*built)->origin_links = origins;
      outputs.push_back(*built);
      begin = i;
      bytes = 0;
    }
    if (i < merged.size()) {
      bytes += merged[i].key.size() + merged[i].value.size() + 17;
    }
  }

  // Install: drop inputs, add outputs, from the *latest* version (flushes
  // may have prepended newer L0 files meanwhile; they are preserved).
  auto is_input = [&](const TableRef& t) {
    for (const std::vector<TableRef>* group : {&inputs, &overlap}) {
      for (const TableRef& in : *group) {
        if (in == t) {
          return true;
        }
      }
    }
    return false;
  };
  auto next = std::make_shared<Version>(*current_);
  for (auto& files : next->levels) {
    files.erase(std::remove_if(files.begin(), files.end(), is_input),
                files.end());
  }
  auto& out_files = next->levels[out_level];
  out_files.insert(out_files.end(), outputs.begin(), outputs.end());
  std::sort(out_files.begin(), out_files.end(),
            [](const TableRef& a, const TableRef& b) {
              return a->smallest < b->smallest;
            });
  if (const char* dbg = getenv("LSM_DEBUG"); dbg != nullptr) {
    std::printf("compact L%d->L%d inputs:", level, out_level);
    for (const auto& t : inputs) std::printf(" #%llu[%s,%s]", (unsigned long long)t->number, t->smallest.c_str(), t->largest.c_str());
    std::printf(" overlap:");
    for (const auto& t : overlap) std::printf(" #%llu[%s,%s]", (unsigned long long)t->number, t->smallest.c_str(), t->largest.c_str());
    std::printf(" outputs:");
    for (const auto& t : outputs) std::printf(" #%llu[%s,%s]", (unsigned long long)t->number, t->smallest.c_str(), t->largest.c_str());
    std::printf("\n");
  }
  current_ = next;
  ++compactions_;
  for (const std::vector<TableRef>* group : {&inputs, &overlap}) {
    for (const TableRef& t : *group) {
      compact_bytes_read_ += t->size_bytes;
    }
  }
  uint64_t output_bytes = 0;
  for (const TableRef& t : outputs) {
    output_bytes += t->size_bytes;
  }
  compact_bytes_written_ += output_bytes;
  compact_ns_ += static_cast<uint64_t>(loop_.Now() - compact_start);
  if (spans != nullptr) {
    obs::SpanRecord rec;
    rec.trace_id = tag.ctx.trace_id;
    rec.span_id = tag.ctx.span_id;
    rec.parent_span = compact_parent.span_id;
    rec.kind = obs::SpanKind::kCompact;
    rec.app = static_cast<uint8_t>(AppRequest::kPut);
    rec.internal = static_cast<uint8_t>(InternalOp::kCompact);
    rec.is_write = 1;
    rec.tenant = tenant_;
    rec.start_ns = compact_start;
    rec.end_ns = loop_.Now();
    rec.bytes = output_bytes;
    rec.links = fan_in;
    rec.links.Merge(origins);
    spans->Record(rec);
  }
  scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
  stall_cv_.NotifyAll();  // L0 pressure may have cleared
  co_return Status::Ok();
}

sim::Task<Status> LsmDb::CompactTier(int tier) {
  IoTag tag{tenant_, AppRequest::kPut, InternalOp::kCompact, {}};
  const SimTime compact_start = loop_.Now();
  scheduler_.tracker().RecordTrigger(tenant_, AppRequest::kPut,
                                     InternalOp::kCompact);
  // The bottom tier has nowhere deeper to push: it merges in place, which
  // is also the only point tombstones may die (no older version of any key
  // can exist below the merge's inputs).
  const bool bottom_self = tier == options_.num_levels - 1;
  const int out_level = bottom_self ? tier : tier + 1;

  // Inputs: the whole tier, pinned from the current version. Taking every
  // run is what keeps recency tier-ordered (all of tier k stays newer than
  // all of tier k+1), which GET's newest-first probe relies on.
  const VersionRef base = current_;
  std::vector<TableRef> inputs = base->levels[tier];
  if (inputs.size() < 2) {
    scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
    co_return Status::Ok();
  }

  // Trace: same fan-in linkage as leveled compaction — parent under the
  // first input's lineage, link the rest plus sampled request origins.
  obs::SpanCollector* spans = scheduler_.spans();
  obs::SpanLinkSet fan_in;
  obs::SpanLinkSet origins;
  TraceContext compact_parent;
  if (spans != nullptr) {
    for (const TableRef& t : inputs) {
      if (!compact_parent.valid()) {
        compact_parent = t->lineage;
      } else {
        fan_in.Add(t->lineage);
      }
      origins.Merge(t->origin_links);
    }
    tag.ctx = compact_parent.valid() ? spans->MintChild(compact_parent)
                                     : spans->MintAlways();
  }

  // Merge: sequential reads of every run, newest version of each key wins.
  std::vector<MemTable::Entry> entries;
  auto collect = [&entries](const Record& rec) {
    entries.push_back(MemTable::Entry{std::string(rec.key),
                                      std::string(rec.value), rec.seq,
                                      rec.type, {}});
  };
  for (const TableRef& t : inputs) {
    Status s = co_await t->reader->ScanAll(tag, collect);
    if (dead_) {
      co_return Status::Unavailable("db killed");
    }
    if (!s.ok()) {
      scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
      co_return s;
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const MemTable::Entry& a, const MemTable::Entry& b) {
              return CompareInternalKey(a.key, a.seq, b.key, b.seq) < 0;
            });
  std::vector<MemTable::Entry> merged;
  merged.reserve(entries.size());
  std::string last_user_key;
  bool have_last = false;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (have_last && entries[i].key == last_user_key) {
      continue;  // shadowed older version
    }
    last_user_key = entries[i].key;
    have_last = true;
    if (bottom_self && entries[i].type == ValueType::kDelete) {
      continue;  // nothing deeper left to shadow
    }
    merged.push_back(std::move(entries[i]));
  }

  // One output run per merge — a run is a single file here, so the
  // newest-first invariant stays "front-inserted, highest number first".
  std::vector<TableRef> outputs;
  if (!merged.empty()) {
    auto built = co_await BuildTable(merged, 0, merged.size(), tag);
    if (dead_) {
      co_return Status::Unavailable("db killed");  // output dtor-reclaimed
    }
    if (!built.ok()) {
      scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
      co_return built.status();
    }
    (*built)->lineage = tag.ctx;
    (*built)->origin_links = origins;
    outputs.push_back(*built);
  }

  // Install against the *latest* version: flushes may have front-inserted
  // newer tier-0 runs meanwhile; they are preserved.
  auto is_input = [&](const TableRef& t) {
    for (const TableRef& in : inputs) {
      if (in == t) {
        return true;
      }
    }
    return false;
  };
  auto next = std::make_shared<Version>(*current_);
  auto& in_files = next->levels[tier];
  in_files.erase(std::remove_if(in_files.begin(), in_files.end(), is_input),
                 in_files.end());
  auto& out_files = next->levels[out_level];
  out_files.insert(out_files.begin(), outputs.begin(), outputs.end());
  current_ = next;
  ++compactions_;
  for (const TableRef& t : inputs) {
    compact_bytes_read_ += t->size_bytes;
  }
  uint64_t output_bytes = 0;
  for (const TableRef& t : outputs) {
    output_bytes += t->size_bytes;
  }
  compact_bytes_written_ += output_bytes;
  compact_ns_ += static_cast<uint64_t>(loop_.Now() - compact_start);
  if (spans != nullptr) {
    obs::SpanRecord rec;
    rec.trace_id = tag.ctx.trace_id;
    rec.span_id = tag.ctx.span_id;
    rec.parent_span = compact_parent.span_id;
    rec.kind = obs::SpanKind::kCompact;
    rec.app = static_cast<uint8_t>(AppRequest::kPut);
    rec.internal = static_cast<uint8_t>(InternalOp::kCompact);
    rec.is_write = 1;
    rec.tenant = tenant_;
    rec.start_ns = compact_start;
    rec.end_ns = loop_.Now();
    rec.bytes = output_bytes;
    rec.links = fan_in;
    rec.links.Merge(origins);
    spans->Record(rec);
  }
  scheduler_.tracker().RecordInternalOpDone(tenant_, InternalOp::kCompact);
  stall_cv_.NotifyAll();  // tier-0 pressure may have cleared
  co_return Status::Ok();
}

sim::Task<void> LsmDb::WaitIdle() {
  while (!dead_ && (flush_running_ || compaction_running_ || imm_ != nullptr)) {
    co_await sim::SleepFor(loop_, 10 * kMillisecond);
  }
}

void LsmDb::Kill() {
  if (dead_) {
    return;
  }
  dead_ = true;
  // Wake stalled writers so they observe the crash and unwind.
  stall_cv_.NotifyAll();
}

sim::Task<Status> LsmDb::ScanLive(
    const iosched::IoTag& tag,
    const std::function<void(std::string_view key, std::string_view value)>&
        fn) {
  const OpGuard guard(this);
  if (dead_) {
    co_return Status::Unavailable("db killed");
  }
  const SequenceNumber snapshot = seq_;
  // Pin the version and the memtables' contents before any suspension: the
  // merge below must see one consistent cut of the tree.
  const VersionRef base = current_;
  std::vector<MemTable::Entry> entries;
  for (const MemTable* mt : {mem_.get(), imm_.get()}) {
    if (mt == nullptr) {
      continue;
    }
    MemTable::Iterator it(mt);
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      entries.push_back(it.entry());
    }
  }
  auto collect = [&entries, snapshot](const Record& rec) {
    if (rec.seq <= snapshot) {
      entries.push_back(MemTable::Entry{std::string(rec.key),
                                        std::string(rec.value), rec.seq,
                                        rec.type, {}});
    }
  };
  for (const std::vector<TableRef>& level : base->levels) {
    for (const TableRef& t : level) {
      Status s = co_await t->reader->ScanAll(tag, collect);
      if (dead_) {
        co_return Status::Unavailable("db killed");
      }
      if (!s.ok()) {
        co_return s;
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const MemTable::Entry& a, const MemTable::Entry& b) {
              return CompareInternalKey(a.key, a.seq, b.key, b.seq) < 0;
            });
  std::string last_user_key;
  bool have_last = false;
  for (const MemTable::Entry& e : entries) {
    if (have_last && e.key == last_user_key) {
      continue;  // shadowed older version
    }
    last_user_key = e.key;
    have_last = true;
    if (e.type == ValueType::kDelete) {
      continue;  // dead key
    }
    fn(e.key, e.value);
  }
  co_return Status::Ok();
}

LsmStats LsmDb::stats() const {
  LsmStats s;
  s.puts = puts_;
  s.gets = gets_;
  s.scans = scans_;
  s.scan_keys = scan_keys_;
  s.scan_bytes = scan_bytes_;
  s.flushes = flushes_;
  s.compactions = compactions_;
  s.tables_probed = tables_probed_;
  s.flush_bytes = flush_bytes_;
  s.flush_ns = flush_ns_;
  s.compact_bytes_read = compact_bytes_read_;
  s.compact_bytes_written = compact_bytes_written_;
  s.compact_ns = compact_ns_;
  s.stalls = stalls_;
  s.stall_ns = stall_ns_;
  s.wal_appends = wal_counters_.appends;
  s.wal_batches = wal_counters_.batches;
  s.wal_batched_records = wal_counters_.batched_records;
  s.wal_max_batch_records = wal_counters_.max_batch_records;
  s.recovered_wal_files = recovered_wal_files_;
  s.recovered_records = recovered_records_;
  s.recovered_bytes = recovered_bytes_;
  s.bloom_probes = read_counters_.bloom_probes;
  s.bloom_negatives = read_counters_.bloom_negatives;
  s.bloom_false_positives = read_counters_.bloom_false_positives;
  s.index_block_reads = read_counters_.index_block_reads;
  s.filter_block_reads = read_counters_.filter_block_reads;
  s.data_block_reads = read_counters_.data_block_reads;
  s.data_cache_hits = read_counters_.data_cache_hits;
  if (cache_ != nullptr) {
    constexpr int kIdx = static_cast<int>(BlockCache::Kind::kIndex);
    constexpr int kFlt = static_cast<int>(BlockCache::Kind::kFilter);
    constexpr int kDat = static_cast<int>(BlockCache::Kind::kData);
    const BlockCache::TenantCounters tc = cache_->CountersOf(tenant_);
    s.bcache_index_hits = tc.hits[kIdx];
    s.bcache_index_misses = tc.misses[kIdx];
    s.bcache_filter_hits = tc.hits[kFlt];
    s.bcache_filter_misses = tc.misses[kFlt];
    s.bcache_data_hits = tc.hits[kDat];
    s.bcache_data_misses = tc.misses[kDat];
    s.bcache_evictions = tc.evictions;
    s.bcache_resident_bytes = cache_->resident_bytes();
    s.bcache_capacity_bytes = cache_->capacity_bytes();
    // Legacy table-cache view: this tenant's index-block traffic (equal to
    // the old TableIndexCache counters when the cache is DB-owned).
    s.table_cache_hits = tc.hits[kIdx];
    s.table_cache_misses = tc.misses[kIdx];
    s.table_cache_evictions = tc.evictions;
    s.table_cache_resident_bytes = cache_->resident_bytes();
  }
  for (const auto& files : current_->levels) {
    s.files_per_level.push_back(static_cast<int>(files.size()));
  }
  return s;
}

std::string LsmDb::DebugCheckInvariants() const {
  if (options_.compaction_policy == CompactionPolicy::kSizeTiered) {
    // Every tier is a stack of whole runs, newest (highest number) first.
    for (int tier = 0; tier < options_.num_levels; ++tier) {
      const auto& runs = current_->levels[tier];
      for (size_t i = 1; i < runs.size(); ++i) {
        if (runs[i - 1]->number < runs[i]->number) {
          return "tier " + std::to_string(tier) +
                 " not newest-first at index " + std::to_string(i);
        }
      }
    }
    return "";
  }
  const auto& l0 = current_->levels[0];
  for (size_t i = 1; i < l0.size(); ++i) {
    if (l0[i - 1]->number < l0[i]->number) {
      return "L0 not newest-first at index " + std::to_string(i);
    }
  }
  for (int level = 1; level < options_.num_levels; ++level) {
    const auto& files = current_->levels[level];
    for (size_t i = 1; i < files.size(); ++i) {
      if (files[i - 1]->largest >= files[i]->smallest) {
        return "L" + std::to_string(level) + " overlap: [" +
               files[i - 1]->smallest + "," + files[i - 1]->largest +
               "] vs [" + files[i]->smallest + "," + files[i]->largest + "]";
      }
    }
  }
  return "";
}

int LsmDb::NumFilesAtLevel(int level) const {
  assert(level >= 0 && level < options_.num_levels);
  return static_cast<int>(current_->levels[level].size());
}

}  // namespace libra::lsm
