#include "src/lsm/block_cache.h"

#include <utility>

namespace libra::lsm {

CachedBlockRef BlockCache::Get(iosched::TenantId tenant, uint64_t table,
                               Kind kind, uint64_t offset) {
  const Key key{tenant, table, kind, offset};
  TenantCounters& tc = tenants_[tenant];
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    ++tc.misses[static_cast<int>(kind)];
    return nullptr;
  }
  ++hits_;
  ++tc.hits[static_cast<int>(kind)];
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->block;
}

void BlockCache::Insert(iosched::TenantId tenant, uint64_t table, Kind kind,
                        uint64_t offset, CachedBlockRef block,
                        uint64_t bytes) {
  const Key key{tenant, table, kind, offset};
  EraseKey(key);  // replace semantics (concurrent loaders may both insert)
  lru_.push_front(Entry{key, std::move(block), bytes});
  map_[key] = lru_.begin();
  resident_bytes_ += bytes;
  if (capacity_bytes_ == 0) {
    return;  // unbounded
  }
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    ++evictions_;
    ++tenants_[victim.key.tenant].evictions;
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

void BlockCache::EraseTable(iosched::TenantId tenant, uint64_t table) {
  auto it = map_.lower_bound(Key{tenant, table, Kind::kIndex, 0});
  while (it != map_.end() && it->first.tenant == tenant &&
         it->first.table == table) {
    resident_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    it = map_.erase(it);
  }
}

void BlockCache::EraseKey(const Key& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  resident_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

BlockCache::TenantCounters BlockCache::CountersOf(
    iosched::TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantCounters{} : it->second;
}

}  // namespace libra::lsm
