file(REMOVE_RECURSE
  "CMakeFiles/fig02_io_amplification.dir/fig02_io_amplification.cc.o"
  "CMakeFiles/fig02_io_amplification.dir/fig02_io_amplification.cc.o.d"
  "fig02_io_amplification"
  "fig02_io_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_io_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
