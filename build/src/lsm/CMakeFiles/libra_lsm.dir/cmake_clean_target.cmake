file(REMOVE_RECURSE
  "liblibra_lsm.a"
)
