// Ablation bench (DESIGN.md §5): which simulator/scheduler mechanism
// produces which evaluation artifact. Each row toggles one mechanism and
// reports the interference floor cell (1KB reads vs 4KB writes at 50:50)
// and a pure-write GC-stress cell.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/iosched/scheduler.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/device.h"
#include "src/workload/workload.h"

namespace libra::bench {
namespace {

struct AblationSpec {
  std::string name;
  ssd::DeviceOptions device;
  iosched::SchedulerOptions sched;
};

double RunMixedCell(const ssd::DeviceProfile& profile, const AblationSpec& ab,
                    double read_fraction, double read_kb, double write_kb,
                    bool gc_stress = false) {
  sim::EventLoop loop;
  ssd::DeviceProfile p = profile;
  if (gc_stress) {
    // ~97% utilization: random overwrites leave almost no slack, so the
    // free pool hits the GC watermark within the measurement window.
    p.capacity_bytes = 640 * kMiB;
  }
  ssd::SsdDevice device(loop, p, ab.device);
  const uint64_t ws = gc_stress ? 620 * kMiB : 512 * kMiB;
  device.Prefill(ws);
  iosched::IoScheduler sched(loop, device,
                             iosched::MakeCostModel("exact", TableFor(profile)),
                             ab.sched);
  const SimTime end = 2500 * kMillisecond;
  double vops_at_warm = 0.0;
  {
    std::vector<std::unique_ptr<workload::RawIoWorkload>> workloads;
    sim::TaskGroup group(loop);
    for (int t = 0; t < 8; ++t) {
      sched.SetAllocation(t, 1000.0);
      workload::RawIoSpec w;
      w.read_fraction = read_fraction;
      w.read_size = {read_kb * 1024.0, 0.0};
      w.write_size = {write_kb * 1024.0, 0.0};
      w.workers = 4;
      w.working_set_bytes = ws;
      workloads.push_back(std::make_unique<workload::RawIoWorkload>(
          loop, sched, static_cast<iosched::TenantId>(t), w, 100 + t));
      workloads.back()->Start(group, end);
    }
    loop.ScheduleAt(1500 * kMillisecond,
                    [&] { vops_at_warm = sched.tracker().total_vops(); });
    loop.Run();
  }
  return sched.tracker().total_vops() - vops_at_warm;  // 1s measurement window
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();

  AblationSpec specs[4];
  specs[0].name = "baseline";
  specs[1].name = "no GC";
  specs[1].device.enable_gc = false;
  specs[2].name = "no r/w switch penalty";
  specs[2].device.enable_rw_switch_penalty = false;
  specs[3].name = "no chunking";
  specs[3].sched.enable_chunking = false;

  // 4 configs x 3 cells, all independent sims: compute across --jobs
  // workers, emit rows serially in config order.
  TableFor(profile);  // warm the calibration cache before the pool starts
  SweepRunner runner(args.jobs);
  const std::vector<double> cells = runner.Map<double>(4 * 3, [&](size_t i) {
    const AblationSpec& ab = specs[i / 3];
    switch (i % 3) {
      case 0:
        return RunMixedCell(profile, ab, 0.5, 1, 4);
      case 1:
        return RunMixedCell(profile, ab, 0.0, 4, 4, /*gc_stress=*/true);
      default:
        return RunMixedCell(profile, ab, 0.5, 256, 4);
    }
  });

  Section(args, "Ablations: mechanism -> artifact (kVOP/s)");
  libra::metrics::Table out(
      {"configuration", "mixed_1K_read/4K_write", "pure_4K_write_hot",
       "large_256K_read_mix"});
  for (size_t s = 0; s < 4; ++s) {
    out.AddNumericRow(specs[s].name,
                      {cells[s * 3] / 1000.0, cells[s * 3 + 1] / 1000.0,
                       cells[s * 3 + 2] / 1000.0},
                      1);
  }
  Emit(args, out);
  std::printf(
      "expected: removing the switch penalty lifts the mixed floor; "
      "removing GC lifts pure writes; disabling chunking changes the "
      "large-read mix slightly (responsiveness trade-off).\n");
  return 0;
}
