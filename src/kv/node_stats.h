// Whole-node observability snapshot (StorageNode::Snapshot()).
//
// One struct gathers every layer's view at an instant of simulated time:
// device counters, capacity model state, per-tenant app-request latency
// histograms (protocol layer), IO lifecycle histograms per (app request,
// internal op) class (scheduler), LSM background-work accounting, and the
// resource policy's provisioning audit trail. NodeStatsToJson renders it as
// a single JSON document — the payload behind every bench binary's
// --stats-json flag, with a schema locked down by
// tests/kv/node_stats_json_test.cc.

#ifndef LIBRA_SRC_KV_NODE_STATS_H_
#define LIBRA_SRC_KV_NODE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/iosched/io_tag.h"
#include "src/iosched/resource_policy.h"
#include "src/lsm/db.h"
#include "src/obs/audit.h"
#include "src/obs/conformance.h"
#include "src/obs/histogram.h"
#include "src/obs/io_stats.h"
#include "src/obs/sla.h"
#include "src/ssd/device.h"

namespace libra::kv {

// One (app request, internal op) IO class with activity.
struct IoClassSnapshot {
  iosched::AppRequest app = iosched::AppRequest::kNone;
  iosched::InternalOp internal = iosched::InternalOp::kNone;
  obs::IoClassStats stats;
};

// Observed-vs-declared attribution matrix for one tenant (tracing on).
struct AttributionSnapshot {
  bool observed = false;  // estimator has data for this tenant
  obs::AttributionMatrix matrix;
  obs::DeclaredAttribution declared;
  obs::ConformanceReport report;  // valid when observed && declared
  bool conformant = true;
  double tolerance = 0.0;
};

// SLA conformance for one tenant (from the policy's SlaMonitor).
struct SlaSnapshot {
  bool tracked = false;
  obs::SlaMonitor::TenantSla sla;
};

struct TenantSnapshot {
  iosched::TenantId tenant = iosched::kInvalidTenant;
  iosched::Reservation reservation;
  double allocation_vops = 0.0;
  // End-to-end app-request latency (protocol layer; includes cache hits).
  obs::LatencyHistogram get_latency;
  obs::LatencyHistogram put_latency;
  // Scheduler lifecycle rollup across all classes, plus the breakdown.
  obs::IoClassStats io_total;
  std::vector<IoClassSnapshot> io_classes;  // only classes with ops > 0
  lsm::LsmStats lsm;
  AttributionSnapshot attribution;
  SlaSnapshot sla;
};

// Protocol-layer object (LRU) cache counters. `enabled` is false when the
// node runs cache-less (the paper's disk-bound configuration); the counters
// are then all zero.
struct ObjectCacheSnapshot {
  bool enabled = false;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t entries = 0;
};

// IO lifecycle trace-ring counters (scheduler's TraceRing; all zero when
// trace_capacity is 0). A nonzero `dropped` means the ring wrapped.
struct TraceRingSnapshot {
  bool enabled = false;
  uint64_t capacity = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
};

// Causal span collector counters (scheduler's SpanCollector).
struct SpanCollectorSnapshot {
  bool enabled = false;
  uint64_t capacity = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t minted_traces = 0;
  uint64_t sampled_out = 0;
  uint32_t sample_every = 1;
};

struct NodeStats {
  int64_t time_ns = 0;
  ssd::DeviceStats device;
  double capacity_floor_vops = 0.0;
  double capacity_estimate_vops = 0.0;
  uint64_t scheduler_rounds = 0;
  TraceRingSnapshot trace_ring;
  SpanCollectorSnapshot spans;
  ObjectCacheSnapshot object_cache;
  // GETs served by riding another request's in-flight lookup (read
  // coalescing; 0 unless NodeOptions.enable_read_coalescing).
  uint64_t coalesced_gets = 0;
  std::vector<TenantSnapshot> tenants;
  std::vector<obs::AuditRecord> audit;  // the policy's retained records
};

// Renders the snapshot as one JSON document (schema documented in
// DESIGN.md "Observability"; validated by tests/kv/node_stats_json_test.cc).
std::string NodeStatsToJson(const NodeStats& stats);

}  // namespace libra::kv

#endif  // LIBRA_SRC_KV_NODE_STATS_H_
