// Deterministic, seedable pseudo-random number generation and the workload
// distributions used throughout the evaluation: uniform, log-normal request
// sizes (Figs. 4, 10, 11, 12) and Zipfian key popularity.

#ifndef LIBRA_SRC_COMMON_RNG_H_
#define LIBRA_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace libra {

// xoshiro256** by Blackman & Vigna: fast, high-quality, and (unlike
// std::mt19937) identical output across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextU64(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi]; lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (one value per call; stateless variant).
  double NextGaussian();

  // True with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

// Samples sizes in bytes from a log-normal distribution parameterized the way
// the paper reports workloads: by arithmetic *mean* size and by the standard
// deviation sigma of sizes (both in bytes). Samples are clamped to
// [min_bytes, max_bytes] and rounded to whole bytes.
class LogNormalSize {
 public:
  // mean_bytes > 0; sigma_bytes >= 0 (0 degenerates to a fixed size).
  LogNormalSize(double mean_bytes, double sigma_bytes, uint64_t min_bytes = 1,
                uint64_t max_bytes = 4ULL << 20);

  uint64_t Sample(Rng& rng) const;

  double mean_bytes() const { return mean_bytes_; }
  double sigma_bytes() const { return sigma_bytes_; }

 private:
  double mean_bytes_;
  double sigma_bytes_;
  double mu_;     // location of underlying normal
  double sigma_;  // scale of underlying normal
  uint64_t min_bytes_;
  uint64_t max_bytes_;
};

// Zipfian key sampler over [0, n) with exponent theta (0 = uniform-ish,
// 0.99 = classic YCSB skew). Uses the Gray et al. rejection-free method with
// precomputed zeta constants.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_RNG_H_
