# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/iosched_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
