# Empty compiler generated dependencies file for libra_ssd.
# This may be replaced when dependencies are built.
