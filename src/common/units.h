// Size and virtual-time units shared across the simulator and scheduler.
//
// Virtual time is an integer count of nanoseconds since simulation start.
// Integer (not floating) time keeps event ordering exact and runs
// deterministic across platforms.

#ifndef LIBRA_SRC_COMMON_UNITS_H_
#define LIBRA_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace libra {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Virtual simulation time, in nanoseconds.
using SimTime = int64_t;
// Virtual duration, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

// Converts a duration to fractional seconds (for rate computations and
// human-facing output only; never feed the result back into event times).
inline constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Converts fractional seconds to a duration, truncating to whole nanoseconds.
inline constexpr SimDuration FromSeconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

}  // namespace libra

#endif  // LIBRA_SRC_COMMON_UNITS_H_
