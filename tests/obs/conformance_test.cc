#include "src/obs/conformance.h"

#include <gtest/gtest.h>

namespace libra::obs {
namespace {

constexpr uint8_t kGet = 1;  // mirrors iosched::AppRequest::kGet
constexpr uint8_t kPut = 2;  // mirrors iosched::AppRequest::kPut
constexpr uint8_t kDirect = 0;
constexpr uint8_t kFlush = 1;
constexpr uint8_t kCompact = 2;

TEST(AttributionEstimatorTest, AccumulatesCellsAndTotals) {
  AttributionEstimator est;
  EXPECT_EQ(est.Of(7), nullptr);

  est.RecordRequest(7, kPut, 2.0);
  est.RecordIo(7, kPut, kDirect, 2.0);
  est.RecordIo(7, kPut, kCompact, 6.0);

  const AttributionMatrix* m = est.Of(7);
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->norm_requests[kPut], 2.0);
  EXPECT_DOUBLE_EQ(m->total_vops, 8.0);
  EXPECT_DOUBLE_EQ(m->Q(kPut, kDirect), 1.0);
  EXPECT_DOUBLE_EQ(m->Q(kPut, kCompact), 3.0);
  EXPECT_DOUBLE_EQ(m->Q(kGet, kDirect), 0.0);  // no GETs: zero, not NaN
}

TEST(AttributionEstimatorTest, DiffGivesWindowedMatrix) {
  AttributionEstimator est;
  est.RecordRequest(1, kGet, 10.0);
  est.RecordIo(1, kGet, kDirect, 10.0);
  const AttributionMatrix early = *est.Of(1);
  est.RecordRequest(1, kGet, 10.0);
  est.RecordIo(1, kGet, kDirect, 30.0);
  const AttributionMatrix window = Diff(*est.Of(1), early);
  EXPECT_DOUBLE_EQ(window.norm_requests[kGet], 10.0);
  EXPECT_DOUBLE_EQ(window.Q(kGet, kDirect), 3.0);
}

TEST(CompareAttributionTest, HonestDeclarationConforms) {
  AttributionEstimator est;
  est.RecordRequest(1, kPut, 100.0);
  est.RecordIo(1, kPut, kDirect, 100.0);
  est.RecordIo(1, kPut, kFlush, 98.0);  // q̂ = 0.98 vs declared 1.0

  DeclaredAttribution d;
  d.declared = true;
  d.at(kPut, kDirect) = 1.0;
  d.at(kPut, kFlush) = 1.0;

  const ConformanceReport r = CompareAttribution(*est.Of(1), d);
  EXPECT_LE(r.divergence, 0.05);
  EXPECT_TRUE(r.conformant(0.10));
}

TEST(CompareAttributionTest, UnderDeclaredAmplificationIsFlagged) {
  AttributionEstimator est;
  est.RecordRequest(1, kPut, 100.0);
  est.RecordIo(1, kPut, kDirect, 100.0);
  est.RecordIo(1, kPut, kCompact, 300.0);  // hidden 3x amplification

  DeclaredAttribution d;
  d.declared = true;
  d.at(kPut, kDirect) = 1.0;  // claims direct-only

  const ConformanceReport r = CompareAttribution(*est.Of(1), d);
  EXPECT_FALSE(r.conformant(0.10));
  EXPECT_EQ(r.worst_app, kPut);
  EXPECT_EQ(r.worst_internal, kCompact);
  EXPECT_DOUBLE_EQ(r.worst_observed, 3.0);
}

TEST(CompareAttributionTest, SkipsIdleRowsAndNoiseCells) {
  AttributionEstimator est;
  est.RecordRequest(1, kPut, 100.0);
  est.RecordIo(1, kPut, kDirect, 100.0);
  est.RecordIo(1, kPut, kFlush, 1.0);  // q̂ = 0.01: below min_declared

  DeclaredAttribution d;
  d.declared = true;
  d.at(kPut, kDirect) = 1.0;
  // GET row declared but the tenant served no GETs: must not divide by 0
  // or flag an unexercised class.
  d.at(kGet, kDirect) = 4.0;

  const ConformanceReport r = CompareAttribution(*est.Of(1), d);
  EXPECT_TRUE(r.conformant(0.10));
}

}  // namespace
}  // namespace libra::obs
